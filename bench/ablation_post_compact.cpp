// Ablation (extension): how much does static reverse-order compaction find
// after each generation strategy? If the paper's dynamic compaction is doing
// its job, the value-based test sets should be nearly irreducible, while the
// uncompacted sets shrink dramatically.
#include <cstdio>

#include "atpg/post_compact.hpp"
#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s953_like", "s1488_like"});
  print_header("Ablation: static post-compaction after generation", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());
    const TargetSets& ts = wb.targets();

    Table t("circuit " + name);
    t.columns({"strategy", "tests", "after reverse pass", "dropped"});

    auto add = [&](const char* label, const GenerationResult& r) {
      const PostCompactionResult pc = post_compact(nl, r.tests, ts.p0, ts.p1);
      t.row(label, r.tests.size(), pc.tests.size(), pc.dropped);
    };

    GeneratorConfig g;
    g.seed = o.seed;
    g.heuristic = CompactionHeuristic::None;
    add("basic/uncomp", wb.run_basic(g));
    g.heuristic = CompactionHeuristic::Arbitrary;
    add("basic/arbit", wb.run_basic(g));
    g.heuristic = CompactionHeuristic::Value;
    add("basic/values", wb.run_basic(g));
    add("enriched", wb.run_enriched(g));
    emit(t, o);
  }
  std::printf(
      "expected shape: the uncomp sets collapse; the dynamically compacted\n"
      "sets lose only a handful of tests — dynamic compaction is doing the\n"
      "heavy lifting, as the paper's Table 4/5 comparison implies.\n");
  finish_run(o);
  return 0;
}
