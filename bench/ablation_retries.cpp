// Ablation: justification retry budget. The paper's justification is a
// single greedy randomized pass (it attributes the small per-heuristic
// variations in Table 3 to exactly this randomness and suggests
// branch-and-bound would remove them). Allowing the engine to retry failed
// justifications with fresh random decisions recovers part of what
// backtracking would, at a runtime cost.
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s641_like", "s1196_like"});
  print_header("Ablation: justification retry budget", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());
    Table t("circuit " + name);
    t.columns({"attempts", "tests", "P0 det", "P1 det", "seconds"});
    for (int attempts : {1, 2, 4}) {
      GeneratorConfig g;
      g.heuristic = CompactionHeuristic::Value;
      g.seed = o.seed;
      g.justify.max_attempts = attempts;
      const GenerationResult r = wb.run_enriched(g);
      t.row(attempts == 1 ? std::string("1 (paper)") : std::to_string(attempts),
            r.tests.size(), r.detected_p0_count(), r.detected_p1_count(),
            r.stats.seconds);
    }
    emit(t, o);
  }
  finish_run(o);
  return 0;
}
