// Table 6 reproduction: the proposed test-enrichment procedure with target
// sets P0 and P1 (value-based heuristic underneath). For every circuit of
// Tables 3-5 plus the three "resynthesized" stand-ins, prints the P0
// coverage, the P0 u P1 coverage and the test count.
//
// Shape to reproduce (vs Table 5): with the same order of test-set size as
// the basic value-based run, the enrichment procedure detects far more of
// P0 u P1 — explicit targeting of P1 matters. For reference, the accidental
// coverage by a basic run is printed alongside.
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  std::vector<std::string> defaults = table_circuits();
  for (const auto& extra : table6_extra_circuits()) defaults.push_back(extra);
  Options o = parse_options(argc, argv, std::move(defaults));
  print_header("Table 6: results of test enrichment using P0 and P1", o);

  Table t("Table 6: enrichment (values heuristic); last two columns = basic run reference");
  t.columns({"circuit", "i0", "P0 total", "P0 detect", "P0,P1 total",
             "P0,P1 detected", "tests", "basic P0,P1 det", "basic tests"});

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());
    const TargetSets& ts = wb.targets();

    GeneratorConfig g;
    g.heuristic = CompactionHeuristic::Value;
    g.seed = o.seed;

    const GenerationResult enriched = wb.run_enriched(g);
    const UnionCoverage ce = wb.coverage_of(enriched);

    const GenerationResult basic = wb.run_basic(g);
    const UnionCoverage cb = wb.simulate_union(basic.tests);

    t.row(name, ts.i0, ts.p0.size(), ce.p0_detected, ts.p_total(),
          ce.union_detected(), enriched.tests.size(), cb.union_detected(),
          basic.tests.size());
    std::fprintf(stderr,
                 "  %s: enriched %zu tests, union %zu/%zu; basic %zu tests, "
                 "union %zu (%.2fs + %.2fs)\n",
                 name.c_str(), enriched.tests.size(), ce.union_detected(),
                 ce.union_total(), basic.tests.size(), cb.union_detected(),
                 enriched.stats.seconds, basic.stats.seconds);
  }

  emit(t, o);
  std::printf(
      "paper shape check: P0,P1 detected under enrichment far exceeds the\n"
      "accidental coverage of the basic run at essentially the same test\n"
      "count (paper example s641: 1815 vs 1420 of 2127 at 127 vs 129 tests).\n");
  finish_run(o);
  return 0;
}
