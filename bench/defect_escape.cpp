// Reproduction of the paper's *motivating claim* (Section 1): "shorter paths
// may fail without any of the longest paths failing", so a test set
// generated only for the longest-path faults (P0) lets such failures escape,
// while the enrichment procedure catches many of them at no extra tests.
//
// Method: nominal unit gate delays; the clock period is the nominal critical
// settle time plus a small guardband. Defects add extra delay to a single
// gate, sampled from two populations: gates on P0 paths and gates that lie
// only on P1 paths (the next-to-longest band). Catch rates are measured
// through the timed waveform simulator for the basic-P0 test set and the
// enriched test set.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/common.hpp"
#include "faultsim/defect_mc.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s953_like", "b04_like"});
  print_header("Defect-escape Monte Carlo (the paper's motivation)", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());
    const TargetSets& ts = wb.targets();
    if (ts.p0.empty() || ts.p1.empty()) continue;

    GeneratorConfig g;
    g.heuristic = CompactionHeuristic::Value;
    g.seed = o.seed;
    const GenerationResult basic = wb.run_basic(g);
    const GenerationResult enriched = wb.run_enriched(g);

    // Gate pools: on some P0 path / only on P1 paths.
    std::set<NodeId> p0_nodes, p1_nodes;
    for (const auto& tf : ts.p0) {
      for (NodeId n : tf.fault.path.nodes) p0_nodes.insert(n);
    }
    for (const auto& tf : ts.p1) {
      for (NodeId n : tf.fault.path.nodes) p1_nodes.insert(n);
    }
    std::vector<NodeId> pool_p0(p0_nodes.begin(), p0_nodes.end());
    std::vector<NodeId> pool_p1_only;
    for (NodeId n : p1_nodes) {
      if (!p0_nodes.contains(n)) pool_p1_only.push_back(n);
    }
    if (pool_p1_only.empty()) continue;

    // Clock: nominal critical settle + 1 guardband unit; defects must be
    // large enough to push a near-critical path past the clock.
    DefectMcConfig mcfg;
    mcfg.nominal_gate_delay = 1;
    DefectMcConfig probe = mcfg;
    probe.clock_period = 1;  // placeholder to construct
    DefectSimulator probe_sim(nl, probe);
    int settle = 0;
    for (const auto& t : basic.tests) {
      settle = std::max(settle, probe_sim.nominal_settle(t));
    }
    for (const auto& t : enriched.tests) {
      settle = std::max(settle, probe_sim.nominal_settle(t));
    }
    mcfg.clock_period = settle + 1;
    DefectSimulator sim(nl, mcfg);

    Rng rng(o.seed + 99);
    const int min_extra = mcfg.clock_period / 3 + 1;
    const int max_extra = mcfg.clock_period;
    const auto defects_p0 =
        sample_defects_on(pool_p0, 150, min_extra, max_extra, rng);
    const auto defects_p1 =
        sample_defects_on(pool_p1_only, 150, min_extra, max_extra, rng);

    Table t("circuit " + name + "  (clock = " + std::to_string(mcfg.clock_period) +
            ", defect delay " + std::to_string(min_extra) + ".." +
            std::to_string(max_extra) + ")");
    t.columns({"defect population", "basic catch rate", "enriched catch rate"});
    char b0[16], e0[16], b1[16], e1[16];
    std::snprintf(b0, sizeof b0, "%.2f", sim.catch_rate(basic.tests, defects_p0));
    std::snprintf(e0, sizeof e0, "%.2f", sim.catch_rate(enriched.tests, defects_p0));
    std::snprintf(b1, sizeof b1, "%.2f", sim.catch_rate(basic.tests, defects_p1));
    std::snprintf(e1, sizeof e1, "%.2f", sim.catch_rate(enriched.tests, defects_p1));
    t.row("gates on P0 paths", b0, e0);
    t.row("gates only on P1 paths", b1, e1);
    emit(t, o);
  }
  std::printf(
      "expected shape: both sets catch P0-band defects; on defects confined\n"
      "to the next-to-longest band the enriched set catches noticeably more\n"
      "— the failures the paper warns would otherwise escape.\n");
  finish_run(o);
  return 0;
}
