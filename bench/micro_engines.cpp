// Microbenchmarks of the hot engines (google-benchmark): full triple
// simulation, event-driven PI probing, implication closure, justification,
// and batched fault simulation.
//
// Special modes:
//   micro_engines compiled-vs-legacy [--circuit NAME] [--csv]
// times robust (triple) simulation through the legacy Netlist walker against
// the flattened CompiledCircuit path on NAME (default: the largest registry
// circuit), verifies the two produce bit-identical values on every line, and
// reports the speedup.
//   micro_engines threads [--circuit NAME] [--backend NAME] [--csv] [--metrics]
// thread-scaling sweep: runs BatchSimulator::detection_matrix on NAME
// at 1, 2, 4 and 8 pool threads, verifies every matrix is bit-identical to
// the single-thread run, and reports wall time and speedup per thread count.
//   micro_engines backends [--circuit NAME] [--csv] [--metrics]
//                          [--metrics-json FILE] [--bench-json FILE]
// backend comparison: builds the same detection matrix through every
// registered sim::SimBackend, verifies all matrices are bit-identical to the
// scalar reference and that the steady-state sweeps allocate nothing (the
// sim.<backend>.scratch_grows counters must not move), and reports wall time
// and throughput (tests x faults / sec) per backend. Exits nonzero unless
// all matrices match, the zero-allocation invariant holds, and the
// bit-parallel backend beats scalar by at least 5x.
//   micro_engines store [--circuit NAME] [--dir DIR] [--csv] [--metrics]
// cold-vs-warm pipeline comparison through the content-addressed artifact
// store: runs the full enumeration -> ATPG -> coverage -> detection-matrix
// pipeline twice against a fresh store root (default .artifact-store.micro,
// wiped first), verifies the warm results are identical to the cold ones,
// and reports per-phase wall clock, speedup and store hit/miss counts.
//   micro_engines serve [--circuit NAME] [--dir DIR] [--csv] [--metrics]
// in-process serve::Server throughput: pushes a mixed hot/cold job stream
// through 4 worker shards over a fresh store root (default
// .artifact-store.serve, wiped first and after), verifies every response's
// result object is byte-identical to a direct single-shot run_job of the
// same request, and reports jobs/s, end-to-end latency p50/p99 and the
// stage-cache hit/miss split. Exits nonzero on any mismatch or if the hot
// half of the stream produced no cache hits.
//   micro_engines obs [--circuit NAME] [--csv]
// instrumentation overhead on the robust-sim hot loop: times the loop bare,
// with PDF_TRACE_SPAN while tracing is disabled (the steady state of every
// run without --trace; budget < 2%), with PDF_LOG while logging is off
// (same one-relaxed-load contract and budget), and with a live
// TraceSession, and reports the overhead percentages.
// Any other invocation falls through to the normal google-benchmark driver.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "atpg/justify.hpp"
#include "core/compiled_circuit.hpp"
#include "enrich/enrichment.hpp"
#include "enrich/target_sets.hpp"
#include "faultsim/batch_sim.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/backend.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/event_sim.hpp"
#include "sim/triple_sim.hpp"
#include "store/stage_cache.hpp"

namespace {

using namespace pdf;

const Netlist& circuit() {
  static const Netlist nl = benchmark_circuit("s1196_like");
  return nl;
}

const TargetSets& targets() {
  static const TargetSets ts = [] {
    TargetSetConfig cfg;
    cfg.n_p = 2000;
    cfg.n_p0 = 200;
    return build_target_sets(circuit(), cfg);
  }();
  return ts;
}

void BM_FullTripleSim(benchmark::State& state) {
  const Netlist& nl = circuit();
  Rng rng(1);
  std::vector<Triple> pis(nl.inputs().size());
  for (auto& t : pis) {
    t = pi_triple(rng.coin() ? V3::One : V3::Zero,
                  rng.coin() ? V3::One : V3::Zero);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(nl, pis));
  }
  state.SetItemsProcessed(state.iterations() * nl.node_count());
}
BENCHMARK(BM_FullTripleSim);

void BM_CompiledTripleSim(benchmark::State& state) {
  const Netlist& nl = circuit();
  const CompiledCircuit cc(nl);
  SimScratch scratch;
  Rng rng(1);
  std::vector<Triple> pis(nl.inputs().size());
  for (auto& t : pis) {
    t = pi_triple(rng.coin() ? V3::One : V3::Zero,
                  rng.coin() ? V3::One : V3::Zero);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(cc, pis, scratch));
  }
  state.SetItemsProcessed(state.iterations() * nl.node_count());
}
BENCHMARK(BM_CompiledTripleSim);

void BM_CompiledPlaneSim(benchmark::State& state) {
  const Netlist& nl = circuit();
  const CompiledCircuit cc(nl);
  SimScratch scratch;
  Rng rng(1);
  std::vector<V3> pis(nl.inputs().size());
  for (auto& v : pis) v = rng.coin() ? V3::One : V3::Zero;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_plane(cc, pis, scratch));
  }
  state.SetItemsProcessed(state.iterations() * nl.node_count());
}
BENCHMARK(BM_CompiledPlaneSim);

void BM_EventSimProbe(benchmark::State& state) {
  const Netlist& nl = circuit();
  EventSim sim(nl);
  Rng rng(2);
  // Half-specified baseline.
  for (std::size_t i = 0; i < nl.inputs().size(); i += 2) {
    sim.set_pi(i, rng.coin() ? kSteady1 : kSteady0);
  }
  std::size_t i = 1;
  for (auto _ : state) {
    const std::size_t token = sim.begin_txn();
    sim.set_pi(i % nl.inputs().size(), rng.coin() ? kRise : kFall);
    benchmark::DoNotOptimize(sim.violations());
    sim.rollback(token);
    i += 2;
  }
}
BENCHMARK(BM_EventSimProbe);

void BM_Implication(benchmark::State& state) {
  const Netlist& nl = circuit();
  ImplicationEngine eng(nl);
  const auto& tf = targets().p0.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.imply(tf.requirements));
  }
}
BENCHMARK(BM_Implication);

void BM_Justify(benchmark::State& state) {
  const Netlist& nl = circuit();
  JustificationEngine eng(nl, 3);
  const auto& faults = targets().p0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.justify(faults[i % faults.size()].requirements));
    ++i;
  }
}
BENCHMARK(BM_Justify);

void BM_FaultSimBatch(benchmark::State& state) {
  const Netlist& nl = circuit();
  FaultSimulator fsim(nl);
  Rng rng(4);
  TwoPatternTest t;
  t.pi_values.resize(nl.inputs().size());
  for (auto& v : t.pi_values) {
    v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                  rng.coin() ? V3::One : V3::Zero);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detects(t, targets().p0));
  }
  state.SetItemsProcessed(state.iterations() * targets().p0.size());
}
BENCHMARK(BM_FaultSimBatch);

void BM_FaultSimBitPar64(benchmark::State& state) {
  const Netlist& nl = circuit();
  BatchSimulator fsim(nl, &sim::bitpar_backend());
  Rng rng(5);
  std::vector<TwoPatternTest> tests(64);
  for (auto& t : tests) {
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detects_any(tests, targets().p0));
  }
  state.SetItemsProcessed(state.iterations() * targets().p0.size() * 64);
}
BENCHMARK(BM_FaultSimBitPar64);

void BM_FaultSimScalar64(benchmark::State& state) {
  const Netlist& nl = circuit();
  FaultSimulator fsim(nl);
  Rng rng(5);
  std::vector<TwoPatternTest> tests(64);
  for (auto& t : tests) {
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detects_any(tests, targets().p0));
  }
  state.SetItemsProcessed(state.iterations() * targets().p0.size() * 64);
}
BENCHMARK(BM_FaultSimScalar64);

// ---- compiled-vs-legacy comparison mode ------------------------------------

double measure_ms(const std::function<void()>& fn, int rounds) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

int run_compiled_vs_legacy(const std::string& name, bool csv) {
  if (!has_benchmark(name)) {
    std::fprintf(stderr, "unknown circuit '%s' (see bench_atpg --list)\n",
                 name.c_str());
    return 2;
  }
  const Netlist nl = benchmark_circuit(name);
  const CompiledCircuit cc(nl);
  SimScratch scratch;

  // A batch of random fully specified two-pattern tests.
  constexpr std::size_t kTests = 64;
  Rng rng(12345);
  std::vector<std::vector<Triple>> tests(kTests);
  for (auto& pis : tests) {
    pis.resize(nl.inputs().size());
    for (auto& t : pis) {
      t = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }

  // Bit-identicality first: every line, every test.
  for (const auto& pis : tests) {
    const auto legacy = simulate(nl, pis);
    const auto compiled = simulate(cc, pis, scratch);
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      if (!(compiled[id] == legacy[id])) {
        std::fprintf(stderr, "MISMATCH on %s node %u\n", name.c_str(), id);
        return 1;
      }
    }
  }

  // Scale the inner repeat count to the circuit so one round is ~measurable.
  const int repeats =
      static_cast<int>(std::max<std::size_t>(1, 2'000'000 / nl.node_count()));
  const int rounds = 7;

  const double legacy_ms = measure_ms(
      [&] {
        for (int r = 0; r < repeats; ++r) {
          benchmark::DoNotOptimize(simulate(nl, tests[r % kTests]));
        }
      },
      rounds);
  const double compiled_ms = measure_ms(
      [&] {
        for (int r = 0; r < repeats; ++r) {
          benchmark::DoNotOptimize(simulate(cc, tests[r % kTests], scratch));
        }
      },
      rounds);

  const double speedup = legacy_ms / compiled_ms;
  std::printf("== compiled-vs-legacy robust simulation ==\n");
  std::printf("circuit: %s (%zu nodes, %zu inputs, depth %d)\n", name.c_str(),
              nl.node_count(), nl.inputs().size(), cc.depth());
  std::printf("repeats per round: %d, rounds (best-of): %d\n", repeats, rounds);
  std::printf("legacy:   %10.3f ms\n", legacy_ms);
  std::printf("compiled: %10.3f ms\n", compiled_ms);
  std::printf("speedup:  %10.2fx (bit-identical on all %zu lines)\n", speedup,
              nl.node_count());
  if (csv) {
    std::printf("\ncsv:\ncircuit,nodes,repeats,legacy_ms,compiled_ms,speedup\n");
    std::printf("%s,%zu,%d,%.4f,%.4f,%.3f\n", name.c_str(), nl.node_count(),
                repeats, legacy_ms, compiled_ms, speedup);
  }
  return 0;
}

// ---- thread-scaling mode ---------------------------------------------------

int run_thread_scaling(const std::string& name, bool csv, bool metrics) {
  if (!has_benchmark(name)) {
    std::fprintf(stderr, "unknown circuit '%s' (see bench_atpg --list)\n",
                 name.c_str());
    return 2;
  }
  const Netlist nl = benchmark_circuit(name);

  TargetSetConfig tcfg;
  tcfg.n_p = 4000;
  tcfg.n_p0 = 300;
  const TargetSets ts = build_target_sets(nl, tcfg);
  if (ts.p0.empty()) {
    std::fprintf(stderr, "no target faults on %s\n", name.c_str());
    return 2;
  }

  constexpr std::size_t kTests = 1024;
  Rng rng(98765);
  std::vector<TwoPatternTest> tests(kTests);
  for (auto& t : tests) {
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }

  const BatchSimulator fsim(nl);  // the selected backend (--backend)
  const int rounds = 5;

  std::printf("== detection_matrix thread scaling ==\n");
  std::printf("circuit: %s (%zu nodes), faults: %zu, tests: %zu\n",
              name.c_str(), nl.node_count(), ts.p0.size(), kTests);
  std::printf("%8s %12s %10s %12s\n", "threads", "best ms", "speedup",
              "identical");

  struct Row {
    std::size_t threads;
    double ms;
    bool identical;
  };
  std::vector<Row> rows;
  DetectionMatrix reference;
  bool all_identical = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    runtime::set_global_threads(threads);
    DetectionMatrix m;
    const double ms = measure_ms(
        [&] { m = fsim.detection_matrix(tests, ts.p0); }, rounds);
    if (threads == 1) reference = m;
    const bool identical = m == reference;
    all_identical = all_identical && identical;
    rows.push_back({threads, ms, identical});
    std::printf("%8zu %12.3f %9.2fx %12s\n", threads, ms, rows.front().ms / ms,
                identical ? "yes" : "NO");
  }
  runtime::set_global_threads(1);

  if (csv) {
    std::printf("\ncsv:\nthreads,ms,speedup,identical\n");
    for (const Row& r : rows) {
      std::printf("%zu,%.4f,%.3f,%d\n", r.threads, r.ms, rows.front().ms / r.ms,
                  r.identical ? 1 : 0);
    }
  }
  if (metrics) {
    std::fprintf(stderr, "\n-- runtime metrics --\n%s",
                 runtime::Metrics::global().dump().c_str());
  }
  return all_identical ? 0 : 1;
}

// ---- backend-comparison mode -----------------------------------------------

int run_backend_compare(const std::string& name, bool csv, bool metrics,
                        const std::string& metrics_json,
                        const std::string& bench_json) {
  if (!has_benchmark(name)) {
    std::fprintf(stderr, "unknown circuit '%s' (see bench_atpg --list)\n",
                 name.c_str());
    return 2;
  }
  const Netlist nl = benchmark_circuit(name);

  TargetSetConfig tcfg;
  tcfg.n_p = 4000;
  tcfg.n_p0 = 300;
  const TargetSets ts = build_target_sets(nl, tcfg);
  if (ts.p0.empty()) {
    std::fprintf(stderr, "no target faults on %s\n", name.c_str());
    return 2;
  }

  constexpr std::size_t kTests = 1024;
  Rng rng(24680);
  std::vector<TwoPatternTest> tests(kTests);
  for (auto& t : tests) {
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }
  const int rounds = 5;
  const double work = static_cast<double>(kTests) * ts.p0.size();

  // The production sweep shape (n-detection analysis, ADI ordering,
  // enrichment coverage) re-masks one fixed (tests, faults) batch over and
  // over, so the steady-state number that matters is the prepared-path
  // throughput: the width-independent PI pack + requirement plan built once
  // via BatchSimulator::prepare and amortized across the sweep. Each backend
  // also runs the one-shot path once and must produce the same bytes.

  std::printf("== detection_matrix backend comparison ==\n");
  std::printf("circuit: %s (%zu nodes), faults: %zu, tests: %zu\n",
              name.c_str(), nl.node_count(), ts.p0.size(), kTests);
  std::printf("%8s %6s %12s %10s %12s %18s %10s %10s\n", "backend", "lanes",
              "best ms", "speedup", "vs bitpar", "tests*faults/sec",
              "identical", "zero-alloc");

  struct Row {
    const char* backend;
    std::size_t lanes;
    double ms;
    double throughput;
    bool identical;
    bool zero_alloc;
  };
  std::vector<Row> rows;
  DetectionMatrix reference;
  bool all_identical = true;
  bool all_zero_alloc = true;
  sim::PreparedBatch prep;
  for (sim::SimBackend* backend : sim::all_backends()) {
    const BatchSimulator fsim(nl, backend);
    fsim.prepare(tests, ts.p0, prep);
    const DetectionMatrix one_shot = fsim.detection_matrix(tests, ts.p0);
    DetectionMatrix m = fsim.detection_matrix(tests, ts.p0, prep);  // warm
    auto& grows = runtime::Metrics::global().counter(
        "sim." + std::string(backend->name()) + ".scratch_grows");
    const std::uint64_t grows_before = grows.read();
    const double ms = measure_ms(
        [&] { m = fsim.detection_matrix(tests, ts.p0, prep); }, rounds);
    const bool zero_alloc = grows.read() == grows_before;
    if (rows.empty()) reference = m;
    const bool identical = m == reference && one_shot == reference;
    all_identical = all_identical && identical;
    all_zero_alloc = all_zero_alloc && zero_alloc;
    const double throughput = work / (ms / 1000.0);
    rows.push_back({backend->name(), backend->lanes(), ms, throughput,
                    identical, zero_alloc});
  }
  const Row* bitpar_row = nullptr;
  for (const Row& r : rows) {
    if (std::strcmp(r.backend, "bitpar") == 0) bitpar_row = &r;
  }
  for (const Row& r : rows) {
    std::printf("%8s %6zu %12.3f %9.2fx %11.2fx %18.3e %10s %10s\n", r.backend,
                r.lanes, r.ms, rows.front().ms / r.ms,
                bitpar_row != nullptr ? bitpar_row->ms / r.ms : 0.0,
                r.throughput, r.identical ? "yes" : "NO",
                r.zero_alloc ? "yes" : "NO");
  }

  const double bitpar_speedup =
      bitpar_row != nullptr ? rows.front().ms / bitpar_row->ms : 0.0;
  std::printf("bitpar over scalar: %.2fx (gate: >= 5x)\n", bitpar_speedup);
  // Per-width speedups over bitpar — the wide backends' acceptance targets.
  // Only gate the widths this host registered; clean degradation elsewhere.
  bool wide_targets_met = true;
  for (const Row& r : rows) {
    double target = 0.0;
    if (std::strcmp(r.backend, "avx2") == 0) target = 2.0;
    if (std::strcmp(r.backend, "avx512") == 0) target = 3.5;
    if (target == 0.0 || bitpar_row == nullptr) continue;
    const double over_bitpar = bitpar_row->ms / r.ms;
    const bool met = over_bitpar >= target;
    wide_targets_met = wide_targets_met && met;
    std::printf("%s over bitpar: %.2fx (gate: >= %.1fx) %s\n", r.backend,
                over_bitpar, target, met ? "" : "FAIL");
  }

  if (csv) {
    std::printf(
        "\ncsv:\nbackend,lanes,ms,speedup,vs_bitpar,throughput,identical,"
        "zero_alloc\n");
    for (const Row& r : rows) {
      std::printf("%s,%zu,%.4f,%.3f,%.3f,%.3e,%d,%d\n", r.backend, r.lanes,
                  r.ms, rows.front().ms / r.ms,
                  bitpar_row != nullptr ? bitpar_row->ms / r.ms : 0.0,
                  r.throughput, r.identical ? 1 : 0, r.zero_alloc ? 1 : 0);
    }
  }
  if (metrics) {
    std::fprintf(stderr, "\n-- runtime metrics --\n%s",
                 runtime::Metrics::global().dump().c_str());
  }
  if (!metrics_json.empty()) {
    for (const Row& r : rows) {
      runtime::Metrics::global()
          .counter("bench.backends." + std::string(r.backend) +
                   ".tests_x_faults_per_sec")
          .add(static_cast<std::uint64_t>(r.throughput));
    }
    obs::RunInfo info;
    info.bench = "micro_engines.backends";
    info.n_p = tcfg.n_p;
    info.n_p0 = tcfg.n_p0;
    info.threads = runtime::global_threads();
    info.backend = sim::selected_backend().name();
    for (const Row& r : rows) {
      info.circuits.emplace_back(std::string(name) + ":" + r.backend,
                                 r.ms / 1000.0);
    }
    if (!obs::write_run_manifest(metrics_json, info)) {
      std::fprintf(stderr, "warning: could not write manifest to %s\n",
                   metrics_json.c_str());
    }
  }
  if (!bench_json.empty()) {
    // Normalized pdf.bench_record/1 records (same shape bench/common.hpp
    // emits), consumed by tools/pdf_bench_diff. FILE keeps the bit-parallel
    // record (the long-standing perf trajectory this mode gates) and
    // FILE.<backend> adds one record per registered backend, so CI can diff
    // each width against its own baseline — or against a synthesized one to
    // gate wide-over-bitpar throughput ratios.
    const auto write_record = [&](const std::string& path, const Row& r) {
      obs::Json doc;
      doc["schema"] = "pdf.bench_record/1";
      doc["bench"] = "micro_engines.backends";
      doc["circuit"] = name;
      doc["backend"] = r.backend;
      doc["threads"] = static_cast<std::int64_t>(runtime::global_threads());
      doc["wall_ns"] = static_cast<std::uint64_t>(r.ms * 1e6);
      doc["throughput_counter"] = "sim.tests_x_faults_per_sec";
      doc["throughput_value"] = static_cast<std::uint64_t>(work);
      doc["throughput_per_sec"] = r.throughput;
      doc["cache_hit_rate"] = 0.0;  // backend sweeps never touch the store
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      if (f) f << doc.dump() << "\n";
      if (!f) {
        std::fprintf(stderr, "warning: could not write bench record to %s\n",
                     path.c_str());
      }
    };
    if (bitpar_row != nullptr) write_record(bench_json, *bitpar_row);
    for (const Row& r : rows) {
      write_record(bench_json + "." + r.backend, r);
    }
  }
  return all_identical && all_zero_alloc && bitpar_speedup >= 5.0 &&
                 wide_targets_met
             ? 0
             : 1;
}

// ---- cold-vs-warm store mode -----------------------------------------------

struct StoreCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  static StoreCounters read() {
    auto& m = runtime::Metrics::global();
    return {m.counter("store.hits").read(), m.counter("store.misses").read(),
            m.counter("store.bytes_read").read(),
            m.counter("store.bytes_written").read()};
  }
};

int run_store_mode(const std::string& name, const std::string& dir, bool csv,
                   bool metrics) {
  if (!has_benchmark(name)) {
    std::fprintf(stderr, "unknown circuit '%s' (see bench_atpg --list)\n",
                 name.c_str());
    return 2;
  }
  const Netlist nl = benchmark_circuit(name);
  TargetSetConfig tcfg;
  tcfg.n_p = 4000;
  tcfg.n_p0 = 300;
  GeneratorConfig g;
  g.heuristic = CompactionHeuristic::Value;
  g.seed = 1;

  // Fresh root so the first pass is genuinely cold.
  std::filesystem::remove_all(dir);
  store::StageCache cache{dir};

  using clock = std::chrono::steady_clock;
  struct PassResult {
    GenerationResult enriched;
    UnionCoverage coverage;
    DetectionMatrix matrix;
    double ms = 0;
    StoreCounters counters;
  };
  const auto run_pass = [&]() {
    runtime::Metrics::global().reset();
    const auto t0 = clock::now();
    PassResult r;
    const EnrichmentWorkbench wb(nl, tcfg, &cache);
    r.enriched = wb.run_enriched(g);
    r.coverage = wb.coverage_of(r.enriched);
    const BatchSimulator fsim(nl);
    r.matrix = store::cached_detection_matrix(&cache, fsim, nl,
                                              r.enriched.tests,
                                              wb.targets().p0);
    r.ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    r.counters = StoreCounters::read();
    return r;
  };

  const PassResult cold = run_pass();
  const PassResult warm = run_pass();

  const bool identical =
      cold.enriched.tests.size() == warm.enriched.tests.size() &&
      std::equal(cold.enriched.tests.begin(), cold.enriched.tests.end(),
                 warm.enriched.tests.begin(),
                 [](const TwoPatternTest& a, const TwoPatternTest& b) {
                   return a.pi_values == b.pi_values;
                 }) &&
      cold.coverage.p0_detected == warm.coverage.p0_detected &&
      cold.coverage.p1_detected == warm.coverage.p1_detected &&
      cold.matrix == warm.matrix;

  std::printf("== artifact-store cold vs warm pipeline ==\n");
  std::printf("circuit: %s (%zu nodes), store root: %s\n", name.c_str(),
              nl.node_count(), dir.c_str());
  std::printf("pipeline: target sets -> enriched ATPG -> coverage -> "
              "detection matrix\n");
  std::printf("%8s %12s %10s %8s %8s %14s\n", "pass", "wall ms", "speedup",
              "hits", "misses", "bytes");
  std::printf("%8s %12.3f %10s %8llu %8llu %14llu\n", "cold", cold.ms, "1.00x",
              static_cast<unsigned long long>(cold.counters.hits),
              static_cast<unsigned long long>(cold.counters.misses),
              static_cast<unsigned long long>(cold.counters.bytes_written));
  std::printf("%8s %12.3f %9.2fx %8llu %8llu %14llu\n", "warm", warm.ms,
              cold.ms / warm.ms,
              static_cast<unsigned long long>(warm.counters.hits),
              static_cast<unsigned long long>(warm.counters.misses),
              static_cast<unsigned long long>(warm.counters.bytes_read));
  std::printf("results identical: %s; warm misses: %llu\n",
              identical ? "yes" : "NO",
              static_cast<unsigned long long>(warm.counters.misses));
  if (csv) {
    std::printf("\ncsv:\npass,ms,hits,misses,identical\n");
    std::printf("cold,%.4f,%llu,%llu,%d\nwarm,%.4f,%llu,%llu,%d\n", cold.ms,
                static_cast<unsigned long long>(cold.counters.hits),
                static_cast<unsigned long long>(cold.counters.misses),
                identical ? 1 : 0, warm.ms,
                static_cast<unsigned long long>(warm.counters.hits),
                static_cast<unsigned long long>(warm.counters.misses),
                identical ? 1 : 0);
  }
  if (metrics) {
    std::fprintf(stderr, "\n-- runtime metrics --\n%s",
                 runtime::Metrics::global().dump().c_str());
  }
  return identical && warm.counters.misses == 0 ? 0 : 1;
}

// ---- tracing-overhead mode -------------------------------------------------

int run_obs_mode(const std::string& name, bool csv) {
  if (!has_benchmark(name)) {
    std::fprintf(stderr, "unknown circuit '%s' (see bench_atpg --list)\n",
                 name.c_str());
    return 2;
  }
  const Netlist nl = benchmark_circuit(name);
  const CompiledCircuit cc(nl);
  SimScratch scratch;

  constexpr std::size_t kTests = 64;
  Rng rng(12345);
  std::vector<std::vector<Triple>> tests(kTests);
  for (auto& pis : tests) {
    pis.resize(nl.inputs().size());
    for (auto& t : pis) {
      t = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }

  const int repeats =
      static_cast<int>(std::max<std::size_t>(1, 2'000'000 / nl.node_count()));
  const int rounds = 9;

  // Bare loop: no span marker at all.
  const double base_ms = measure_ms(
      [&] {
        for (int r = 0; r < repeats; ++r) {
          benchmark::DoNotOptimize(simulate(cc, tests[r % kTests], scratch));
        }
      },
      rounds);

  // Span marker present, tracing disabled: one relaxed load per iteration —
  // the cost every table run pays for instrumented engines without --trace.
  const double disabled_ms = measure_ms(
      [&] {
        for (int r = 0; r < repeats; ++r) {
          PDF_TRACE_SPAN("obs.robust_sim");
          benchmark::DoNotOptimize(simulate(cc, tests[r % kTests], scratch));
        }
      },
      rounds);

  // Log statement present, logging off: the PDF_LOG macro mirrors the
  // PDF_TRACE_SPAN cost contract — one relaxed load per iteration when the
  // level gate fails, no formatting, no allocation.
  obs::set_log_level(obs::LogLevel::Off);
  const double log_off_ms = measure_ms(
      [&] {
        for (int r = 0; r < repeats; ++r) {
          PDF_LOG(Debug, "obs.robust_sim").num("r", std::int64_t{r});
          benchmark::DoNotOptimize(simulate(cc, tests[r % kTests], scratch));
        }
      },
      rounds);

  // Span marker present, tracing enabled: two clock reads plus a ring write.
  obs::TraceSession session;
  if (!session.start(std::size_t{1} << 20)) {
    std::fprintf(stderr, "could not start trace session\n");
    return 2;
  }
  const double enabled_ms = measure_ms(
      [&] {
        for (int r = 0; r < repeats; ++r) {
          PDF_TRACE_SPAN("obs.robust_sim");
          benchmark::DoNotOptimize(simulate(cc, tests[r % kTests], scratch));
        }
      },
      rounds);
  session.stop();
  const std::uint64_t events = session.events().size();
  const std::uint64_t dropped = session.dropped();

  const double disabled_pct = (disabled_ms / base_ms - 1.0) * 100.0;
  const double log_off_pct = (log_off_ms / base_ms - 1.0) * 100.0;
  const double enabled_pct = (enabled_ms / base_ms - 1.0) * 100.0;
  std::printf("== instrumentation overhead on robust simulation ==\n");
  std::printf("circuit: %s (%zu nodes), repeats per round: %d, best of %d\n",
              name.c_str(), nl.node_count(), repeats, rounds);
  std::printf("bare loop:          %10.3f ms\n", base_ms);
  std::printf("span, tracing off:  %10.3f ms (%+.2f%%)\n", disabled_ms,
              disabled_pct);
  std::printf("log, logging off:   %10.3f ms (%+.2f%%)\n", log_off_ms,
              log_off_pct);
  std::printf("span, tracing on:   %10.3f ms (%+.2f%%)\n", enabled_ms,
              enabled_pct);
  std::printf("events recorded: %llu, dropped: %llu\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(dropped));
  if (csv) {
    std::printf(
        "\ncsv:\ncircuit,base_ms,disabled_ms,log_off_ms,enabled_ms,"
        "disabled_pct,log_off_pct,enabled_pct,events,dropped\n");
    std::printf("%s,%.4f,%.4f,%.4f,%.4f,%.3f,%.3f,%.3f,%llu,%llu\n",
                name.c_str(), base_ms, disabled_ms, log_off_ms, enabled_ms,
                disabled_pct, log_off_pct, enabled_pct,
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(dropped));
  }
  // The acceptance budget for either disabled path (tracing, logging) is
  // 2%; gate CI at a much looser bound so scheduler noise on loaded runners
  // can't flake the job while a real regression (a lock, clock read, or
  // formatting on a disabled path, typically >> 25%) still fails it.
  if (disabled_pct > 25.0) {
    std::fprintf(stderr, "FAIL: disabled-tracing overhead %.2f%% > 25%%\n",
                 disabled_pct);
    return 1;
  }
  if (log_off_pct > 25.0) {
    std::fprintf(stderr, "FAIL: disabled-logging overhead %.2f%% > 25%%\n",
                 log_off_pct);
    return 1;
  }
  return 0;
}

// `micro_engines serve`: in-process serve::Server throughput. A mixed
// hot/cold job stream (half the jobs share one seed and become StageCache
// hits after the first completion) is pushed through 4 worker shards; every
// response's deterministic result object is verified byte-identical to a
// direct single-shot run_job of the same request, and the run reports
// throughput plus the serve-side queue/latency distribution.
int run_serve_mode(const std::string& name, const std::string& dir, bool csv,
                   bool metrics) {
  const Netlist nl = benchmark_circuit(name);
  std::filesystem::remove_all(dir);

  serve::ServerConfig cfg;
  cfg.concurrency = 4;
  cfg.queue_depth = 64;
  cfg.store_dir = dir;
  cfg.backend = sim::selected_backend().name();

  constexpr int kJobs = 32;
  const auto make_job = [&](int j) {
    serve::Request req;
    req.id = j + 1;
    req.kind = serve::RequestKind::Enrich;
    req.circuit = name;
    req.target.n_p = 300;
    req.target.n_p0 = 40;
    req.gen.seed = j % 2 == 0 ? 1 : static_cast<std::uint64_t>(100 + j);
    return req;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::vector<serve::Response> responses;
  const auto t0 = std::chrono::steady_clock::now();
  {
    serve::Server server(cfg);
    for (int j = 0; j < kJobs; ++j) {
      server.submit(make_job(j), [&](serve::Response r) {
        std::lock_guard<std::mutex> lk(mu);
        responses.push_back(std::move(r));
        cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return responses.size() == kJobs; });
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t hits = 0, misses = 0;
  std::vector<double> latency_ms;
  const serve::JobContext uncached{nullptr, cfg.backend, "", ""};
  std::map<std::uint64_t, std::string> expected;  // seed -> result bytes
  bool ok = true;
  for (const auto& resp : responses) {
    if (resp.status != serve::Status::Ok) {
      std::fprintf(stderr, "FAIL: job %lld: %s\n",
                   static_cast<long long>(resp.id),
                   resp.error.message.c_str());
      ok = false;
      continue;
    }
    hits += resp.cache_hits;
    misses += resp.cache_misses;
    latency_ms.push_back(static_cast<double>(resp.queue_ns + resp.run_ns) /
                         1e6);
    const serve::Request ref = make_job(static_cast<int>(resp.id - 1));
    auto it = expected.find(ref.gen.seed);
    if (it == expected.end()) {
      it = expected
               .emplace(ref.gen.seed,
                        serve::run_job(ref, uncached).result.dump())
               .first;
    }
    if (resp.result.dump() != it->second) {
      std::fprintf(stderr, "FAIL: job %lld result differs from single-shot\n",
                   static_cast<long long>(resp.id));
      ok = false;
    }
  }
  std::sort(latency_ms.begin(), latency_ms.end());
  const auto pct = [&](double q) {
    if (latency_ms.empty()) return 0.0;
    return latency_ms[static_cast<std::size_t>(
        q * static_cast<double>(latency_ms.size() - 1))];
  };

  std::printf("== in-process serve throughput ==\n");
  std::printf("circuit: %s, jobs: %d (hot/cold mix), workers: %zu\n",
              name.c_str(), kJobs, cfg.concurrency);
  std::printf("wall: %.3f s, throughput: %.1f jobs/s\n", secs,
              secs > 0 ? kJobs / secs : 0.0);
  std::printf("latency_ms: p50 %.2f p99 %.2f\n", pct(0.50), pct(0.99));
  std::printf("stage-cache: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
  std::printf("single-shot equivalence: %s\n", ok ? "ok" : "MISMATCH");
  if (csv) {
    std::printf("\ncsv:\ncircuit,jobs,wall_s,jobs_per_s,p50_ms,p99_ms,hits,"
                "misses,ok\n");
    std::printf("%s,%d,%.4f,%.1f,%.3f,%.3f,%llu,%llu,%d\n", name.c_str(),
                kJobs, secs, secs > 0 ? kJobs / secs : 0.0, pct(0.50),
                pct(0.99), static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses), ok ? 1 : 0);
  }
  if (metrics) {
    std::fprintf(stderr, "%s", runtime::Metrics::global().dump().c_str());
  }
  std::filesystem::remove_all(dir);
  // The warm half of the stream must actually have hit the cache.
  if (hits == 0) {
    std::fprintf(stderr, "FAIL: hot jobs produced no stage-cache hits\n");
    return 1;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool compare = false;
  bool thread_scaling = false;
  bool store_mode = false;
  bool obs_mode = false;
  bool backend_mode = false;
  bool serve_mode = false;
  bool csv = false;
  bool metrics = false;
  std::string circuit_name = "s13207_like";
  std::string store_dir = ".artifact-store.micro";
  std::string metrics_json;
  std::string bench_json;
  for (int i = 1; i < argc; ++i) {
    const bool any_mode = compare || thread_scaling || store_mode ||
                          obs_mode || backend_mode || serve_mode;
    if (std::strcmp(argv[i], "compiled-vs-legacy") == 0) {
      compare = true;
    } else if (std::strcmp(argv[i], "threads") == 0 && !any_mode) {
      thread_scaling = true;
    } else if (std::strcmp(argv[i], "store") == 0 && !any_mode) {
      store_mode = true;
      circuit_name = "s1196_like";  // mid-size default: cold pass in seconds
    } else if (std::strcmp(argv[i], "obs") == 0 && !any_mode) {
      obs_mode = true;
    } else if (std::strcmp(argv[i], "backends") == 0 && !any_mode) {
      backend_mode = true;
      circuit_name = "s1196_like";  // the acceptance circuit for the 5x gate
    } else if (std::strcmp(argv[i], "serve") == 0 && !any_mode) {
      serve_mode = true;
      circuit_name = "s27";  // per-job cost small: throughput, not ATPG time
      store_dir = ".artifact-store.serve";
    } else if (any_mode && std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if ((thread_scaling || store_mode || backend_mode || serve_mode) &&
               std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (backend_mode && std::strcmp(argv[i], "--metrics-json") == 0 &&
               i + 1 < argc) {
      metrics_json = argv[++i];
    } else if (backend_mode && std::strcmp(argv[i], "--bench-json") == 0 &&
               i + 1 < argc) {
      bench_json = argv[++i];
    } else if (thread_scaling && std::strcmp(argv[i], "--backend") == 0 &&
               i + 1 < argc) {
      try {
        sim::select_backend(argv[++i]);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if ((store_mode || serve_mode) && std::strcmp(argv[i], "--dir") == 0 &&
               i + 1 < argc) {
      store_dir = argv[++i];
    } else if (any_mode && std::strcmp(argv[i], "--circuit") == 0 &&
               i + 1 < argc) {
      circuit_name = argv[++i];
    }
  }
  if (compare) return run_compiled_vs_legacy(circuit_name, csv);
  if (thread_scaling) return run_thread_scaling(circuit_name, csv, metrics);
  if (store_mode) return run_store_mode(circuit_name, store_dir, csv, metrics);
  if (obs_mode) return run_obs_mode(circuit_name, csv);
  if (backend_mode) {
    return run_backend_compare(circuit_name, csv, metrics, metrics_json,
                               bench_json);
  }
  if (serve_mode) return run_serve_mode(circuit_name, store_dir, csv, metrics);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
