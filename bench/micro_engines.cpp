// Microbenchmarks of the hot engines (google-benchmark): full triple
// simulation, event-driven PI probing, implication closure, justification,
// and batched fault simulation.
#include <benchmark/benchmark.h>

#include "atpg/justify.hpp"
#include "enrich/target_sets.hpp"
#include "faultsim/fault_sim.hpp"
#include "faultsim/parallel_sim.hpp"
#include "gen/registry.hpp"
#include "sim/event_sim.hpp"
#include "sim/triple_sim.hpp"

namespace {

using namespace pdf;

const Netlist& circuit() {
  static const Netlist nl = benchmark_circuit("s1196_like");
  return nl;
}

const TargetSets& targets() {
  static const TargetSets ts = [] {
    TargetSetConfig cfg;
    cfg.n_p = 2000;
    cfg.n_p0 = 200;
    return build_target_sets(circuit(), cfg);
  }();
  return ts;
}

void BM_FullTripleSim(benchmark::State& state) {
  const Netlist& nl = circuit();
  Rng rng(1);
  std::vector<Triple> pis(nl.inputs().size());
  for (auto& t : pis) {
    t = pi_triple(rng.coin() ? V3::One : V3::Zero,
                  rng.coin() ? V3::One : V3::Zero);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(nl, pis));
  }
  state.SetItemsProcessed(state.iterations() * nl.node_count());
}
BENCHMARK(BM_FullTripleSim);

void BM_EventSimProbe(benchmark::State& state) {
  const Netlist& nl = circuit();
  EventSim sim(nl);
  Rng rng(2);
  // Half-specified baseline.
  for (std::size_t i = 0; i < nl.inputs().size(); i += 2) {
    sim.set_pi(i, rng.coin() ? kSteady1 : kSteady0);
  }
  std::size_t i = 1;
  for (auto _ : state) {
    const std::size_t token = sim.begin_txn();
    sim.set_pi(i % nl.inputs().size(), rng.coin() ? kRise : kFall);
    benchmark::DoNotOptimize(sim.violations());
    sim.rollback(token);
    i += 2;
  }
}
BENCHMARK(BM_EventSimProbe);

void BM_Implication(benchmark::State& state) {
  const Netlist& nl = circuit();
  ImplicationEngine eng(nl);
  const auto& tf = targets().p0.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.imply(tf.requirements));
  }
}
BENCHMARK(BM_Implication);

void BM_Justify(benchmark::State& state) {
  const Netlist& nl = circuit();
  JustificationEngine eng(nl, 3);
  const auto& faults = targets().p0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.justify(faults[i % faults.size()].requirements));
    ++i;
  }
}
BENCHMARK(BM_Justify);

void BM_FaultSimBatch(benchmark::State& state) {
  const Netlist& nl = circuit();
  FaultSimulator fsim(nl);
  Rng rng(4);
  TwoPatternTest t;
  t.pi_values.resize(nl.inputs().size());
  for (auto& v : t.pi_values) {
    v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                  rng.coin() ? V3::One : V3::Zero);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detects(t, targets().p0));
  }
  state.SetItemsProcessed(state.iterations() * targets().p0.size());
}
BENCHMARK(BM_FaultSimBatch);

void BM_FaultSimParallel64(benchmark::State& state) {
  const Netlist& nl = circuit();
  ParallelFaultSimulator fsim(nl);
  Rng rng(5);
  std::vector<TwoPatternTest> tests(64);
  for (auto& t : tests) {
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detects_any(tests, targets().p0));
  }
  state.SetItemsProcessed(state.iterations() * targets().p0.size() * 64);
}
BENCHMARK(BM_FaultSimParallel64);

void BM_FaultSimScalar64(benchmark::State& state) {
  const Netlist& nl = circuit();
  FaultSimulator fsim(nl);
  Rng rng(5);
  std::vector<TwoPatternTest> tests(64);
  for (auto& t : tests) {
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detects_any(tests, targets().p0));
  }
  state.SetItemsProcessed(state.iterations() * targets().p0.size() * 64);
}
BENCHMARK(BM_FaultSimScalar64);

}  // namespace

BENCHMARK_MAIN();
