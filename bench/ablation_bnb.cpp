// Ablation (paper remark): greedy simulation-based justification vs the
// complete branch-and-bound search. The paper attributes its per-heuristic
// variations to random value selection and notes branch-and-bound would
// eliminate them. This sweep measures what that costs and buys: per-fault
// justification success rates, proven-undetectable counts, and end-to-end
// generation results that are bit-identical across repeats.
#include <cstdio>

#include "atpg/bnb_justify.hpp"
#include "atpg/justify.hpp"
#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"b03_like", "s953_like"});
  print_header("Ablation: greedy vs branch-and-bound justification", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());
    const TargetSets& ts = wb.targets();
    if (ts.p0.empty()) continue;

    // Per-fault justification comparison over P0.
    JustificationEngine greedy(nl, o.seed);
    BnbJustifier bnb(nl);
    std::size_t g_ok = 0, b_sat = 0, b_unsat = 0, b_abort = 0;
    for (const auto& tf : ts.p0) {
      if (greedy.justify(tf.requirements).has_value()) ++g_ok;
      switch (bnb.justify(tf.requirements).status) {
        case BnbStatus::Satisfiable: ++b_sat; break;
        case BnbStatus::Unsatisfiable: ++b_unsat; break;
        case BnbStatus::Aborted: ++b_abort; break;
      }
    }

    Table t("circuit " + name + "  (|P0| = " + std::to_string(ts.p0.size()) + ")");
    t.columns({"engine", "justified", "proven untestable", "aborted"});
    t.row("greedy (paper)", g_ok, "-", "-");
    t.row("branch-and-bound", b_sat, b_unsat, b_abort);
    emit(t, o);

    // End-to-end generation under both engines.
    Table e("generation with each engine");
    e.columns({"engine", "tests", "P0 det", "P1 det", "seconds"});
    for (bool use_bnb : {false, true}) {
      GeneratorConfig g;
      g.heuristic = CompactionHeuristic::Value;
      g.seed = o.seed;
      g.use_branch_and_bound = use_bnb;
      const GenerationResult r = wb.run_enriched(g);
      e.row(use_bnb ? "branch-and-bound" : "greedy (paper)", r.tests.size(),
            r.detected_p0_count(), r.detected_p1_count(), r.stats.seconds);
    }
    emit(e, o);
  }
  std::printf(
      "expected shape: branch-and-bound justifies at least as many faults\n"
      "and proves the rest undetectable (aborts aside) at a runtime cost;\n"
      "its generation output is invariant across repeats.\n");
  finish_run(o);
  return 0;
}
