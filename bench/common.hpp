// Shared command-line plumbing for the table-reproduction benches.
//
// Every bench accepts:
//   --paper          paper-scale parameters (N_P=10000, N_P0=1000); slower
//   --np N --np0 N   explicit overrides
//   --seed S         RNG seed (default 1)
//   --circuits a,b   restrict the circuit list
//   --csv            also print CSV after the table
//   --threads N      size the runtime thread pool (default 1;
//                    0 = hardware concurrency)
//   --backend NAME   simulation backend for batched fault simulation
//                    (scalar | bitpar | faultpar, plus avx2/avx512 on hosts
//                    whose CPU supports them; default = the widest
//                    registered test-parallel backend — all backends emit
//                    bit-identical results, see DESIGN.md §11)
//   --metrics        dump the runtime metrics registry to stderr at exit
//   --metrics-json F write a machine-readable run manifest (JSON) to F
//   --bench-json F   write a normalized pdf.bench_record/1 perf record to F
//                    (bench, circuits, backend, threads, wall_ns, key
//                    throughput counter, cache hit rate) — the input format
//                    of tools/pdf_bench_diff for regression gating
//   --trace F        record a span trace and write Chrome-trace JSON to F
//                    (open in Perfetto / chrome://tracing)
//   --store DIR      artifact-store root for stage memoization
//                    (default .artifact-store/; warm reruns skip
//                    enumeration/ATPG/simulation and reproduce the cold
//                    outputs bit-identically — see DESIGN.md §8)
//   --no-store       disable the artifact store (every stage recomputes)
// Defaults are the scaled parameters recorded in EXPERIMENTS.md
// (N_P=4000, N_P0=300), chosen so the full table reproduces in seconds.
//
// Observability flags never touch stdout: traces and manifests go to their
// files, diagnostics to stderr, so table output stays bit-identical with
// and without them (DESIGN.md §9).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/backend.hpp"
#include "store/stage_cache.hpp"

namespace pdf::bench {

struct Options {
  std::size_t n_p = 4000;
  std::size_t n_p0 = 300;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  std::string backend;  // resolved to sim::selected_backend().name() in
                        // parse_options; --backend overrides the selection
  bool csv = false;
  bool paper = false;
  bool metrics = false;
  bool use_store = true;
  std::string store_dir = ".artifact-store";
  std::string trace_file;
  std::string metrics_json_file;
  std::string bench_json_file;
  std::string bench_name;  // basename of argv[0]
  std::vector<std::string> circuits;
  std::shared_ptr<store::StageCache> stage_cache;
  std::shared_ptr<obs::TraceSession> trace_session;
  /// (circuit, wall seconds) filled by CircuitScope, in run order.
  std::shared_ptr<std::vector<std::pair<std::string, double>>> circuit_seconds =
      std::make_shared<std::vector<std::pair<std::string, double>>>();

  /// The stage cache to thread through the pipeline: null when --no-store.
  store::StageCache* cache() const { return stage_cache.get(); }
};

/// Prints the runtime metrics registry to stderr when --metrics was given.
inline void dump_metrics(const Options& o) {
  if (!o.metrics) return;
  std::fprintf(stderr, "\n-- runtime metrics --\n%s",
               runtime::Metrics::global().dump().c_str());
}

/// Times one circuit of a bench run for the manifest and marks it as a
/// top-level trace span ("bench.<circuit>"). Instantiate inside the
/// per-circuit loop of a driver.
class CircuitScope {
 public:
  CircuitScope(const Options& o, const std::string& circuit)
      : seconds_(o.circuit_seconds.get()),
        circuit_(circuit),
        start_(std::chrono::steady_clock::now()) {
    if (obs::trace_active() && o.trace_session) {
      span_name_ = o.trace_session->intern("bench." + circuit);
      span_begin_ns_ = obs::trace_now_ns();
    }
  }
  ~CircuitScope() {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (seconds_ != nullptr) seconds_->emplace_back(circuit_, secs);
    if (span_name_ != nullptr) {
      if (obs::TraceSession* s = obs::active_session()) {
        s->record(span_name_, span_begin_ns_, obs::trace_now_ns());
      }
    }
  }
  CircuitScope(const CircuitScope&) = delete;
  CircuitScope& operator=(const CircuitScope&) = delete;

 private:
  std::vector<std::pair<std::string, double>>* seconds_;
  std::string circuit_;
  std::chrono::steady_clock::time_point start_;
  const char* span_name_ = nullptr;
  std::uint64_t span_begin_ns_ = 0;
};

/// The normalized perf record behind --bench-json: one flat JSON object per
/// run, schema pdf.bench_record/1, consumed by tools/pdf_bench_diff. Wall
/// time is the sum of the per-circuit times (CircuitScope), the throughput
/// counter is tests generated per second, and the cache hit rate comes from
/// the store.{hits,misses} counters (0 when the store is off or untouched).
inline obs::Json bench_record_json(const Options& o) {
  auto& m = runtime::Metrics::global();
  double wall_s = 0.0;
  std::string circuits;
  for (const auto& [name, secs] : *o.circuit_seconds) {
    wall_s += secs;
    if (!circuits.empty()) circuits += ',';
    circuits += name;
  }
  const std::uint64_t tests = m.counter("atpg.tests_generated").read();
  const std::uint64_t hits = m.counter("store.hits").read();
  const std::uint64_t misses = m.counter("store.misses").read();

  obs::Json doc;
  doc["schema"] = "pdf.bench_record/1";
  doc["bench"] = o.bench_name;
  doc["circuit"] = circuits;
  doc["backend"] = o.backend;
  doc["threads"] = static_cast<std::int64_t>(runtime::global_threads());
  doc["wall_ns"] = static_cast<std::uint64_t>(wall_s * 1e9);
  doc["throughput_counter"] = "atpg.tests_generated";
  doc["throughput_value"] = tests;
  doc["throughput_per_sec"] =
      wall_s > 0.0 ? static_cast<double>(tests) / wall_s : 0.0;
  doc["cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  return doc;
}

/// End-of-run hook: stderr metrics dump, trace export, manifest export.
/// Replaces the old bare dump_metrics(o) call at the end of every driver.
inline void finish_run(const Options& o) {
  dump_metrics(o);
  obs::RunInfo info;
  if (o.trace_session) {
    o.trace_session->stop();
    if (!o.trace_file.empty() &&
        !o.trace_session->write_chrome_json(o.trace_file)) {
      std::fprintf(stderr, "warning: could not write trace to %s\n",
                   o.trace_file.c_str());
    }
    info.trace_events = o.trace_session->events().size();
    info.trace_dropped = o.trace_session->dropped();
  }
  if (!o.bench_json_file.empty()) {
    std::ofstream f(o.bench_json_file,
                    std::ios::binary | std::ios::trunc);
    if (f) f << bench_record_json(o).dump() << "\n";
    if (!f) {
      std::fprintf(stderr, "warning: could not write bench record to %s\n",
                   o.bench_json_file.c_str());
    }
  }
  if (o.metrics_json_file.empty()) return;
  info.bench = o.bench_name;
  info.seed = o.seed;
  info.n_p = o.n_p;
  info.n_p0 = o.n_p0;
  info.threads = runtime::global_threads();
  info.backend = o.backend;
  info.paper = o.paper;
  info.store_enabled = o.use_store;
  info.store_dir = o.use_store ? o.store_dir : "";
  info.circuits = *o.circuit_seconds;
  if (!obs::write_run_manifest(o.metrics_json_file, info)) {
    std::fprintf(stderr, "warning: could not write manifest to %s\n",
                 o.metrics_json_file.c_str());
  }
}

inline Options parse_options(int argc, char** argv,
                             std::vector<std::string> default_circuits) {
  Options o;
  o.circuits = std::move(default_circuits);
  if (argc > 0) {
    std::string prog = argv[0];
    const std::size_t slash = prog.find_last_of("/\\");
    o.bench_name =
        slash == std::string::npos ? prog : prog.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--paper") {
      o.paper = true;
      o.n_p = 10000;
      o.n_p0 = 1000;
    } else if (a == "--np") {
      o.n_p = std::strtoull(next(), nullptr, 10);
    } else if (a == "--np0") {
      o.n_p0 = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      o.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--threads") {
      o.threads = std::strtoull(next(), nullptr, 10);
    } else if (a == "--backend") {
      o.backend = next();
      try {
        sim::select_backend(o.backend);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
      }
    } else if (a == "--metrics") {
      o.metrics = true;
    } else if (a == "--metrics-json") {
      o.metrics_json_file = next();
    } else if (a == "--bench-json") {
      o.bench_json_file = next();
    } else if (a == "--trace") {
      o.trace_file = next();
    } else if (a == "--store") {
      o.store_dir = next();
      o.use_store = true;
    } else if (a == "--no-store") {
      o.use_store = false;
    } else if (a == "--circuits") {
      o.circuits.clear();
      std::string list = next();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name = list.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!name.empty()) o.circuits.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "options: [--paper] [--np N] [--np0 N] [--seed S] [--csv] "
          "[--threads N] [--backend %s] [--metrics] [--metrics-json FILE] "
          "[--bench-json FILE] [--trace FILE] [--store DIR] [--no-store] "
          "[--circuits a,b,c]\n"
          "backend: batched fault simulation engine (default %s); every\n"
          "backend produces bit-identical results at any thread count.\n",
          sim::backend_names().c_str(), sim::selected_backend().name());
      std::printf(
          "store: stages (enumeration, ATPG, fault simulation) are memoized\n"
          "in a content-addressed artifact store (default .artifact-store/);\n"
          "warm runs skip recomputation and emit identical outputs.\n"
          "--no-store recomputes everything; --metrics shows store.* hit/miss\n"
          "counters.\n"
          "observability: --trace records a span trace (Chrome-trace JSON,\n"
          "opens in Perfetto); --metrics-json writes a run manifest with all\n"
          "counters/timers/histograms. Neither changes stdout.\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", a.c_str());
      std::exit(2);
    }
  }
  if (o.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    o.threads = hw == 0 ? 1 : hw;
  }
  // Without --backend, manifests record whatever the capability dispatch
  // actually selected (avx512 > avx2 > bitpar depending on the host).
  if (o.backend.empty()) o.backend = sim::selected_backend().name();
  runtime::set_global_threads(o.threads);
  if (o.use_store) {
    o.stage_cache = std::make_shared<store::StageCache>(o.store_dir);
  }
  if (!o.trace_file.empty()) {
    o.trace_session = std::make_shared<obs::TraceSession>();
    if (!o.trace_session->start()) {
      std::fprintf(stderr,
                   "warning: another trace session is active; --trace off\n");
      o.trace_session.reset();
    }
  }
  return o;
}

inline TargetSetConfig target_config(const Options& o) {
  TargetSetConfig cfg;
  cfg.n_p = o.n_p;
  cfg.n_p0 = o.n_p0;
  return cfg;
}

inline void print_header(const char* what, const Options& o) {
  std::printf("== %s ==\n", what);
  std::printf("parameters: N_P=%zu, N_P0=%zu, seed=%llu%s\n\n", o.n_p, o.n_p0,
              static_cast<unsigned long long>(o.seed),
              o.paper ? " (paper scale)" : " (scaled; see EXPERIMENTS.md)");
}

inline void emit(const Table& t, const Options& o) {
  t.print(std::cout);
  if (o.csv) {
    std::printf("\ncsv:\n%s", t.to_csv().c_str());
  }
  std::printf("\n");
}

}  // namespace pdf::bench
