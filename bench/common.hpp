// Shared command-line plumbing for the table-reproduction benches.
//
// Every bench accepts:
//   --paper          paper-scale parameters (N_P=10000, N_P0=1000); slower
//   --np N --np0 N   explicit overrides
//   --seed S         RNG seed (default 1)
//   --circuits a,b   restrict the circuit list
//   --csv            also print CSV after the table
//   --threads N      size the runtime thread pool (0 = hardware concurrency)
//   --metrics        dump the runtime metrics registry to stderr at exit
//   --store DIR      artifact-store root for stage memoization
//                    (default .artifact-store/; warm reruns skip
//                    enumeration/ATPG/simulation and reproduce the cold
//                    outputs bit-identically — see DESIGN.md §8)
//   --no-store       disable the artifact store (every stage recomputes)
// Defaults are the scaled parameters recorded in EXPERIMENTS.md
// (N_P=4000, N_P0=300), chosen so the full table reproduces in seconds.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "report/table.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "store/stage_cache.hpp"

namespace pdf::bench {

struct Options {
  std::size_t n_p = 4000;
  std::size_t n_p0 = 300;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  bool csv = false;
  bool paper = false;
  bool metrics = false;
  bool use_store = true;
  std::string store_dir = ".artifact-store";
  std::vector<std::string> circuits;
  std::shared_ptr<store::StageCache> stage_cache;

  /// The stage cache to thread through the pipeline: null when --no-store.
  store::StageCache* cache() const { return stage_cache.get(); }
};

/// Prints the runtime metrics registry to stderr when --metrics was given.
/// Call at the end of main, after the tables.
inline void dump_metrics(const Options& o) {
  if (!o.metrics) return;
  std::fprintf(stderr, "\n-- runtime metrics --\n%s",
               runtime::Metrics::global().dump().c_str());
}

inline Options parse_options(int argc, char** argv,
                             std::vector<std::string> default_circuits) {
  Options o;
  o.circuits = std::move(default_circuits);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--paper") {
      o.paper = true;
      o.n_p = 10000;
      o.n_p0 = 1000;
    } else if (a == "--np") {
      o.n_p = std::strtoull(next(), nullptr, 10);
    } else if (a == "--np0") {
      o.n_p0 = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      o.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--threads") {
      o.threads = std::strtoull(next(), nullptr, 10);
    } else if (a == "--metrics") {
      o.metrics = true;
    } else if (a == "--store") {
      o.store_dir = next();
      o.use_store = true;
    } else if (a == "--no-store") {
      o.use_store = false;
    } else if (a == "--circuits") {
      o.circuits.clear();
      std::string list = next();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name = list.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!name.empty()) o.circuits.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "options: [--paper] [--np N] [--np0 N] [--seed S] [--csv] "
          "[--threads N] [--metrics] [--store DIR] [--no-store] "
          "[--circuits a,b,c]\n"
          "store: stages (enumeration, ATPG, fault simulation) are memoized\n"
          "in a content-addressed artifact store (default .artifact-store/);\n"
          "warm runs skip recomputation and emit identical outputs.\n"
          "--no-store recomputes everything; --metrics shows store.* hit/miss\n"
          "counters.\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", a.c_str());
      std::exit(2);
    }
  }
  runtime::set_global_threads(o.threads);
  if (o.use_store) {
    o.stage_cache = std::make_shared<store::StageCache>(o.store_dir);
  }
  return o;
}

inline TargetSetConfig target_config(const Options& o) {
  TargetSetConfig cfg;
  cfg.n_p = o.n_p;
  cfg.n_p0 = o.n_p0;
  return cfg;
}

inline void print_header(const char* what, const Options& o) {
  std::printf("== %s ==\n", what);
  std::printf("parameters: N_P=%zu, N_P0=%zu, seed=%llu%s\n\n", o.n_p, o.n_p0,
              static_cast<unsigned long long>(o.seed),
              o.paper ? " (paper scale)" : " (scaled; see EXPERIMENTS.md)");
}

inline void emit(const Table& t, const Options& o) {
  t.print(std::cout);
  if (o.csv) {
    std::printf("\ncsv:\n%s", t.to_csv().c_str());
  }
  std::printf("\n");
}

}  // namespace pdf::bench
