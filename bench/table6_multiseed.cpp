// Table 6 with statistics: the generation procedure is randomized, so this
// variant repeats the enrichment experiment over several seeds and reports
// mean +/- stddev for the key columns — quantifying the "small variations"
// the paper attributes to random value selection.
#include <cstdio>

#include "bench/common.hpp"
#include "report/stats.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s953_like", "s1423_like", "b04_like"});
  print_header("Table 6 over multiple seeds (mean +/- stddev, 5 seeds)", o);

  Table t("");
  t.columns({"circuit", "tests", "P0 detected", "P0,P1 detected"});
  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());
    if (wb.targets().p0.empty()) continue;

    std::vector<std::uint64_t> seeds;
    for (std::uint64_t seed = o.seed; seed < o.seed + 5; ++seed) {
      seeds.push_back(seed);
    }
    GeneratorConfig g;
    g.heuristic = CompactionHeuristic::Value;
    // All five seeds run concurrently on the runtime pool (--threads N);
    // results come back in seed order, identical to a sequential loop.
    const auto runs = wb.run_enriched_sweep(seeds, g);

    RunningStats tests, p0det, uniondet;
    for (const auto& run : runs) {
      tests.add(static_cast<double>(run.result.tests.size()));
      p0det.add(static_cast<double>(run.coverage.p0_detected));
      uniondet.add(static_cast<double>(run.coverage.union_detected()));
      std::fprintf(stderr, "  %s seed %llu: %zu tests, union %zu\n",
                   name.c_str(), static_cast<unsigned long long>(run.seed),
                   run.result.tests.size(), run.coverage.union_detected());
    }
    char ct[48], cp[48], cu[48];
    std::snprintf(ct, sizeof ct, "%.1f +/- %.1f", tests.mean(), tests.stddev());
    std::snprintf(cp, sizeof cp, "%.1f +/- %.1f", p0det.mean(), p0det.stddev());
    std::snprintf(cu, sizeof cu, "%.1f +/- %.1f", uniondet.mean(),
                  uniondet.stddev());
    t.row(name, ct, cp, cu);
  }
  emit(t, o);
  std::printf(
      "reading: the spread is a few tests / faults — the paper's observation\n"
      "that randomized justification causes only small variations.\n");
  finish_run(o);
  return 0;
}
