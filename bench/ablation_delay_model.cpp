// Ablation (extension): sensitivity of the P0/P1 split to the delay model.
// The paper's motivation for enrichment is that "small errors in the
// computation of the path lengths can result in a path that was placed in P1
// being longer than a path placed in P0". This experiment makes that
// concrete: build P0 under the unit line-counting model, then re-rank the
// paths under perturbed per-gate delays and measure how many of the
// "really critical" paths (top-|P0| under the perturbed model) the unit
// model had relegated to P1 — exactly the faults that only the enrichment
// procedure has a chance of covering for free.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "bench/common.hpp"
#include "paths/path.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s1423_like", "s953_like"});
  print_header("Ablation: delay-model perturbation vs the P0/P1 split", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const TargetSets unit =
        store::cached_target_sets(o.cache(), nl, target_config(o));
    if (unit.p0.empty()) continue;

    Table t("circuit " + name + "  (|P0| = " + std::to_string(unit.p0.size()) +
            ", |P1| = " + std::to_string(unit.p1.size()) + ")");
    t.columns({"perturbation", "misplaced critical faults", "share of |P0|"});

    for (const auto& [label, lo, hi] : {std::tuple<const char*, int, int>{
                                            "none (unit)", 1, 1},
                                        {"mild (1..2)", 1, 2},
                                        {"moderate (1..4)", 1, 4},
                                        {"strong (1..9)", 1, 9}}) {
      const LineDelayModel weighted =
          random_delay_model(nl, lo, hi, o.seed + 17);
      // Re-rank all P faults under the perturbed model.
      struct Item {
        int weighted_len;
        bool was_p0;
      };
      std::vector<Item> items;
      for (const auto& tf : unit.p0) {
        items.push_back({weighted.complete_length(tf.fault.path.nodes), true});
      }
      for (const auto& tf : unit.p1) {
        items.push_back({weighted.complete_length(tf.fault.path.nodes), false});
      }
      std::stable_sort(items.begin(), items.end(),
                       [](const Item& a, const Item& b) {
                         return a.weighted_len > b.weighted_len;
                       });
      std::size_t misplaced = 0;
      for (std::size_t i = 0; i < unit.p0.size() && i < items.size(); ++i) {
        if (!items[i].was_p0) ++misplaced;
      }
      char share[32];
      std::snprintf(share, sizeof share, "%.1f%%",
                    100.0 * static_cast<double>(misplaced) /
                        static_cast<double>(unit.p0.size()));
      t.row(label, misplaced, share);
    }
    emit(t, o);
  }
  std::printf(
      "reading: under delay perturbation a sizable share of the truly\n"
      "critical faults live in P1 — the paper's motivation for detecting P1\n"
      "faults without extra tests.\n");
  finish_run(o);
  return 0;
}
