// Table 7 reproduction: run-time ratio RT_enrich / RT_basic under the
// value-based heuristic, both runs on the same machine. The paper reports
// ratios close to 1 (0.94 .. 2.51): enrichment costs little extra time
// because P1 candidates are only offered once P0 is exhausted for a test.
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, table_circuits());
  print_header("Table 7: run time ratios RT_enrich / RT_basic", o);

  Table t("Table 7 (paper range: 0.94 .. 2.51)");
  t.columns({"circuit", "i0", "basic s", "enrich s", "ratio"});

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());

    GeneratorConfig g;
    g.heuristic = CompactionHeuristic::Value;
    g.seed = o.seed;

    const GenerationResult basic = wb.run_basic(g);
    const GenerationResult enriched = wb.run_enriched(g);
    const double ratio =
        basic.stats.seconds > 0 ? enriched.stats.seconds / basic.stats.seconds
                                : 0.0;
    t.row(name, wb.targets().i0, basic.stats.seconds, enriched.stats.seconds,
          ratio);
  }

  emit(t, o);
  finish_run(o);
  return 0;
}
