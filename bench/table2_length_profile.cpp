// Table 2 reproduction: L_i and N_p(L_i) for the 20 highest path lengths of
// the s1423 stand-in (the deepest circuit of the suite), computed over the
// screened fault set P exactly as the paper uses it to select i0. The
// absolute lengths differ from the paper's s1423 (synthetic substitute); the
// shape to compare is a tiny top bucket growing smoothly, with the cutoff
// N_p(L_i0) >= N_P0 landing a couple dozen lengths down.
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s1423_like"});
  print_header("Table 2: numbers of faults by path length", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const TargetSets ts =
        store::cached_target_sets(o.cache(), nl, target_config(o));

    Table t("circuit " + name + "  (paper counterpart: s1423)");
    t.columns({"i", "L_i", "n_p(L_i)", "N_p(L_i)"});
    const auto& buckets = ts.profile.buckets();
    for (std::size_t i = 0; i < buckets.size() && i < 20; ++i) {
      t.row(i, buckets[i].length, buckets[i].count, buckets[i].cumulative);
    }
    emit(t, o);
    std::printf(
        "selected i0 = %zu (cutoff length L_i0 = %d), |P0| = %zu, |P1| = %zu\n"
        "paper (s1423, N_P0=1000): i0 = 17, L_17 = 79, |P0| = 1116\n\n",
        ts.i0, ts.cutoff_length, ts.p0.size(), ts.p1.size());
  }
  finish_run(o);
  return 0;
}
