// Tables 3 and 4 reproduction: basic test generation targeting P0 only,
// comparing the compaction heuristics of Section 2.2 — uncomp (no
// secondaries), arbit (fault-list order), length (longest first) and values
// (minimum new required values).
//
// Shape to reproduce: all heuristics detect nearly the same number of P0
// faults (Table 3), while every compaction heuristic needs far fewer tests
// than the uncompacted baseline, with small mutual differences (Table 4).
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, table_circuits());
  print_header("Tables 3 & 4: basic test generation using P0", o);

  static constexpr CompactionHeuristic kHeuristics[] = {
      CompactionHeuristic::None, CompactionHeuristic::Arbitrary,
      CompactionHeuristic::Length, CompactionHeuristic::Value};

  Table detected("Table 3: detected P0 faults per heuristic");
  detected.columns({"circuit", "i0", "P0 flts", "uncomp", "arbit", "length",
                    "values"});
  Table tests("Table 4: number of tests per heuristic");
  tests.columns({"circuit", "i0", "uncomp", "arbit", "length", "values"});

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());
    const TargetSets& ts = wb.targets();

    std::size_t det[4] = {0, 0, 0, 0};
    std::size_t ntests[4] = {0, 0, 0, 0};
    for (int h = 0; h < 4; ++h) {
      GeneratorConfig g;
      g.heuristic = kHeuristics[h];
      g.seed = o.seed;
      const GenerationResult r = wb.run_basic(g);
      det[h] = r.detected_p0_count();
      ntests[h] = r.tests.size();
      std::fprintf(stderr, "  %s/%s: %zu tests, %zu detected (%.2fs)\n",
                   name.c_str(), heuristic_name(kHeuristics[h]), ntests[h],
                   det[h], r.stats.seconds);
    }
    detected.row(name, ts.i0, ts.p0.size(), det[0], det[1], det[2], det[3]);
    tests.row(name, ts.i0, ntests[0], ntests[1], ntests[2], ntests[3]);
  }

  emit(detected, o);
  emit(tests, o);
  std::printf(
      "paper shape check: per circuit, the four detected-fault counts differ\n"
      "only by random-decision noise, and each compaction column of Table 4\n"
      "is well below the uncomp column (paper examples: s641 471 -> ~130,\n"
      "b03 299 -> ~90).\n");
  finish_run(o);
  return 0;
}
