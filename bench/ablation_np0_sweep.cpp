// Ablation: sensitivity of the P0/P1 split to N_P0 (the paper fixes
// N_P0=1000 and notes it "can be determined based on the circuit and the
// test generation effort"). Sweeping N_P0 shows the trade: a larger P0
// means more must-detect faults and more tests; a smaller P0 pushes more
// faults into the free-detection set P1.
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s1423_like"});
  print_header("Ablation: N_P0 sweep", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    Table t("circuit " + name);
    t.columns({"N_P0", "i0", "|P0|", "|P1|", "tests", "P0 det", "P1 det",
               "union det"});
    for (std::size_t n_p0 : {o.n_p0 / 4, o.n_p0 / 2, o.n_p0, o.n_p0 * 2}) {
      if (n_p0 == 0) continue;
      TargetSetConfig tcfg = target_config(o);
      tcfg.n_p0 = n_p0;
      const EnrichmentWorkbench wb(nl, tcfg, o.cache());
      GeneratorConfig g;
      g.heuristic = CompactionHeuristic::Value;
      g.seed = o.seed;
      const GenerationResult r = wb.run_enriched(g);
      const UnionCoverage c = wb.coverage_of(r);
      t.row(n_p0, wb.targets().i0, wb.targets().p0.size(),
            wb.targets().p1.size(), r.tests.size(), c.p0_detected,
            c.p1_detected, c.union_detected());
    }
    emit(t, o);
  }
  finish_run(o);
  return 0;
}
