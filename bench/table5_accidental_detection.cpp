// Table 5 reproduction: simulate the faults of P0 u P1 under the test sets
// produced by the *basic* generation procedure (every heuristic). This
// measures how many P1 faults are detected accidentally when only P0 is
// targeted.
//
// Shape to reproduce: the accidental P1 coverage is a modest fraction of P1
// for every heuristic, and the non-compact (uncomp) test sets — although far
// larger — detect only slightly more of P1 than the compact ones.
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, table_circuits());
  print_header("Table 5: simulation of P0 u P1 under basic test sets", o);

  static constexpr CompactionHeuristic kHeuristics[] = {
      CompactionHeuristic::None, CompactionHeuristic::Arbitrary,
      CompactionHeuristic::Length, CompactionHeuristic::Value};

  Table t("Table 5: P0 u P1 faults detected by basic test sets");
  t.columns({"circuit", "i0", "P0,P1 flts", "uncomp", "arbit", "length",
             "values"});

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());
    const TargetSets& ts = wb.targets();

    std::size_t det[4];
    for (int h = 0; h < 4; ++h) {
      GeneratorConfig g;
      g.heuristic = kHeuristics[h];
      g.seed = o.seed;
      const GenerationResult r = wb.run_basic(g);
      const UnionCoverage c = wb.simulate_union(r.tests);
      det[h] = c.union_detected();
      std::fprintf(stderr, "  %s/%s: %zu tests -> %zu/%zu union detected\n",
                   name.c_str(), heuristic_name(kHeuristics[h]),
                   r.tests.size(), det[h], c.union_total());
    }
    t.row(name, ts.i0, ts.p_total(), det[0], det[1], det[2], det[3]);
  }

  emit(t, o);
  std::printf(
      "paper shape check: accidental P1 detection is limited; uncomp's much\n"
      "larger test sets buy only slightly more union coverage than the\n"
      "compact heuristics (paper example s641: 1452 vs ~1420 of 2127).\n");
  finish_run(o);
  return 0;
}
