// Ablation: how much of the enrichment gain survives when the secondary
// search is truncated. The paper's procedure offers *every* remaining fault
// as a secondary candidate for every test; this sweep caps the number of
// consecutive secondary rejections before a test is finalized, trading
// P1 coverage for generation time.
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s953_like", "b04_like"});
  print_header("Ablation: secondary-rejection cap vs quality/time", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    const EnrichmentWorkbench wb(nl, target_config(o), o.cache());

    Table t("circuit " + name);
    t.columns({"cap", "tests", "P0 det", "P1 det", "seconds"});
    for (std::size_t cap : {std::size_t{0}, std::size_t{100}, std::size_t{30},
                            std::size_t{10}, std::size_t{3}}) {
      GeneratorConfig g;
      g.heuristic = CompactionHeuristic::Value;
      g.seed = o.seed;
      g.max_consecutive_secondary_failures = cap;
      const GenerationResult r = wb.run_enriched(g);
      t.row(cap == 0 ? std::string("none (paper)") : std::to_string(cap),
            r.tests.size(), r.detected_p0_count(), r.detected_p1_count(),
            r.stats.seconds);
    }
    emit(t, o);
  }
  std::printf(
      "expected shape: small caps cut runtime but lose P1 coverage and\n"
      "inflate the test count; 'none' is the paper-faithful setting.\n");
  finish_run(o);
  return 0;
}
