// Ablation (extension): robust vs non-robust sensitization. The paper
// considers robust tests only; the non-robust criterion relaxes every
// off-path steadiness constraint to a final-pattern value, so more faults
// survive screening and more faults are detectable per test — at the cost of
// the robustness guarantee (a non-robust test can be invalidated by other
// delay faults).
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s641_like", "s1423_like", "b04_like"});
  print_header("Ablation: robust vs non-robust sensitization", o);

  Table t("");
  t.columns({"circuit", "mode", "|P0|", "|P1|", "tests", "P0 det", "P1 det",
             "seconds"});
  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    for (Sensitization sens :
         {Sensitization::Robust, Sensitization::NonRobust}) {
      TargetSetConfig tcfg = target_config(o);
      tcfg.sensitization = sens;
      const EnrichmentWorkbench wb(nl, tcfg, o.cache());
      GeneratorConfig g;
      g.heuristic = CompactionHeuristic::Value;
      g.seed = o.seed;
      const GenerationResult r = wb.run_enriched(g);
      t.row(name, sens == Sensitization::Robust ? "robust" : "nonrobust",
            wb.targets().p0.size(), wb.targets().p1.size(), r.tests.size(),
            r.detected_p0_count(), r.detected_p1_count(), r.stats.seconds);
    }
  }
  emit(t, o);
  std::printf(
      "expected shape: nonrobust keeps more faults in P0/P1 and detects a\n"
      "larger fraction of them (relaxed constraints merge more easily).\n");
  finish_run(o);
  return 0;
}
