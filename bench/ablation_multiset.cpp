// Ablation (paper future-work): partitioning P into more than two subsets.
// The paper uses P0/P1 and notes "It is possible to partition P into a
// larger number of subsets." This sweep compares 2-way and 3-way partitions
// at identical total budgets: the 3-way split offers the longer opportunistic
// faults first, trading some coverage of the short tail for better coverage
// of the near-critical band.
#include <cstdio>

#include "bench/common.hpp"

using namespace pdf;
using namespace pdf::bench;

int main(int argc, char** argv) {
  Options o = parse_options(argc, argv, {"s953_like", "s1423_like"});
  print_header("Ablation: number of target-fault subsets", o);

  for (const auto& name : o.circuits) {
    CircuitScope circuit_scope(o, name);
    const Netlist nl = benchmark_circuit(name);
    TargetSetConfig tcfg = target_config(o);

    Table t("circuit " + name);
    t.columns({"partition", "tests", "set sizes", "detected per set",
               "total det", "seconds"});

    auto run = [&](const char* label, std::span<const std::size_t> thresholds) {
      const MultiTargetSets m = build_target_sets_multi(nl, tcfg, thresholds);
      std::vector<std::span<const TargetFault>> spans;
      for (const auto& s : m.sets) spans.emplace_back(s);
      GeneratorConfig g;
      g.heuristic = CompactionHeuristic::Value;
      g.seed = o.seed;
      const GenerationResult r = generate_tests_multi(nl, spans, g);
      std::string sizes, dets;
      std::size_t total = 0;
      for (std::size_t k = 0; k < m.sets.size(); ++k) {
        if (k) {
          sizes += "/";
          dets += "/";
        }
        sizes += std::to_string(m.sets[k].size());
        dets += std::to_string(r.detected_count(k));
        total += r.detected_count(k);
      }
      t.row(label, r.tests.size(), sizes, dets, total, r.stats.seconds);
    };

    const std::size_t two[] = {o.n_p0};
    const std::size_t three[] = {o.n_p0, o.n_p0 * 3};
    const std::size_t four[] = {o.n_p0, o.n_p0 * 2, o.n_p0 * 4};
    run("P0|P1 (paper)", two);
    run("P0|P1a|P1b", three);
    run("P0|..|P1c", four);
    emit(t, o);
  }
  finish_run(o);
  return 0;
}
