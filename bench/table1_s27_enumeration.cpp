// Table 1 + Figure 2 reproduction: the paper's path-enumeration walkthrough
// on the combinational logic of s27 with a working-set bound of N_P = 20
// paths, basic variant (first-partial selection, prune the shortest complete
// paths). Prints the working set at each prune trigger (the paper's "Set 1"
// and "Set 2") and the final set, which the paper reports as 18 paths of
// lengths 7..10.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "paths/distance.hpp"
#include "paths/enumerate.hpp"

using namespace pdf;
using namespace pdf::bench;

namespace {

void run_walkthrough(const Options& o, const std::string& circuit) {
  CircuitScope circuit_scope(o, circuit);

  std::printf("== Table 1: path enumeration on s27 (N_P = 20 paths) ==\n\n");
  const Netlist nl = benchmark_circuit(circuit);
  const LineDelayModel dm(nl);

  EnumerationConfig cfg;
  cfg.max_faults = 20;
  cfg.faults_per_path = 1;  // the paper's example counts paths, not faults
  cfg.selection = SelectionPolicy::FirstPartial;
  cfg.prune = PrunePolicy::CompleteShortestFirst;
  cfg.record_trace = true;
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);

  int set_no = 1;
  for (const auto& ev : r.trace.prunes) {
    Table t("Set " + std::to_string(set_no++) + " (working set when the bound triggered, step " +
            std::to_string(ev.step) + ")");
    t.columns({"path", "kind", "length"});
    for (const auto& e : ev.snapshot_before) {
      t.row(e.rendering, e.complete ? "c" : "p", e.length);
    }
    t.print(std::cout);
    std::printf("pruned %zu path(s) with lengths:", ev.removed_lengths.size());
    for (int len : ev.removed_lengths) std::printf(" %d", len);
    std::printf("\n\n");
  }

  Table fin("Final set (paper: 18 paths, lengths 7..10)");
  fin.columns({"path", "length"});
  int min_len = 1 << 30, max_len = 0;
  for (const auto& p : r.paths) {
    fin.row(path_to_string(nl, p.path), p.length);
    min_len = std::min(min_len, p.length);
    max_len = std::max(max_len, p.length);
  }
  fin.print(std::cout);
  std::printf("\n%zu paths, lengths %d..%d (paper: 18 paths, 7..10)\n",
              r.paths.size(), min_len, max_len);

  // Figure 2's ingredient: the distance d(g) of every line to the outputs.
  std::printf("\n== Figure 2: distances d(g) to the primary outputs ==\n");
  const auto d = distances_to_outputs(dm);
  Table dist("");
  dist.columns({"line", "d(g)", "level"});
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    dist.row(nl.node(id).name, d[id], nl.node(id).level);
  }
  dist.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  // Common harness for --trace/--metrics-json/--threads; the walkthrough
  // itself stays fixed to the paper's example (first --circuits entry,
  // default s27) and keeps its historical stdout format (no print_header).
  Options o = parse_options(argc, argv, {"s27"});
  run_walkthrough(o, o.circuits.empty() ? "s27" : o.circuits.front());
  finish_run(o);
  return 0;
}
