#include "enrich/target_sets.hpp"

#include <stdexcept>

#include "faults/fault.hpp"
#include "paths/path.hpp"

namespace pdf {
namespace {

// Enumerate + screen + profile: the common front end of both builders.
struct ScreenedP {
  std::vector<TargetFault> faults;
  LengthProfile profile;
  ScreenStats screen;
  std::size_t enumerated_paths = 0;
  bool truncated = false;
};

ScreenedP screened_p(const Netlist& nl, const TargetSetConfig& cfg) {
  LineDelayModel dm = cfg.stem_weights.empty()
                          ? LineDelayModel(nl)
                          : LineDelayModel(nl, cfg.stem_weights);

  EnumerationConfig ecfg = cfg.enumeration;
  ecfg.max_faults = cfg.n_p;
  ecfg.faults_per_path = 2;
  const EnumerationResult enumerated = enumerate_longest_paths(dm, ecfg);

  ScreenedP out;
  out.enumerated_paths = enumerated.paths.size();
  out.truncated = enumerated.step_limit_hit;

  std::vector<PathDelayFault> faults = faults_for_paths(enumerated.paths);
  out.faults =
      screen_faults(nl, std::move(faults), &out.screen, cfg.sensitization);

  std::vector<int> lengths;
  lengths.reserve(out.faults.size());
  for (const auto& tf : out.faults) lengths.push_back(tf.fault.length);
  out.profile = LengthProfile(lengths);
  return out;
}

}  // namespace

TargetSets build_target_sets(const Netlist& nl, const TargetSetConfig& cfg) {
  ScreenedP p = screened_p(nl, cfg);

  TargetSets out;
  out.enumerated_paths = p.enumerated_paths;
  out.enumeration_truncated = p.truncated;
  out.screen = p.screen;
  out.profile = p.profile;
  if (p.faults.empty()) return out;

  out.i0 = out.profile.select_i0(cfg.n_p0);
  out.cutoff_length = out.profile.buckets()[out.i0].length;

  for (auto& tf : p.faults) {
    if (tf.fault.length >= out.cutoff_length) {
      out.p0.push_back(std::move(tf));
    } else {
      out.p1.push_back(std::move(tf));
    }
  }
  return out;
}

MultiTargetSets build_target_sets_multi(
    const Netlist& nl, const TargetSetConfig& cfg,
    std::span<const std::size_t> thresholds) {
  for (std::size_t k = 1; k < thresholds.size(); ++k) {
    if (thresholds[k] <= thresholds[k - 1]) {
      throw std::invalid_argument("thresholds must be strictly increasing");
    }
  }
  ScreenedP p = screened_p(nl, cfg);

  MultiTargetSets out;
  out.enumerated_paths = p.enumerated_paths;
  out.screen = p.screen;
  out.profile = p.profile;
  out.sets.resize(thresholds.size() + 1);
  if (p.faults.empty()) return out;

  out.cutoff_lengths.reserve(thresholds.size());
  for (std::size_t t : thresholds) {
    out.cutoff_lengths.push_back(out.profile.cutoff_length(t));
  }

  for (auto& tf : p.faults) {
    std::size_t k = 0;
    while (k < out.cutoff_lengths.size() &&
           tf.fault.length < out.cutoff_lengths[k]) {
      ++k;
    }
    out.sets[k].push_back(std::move(tf));
  }
  return out;
}

}  // namespace pdf
