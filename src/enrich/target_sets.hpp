// Construction of the target-fault sets P, P0 and P1 (paper Section 3.1).
//
//   P  — the faults associated with the N_P longest paths of the circuit
//        (distance-guided enumeration), minus the provably undetectable ones;
//   P0 — the faults of P on paths of length >= L_{i0}, where i0 is the
//        smallest index with N_p(L_{i0}) >= N_P0 (so P0 contains all faults
//        on the longest paths and is the set a conventional generator would
//        target);
//   P1 — the remaining faults of P (the next-to-longest paths), targeted
//        opportunistically by the enrichment procedure.
#pragma once

#include <cstddef>
#include <span>

#include "faults/screen.hpp"
#include "netlist/netlist.hpp"
#include "paths/enumerate.hpp"
#include "paths/length_stats.hpp"

namespace pdf {

struct TargetSetConfig {
  std::size_t n_p = 10000;   // N_P: fault budget for the enumeration
  std::size_t n_p0 = 1000;   // N_P0: minimum size of P0
  /// Robust (the paper's setting) or non-robust sensitization.
  Sensitization sensitization = Sensitization::Robust;
  /// Per-node stem weights for a non-unit delay model (empty = the paper's
  /// line-counting model). Size must match the netlist when non-empty.
  std::vector<int> stem_weights;
  /// Enumeration knobs; max_faults/faults_per_path are overridden from n_p.
  EnumerationConfig enumeration{};
};

struct TargetSets {
  std::vector<TargetFault> p0;
  std::vector<TargetFault> p1;

  std::size_t i0 = 0;        // index of the P0 cutoff length
  int cutoff_length = 0;     // L_{i0}
  LengthProfile profile;     // over the screened faults of P
  ScreenStats screen;
  std::size_t enumerated_paths = 0;
  bool enumeration_truncated = false;  // step limit hit

  std::size_t p_total() const { return p0.size() + p1.size(); }
};

/// Runs enumeration, screening and the P0/P1 split. The netlist must be
/// finalized, combinational and primitive-only.
TargetSets build_target_sets(const Netlist& nl, const TargetSetConfig& cfg = {});

/// Multi-subset generalization (the paper's "larger number of subsets"
/// remark): P is split into thresholds.size()+1 subsets. Subset k contains
/// the faults on paths of length >= L_{i_k}, where i_k is the smallest index
/// whose cumulative fault count reaches thresholds[k] (thresholds must be
/// strictly increasing); the last subset holds the remainder.
struct MultiTargetSets {
  std::vector<std::vector<TargetFault>> sets;
  std::vector<int> cutoff_lengths;  // one per threshold
  LengthProfile profile;
  ScreenStats screen;
  std::size_t enumerated_paths = 0;

  std::size_t total() const {
    std::size_t n = 0;
    for (const auto& s : sets) n += s.size();
    return n;
  }
};

MultiTargetSets build_target_sets_multi(const Netlist& nl,
                                        const TargetSetConfig& cfg,
                                        std::span<const std::size_t> thresholds);

}  // namespace pdf
