#include "enrich/enrichment.hpp"

#include <algorithm>

#include "faultsim/batch_sim.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "store/stage_cache.hpp"

namespace pdf {
namespace {

// One record per generation run (basic or enriched): the resulting test-set
// size. The distribution across circuits/seeds is what Table 6 compaction
// quality looks like from the metrics side.
void note_run(const GenerationResult& r) {
  auto& m = runtime::Metrics::global();
  static auto& runs = m.counter("enrich.runs");
  static auto& tests_hist = m.histogram("enrich.tests_per_run");
  runs.add(1);
  tests_hist.record(r.tests.size());
}

runtime::Metrics::Timer& run_timer() {
  static auto& t = runtime::Metrics::global().timer("enrich.run");
  return t;
}

}  // namespace

EnrichmentWorkbench::EnrichmentWorkbench(const Netlist& nl,
                                         const TargetSetConfig& cfg,
                                         store::StageCache* cache)
    : nl_(&nl),
      cfg_(cfg),
      cache_(cache),
      targets_(store::cached_target_sets(cache, nl, cfg)) {}

GenerationResult EnrichmentWorkbench::run_basic(const GeneratorConfig& cfg) const {
  PDF_TRACE_SPAN("enrich.run_basic");
  const auto timer_scope = run_timer().measure();
  GenerationResult r =
      store::cached_generate(cache_, *nl_, targets_.p0, {}, cfg_, cfg);
  note_run(r);
  return r;
}

GenerationResult EnrichmentWorkbench::run_enriched(
    const GeneratorConfig& cfg) const {
  PDF_TRACE_SPAN("enrich.run_enriched");
  const auto timer_scope = run_timer().measure();
  GenerationResult r = store::cached_generate(cache_, *nl_, targets_.p0,
                                              targets_.p1, cfg_, cfg);
  note_run(r);
  return r;
}

std::vector<EnrichmentWorkbench::SeedRun> EnrichmentWorkbench::run_enriched_sweep(
    std::span<const std::uint64_t> seeds, const GeneratorConfig& base) const {
  PDF_TRACE_SPAN("enrich.sweep");
  std::vector<SeedRun> out(seeds.size());
  runtime::global_pool().parallel_for(
      seeds.size(), 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          GeneratorConfig cfg = base;
          cfg.seed = seeds[i];
          SeedRun& run = out[i];
          run.seed = seeds[i];
          run.result = run_enriched(cfg);
          run.coverage = coverage_of(run.result);
        }
      });
  return out;
}

UnionCoverage EnrichmentWorkbench::simulate_union(
    std::span<const TwoPatternTest> tests) const {
  PDF_TRACE_SPAN("enrich.coverage");
  // Pattern-parallel simulation: identical results to FaultSimulator at a
  // fraction of the cost for whole test sets. Memoized when a stage cache is
  // configured.
  return store::cached_union_coverage(cache_, *nl_, tests, targets_.p0,
                                      targets_.p1, cfg_);
}

UnionCoverage EnrichmentWorkbench::coverage_of(const GenerationResult& r) const {
  UnionCoverage c;
  c.p0_total = targets_.p0.size();
  c.p1_total = targets_.p1.size();
  c.p0_detected = r.detected_p0_count();
  // A basic run carries no P1 bookkeeping; fall back to simulation if the
  // flags are absent but P1 exists.
  if (r.detected_p1.size() == targets_.p1.size()) {
    c.p1_detected = r.detected_p1_count();
  } else {
    const auto simulate_p1 = [&] {
      BatchSimulator fsim(*nl_);
      const std::vector<bool> d1 = fsim.detects_any(r.tests, targets_.p1);
      UnionCoverage p1_only;
      p1_only.p1_total = targets_.p1.size();
      p1_only.p1_detected =
          static_cast<std::size_t>(std::count(d1.begin(), d1.end(), true));
      return p1_only;
    };
    if (cache_ == nullptr) {
      c.p1_detected = simulate_p1().p1_detected;
    } else {
      // Distinct final digest ("p1 only") keeps this record from colliding
      // with the full-union coverage of the same test set.
      const UnionCoverage p1_only = cache_->memoize<UnionCoverage>(
          {store::digest(*nl_), store::digest(cfg_),
           store::digest(std::span<const TwoPatternTest>(r.tests)),
           store::xxh64("p1_only")},
          simulate_p1);
      c.p1_detected = p1_only.p1_detected;
    }
  }
  return c;
}

}  // namespace pdf
