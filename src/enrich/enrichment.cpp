#include "enrich/enrichment.hpp"

#include <algorithm>

#include "faultsim/parallel_sim.hpp"
#include "runtime/thread_pool.hpp"

namespace pdf {

EnrichmentWorkbench::EnrichmentWorkbench(const Netlist& nl,
                                         const TargetSetConfig& cfg)
    : nl_(&nl), targets_(build_target_sets(nl, cfg)) {}

GenerationResult EnrichmentWorkbench::run_basic(const GeneratorConfig& cfg) const {
  return generate_tests(*nl_, targets_.p0, {}, cfg);
}

GenerationResult EnrichmentWorkbench::run_enriched(
    const GeneratorConfig& cfg) const {
  return generate_tests(*nl_, targets_.p0, targets_.p1, cfg);
}

std::vector<EnrichmentWorkbench::SeedRun> EnrichmentWorkbench::run_enriched_sweep(
    std::span<const std::uint64_t> seeds, const GeneratorConfig& base) const {
  std::vector<SeedRun> out(seeds.size());
  runtime::global_pool().parallel_for(
      seeds.size(), 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          GeneratorConfig cfg = base;
          cfg.seed = seeds[i];
          SeedRun& run = out[i];
          run.seed = seeds[i];
          run.result = run_enriched(cfg);
          run.coverage = coverage_of(run.result);
        }
      });
  return out;
}

UnionCoverage EnrichmentWorkbench::simulate_union(
    std::span<const TwoPatternTest> tests) const {
  // Pattern-parallel simulation: identical results to FaultSimulator at a
  // fraction of the cost for whole test sets.
  ParallelFaultSimulator fsim(*nl_);
  const std::vector<bool> d0 = fsim.detects_any(tests, targets_.p0);
  const std::vector<bool> d1 = fsim.detects_any(tests, targets_.p1);
  UnionCoverage c;
  c.p0_total = targets_.p0.size();
  c.p1_total = targets_.p1.size();
  c.p0_detected = static_cast<std::size_t>(std::count(d0.begin(), d0.end(), true));
  c.p1_detected = static_cast<std::size_t>(std::count(d1.begin(), d1.end(), true));
  return c;
}

UnionCoverage EnrichmentWorkbench::coverage_of(const GenerationResult& r) const {
  UnionCoverage c;
  c.p0_total = targets_.p0.size();
  c.p1_total = targets_.p1.size();
  c.p0_detected = r.detected_p0_count();
  // A basic run carries no P1 bookkeeping; fall back to simulation if the
  // flags are absent but P1 exists.
  if (r.detected_p1.size() == targets_.p1.size()) {
    c.p1_detected = r.detected_p1_count();
  } else {
    ParallelFaultSimulator fsim(*nl_);
    const std::vector<bool> d1 = fsim.detects_any(r.tests, targets_.p1);
    c.p1_detected =
        static_cast<std::size_t>(std::count(d1.begin(), d1.end(), true));
  }
  return c;
}

}  // namespace pdf
