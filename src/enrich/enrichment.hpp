// High-level experiment facade tying target-set construction, the basic
// generator, the enrichment generator and fault simulation together. The
// table benches and examples are thin wrappers over this type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/generator.hpp"
#include "enrich/target_sets.hpp"
#include "faultsim/fault_sim.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

namespace store {
class StageCache;
}

/// Detection summary of a test set over P0 and P1.
struct UnionCoverage {
  std::size_t p0_detected = 0;
  std::size_t p1_detected = 0;
  std::size_t p0_total = 0;
  std::size_t p1_total = 0;

  std::size_t union_detected() const { return p0_detected + p1_detected; }
  std::size_t union_total() const { return p0_total + p1_total; }
};

class EnrichmentWorkbench {
 public:
  /// Builds the target sets for `nl` (which must outlive the workbench).
  /// With a non-null `cache`, every expensive stage — target-set
  /// construction, test generation, coverage simulation — is memoized in the
  /// content-addressed artifact store: warm calls skip the computation and
  /// return bit-identical results (see src/store/ and DESIGN.md §8). The
  /// cache must outlive the workbench.
  EnrichmentWorkbench(const Netlist& nl, const TargetSetConfig& cfg = {},
                      store::StageCache* cache = nullptr);

  const Netlist& netlist() const { return *nl_; }
  const TargetSets& targets() const { return targets_; }

  /// Basic test generation targeting P0 only (paper Section 2).
  GenerationResult run_basic(const GeneratorConfig& cfg = {}) const;

  /// Test enrichment targeting P0 with P1 as the second set (Section 3.2).
  GenerationResult run_enriched(const GeneratorConfig& cfg = {}) const;

  /// One whole enrichment experiment (generation + coverage) per seed. The
  /// seeds run concurrently on the runtime pool — each seed's generation is
  /// self-contained, and any parallelism nested inside a seed (coverage
  /// simulation) runs inline — so results[i] is bit-identical to a
  /// sequential run_enriched/coverage_of with seeds[i], in seed order,
  /// regardless of the thread count.
  struct SeedRun {
    std::uint64_t seed = 0;
    GenerationResult result;
    UnionCoverage coverage;
  };
  std::vector<SeedRun> run_enriched_sweep(std::span<const std::uint64_t> seeds,
                                          const GeneratorConfig& base = {}) const;

  /// Simulates an existing test set against P0 and P1 — the paper's Table 5
  /// accidental-detection experiment when applied to basic test sets.
  UnionCoverage simulate_union(std::span<const TwoPatternTest> tests) const;

  /// Coverage bookkeeping for a GenerationResult.
  UnionCoverage coverage_of(const GenerationResult& r) const;

 private:
  const Netlist* nl_;
  TargetSetConfig cfg_;
  store::StageCache* cache_ = nullptr;
  TargetSets targets_;
};

}  // namespace pdf
