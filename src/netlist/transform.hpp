// Structural transforms applied before ATPG.
//
// decompose_xor: robust path-delay side-input constraints are only well
// defined for gates with a controlling value, so XOR/XNOR gates are expanded
// into the standard AND/OR/NOT network
//   a XOR b  =  OR(AND(a, NOT(b)), AND(NOT(a), b))
// (n-input XORs are decomposed as a balanced chain of 2-input XORs first).
// This is the conventional ATPG treatment and keeps A(p) a fixed value set.
#pragma once

#include "netlist/netlist.hpp"

namespace pdf {

/// Returns a finalized copy of `nl` with every XOR/XNOR gate decomposed into
/// AND/OR/NOT primitives. Node names of non-XOR gates are preserved; new
/// helper nodes get fresh names. If the netlist has no XOR gates the copy is
/// structurally identical.
Netlist decompose_xor(const Netlist& nl);

/// True when every gate in `nl` is a primitive the ATPG core accepts
/// (Input/Buf/Not/And/Nand/Or/Nor).
bool is_atpg_ready(const Netlist& nl);

}  // namespace pdf
