#include "netlist/netlist.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace pdf {

NodeId Netlist::add_node(Node n) {
  if (by_name_.contains(n.name)) {
    throw std::runtime_error("duplicate node name: " + n.name);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(n.name, id);
  nodes_.push_back(std::move(n));
  finalized_ = false;
  return id;
}

NodeId Netlist::add_input(const std::string& name) {
  Node n;
  n.name = name;
  n.type = GateType::Input;
  const NodeId id = add_node(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_gate(const std::string& name, GateType type,
                         std::vector<NodeId> fanin) {
  if (type == GateType::Input) {
    throw std::runtime_error("use add_input for input nodes: " + name);
  }
  const int nf = static_cast<int>(fanin.size());
  if (nf < min_fanin(type) || nf > max_fanin(type)) {
    throw std::runtime_error("bad fanin count for " + to_string(type) +
                             " gate " + name);
  }
  for (NodeId f : fanin) {
    if (f >= nodes_.size()) throw std::runtime_error("unknown fanin of " + name);
  }
  Node n;
  n.name = name;
  n.type = type;
  n.fanin = std::move(fanin);
  return add_node(std::move(n));
}

NodeId Netlist::add_gate_placeholder(const std::string& name, GateType type) {
  if (type == GateType::Input) {
    throw std::runtime_error("use add_input for input nodes: " + name);
  }
  Node n;
  n.name = name;
  n.type = type;
  return add_node(std::move(n));
}

void Netlist::set_fanin(NodeId id, std::vector<NodeId> fanin) {
  if (id >= nodes_.size()) throw std::runtime_error("set_fanin: bad node id");
  Node& n = nodes_[id];
  if (n.type == GateType::Input) {
    throw std::runtime_error("cannot set fanin of input node " + n.name);
  }
  for (NodeId f : fanin) {
    if (f >= nodes_.size()) throw std::runtime_error("set_fanin: unknown fanin of " + n.name);
  }
  n.fanin = std::move(fanin);
  finalized_ = false;
}

void Netlist::mark_output(NodeId id) {
  if (id >= nodes_.size()) throw std::runtime_error("mark_output: bad node id");
  if (!nodes_[id].is_output) {
    nodes_[id].is_output = true;
    outputs_.push_back(id);
  }
}

void Netlist::mark_output(const std::string& name) { mark_output(id_of(name)); }

std::optional<NodeId> Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

NodeId Netlist::id_of(const std::string& name) const {
  auto id = find(name);
  if (!id) throw std::runtime_error("unknown node name: " + name);
  return *id;
}

std::span<const NodeId> Netlist::topo_order() const {
  if (!finalized_) throw std::logic_error("netlist not finalized");
  return topo_;
}

bool Netlist::has_sequential() const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const Node& n) { return n.type == GateType::Dff; });
}

std::size_t Netlist::gate_count() const {
  return static_cast<std::size_t>(std::count_if(
      nodes_.begin(), nodes_.end(), [](const Node& n) {
        return n.type != GateType::Input && n.type != GateType::Dff;
      }));
}

std::size_t Netlist::fanin_index(NodeId gate, NodeId fanin_node) const {
  const auto& f = node(gate).fanin;
  auto it = std::find(f.begin(), f.end(), fanin_node);
  if (it == f.end()) {
    throw std::runtime_error("node " + node(fanin_node).name +
                             " is not a fanin of " + node(gate).name);
  }
  return static_cast<std::size_t>(it - f.begin());
}

void Netlist::redefine_gate(NodeId id, GateType type, std::vector<NodeId> fanin) {
  if (id >= nodes_.size()) throw std::runtime_error("redefine_gate: bad node id");
  Node& n = nodes_[id];
  if (n.type == GateType::Input) {
    throw std::runtime_error("cannot redefine input node " + n.name);
  }
  const int nf = static_cast<int>(fanin.size());
  if (nf < min_fanin(type) || nf > max_fanin(type)) {
    throw std::runtime_error("bad fanin count for redefined gate " + n.name);
  }
  n.type = type;
  n.fanin = std::move(fanin);
  finalized_ = false;
}

std::string Netlist::fresh_name(const std::string& prefix) {
  for (;;) {
    std::string candidate = prefix + std::to_string(fresh_counter_++);
    if (!by_name_.contains(candidate)) return candidate;
  }
}

void Netlist::finalize() {
  // Reset derived data.
  for (Node& n : nodes_) n.fanout.clear();

  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    const int nf = static_cast<int>(n.fanin.size());
    if (nf < min_fanin(n.type) || nf > max_fanin(n.type)) {
      throw std::runtime_error("bad fanin count on node " + n.name);
    }
    if (n.fanin.size() > kMaxGateFanin) {
      throw std::runtime_error("fanin of node " + n.name + " exceeds the " +
                               std::to_string(kMaxGateFanin) +
                               "-input execution-plane bound");
    }
    for (NodeId f : n.fanin) {
      if (f >= nodes_.size()) throw std::runtime_error("dangling fanin on " + n.name);
      nodes_[f].fanout.push_back(id);
    }
  }

  compute_topo_and_levels();
  finalized_ = true;
}

void Netlist::compute_topo_and_levels() {
  // Kahn's algorithm over combinational edges. DFF nodes act as sources: a
  // DFF output is available at the start of the clock cycle, so the edge from
  // its data fanin is not a combinational dependence.
  const std::size_t n = nodes_.size();
  std::vector<std::uint32_t> pending(n, 0);
  std::deque<NodeId> ready;
  for (NodeId id = 0; id < n; ++id) {
    const Node& nd = nodes_[id];
    const bool source = nd.type == GateType::Input || nd.type == GateType::Dff;
    pending[id] = source ? 0 : static_cast<std::uint32_t>(nd.fanin.size());
    if (pending[id] == 0) ready.push_back(id);
  }

  topo_.clear();
  topo_.reserve(n);
  std::vector<int> level(n, 0);
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    topo_.push_back(id);
    for (NodeId out : nodes_[id].fanout) {
      if (nodes_[out].type == GateType::Dff) continue;  // sequential edge
      level[out] = std::max(level[out], level[id] + 1);
      if (--pending[out] == 0) ready.push_back(out);
    }
  }
  if (topo_.size() != n) {
    // Name one offender to make the diagnostic actionable.
    std::string offender;
    for (NodeId id = 0; id < n; ++id) {
      if (pending[id] != 0) {
        offender = nodes_[id].name;
        break;
      }
    }
    throw std::runtime_error("combinational cycle detected (" +
                             std::to_string(n - topo_.size()) +
                             " nodes unschedulable, e.g. " + offender + ")");
  }

  depth_ = 0;
  for (NodeId id = 0; id < n; ++id) {
    nodes_[id].level = level[id];
    depth_ = std::max(depth_, level[id]);
  }
}

NetlistStats stats_of(const Netlist& nl) {
  NetlistStats s;
  s.inputs = nl.inputs().size();
  s.outputs = nl.outputs().size();
  s.depth = nl.depth();
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Dff) {
      ++s.dffs;
    } else if (n.type != GateType::Input) {
      ++s.gates;
    }
    // ISCAS line counting: one stem per node plus one line per branch when a
    // node drives more than one consumer; a (pseudo) primary-output tap
    // counts as a consumer.
    const std::size_t consumers = n.fanout.size() + (n.is_output ? 1 : 0);
    s.lines += 1;
    if (consumers > 1) s.lines += consumers;
  }
  return s;
}

}  // namespace pdf
