// Netlist cleanup passes.
//
// Structural hygiene applied before analysis:
//   * sweep_buffers   — bypass BUF gates (consumers read the buffer's fanin
//                       directly); output-marking moves to the fanin. Note
//                       that removing buffers changes line-counting path
//                       lengths, so run it before building delay models.
//   * sweep_dangling  — iteratively delete gates that drive nothing and are
//                       not outputs (dead logic from editing/transforms).
// Both return fresh finalized netlists and a report of what was removed.
#pragma once

#include "netlist/netlist.hpp"

namespace pdf {

struct CleanupReport {
  std::size_t buffers_removed = 0;
  std::size_t dangling_removed = 0;
};

/// Removes BUF gates by rewiring their consumers. A BUF that is itself a
/// primary output transfers the marking to its fanin unless the fanin is
/// already an output (then the BUF is kept to preserve the distinct output).
Netlist sweep_buffers(const Netlist& nl, CleanupReport* report = nullptr);

/// Removes dead gates (no fanout, not an output) until a fixpoint.
Netlist sweep_dangling(const Netlist& nl, CleanupReport* report = nullptr);

/// Both passes, in the order buffers -> dangling.
Netlist cleanup(const Netlist& nl, CleanupReport* report = nullptr);

}  // namespace pdf
