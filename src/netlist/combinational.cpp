#include "netlist/combinational.hpp"

#include <stdexcept>
#include <unordered_map>

namespace pdf {

CombinationalCircuit extract_combinational(const Netlist& nl) {
  if (!nl.finalized()) throw std::logic_error("extract_combinational: not finalized");

  CombinationalCircuit out;
  out.netlist.set_name(nl.name());
  std::unordered_map<NodeId, NodeId> remap;

  // Inputs first (preserving order), then DFF outputs as pseudo inputs.
  for (NodeId id : nl.inputs()) {
    remap[id] = out.netlist.add_input(nl.node(id).name);
  }
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == GateType::Dff) {
      const NodeId nid = out.netlist.add_input(nl.node(id).name);
      remap[id] = nid;
      out.pseudo_inputs.push_back(nid);
    }
  }

  // Gates in topological order so fanins are always remapped already.
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) continue;
    std::vector<NodeId> fanin;
    fanin.reserve(n.fanin.size());
    for (NodeId f : n.fanin) fanin.push_back(remap.at(f));
    remap[id] = out.netlist.add_gate(n.name, n.type, std::move(fanin));
  }

  // Primary outputs carry over; DFF data fanins become pseudo outputs.
  for (NodeId id : nl.outputs()) {
    if (nl.node(id).type == GateType::Dff) {
      // An OUTPUT() naming a DFF observes the state element directly; in the
      // combinational core that is the pseudo input, which is not a
      // meaningful delay-test output, so it is skipped.
      continue;
    }
    out.netlist.mark_output(remap.at(id));
  }
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type != GateType::Dff) continue;
    const NodeId data = remap.at(n.fanin.at(0));
    out.netlist.mark_output(data);
    out.pseudo_outputs.push_back(data);
  }

  out.netlist.finalize();
  return out;
}

}  // namespace pdf
