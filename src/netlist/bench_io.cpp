#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "base/error.hpp"

namespace pdf {
namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

struct GateDef {
  std::string name;
  GateType type;
  std::vector<std::string> operands;
  int line_no;
};

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& circuit_name) {
  auto fail = [&](int line_no, const std::string& msg) -> void {
    throw ParseError(circuit_name, line_no,
                     ".bench line " + std::to_string(line_no) + ": " + msg);
  };

  std::vector<std::string> input_names;
  std::vector<std::pair<std::string, int>> output_names;  // (name, line)
  std::vector<GateDef> defs;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    line = strip(line);
    if (line.empty()) continue;

    auto parse_call = [&](const std::string& text)
        -> std::pair<std::string, std::vector<std::string>> {
      const auto open = text.find('(');
      const auto close = text.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        fail(line_no, "expected NAME(args): " + text);
      }
      std::string fn = strip(text.substr(0, open));
      std::vector<std::string> args;
      std::string inner = text.substr(open + 1, close - open - 1);
      std::stringstream ss(inner);
      std::string piece;
      while (std::getline(ss, piece, ',')) {
        piece = strip(piece);
        if (piece.empty()) fail(line_no, "empty operand");
        args.push_back(piece);
      }
      return {fn, args};
    };

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      auto [fn, args] = parse_call(line);
      std::string upper = fn;
      std::transform(upper.begin(), upper.end(), upper.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
      });
      if (args.size() != 1) fail(line_no, fn + " takes exactly one name");
      if (upper == "INPUT") {
        input_names.push_back(args[0]);
      } else if (upper == "OUTPUT") {
        output_names.emplace_back(args[0], line_no);
      } else {
        fail(line_no, "unknown directive: " + fn);
      }
      continue;
    }

    GateDef def;
    def.name = strip(line.substr(0, eq));
    def.line_no = line_no;
    if (def.name.empty()) fail(line_no, "missing signal name before '='");
    auto [fn, args] = parse_call(strip(line.substr(eq + 1)));
    auto type = gate_type_from_string(fn);
    if (!type || *type == GateType::Input) fail(line_no, "unknown gate type: " + fn);
    def.type = *type;
    def.operands = std::move(args);
    defs.push_back(std::move(def));
  }

  Netlist nl(circuit_name);
  for (const auto& name : input_names) nl.add_input(name);

  // Definitions may be out of order and sequential feedback loops through
  // DFFs are legal, so node creation is two-phase: create every defined node
  // first (catching duplicate names), then wire fanins by name. Arity and
  // combinational acyclicity are validated by finalize().
  std::vector<NodeId> ids(defs.size());
  for (std::size_t i = 0; i < defs.size(); ++i) {
    try {
      ids[i] = nl.add_gate_placeholder(defs[i].name, defs[i].type);
    } catch (const std::runtime_error& e) {
      fail(defs[i].line_no, e.what());
    }
  }
  for (std::size_t i = 0; i < defs.size(); ++i) {
    const GateDef& d = defs[i];
    const int nf = static_cast<int>(d.operands.size());
    if (nf < min_fanin(d.type) || nf > max_fanin(d.type)) {
      fail(d.line_no, "bad operand count for " + to_string(d.type) + " gate " +
                          d.name);
    }
    std::vector<NodeId> fanin;
    fanin.reserve(d.operands.size());
    for (const auto& op : d.operands) {
      const auto id = nl.find(op);
      if (!id) fail(d.line_no, "undefined operand " + op + " of gate " + d.name);
      fanin.push_back(*id);
    }
    nl.set_fanin(ids[i], std::move(fanin));
  }

  for (const auto& [name, out_line] : output_names) {
    auto id = nl.find(name);
    if (!id) fail(out_line, "OUTPUT(" + name + ") names an undefined signal");
    nl.mark_output(*id);
  }

  // Whole-netlist structural checks (arity, combinational acyclicity) are
  // not attributable to one line; surface them as ParseError line 0 so a
  // serving layer still sees a typed input failure, not an internal error.
  try {
    nl.finalize();
  } catch (const std::runtime_error& e) {
    throw ParseError(circuit_name, 0, std::string(".bench: ") + e.what());
  }
  return nl;
}

Netlist parse_bench_string(const std::string& text, const std::string& circuit_name) {
  std::istringstream in(text);
  return parse_bench(in, circuit_name);
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError(path, 0, "cannot open .bench file: " + path);
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return parse_bench(in, name);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << "\n";
  for (NodeId id : nl.inputs()) out << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.outputs()) out << "OUTPUT(" << nl.node(id).name << ")\n";
  out << "\n";
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    std::string upper = to_string(n.type);
    std::transform(upper.begin(), upper.end(), upper.begin(), [](unsigned char c) {
      return static_cast<char>(std::toupper(c));
    });
    out << n.name << " = " << upper << "(";
    for (std::size_t i = 0; i < n.fanin.size(); ++i) {
      if (i) out << ", ";
      out << nl.node(n.fanin[i]).name;
    }
    out << ")\n";
  }
}

std::string to_bench_string(const Netlist& nl) {
  std::ostringstream out;
  write_bench(out, nl);
  return out.str();
}

}  // namespace pdf
