// Reader/writer for the ISCAS .bench netlist format.
//
// The accepted grammar (comments start with '#'):
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(op1, op2, ...)
// where GATE is one of AND, NAND, OR, NOR, NOT, BUF/BUFF, XOR, XNOR, DFF.
// Definitions may appear in any order; OUTPUT may reference a later-defined
// signal. The result is a finalized Netlist.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace pdf {

/// Parses .bench text. Throws pdf::ParseError (a std::runtime_error carrying
/// the source name and 1-based line, see base/error.hpp) on any syntax or
/// structural error — never aborts, so long-running callers (pdf_serve) can
/// turn bad input into a structured request failure.
Netlist parse_bench(std::istream& in, const std::string& circuit_name = "bench");
Netlist parse_bench_string(const std::string& text,
                           const std::string& circuit_name = "bench");
Netlist parse_bench_file(const std::string& path);

/// Writes a netlist back out in .bench syntax.
void write_bench(std::ostream& out, const Netlist& nl);
std::string to_bench_string(const Netlist& nl);

}  // namespace pdf
