#include "netlist/transform.hpp"

#include <stdexcept>
#include <unordered_map>

namespace pdf {
namespace {

// Builds OR(AND(a, NOT(b)), AND(NOT(a), b)) in `out`, returning the OR node.
// `invert_result` builds the XNOR variant by swapping the final gate to NOR.
NodeId build_xor2(Netlist& out, NodeId a, NodeId b, bool invert_result,
                  const std::string& hint) {
  const NodeId na = out.add_gate(out.fresh_name(hint + "_na"), GateType::Not, {a});
  const NodeId nb = out.add_gate(out.fresh_name(hint + "_nb"), GateType::Not, {b});
  const NodeId t0 = out.add_gate(out.fresh_name(hint + "_t0"), GateType::And, {a, nb});
  const NodeId t1 = out.add_gate(out.fresh_name(hint + "_t1"), GateType::And, {na, b});
  return out.add_gate(out.fresh_name(hint + "_o"),
                      invert_result ? GateType::Nor : GateType::Or, {t0, t1});
}

}  // namespace

Netlist decompose_xor(const Netlist& nl) {
  if (!nl.finalized()) throw std::logic_error("decompose_xor: not finalized");

  Netlist out(nl.name());
  std::unordered_map<NodeId, NodeId> remap;
  for (NodeId id : nl.inputs()) remap[id] = out.add_input(nl.node(id).name);

  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    std::vector<NodeId> fanin;
    fanin.reserve(n.fanin.size());
    for (NodeId f : n.fanin) fanin.push_back(remap.at(f));

    if (n.type != GateType::Xor && n.type != GateType::Xnor) {
      remap[id] = out.add_gate(n.name, n.type, std::move(fanin));
      continue;
    }

    // Chain of 2-input XORs; the last stage absorbs the XNOR inversion and
    // keeps the original node name via a BUF so fanout naming survives.
    NodeId acc = fanin[0];
    for (std::size_t i = 1; i < fanin.size(); ++i) {
      const bool last = i + 1 == fanin.size();
      acc = build_xor2(out, acc, fanin[i], last && n.type == GateType::Xnor, n.name);
    }
    if (fanin.size() == 1) {
      // Degenerate 1-input XOR behaves as BUF (XNOR as NOT); arity checks
      // normally prevent this, but stay safe.
      acc = out.add_gate(out.fresh_name(n.name + "_b"),
                         n.type == GateType::Xnor ? GateType::Not : GateType::Buf,
                         {acc});
    }
    remap[id] = out.add_gate(n.name, GateType::Buf, {acc});
  }

  for (NodeId id : nl.outputs()) out.mark_output(remap.at(id));
  out.finalize();
  return out;
}

bool is_atpg_ready(const Netlist& nl) {
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const GateType t = nl.node(id).type;
    if (t == GateType::Input) continue;
    if (!is_primitive_logic(t)) return false;
  }
  return true;
}

}  // namespace pdf
