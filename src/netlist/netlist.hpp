// Gate-level netlist: a named DAG of logic nodes.
//
// Nodes are identified by dense `NodeId` indices; fanin/fanout adjacency is
// stored per node. A netlist is built through the `add_*` API and then
// `finalize()`d, which validates the structure (fanin arities, acyclicity
// over combinational edges, name uniqueness), computes fanout lists, a
// topological order and per-node logic levels. All analysis and ATPG code
// operates on finalized netlists.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"

namespace pdf {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct Node {
  std::string name;
  GateType type = GateType::Input;
  std::vector<NodeId> fanin;
  std::vector<NodeId> fanout;  // filled by finalize()
  int level = 0;               // 0 for inputs; 1 + max(fanin levels) otherwise
  bool is_output = false;      // drives a primary output
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------------

  /// Adds a primary input node. Throws on duplicate name.
  NodeId add_input(const std::string& name);

  /// Adds a gate whose fanins must already exist. Throws on duplicate name,
  /// bad arity, or unknown fanin.
  NodeId add_gate(const std::string& name, GateType type,
                  std::vector<NodeId> fanin);

  /// Adds a gate node with no fanin yet (for forward references, e.g. DFF
  /// feedback loops in netlist files). The fanin must be supplied with
  /// set_fanin before finalize(), which validates arity.
  NodeId add_gate_placeholder(const std::string& name, GateType type);

  /// Replaces the fanin list of an existing gate. Un-finalizes the netlist;
  /// arity is validated at finalize().
  void set_fanin(NodeId id, std::vector<NodeId> fanin);

  /// Marks an existing node as a primary output.
  void mark_output(NodeId id);
  void mark_output(const std::string& name);

  /// Validates the netlist and computes fanout lists, topological order and
  /// levels. Must be called before any analysis. Throws std::runtime_error on
  /// structural problems (cycle through combinational gates, dangling nodes
  /// are permitted but reported via stats).
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- access -------------------------------------------------------------

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_.at(id); }

  /// Looks a node up by name; nullopt if absent.
  std::optional<NodeId> find(const std::string& name) const;
  /// Looks a node up by name; throws if absent.
  NodeId id_of(const std::string& name) const;

  std::span<const NodeId> inputs() const { return inputs_; }
  std::span<const NodeId> outputs() const { return outputs_; }

  /// Topological order over combinational edges (inputs first). Valid after
  /// finalize(). DFF nodes, if any, appear as sources like inputs.
  std::span<const NodeId> topo_order() const;

  /// Maximum node level (combinational depth).
  int depth() const { return depth_; }

  bool has_sequential() const;
  std::size_t gate_count() const;  // nodes that are neither Input nor Dff

  /// Index of `fanin_node` within `gate`'s fanin list; throws if absent.
  std::size_t fanin_index(NodeId gate, NodeId fanin_node) const;

  // ---- mutation helpers used by transforms --------------------------------

  /// Replaces the definition of an existing gate node (same name/id keeps all
  /// fanout references intact). Un-finalizes the netlist.
  void redefine_gate(NodeId id, GateType type, std::vector<NodeId> fanin);

  /// Generates a fresh node name with the given prefix that does not collide
  /// with any existing name.
  std::string fresh_name(const std::string& prefix);

 private:
  NodeId add_node(Node n);
  void compute_topo_and_levels();

  std::string name_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> topo_;
  int depth_ = 0;
  bool finalized_ = false;
  std::uint64_t fresh_counter_ = 0;
};

/// Summary statistics for reporting.
struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t gates = 0;
  std::size_t dffs = 0;
  std::size_t lines = 0;  // stems + fanout branches (ISCAS line counting)
  int depth = 0;
};

NetlistStats stats_of(const Netlist& nl);

}  // namespace pdf
