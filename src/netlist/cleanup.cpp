#include "netlist/cleanup.hpp"

#include <stdexcept>
#include <unordered_map>

namespace pdf {
namespace {

// Rebuilds the netlist keeping only nodes where keep(id), resolving each
// fanin through resolve(id) (which must map onto kept nodes).
template <typename KeepFn, typename ResolveFn>
Netlist rebuild(const Netlist& nl, KeepFn keep, ResolveFn resolve) {
  Netlist out(nl.name());
  std::unordered_map<NodeId, NodeId> remap;
  for (NodeId id : nl.inputs()) {
    remap[id] = out.add_input(nl.node(id).name);
  }
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || !keep(id)) continue;
    std::vector<NodeId> fanin;
    fanin.reserve(n.fanin.size());
    for (NodeId f : n.fanin) fanin.push_back(remap.at(resolve(f)));
    remap[id] = out.add_gate(n.name, n.type, std::move(fanin));
  }
  for (NodeId id : nl.outputs()) {
    out.mark_output(remap.at(resolve(id)));
  }
  out.finalize();
  return out;
}

}  // namespace

Netlist sweep_buffers(const Netlist& nl, CleanupReport* report) {
  if (!nl.finalized()) throw std::logic_error("sweep_buffers: not finalized");

  // Resolve chains of buffers to their ultimate driver.
  std::vector<NodeId> target(nl.node_count());
  std::vector<bool> removable(nl.node_count(), false);
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Buf) {
      const NodeId drv = target[n.fanin[0]];
      // Keep a buffer whose removal would merge two distinct outputs.
      if (n.is_output && nl.node(drv).is_output) {
        target[id] = id;
      } else {
        target[id] = drv;
        removable[id] = true;
      }
    } else {
      target[id] = id;
    }
  }

  std::size_t removed = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) removed += removable[id];
  if (report) report->buffers_removed += removed;

  return rebuild(
      nl, [&](NodeId id) { return !removable[id]; },
      [&](NodeId id) { return target[id]; });
}

Netlist sweep_dangling(const Netlist& nl, CleanupReport* report) {
  if (!nl.finalized()) throw std::logic_error("sweep_dangling: not finalized");

  // Mark everything reachable backwards from the outputs.
  std::vector<bool> live(nl.node_count(), false);
  std::vector<NodeId> stack;
  for (NodeId id : nl.outputs()) {
    if (!live[id]) {
      live[id] = true;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId f : nl.node(id).fanin) {
      if (!live[f]) {
        live[f] = true;
        stack.push_back(f);
      }
    }
  }

  std::size_t removed = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (!live[id] && nl.node(id).type != GateType::Input) ++removed;
  }
  if (report) report->dangling_removed += removed;

  return rebuild(
      nl,
      [&](NodeId id) { return live[id]; },
      [](NodeId id) { return id; });
}

Netlist cleanup(const Netlist& nl, CleanupReport* report) {
  return sweep_dangling(sweep_buffers(nl, report), report);
}

}  // namespace pdf
