#include "netlist/gate.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace pdf {

std::string to_string(GateType t) {
  switch (t) {
    case GateType::Input: return "input";
    case GateType::Buf: return "buf";
    case GateType::Not: return "not";
    case GateType::And: return "and";
    case GateType::Nand: return "nand";
    case GateType::Or: return "or";
    case GateType::Nor: return "nor";
    case GateType::Xor: return "xor";
    case GateType::Xnor: return "xnor";
    case GateType::Dff: return "dff";
  }
  return "?";
}

std::optional<GateType> gate_type_from_string(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "buf" || lower == "buff") return GateType::Buf;
  if (lower == "not" || lower == "inv") return GateType::Not;
  if (lower == "and") return GateType::And;
  if (lower == "nand") return GateType::Nand;
  if (lower == "or") return GateType::Or;
  if (lower == "nor") return GateType::Nor;
  if (lower == "xor") return GateType::Xor;
  if (lower == "xnor") return GateType::Xnor;
  if (lower == "dff") return GateType::Dff;
  if (lower == "input") return GateType::Input;
  return std::nullopt;
}

std::optional<V3> controlling_value(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand: return V3::Zero;
    case GateType::Or:
    case GateType::Nor: return V3::One;
    default: return std::nullopt;
  }
}

bool is_inverting(GateType t) {
  switch (t) {
    case GateType::Not:
    case GateType::Nand:
    case GateType::Nor:
    case GateType::Xnor: return true;
    default: return false;
  }
}

bool is_primitive_logic(GateType t) {
  switch (t) {
    case GateType::Buf:
    case GateType::Not:
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: return true;
    default: return false;
  }
}

int min_fanin(GateType t) {
  switch (t) {
    case GateType::Input: return 0;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff: return 1;
    default: return 2;
  }
}

int max_fanin(GateType t) {
  switch (t) {
    case GateType::Input: return 0;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff: return 1;
    default: return std::numeric_limits<int>::max();
  }
}

V3 eval_gate(GateType t, std::span<const V3> fanin) {
  switch (t) {
    case GateType::Input:
      throw std::logic_error("eval_gate called on an Input node");
    case GateType::Buf:
    case GateType::Dff:
      assert(fanin.size() == 1);
      return fanin[0];
    case GateType::Not:
      assert(fanin.size() == 1);
      return not3(fanin[0]);
    case GateType::And:
    case GateType::Nand: {
      V3 acc = V3::One;
      for (V3 v : fanin) acc = and3(acc, v);
      return t == GateType::Nand ? not3(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      V3 acc = V3::Zero;
      for (V3 v : fanin) acc = or3(acc, v);
      return t == GateType::Nor ? not3(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      V3 acc = V3::Zero;
      for (V3 v : fanin) acc = xor3(acc, v);
      return t == GateType::Xnor ? not3(acc) : acc;
    }
  }
  return V3::X;
}

std::ostream& operator<<(std::ostream& os, GateType t) { return os << to_string(t); }

}  // namespace pdf
