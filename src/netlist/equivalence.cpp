#include "netlist/equivalence.hpp"

#include <stdexcept>
#include <unordered_map>

#include "base/rng.hpp"
#include "sim/triple_sim.hpp"

namespace pdf {
namespace {

// b's input index for each of a's inputs (by name).
std::vector<std::size_t> align_inputs(const Netlist& a, const Netlist& b) {
  if (a.inputs().size() != b.inputs().size()) {
    throw std::invalid_argument("equivalence: input counts differ");
  }
  std::unordered_map<std::string, std::size_t> b_index;
  for (std::size_t j = 0; j < b.inputs().size(); ++j) {
    b_index[b.node(b.inputs()[j]).name] = j;
  }
  std::vector<std::size_t> map(a.inputs().size());
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    const auto it = b_index.find(a.node(a.inputs()[i]).name);
    if (it == b_index.end()) {
      throw std::invalid_argument("equivalence: input name sets differ");
    }
    map[i] = it->second;
  }
  return map;
}

// Output pairs present in both netlists (matched by name).
std::vector<std::pair<NodeId, NodeId>> align_outputs(const Netlist& a,
                                                     const Netlist& b) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId oa : a.outputs()) {
    if (auto ob = b.find(a.node(oa).name); ob && b.node(*ob).is_output) {
      out.emplace_back(oa, *ob);
    }
  }
  return out;
}

}  // namespace

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceConfig& cfg) {
  const auto input_map = align_inputs(a, b);
  const auto outputs = align_outputs(a, b);
  const std::size_t n = a.inputs().size();

  EquivalenceResult result;
  auto try_vector = [&](const std::vector<V3>& va) -> bool {
    std::vector<V3> vb(n);
    for (std::size_t i = 0; i < n; ++i) vb[input_map[i]] = va[i];
    const auto ra = simulate_plane(a, va);
    const auto rb = simulate_plane(b, vb);
    for (const auto& [oa, ob] : outputs) {
      if (ra[oa] != rb[ob]) {
        result.equivalent = false;
        result.output_name = a.node(oa).name;
        result.input_values = va;
        return false;
      }
    }
    return true;
  };

  std::vector<V3> va(n);
  if (n <= cfg.exhaustive_input_limit) {
    result.exhaustive = true;
    const std::size_t total = std::size_t{1} << n;
    for (std::size_t code = 0; code < total; ++code) {
      for (std::size_t i = 0; i < n; ++i) {
        va[i] = (code >> i) & 1 ? V3::One : V3::Zero;
      }
      if (!try_vector(va)) return result;
    }
    return result;
  }

  Rng rng(cfg.seed);
  for (std::size_t k = 0; k < cfg.random_vectors; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      va[i] = rng.coin() ? V3::One : V3::Zero;
    }
    if (!try_vector(va)) return result;
  }
  return result;
}

}  // namespace pdf
