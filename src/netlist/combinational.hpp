// Sequential-to-combinational extraction.
//
// Delay testing of the ISCAS-89 / ITC-99 benchmarks is done on the
// *combinational logic* of the circuit (the paper, Section 4): every DFF
// output becomes a pseudo primary input and every DFF data input becomes a
// pseudo primary output. This module performs that extraction, producing a
// purely combinational netlist.
#pragma once

#include "netlist/netlist.hpp"

namespace pdf {

/// Result of extraction, with bookkeeping about which inputs/outputs are
/// pseudo (state) versus real.
struct CombinationalCircuit {
  Netlist netlist;
  std::vector<NodeId> pseudo_inputs;   // former DFF outputs (ids in `netlist`)
  std::vector<NodeId> pseudo_outputs;  // former DFF data fanins (ids in `netlist`)
};

/// Extracts the combinational core. Idempotent for already-combinational
/// netlists (returns a copy with empty pseudo lists). The returned netlist is
/// finalized.
CombinationalCircuit extract_combinational(const Netlist& nl);

}  // namespace pdf
