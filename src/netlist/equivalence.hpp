// Combinational equivalence checking.
//
// Validates structural transforms (XOR decomposition, cleanup sweeps,
// generator refactorings): two netlists with identically named inputs are
// compared output-by-output (outputs matched by name; outputs present in
// only one netlist are ignored, which is what buffer sweeps need).
//
//  * up to `exhaustive_input_limit` inputs: complete truth-table comparison,
//    64 minterms per simulation pass (pattern-parallel);
//  * above the limit: `random_vectors` random vectors (probabilistic — a
//    reported mismatch is always real, agreement is evidence).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netlist/netlist.hpp"

namespace pdf {

struct EquivalenceConfig {
  std::size_t exhaustive_input_limit = 16;
  std::size_t random_vectors = 4096;
  std::uint64_t seed = 1;
};

struct EquivalenceResult {
  bool equivalent = true;
  bool exhaustive = false;  // proof vs random evidence
  /// Witness when !equivalent.
  std::string output_name;
  std::vector<V3> input_values;  // aligned with a's inputs()
};

/// Compares `a` and `b`. Throws std::invalid_argument when the input name
/// sets differ (inputs may be ordered differently).
EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceConfig& cfg = {});

}  // namespace pdf
