// Gate primitives of the netlist model.
//
// The ATPG algebra of the paper needs, for every gate type, its controlling
// value (the input value that determines the output alone) and its inversion
// parity. XOR/XNOR have no controlling value; the front end decomposes them
// (netlist/transform.hpp) so the core algorithms only ever see the types for
// which robust side-input constraints are well defined.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "base/logic.hpp"

namespace pdf {

enum class GateType : std::uint8_t {
  Input,  // primary input (or pseudo primary input after DFF extraction)
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,   // accepted by the parser; decomposed before ATPG
  Xnor,  // accepted by the parser; decomposed before ATPG
  Dff,   // sequential element; removed by combinational extraction
};

/// Human-readable lowercase name ("and", "nor", ...).
std::string to_string(GateType t);

/// Parses a .bench operator name (case-insensitive); nullopt if unknown.
std::optional<GateType> gate_type_from_string(const std::string& name);

/// Controlling value: 0 for AND/NAND, 1 for OR/NOR, nullopt for the rest.
std::optional<V3> controlling_value(GateType t);

/// True for NOT/NAND/NOR/XNOR (output parity inverts relative to the
/// non-controlled evaluation).
bool is_inverting(GateType t);

/// True for the types the core ATPG algorithms accept as logic gates.
bool is_primitive_logic(GateType t) ;

/// Minimum/maximum legal fanin count for a type (Input/Dff handled too).
int min_fanin(GateType t);
int max_fanin(GateType t);

/// Hard cap on the fanin count of any single gate, enforced by
/// Netlist::finalize(). The execution plane (triple evaluation, compiled
/// simulation) relies on it to gather fanin values into fixed-size stack
/// buffers instead of heap-allocating per gate evaluation.
inline constexpr std::size_t kMaxGateFanin = 64;

/// Three-valued evaluation of a gate over its fanin values. Input gates must
/// not be evaluated; DFF evaluates as a buffer (only used by full-netlist
/// sanity simulation before extraction).
V3 eval_gate(GateType t, std::span<const V3> fanin);

std::ostream& operator<<(std::ostream& os, GateType t);

}  // namespace pdf
