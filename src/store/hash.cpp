#include "store/hash.hpp"

#include <cstring>

namespace pdf::store {
namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl64(std::uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

inline std::uint64_t read_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t round_step(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) {
  val = round_step(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

// Tail (< 32 bytes) consumption + avalanche, shared by the one-shot and
// streaming forms. The caller has already added the total length into `h`.
std::uint64_t finish_tail(std::uint64_t h, const std::uint8_t* p,
                          std::size_t tail) {
  while (tail >= 8) {
    const std::uint64_t k1 = round_step(0, read_u64le(p));
    h ^= k1;
    h = rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
    tail -= 8;
  }
  if (tail >= 4) {
    h ^= static_cast<std::uint64_t>(read_u32le(p)) * kPrime1;
    h = rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
    tail -= 4;
  }
  while (tail > 0) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = rotl64(h, 11) * kPrime1;
    ++p;
    --tail;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::uint8_t* end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed + 0;
    std::uint64_t v4 = seed - kPrime1;
    const std::uint8_t* limit = end - 32;
    do {
      v1 = round_step(v1, read_u64le(p));
      v2 = round_step(v2, read_u64le(p + 8));
      v3 = round_step(v3, read_u64le(p + 16));
      v4 = round_step(v4, read_u64le(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<std::uint64_t>(len);
  return finish_tail(h, p, static_cast<std::size_t>(end - p));
}

void Hasher64::reset(std::uint64_t seed) {
  seed_ = seed;
  acc_[0] = seed + kPrime1 + kPrime2;
  acc_[1] = seed + kPrime2;
  acc_[2] = seed + 0;
  acc_[3] = seed - kPrime1;
  buf_len_ = 0;
  total_len_ = 0;
}

void Hasher64::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;

  if (buf_len_ + len < 32) {
    std::memcpy(buf_ + buf_len_, p, len);
    buf_len_ += len;
    return;
  }

  if (buf_len_ > 0) {
    const std::size_t fill = 32 - buf_len_;
    std::memcpy(buf_ + buf_len_, p, fill);
    acc_[0] = round_step(acc_[0], read_u64le(buf_));
    acc_[1] = round_step(acc_[1], read_u64le(buf_ + 8));
    acc_[2] = round_step(acc_[2], read_u64le(buf_ + 16));
    acc_[3] = round_step(acc_[3], read_u64le(buf_ + 24));
    p += fill;
    len -= fill;
    buf_len_ = 0;
  }

  while (len >= 32) {
    acc_[0] = round_step(acc_[0], read_u64le(p));
    acc_[1] = round_step(acc_[1], read_u64le(p + 8));
    acc_[2] = round_step(acc_[2], read_u64le(p + 16));
    acc_[3] = round_step(acc_[3], read_u64le(p + 24));
    p += 32;
    len -= 32;
  }

  if (len > 0) {
    std::memcpy(buf_, p, len);
    buf_len_ = len;
  }
}

std::uint64_t Hasher64::digest() const {
  std::uint64_t h;
  if (total_len_ >= 32) {
    h = rotl64(acc_[0], 1) + rotl64(acc_[1], 7) + rotl64(acc_[2], 12) +
        rotl64(acc_[3], 18);
    h = merge_round(h, acc_[0]);
    h = merge_round(h, acc_[1]);
    h = merge_round(h, acc_[2]);
    h = merge_round(h, acc_[3]);
  } else {
    h = seed_ + kPrime5;
  }
  h += total_len_;
  return finish_tail(h, buf_, buf_len_);
}

}  // namespace pdf::store
