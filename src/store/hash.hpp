// Content hashing for the artifact store (XXH64).
//
// The store addresses every artifact by a 64-bit content digest and protects
// every record payload with the same function, so the hash must be fast on
// multi-megabyte buffers (DetectionMatrix records), stable across platforms
// and process runs, and dependency-free. XXH64 fits: it is a well-specified
// public-domain algorithm with published test vectors (checked in
// tests/test_store.cpp), processes 32 bytes per round, and its one-shot and
// streaming forms produce identical digests.
//
// `xxh64()` is the one-shot form; `Hasher64` is the streaming form used to
// fold many key parts (kind, format version, input digests, parameters) into
// one artifact key without materializing a concatenated buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pdf::store {

/// One-shot XXH64 of a byte buffer.
std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed = 0);

inline std::uint64_t xxh64(std::string_view s, std::uint64_t seed = 0) {
  return xxh64(s.data(), s.size(), seed);
}

/// Streaming XXH64. Feed any byte-sliced sequence; digest() equals the
/// one-shot hash of the concatenation. Reusable after reset().
class Hasher64 {
 public:
  explicit Hasher64(std::uint64_t seed = 0) { reset(seed); }

  void reset(std::uint64_t seed = 0);
  void update(const void* data, std::size_t len);
  std::uint64_t digest() const;

  // Convenience feeders for key-part hashing. Scalars are folded in their
  // little-endian byte representation so keys match across hosts.
  void update_u8(std::uint8_t v) { update(&v, 1); }
  void update_u32(std::uint32_t v) {
    const std::uint8_t b[4] = {
        static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
    update(b, 4);
  }
  void update_u64(std::uint64_t v) {
    update_u32(static_cast<std::uint32_t>(v));
    update_u32(static_cast<std::uint32_t>(v >> 32));
  }
  /// Length-prefixed, so {"ab","c"} and {"a","bc"} hash differently.
  void update_string(std::string_view s) {
    update_u64(s.size());
    update(s.data(), s.size());
  }

 private:
  std::uint64_t acc_[4] = {0, 0, 0, 0};
  std::uint8_t buf_[32] = {0};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace pdf::store
