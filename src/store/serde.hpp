// Versioned binary serialization of the pipeline's core value types.
//
// Every codec writes an explicit little-endian byte stream — no struct
// memcpy, no host-order fields — so a record written on any host decodes on
// any other. Types that benefit from zero-copy reads (`CompiledCircuit`,
// `DetectionMatrix`) additionally lay their arrays out 8-byte-aligned inside
// the payload, and ship *view* types (`CompiledCircuitImage`,
// `DetectionMatrixView`) whose spans point straight into an mmapped record;
// the views require a little-endian host (checked at compile time where the
// spans are formed) and fall back to the copying decoder otherwise.
//
// Versioning: each serializable type carries a `Serde<T>` trait with a
// `kind` string and a `version` number. Both are folded into the artifact
// key, so bumping `version` after a layout change silently invalidates every
// record of that kind — old files are simply never looked up again. Decoders
// therefore never need migration paths.
//
// Decode errors throw `SerdeError`; the store layer treats any throw as a
// cache miss.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "atpg/generator.hpp"
#include "atpg/test_pattern.hpp"
#include "core/compiled_circuit.hpp"
#include "enrich/enrichment.hpp"
#include "enrich/target_sets.hpp"
#include "faults/screen.hpp"
#include "faultsim/detection_matrix.hpp"
#include "netlist/netlist.hpp"

namespace pdf::store {

class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

// ---- byte stream primitives -------------------------------------------------

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern; bit-exact round-trip.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }
  /// Zero-pads to an 8-byte boundary (for zero-copy array sections).
  void align8() {
    while (buf_.size() % 8 != 0) u8(0);
  }

  std::size_t size() const { return buf_.size(); }
  std::span<const std::byte> view() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw SerdeError("invalid boolean byte");
    return v != 0;
  }
  std::string str() {
    const std::uint64_t n = length(u64());
    const std::span<const std::byte> s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }
  void align8() {
    while (pos_ % 8 != 0) {
      if (u8() != 0) throw SerdeError("nonzero padding byte");
    }
  }

  /// Consumes `n` bytes; throws on overrun.
  std::span<const std::byte> take(std::size_t n) {
    if (n > data_.size() - pos_) throw SerdeError("truncated record");
    const std::span<const std::byte> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Validates a decoded element count against the remaining bytes (each
  /// element needs at least one byte) so hostile counts cannot drive huge
  /// allocations before the truncation check fires.
  std::uint64_t length(std::uint64_t n, std::size_t min_elem_size = 1) {
    if (min_elem_size != 0 && n > remaining() / min_elem_size) {
      throw SerdeError("element count exceeds record size");
    }
    return n;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  /// Requires the cursor to sit on an 8-byte boundary and returns a typed
  /// span over the next `count` elements without copying. Only valid for
  /// trivially copyable element types on a little-endian host.
  template <typename T>
  std::span<const T> take_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ % 8 != 0) throw SerdeError("misaligned array section");
    const std::span<const std::byte> raw = take(count * sizeof(T));
    return {reinterpret_cast<const T*>(raw.data()), count};
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// ---- per-type codecs --------------------------------------------------------

void encode(ByteWriter& w, const Triple& t);
Triple decode_triple(ByteReader& r);

void encode(ByteWriter& w, const TwoPatternTest& t);
TwoPatternTest decode_test(ByteReader& r);

void encode(ByteWriter& w, std::span<const TwoPatternTest> tests);
std::vector<TwoPatternTest> decode_tests(ByteReader& r);

void encode(ByteWriter& w, const Path& p);
Path decode_path(ByteReader& r);

void encode(ByteWriter& w, const PathDelayFault& f);
PathDelayFault decode_fault(ByteReader& r);

void encode(ByteWriter& w, const TargetFault& f);
TargetFault decode_target_fault(ByteReader& r);

void encode(ByteWriter& w, std::span<const TargetFault> faults);
std::vector<TargetFault> decode_target_faults(ByteReader& r);

void encode(ByteWriter& w, const LengthProfile& p);
LengthProfile decode_length_profile(ByteReader& r);

void encode(ByteWriter& w, const ScreenStats& s);
ScreenStats decode_screen_stats(ByteReader& r);

void encode(ByteWriter& w, const TargetSets& ts);
TargetSets decode_target_sets(ByteReader& r);

void encode(ByteWriter& w, const GenerationResult& r);
GenerationResult decode_generation_result(ByteReader& r);

void encode(ByteWriter& w, const UnionCoverage& c);
UnionCoverage decode_union_coverage(ByteReader& r);

/// Full structural encoding including names, so digest(netlist) keys the
/// store and decode rebuilds an identical finalized netlist.
void encode(ByteWriter& w, const Netlist& nl);
Netlist decode_netlist(ByteReader& r);

// ---- zero-copy record images ------------------------------------------------

/// DetectionMatrix payload: three u64 header words, then the row-major word
/// buffer (already 8-byte aligned). The view borrows the payload bytes.
void encode(ByteWriter& w, const DetectionMatrix& m);
DetectionMatrix decode_detection_matrix(ByteReader& r);

class DetectionMatrixView {
 public:
  /// Binds to an encoded DetectionMatrix payload without copying the words.
  /// The underlying buffer must outlive the view.
  explicit DetectionMatrixView(std::span<const std::byte> payload);

  std::size_t fault_count() const { return fault_count_; }
  std::size_t test_count() const { return test_count_; }
  std::size_t words_per_row() const { return words_per_row_; }

  std::span<const std::uint64_t> row(std::size_t fault) const {
    return words_.subspan(fault * words_per_row_, words_per_row_);
  }
  bool bit(std::size_t fault, std::size_t test) const {
    return (row(fault)[test / 64] >> (test % 64)) & 1;
  }
  std::span<const std::uint64_t> words() const { return words_; }

  /// Deep copy into an owning DetectionMatrix.
  DetectionMatrix materialize() const;

 private:
  std::size_t fault_count_ = 0;
  std::size_t test_count_ = 0;
  std::size_t words_per_row_ = 0;
  std::span<const std::uint64_t> words_;
};

/// CompiledCircuit payload: scalar header, then each flat array as an
/// 8-byte-aligned section. The image mirrors the CompiledCircuit read API
/// (minus the netlist back-pointer) over borrowed memory.
void encode(ByteWriter& w, const CompiledCircuit& cc);

class CompiledCircuitImage {
 public:
  /// Binds to an encoded CompiledCircuit payload without copying any array.
  /// The underlying buffer must outlive the image.
  explicit CompiledCircuitImage(std::span<const std::byte> payload);

  std::size_t node_count() const { return types_.size(); }
  GateType type(NodeId id) const { return static_cast<GateType>(types_[id]); }
  std::span<const std::uint8_t> types() const { return types_; }
  int level(NodeId id) const { return levels_[id]; }
  std::span<const std::int32_t> levels() const { return levels_; }
  int depth() const { return depth_; }
  bool is_output(NodeId id) const { return is_output_[id] != 0; }
  std::span<const std::uint8_t> output_flags() const { return is_output_; }
  bool has_sequential() const { return has_sequential_; }
  std::size_t max_fanin() const { return max_fanin_; }

  std::span<const NodeId> fanins(NodeId id) const {
    return fanin_.subspan(fanin_off_[id], fanin_off_[id + 1] - fanin_off_[id]);
  }
  std::span<const NodeId> fanouts(NodeId id) const {
    return fanout_.subspan(fanout_off_[id],
                           fanout_off_[id + 1] - fanout_off_[id]);
  }
  std::span<const NodeId> inputs() const { return inputs_; }
  std::span<const NodeId> outputs() const { return outputs_; }
  int input_index(NodeId id) const { return input_index_[id]; }
  std::span<const NodeId> topo_order() const { return topo_; }
  std::span<const std::uint32_t> level_offsets() const { return level_off_; }
  std::span<const NodeId> level_nodes(int level) const {
    const auto l = static_cast<std::size_t>(level);
    return topo_.subspan(level_off_[l], level_off_[l + 1] - level_off_[l]);
  }

 private:
  std::span<const std::uint8_t> types_;
  std::span<const std::int32_t> levels_;
  std::span<const std::uint8_t> is_output_;
  std::span<const std::uint32_t> fanin_off_;
  std::span<const NodeId> fanin_;
  std::span<const std::uint32_t> fanout_off_;
  std::span<const NodeId> fanout_;
  std::span<const NodeId> inputs_;
  std::span<const NodeId> outputs_;
  std::span<const std::int32_t> input_index_;
  std::span<const NodeId> topo_;
  std::span<const std::uint32_t> level_off_;
  std::size_t max_fanin_ = 0;
  int depth_ = 0;
  bool has_sequential_ = false;
};

// ---- Serde traits -----------------------------------------------------------

/// Trait binding a value type to its record kind, format version and codec.
/// `kind` + `version` feed the artifact key (see stage_cache.hpp), so any
/// layout change only needs a version bump to invalidate stale records.
template <typename T>
struct Serde;

template <>
struct Serde<TargetSets> {
  static constexpr std::string_view kind = "target_sets";
  static constexpr std::uint16_t version = 1;
  static void put(ByteWriter& w, const TargetSets& v) { encode(w, v); }
  static TargetSets get(ByteReader& r) { return decode_target_sets(r); }
};

template <>
struct Serde<GenerationResult> {
  static constexpr std::string_view kind = "generation_result";
  // v2: added primary_targets between the detection flags and the stats.
  static constexpr std::uint16_t version = 2;
  static void put(ByteWriter& w, const GenerationResult& v) { encode(w, v); }
  static GenerationResult get(ByteReader& r) {
    return decode_generation_result(r);
  }
};

template <>
struct Serde<UnionCoverage> {
  static constexpr std::string_view kind = "union_coverage";
  static constexpr std::uint16_t version = 1;
  static void put(ByteWriter& w, const UnionCoverage& v) { encode(w, v); }
  static UnionCoverage get(ByteReader& r) { return decode_union_coverage(r); }
};

template <>
struct Serde<DetectionMatrix> {
  static constexpr std::string_view kind = "detection_matrix";
  static constexpr std::uint16_t version = 1;
  static void put(ByteWriter& w, const DetectionMatrix& v) { encode(w, v); }
  static DetectionMatrix get(ByteReader& r) {
    return decode_detection_matrix(r);
  }
};

template <>
struct Serde<Netlist> {
  static constexpr std::string_view kind = "netlist";
  static constexpr std::uint16_t version = 1;
  static void put(ByteWriter& w, const Netlist& v) { encode(w, v); }
  static Netlist get(ByteReader& r) { return decode_netlist(r); }
};

template <>
struct Serde<std::vector<TwoPatternTest>> {
  static constexpr std::string_view kind = "test_set";
  static constexpr std::uint16_t version = 1;
  static void put(ByteWriter& w, const std::vector<TwoPatternTest>& v) {
    encode(w, std::span<const TwoPatternTest>(v));
  }
  static std::vector<TwoPatternTest> get(ByteReader& r) {
    return decode_tests(r);
  }
};

// ---- content digests --------------------------------------------------------

/// Structural digest of a finalized netlist (types, fanins, outputs, names).
std::uint64_t digest(const Netlist& nl);

/// Parameter digests for key derivation. Every field participates, so any
/// configuration change misses the cache instead of serving stale results.
std::uint64_t digest(const TargetSetConfig& cfg);
std::uint64_t digest(const GeneratorConfig& cfg);

/// Content digest of a test set (used to key coverage/matrix artifacts).
std::uint64_t digest(std::span<const TwoPatternTest> tests);

/// Content digest of a fault list.
std::uint64_t digest(std::span<const TargetFault> faults);

}  // namespace pdf::store
