#include "store/serde.hpp"

#include <bit>

#include "store/hash.hpp"

namespace pdf::store {
namespace {

// The zero-copy views reinterpret mmapped little-endian sections in place;
// the repo only targets little-endian hosts (same assumption the compiled
// simulation kernels make), so make the constraint explicit once.
static_assert(std::endian::native == std::endian::little,
              "zero-copy artifact views require a little-endian host");

V3 v3_from_byte(std::uint8_t b) {
  if (b > static_cast<std::uint8_t>(V3::X)) throw SerdeError("invalid V3 byte");
  return static_cast<V3>(b);
}

void encode_bool_vector(ByteWriter& w, const std::vector<bool>& v) {
  w.u64(v.size());
  // Packed 8 per byte; bit-exact and 8x smaller than byte-per-flag.
  std::uint8_t acc = 0;
  int filled = 0;
  for (const bool b : v) {
    acc = static_cast<std::uint8_t>(acc | (static_cast<std::uint8_t>(b) << filled));
    if (++filled == 8) {
      w.u8(acc);
      acc = 0;
      filled = 0;
    }
  }
  if (filled > 0) w.u8(acc);
}

std::vector<bool> decode_bool_vector(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64(), 0);
  if (n / 8 > r.remaining()) throw SerdeError("bool vector exceeds record");
  std::vector<bool> out(n);
  std::uint8_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) acc = r.u8();
    out[i] = (acc >> (i % 8)) & 1;
  }
  return out;
}

void encode_u32_array(ByteWriter& w, std::span<const std::uint32_t> v) {
  w.u64(v.size());
  w.align8();
  for (const std::uint32_t x : v) w.u32(x);
  w.align8();
}

std::span<const std::uint32_t> decode_u32_array(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64(), sizeof(std::uint32_t));
  r.align8();
  const auto out = r.take_array<std::uint32_t>(n);
  r.align8();
  return out;
}

}  // namespace

// ---- small value types ------------------------------------------------------

void encode(ByteWriter& w, const Triple& t) {
  w.u8(static_cast<std::uint8_t>(t.a1));
  w.u8(static_cast<std::uint8_t>(t.a2));
  w.u8(static_cast<std::uint8_t>(t.a3));
}

Triple decode_triple(ByteReader& r) {
  Triple t;
  t.a1 = v3_from_byte(r.u8());
  t.a2 = v3_from_byte(r.u8());
  t.a3 = v3_from_byte(r.u8());
  return t;
}

void encode(ByteWriter& w, const TwoPatternTest& t) {
  w.u64(t.pi_values.size());
  for (const Triple& v : t.pi_values) encode(w, v);
}

TwoPatternTest decode_test(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64(), 3);
  TwoPatternTest t;
  t.pi_values.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) t.pi_values.push_back(decode_triple(r));
  return t;
}

void encode(ByteWriter& w, std::span<const TwoPatternTest> tests) {
  w.u64(tests.size());
  for (const TwoPatternTest& t : tests) encode(w, t);
}

std::vector<TwoPatternTest> decode_tests(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64());
  std::vector<TwoPatternTest> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_test(r));
  return out;
}

void encode(ByteWriter& w, const Path& p) {
  w.u64(p.nodes.size());
  for (const NodeId id : p.nodes) w.u32(id);
}

Path decode_path(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64(), sizeof(NodeId));
  Path p;
  p.nodes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) p.nodes.push_back(r.u32());
  return p;
}

void encode(ByteWriter& w, const PathDelayFault& f) {
  encode(w, f.path);
  w.boolean(f.rising_source);
  w.i32(f.length);
}

PathDelayFault decode_fault(ByteReader& r) {
  PathDelayFault f;
  f.path = decode_path(r);
  f.rising_source = r.boolean();
  f.length = r.i32();
  return f;
}

void encode(ByteWriter& w, const TargetFault& f) {
  encode(w, f.fault);
  w.u64(f.requirements.size());
  for (const ValueRequirement& vr : f.requirements) {
    w.u32(vr.line);
    encode(w, vr.value);
  }
}

TargetFault decode_target_fault(ByteReader& r) {
  TargetFault f;
  f.fault = decode_fault(r);
  const std::uint64_t n = r.length(r.u64(), sizeof(NodeId) + 3);
  f.requirements.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ValueRequirement vr;
    vr.line = r.u32();
    vr.value = decode_triple(r);
    f.requirements.push_back(vr);
  }
  return f;
}

void encode(ByteWriter& w, std::span<const TargetFault> faults) {
  w.u64(faults.size());
  for (const TargetFault& f : faults) encode(w, f);
}

std::vector<TargetFault> decode_target_faults(ByteReader& r) {
  const std::uint64_t n = r.length(r.u64());
  std::vector<TargetFault> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_target_fault(r));
  return out;
}

void encode(ByteWriter& w, const LengthProfile& p) {
  w.u64(p.buckets().size());
  for (const LengthBucket& b : p.buckets()) {
    w.i32(b.length);
    w.u64(b.count);
    w.u64(b.cumulative);
  }
}

LengthProfile decode_length_profile(ByteReader& r) {
  // LengthProfile only constructs from raw lengths; expand the buckets back
  // into one length per item and rebuild — bit-identical because buckets are
  // a pure function of the multiset of lengths.
  const std::uint64_t n = r.length(r.u64(), 4 + 8 + 8);
  std::vector<int> lengths;
  std::uint64_t expected_total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const int length = r.i32();
    const std::uint64_t count = r.u64();
    const std::uint64_t cumulative = r.u64();
    expected_total += count;
    if (cumulative != expected_total) {
      throw SerdeError("inconsistent length profile cumulative count");
    }
    if (count > (1ULL << 32)) throw SerdeError("length bucket count too large");
    lengths.insert(lengths.end(), count, length);
  }
  LengthProfile out(lengths);
  if (out.buckets().size() != n) throw SerdeError("length profile mismatch");
  return out;
}

void encode(ByteWriter& w, const ScreenStats& s) {
  w.u64(s.input_faults);
  w.u64(s.conflict_dropped);
  w.u64(s.implication_dropped);
  w.u64(s.kept);
}

ScreenStats decode_screen_stats(ByteReader& r) {
  ScreenStats s;
  s.input_faults = r.u64();
  s.conflict_dropped = r.u64();
  s.implication_dropped = r.u64();
  s.kept = r.u64();
  return s;
}

void encode(ByteWriter& w, const TargetSets& ts) {
  encode(w, std::span<const TargetFault>(ts.p0));
  encode(w, std::span<const TargetFault>(ts.p1));
  w.u64(ts.i0);
  w.i32(ts.cutoff_length);
  encode(w, ts.profile);
  encode(w, ts.screen);
  w.u64(ts.enumerated_paths);
  w.boolean(ts.enumeration_truncated);
}

TargetSets decode_target_sets(ByteReader& r) {
  TargetSets ts;
  ts.p0 = decode_target_faults(r);
  ts.p1 = decode_target_faults(r);
  ts.i0 = r.u64();
  ts.cutoff_length = r.i32();
  ts.profile = decode_length_profile(r);
  ts.screen = decode_screen_stats(r);
  ts.enumerated_paths = r.u64();
  ts.enumeration_truncated = r.boolean();
  return ts;
}

void encode(ByteWriter& w, const GenerationResult& g) {
  encode(w, std::span<const TwoPatternTest>(g.tests));
  w.u64(g.detected.size());
  for (const std::vector<bool>& set : g.detected) encode_bool_vector(w, set);
  encode_bool_vector(w, g.detected_p0);
  encode_bool_vector(w, g.detected_p1);
  w.u64(g.primary_targets.size());
  for (std::size_t t : g.primary_targets) w.u64(t);
  w.u64(g.stats.primary_attempts);
  w.u64(g.stats.primary_failures);
  w.u64(g.stats.secondary_accepted);
  w.u64(g.stats.secondary_rejected);
  w.u64(g.stats.justify.attempts);
  w.u64(g.stats.justify.probes);
  w.u64(g.stats.justify.passes);
  w.u64(g.stats.justify.decisions);
  w.u64(g.stats.justify.successes);
  w.u64(g.stats.justify.failures);
  w.f64(g.stats.seconds);
}

GenerationResult decode_generation_result(ByteReader& r) {
  GenerationResult g;
  g.tests = decode_tests(r);
  const std::uint64_t sets = r.length(r.u64());
  g.detected.reserve(sets);
  for (std::uint64_t i = 0; i < sets; ++i) {
    g.detected.push_back(decode_bool_vector(r));
  }
  g.detected_p0 = decode_bool_vector(r);
  g.detected_p1 = decode_bool_vector(r);
  const std::uint64_t targets = r.length(r.u64());
  g.primary_targets.reserve(targets);
  for (std::uint64_t i = 0; i < targets; ++i) g.primary_targets.push_back(r.u64());
  g.stats.primary_attempts = r.u64();
  g.stats.primary_failures = r.u64();
  g.stats.secondary_accepted = r.u64();
  g.stats.secondary_rejected = r.u64();
  g.stats.justify.attempts = r.u64();
  g.stats.justify.probes = r.u64();
  g.stats.justify.passes = r.u64();
  g.stats.justify.decisions = r.u64();
  g.stats.justify.successes = r.u64();
  g.stats.justify.failures = r.u64();
  g.stats.seconds = r.f64();
  return g;
}

void encode(ByteWriter& w, const UnionCoverage& c) {
  w.u64(c.p0_detected);
  w.u64(c.p1_detected);
  w.u64(c.p0_total);
  w.u64(c.p1_total);
}

UnionCoverage decode_union_coverage(ByteReader& r) {
  UnionCoverage c;
  c.p0_detected = r.u64();
  c.p1_detected = r.u64();
  c.p0_total = r.u64();
  c.p1_total = r.u64();
  return c;
}

// ---- netlist ----------------------------------------------------------------

void encode(ByteWriter& w, const Netlist& nl) {
  w.str(nl.name());
  w.u64(nl.node_count());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    w.str(n.name);
    w.u8(static_cast<std::uint8_t>(n.type));
    w.u64(n.fanin.size());
    for (const NodeId f : n.fanin) w.u32(f);
    w.boolean(n.is_output);
  }
}

Netlist decode_netlist(ByteReader& r) {
  Netlist nl(r.str());
  const std::uint64_t count = r.length(r.u64());
  std::vector<NodeId> output_ids;
  for (std::uint64_t id = 0; id < count; ++id) {
    const std::string name = r.str();
    const std::uint8_t type_byte = r.u8();
    if (type_byte > static_cast<std::uint8_t>(GateType::Dff)) {
      throw SerdeError("invalid gate type byte");
    }
    const auto type = static_cast<GateType>(type_byte);
    const std::uint64_t fanin_count = r.length(r.u64(), sizeof(NodeId));
    std::vector<NodeId> fanin;
    fanin.reserve(fanin_count);
    for (std::uint64_t i = 0; i < fanin_count; ++i) {
      const NodeId f = r.u32();
      if (f >= count) throw SerdeError("fanin id out of range");
      fanin.push_back(f);
    }
    NodeId got;
    if (type == GateType::Input) {
      if (!fanin.empty()) throw SerdeError("input node with fanin");
      got = nl.add_input(name);
    } else {
      // Placeholder + set_fanin tolerates forward references (DFF loops).
      got = nl.add_gate_placeholder(name, type);
      nl.set_fanin(got, std::move(fanin));
    }
    if (got != id) throw SerdeError("node id mismatch while decoding netlist");
    if (r.boolean()) output_ids.push_back(got);
  }
  for (const NodeId id : output_ids) nl.mark_output(id);
  nl.finalize();
  return nl;
}

// ---- detection matrix (zero-copy layout) ------------------------------------

void encode(ByteWriter& w, const DetectionMatrix& m) {
  w.u64(m.fault_count());
  w.u64(m.test_count());
  w.u64(m.words_per_row());
  for (const std::uint64_t word : m.words()) w.u64(word);
}

DetectionMatrix decode_detection_matrix(ByteReader& r) {
  const DetectionMatrixView view{r.take(r.remaining())};
  return view.materialize();
}

DetectionMatrixView::DetectionMatrixView(std::span<const std::byte> payload) {
  ByteReader r(payload);
  fault_count_ = r.u64();
  test_count_ = r.u64();
  words_per_row_ = r.u64();
  if (words_per_row_ != (test_count_ + 63) / 64) {
    throw SerdeError("detection matrix stride mismatch");
  }
  if (fault_count_ != 0 &&
      words_per_row_ > r.remaining() / sizeof(std::uint64_t) / fault_count_) {
    throw SerdeError("detection matrix exceeds record");
  }
  words_ = r.take_array<std::uint64_t>(fault_count_ * words_per_row_);
  if (!r.exhausted()) throw SerdeError("trailing bytes after detection matrix");
}

DetectionMatrix DetectionMatrixView::materialize() const {
  DetectionMatrix m(fault_count_, test_count_);
  for (std::size_t f = 0; f < fault_count_; ++f) {
    const std::span<const std::uint64_t> src = row(f);
    const std::span<std::uint64_t> dst = m.row(f);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
  }
  return m;
}

// ---- compiled circuit (zero-copy layout) ------------------------------------

void encode(ByteWriter& w, const CompiledCircuit& cc) {
  const std::size_t n = cc.node_count();
  w.u64(n);
  w.i32(cc.depth());
  w.u64(cc.max_fanin());
  w.boolean(cc.has_sequential());

  // types: u8 per node.
  w.align8();
  for (NodeId id = 0; id < n; ++id) w.u8(static_cast<std::uint8_t>(cc.type(id)));
  w.align8();
  // levels: i32 per node.
  for (NodeId id = 0; id < n; ++id) w.i32(cc.level(id));
  w.align8();
  // output flags: u8 per node.
  for (NodeId id = 0; id < n; ++id) w.u8(cc.is_output(id) ? 1 : 0);
  w.align8();
  // input_index: i32 per node (-1 for non-inputs).
  for (NodeId id = 0; id < n; ++id) w.i32(cc.input_index(id));
  w.align8();

  // CSR adjacency, rebuilt as offsets + flat index arrays.
  std::vector<std::uint32_t> fanin_off(n + 1, 0);
  std::vector<std::uint32_t> fanout_off(n + 1, 0);
  std::vector<std::uint32_t> fanin_flat;
  std::vector<std::uint32_t> fanout_flat;
  for (NodeId id = 0; id < n; ++id) {
    for (const NodeId f : cc.fanins(id)) fanin_flat.push_back(f);
    fanin_off[id + 1] = static_cast<std::uint32_t>(fanin_flat.size());
    for (const NodeId f : cc.fanouts(id)) fanout_flat.push_back(f);
    fanout_off[id + 1] = static_cast<std::uint32_t>(fanout_flat.size());
  }
  encode_u32_array(w, fanin_off);
  encode_u32_array(w, fanin_flat);
  encode_u32_array(w, fanout_off);
  encode_u32_array(w, fanout_flat);

  std::vector<std::uint32_t> tmp(cc.inputs().begin(), cc.inputs().end());
  encode_u32_array(w, tmp);
  tmp.assign(cc.outputs().begin(), cc.outputs().end());
  encode_u32_array(w, tmp);
  tmp.assign(cc.topo_order().begin(), cc.topo_order().end());
  encode_u32_array(w, tmp);
  tmp.assign(cc.level_offsets().begin(), cc.level_offsets().end());
  encode_u32_array(w, tmp);
}

CompiledCircuitImage::CompiledCircuitImage(std::span<const std::byte> payload) {
  ByteReader r(payload);
  const std::uint64_t n = r.length(r.u64(), 0);
  depth_ = r.i32();
  max_fanin_ = r.u64();
  has_sequential_ = r.boolean();

  r.align8();
  const std::span<const std::byte> types_raw = r.take(n);
  types_ = {reinterpret_cast<const std::uint8_t*>(types_raw.data()), n};
  for (const std::uint8_t t : types_) {
    if (t > static_cast<std::uint8_t>(GateType::Dff)) {
      throw SerdeError("invalid gate type byte");
    }
  }
  r.align8();
  levels_ = r.take_array<std::int32_t>(n);
  r.align8();
  const std::span<const std::byte> out_raw = r.take(n);
  is_output_ = {reinterpret_cast<const std::uint8_t*>(out_raw.data()), n};
  r.align8();
  input_index_ = r.take_array<std::int32_t>(n);
  r.align8();

  fanin_off_ = decode_u32_array(r);
  fanin_ = decode_u32_array(r);
  fanout_off_ = decode_u32_array(r);
  fanout_ = decode_u32_array(r);
  inputs_ = decode_u32_array(r);
  outputs_ = decode_u32_array(r);
  topo_ = decode_u32_array(r);
  level_off_ = decode_u32_array(r);

  if (fanin_off_.size() != n + 1 || fanout_off_.size() != n + 1) {
    throw SerdeError("compiled circuit offset table size mismatch");
  }
  if (!fanin_off_.empty() && fanin_off_.back() != fanin_.size()) {
    throw SerdeError("compiled circuit fanin CSR mismatch");
  }
  if (!fanout_off_.empty() && fanout_off_.back() != fanout_.size()) {
    throw SerdeError("compiled circuit fanout CSR mismatch");
  }
  if (topo_.size() != n) throw SerdeError("compiled circuit topo size mismatch");
  if (!r.exhausted()) throw SerdeError("trailing bytes after compiled circuit");
}

// ---- digests ----------------------------------------------------------------

std::uint64_t digest(const Netlist& nl) {
  ByteWriter w;
  encode(w, nl);
  Hasher64 h;
  h.update_string("netlist");
  h.update(w.view().data(), w.view().size());
  return h.digest();
}

std::uint64_t digest(const TargetSetConfig& cfg) {
  Hasher64 h;
  h.update_string("target_set_config");
  h.update_u64(cfg.n_p);
  h.update_u64(cfg.n_p0);
  h.update_u8(static_cast<std::uint8_t>(cfg.sensitization));
  h.update_u64(cfg.stem_weights.size());
  for (const int wgt : cfg.stem_weights) {
    h.update_u32(static_cast<std::uint32_t>(wgt));
  }
  h.update_u64(cfg.enumeration.max_faults);
  h.update_u32(static_cast<std::uint32_t>(cfg.enumeration.faults_per_path));
  h.update_u8(static_cast<std::uint8_t>(cfg.enumeration.selection));
  h.update_u8(static_cast<std::uint8_t>(cfg.enumeration.prune));
  h.update_u64(cfg.enumeration.max_steps);
  h.update_u64(cfg.enumeration.hard_cap_factor);
  h.update_u8(cfg.enumeration.record_trace ? 1 : 0);
  return h.digest();
}

std::uint64_t digest(const GeneratorConfig& cfg) {
  Hasher64 h;
  h.update_string("generator_config");
  h.update_u8(static_cast<std::uint8_t>(cfg.heuristic));
  h.update_u64(cfg.seed);
  h.update_u32(static_cast<std::uint32_t>(cfg.justify.max_attempts));
  h.update_u8(cfg.justify.use_implication_seed ? 1 : 0);
  h.update_u8(cfg.shuffle_arbitrary ? 1 : 0);
  h.update_u64(cfg.max_consecutive_secondary_failures);
  h.update_u8(cfg.use_branch_and_bound ? 1 : 0);
  h.update_u64(cfg.bnb.max_backtracks);
  h.update_u8(cfg.bnb.use_implication_seed ? 1 : 0);
  return h.digest();
}

std::uint64_t digest(std::span<const TwoPatternTest> tests) {
  ByteWriter w;
  encode(w, tests);
  Hasher64 h;
  h.update_string("test_set");
  h.update(w.view().data(), w.view().size());
  return h.digest();
}

std::uint64_t digest(std::span<const TargetFault> faults) {
  ByteWriter w;
  encode(w, faults);
  Hasher64 h;
  h.update_string("fault_set");
  h.update(w.view().data(), w.view().size());
  return h.digest();
}

}  // namespace pdf::store
