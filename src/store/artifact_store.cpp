#include "store/artifact_store.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "runtime/metrics.hpp"
#include "store/hash.hpp"

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pdf::store {
namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'P', 'D', 'A', 'S'};

runtime::Metrics::Counter& hits_counter() {
  static auto& c = runtime::Metrics::global().counter("store.hits");
  return c;
}
runtime::Metrics::Counter& misses_counter() {
  static auto& c = runtime::Metrics::global().counter("store.misses");
  return c;
}
runtime::Metrics::Counter& corrupt_counter() {
  static auto& c = runtime::Metrics::global().counter("store.corrupt");
  return c;
}
runtime::Metrics::Counter& bytes_read_counter() {
  static auto& c = runtime::Metrics::global().counter("store.bytes_read");
  return c;
}
runtime::Metrics::Counter& bytes_written_counter() {
  static auto& c = runtime::Metrics::global().counter("store.bytes_written");
  return c;
}
runtime::Metrics::Timer& read_timer() {
  static auto& t = runtime::Metrics::global().timer("store.read_ns");
  return t;
}
runtime::Metrics::Timer& write_timer() {
  static auto& t = runtime::Metrics::global().timer("store.write_ns");
  return t;
}
runtime::Metrics::Histogram& record_bytes_hist() {
  static auto& h = runtime::Metrics::global().histogram("store.record_bytes");
  return h;
}
runtime::Metrics::Histogram& hit_ns_hist() {
  static auto& h = runtime::Metrics::global().histogram("store.hit_ns");
  return h;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void put_u16le(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u64le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint64_t get_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::string key_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

/// Unique-per-call temp suffix: pid + a process-wide counter, so concurrent
/// writers (threads or processes) in one directory never collide.
std::string temp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
#if defined(_WIN32)
  const unsigned long pid = 0;
#else
  const unsigned long pid = static_cast<unsigned long>(::getpid());
#endif
  return ".tmp-" + std::to_string(pid) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

#if !defined(_WIN32)
bool write_file_durable(const fs::path& path, const std::uint8_t* header,
                        std::size_t header_size,
                        std::span<const std::byte> payload) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = true;
  auto write_all = [&](const void* data, std::size_t len) {
    const auto* p = static_cast<const char*>(data);
    while (len > 0) {
      const ::ssize_t n = ::write(fd, p, len);
      if (n <= 0) return false;
      p += n;
      len -= static_cast<std::size_t>(n);
    }
    return true;
  };
  ok = write_all(header, header_size) && write_all(payload.data(), payload.size());
  // fsync before the rename so a crash can't publish a half-written record
  // under the final name.
  ok = ok && ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  return ok;
}
#else
bool write_file_durable(const fs::path& path, const std::uint8_t* header,
                        std::size_t header_size,
                        std::span<const std::byte> payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(header),
            static_cast<std::streamsize>(header_size));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  out.flush();
  return static_cast<bool>(out);
}
#endif

}  // namespace

struct ArtifactStore::Header {
  std::uint16_t container_version = 0;
  std::uint16_t kind_version = 0;
  std::uint64_t key = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t payload_hash = 0;
};

// ---- MappedArtifact ---------------------------------------------------------

MappedArtifact::MappedArtifact(void* base, std::size_t file_size,
                               std::size_t payload_size)
    : base_(base), file_size_(file_size), payload_size_(payload_size) {}

MappedArtifact::MappedArtifact(MappedArtifact&& other) noexcept
    : base_(other.base_),
      file_size_(other.file_size_),
      payload_size_(other.payload_size_) {
  other.base_ = nullptr;
  other.file_size_ = 0;
  other.payload_size_ = 0;
}

MappedArtifact& MappedArtifact::operator=(MappedArtifact&& other) noexcept {
  if (this != &other) {
    this->~MappedArtifact();
    new (this) MappedArtifact(std::move(other));
  }
  return *this;
}

MappedArtifact::~MappedArtifact() {
#if !defined(_WIN32)
  if (base_ != nullptr) ::munmap(base_, file_size_);
#else
  delete[] static_cast<std::byte*>(base_);
#endif
  base_ = nullptr;
}

// ---- ArtifactStore ----------------------------------------------------------

ArtifactStore::ArtifactStore(fs::path root) : root_(std::move(root)) {}

fs::path ArtifactStore::path_of(const ArtifactKey& key) const {
  return root_ / key.kind / (key_hex(key.key) + ".art");
}

bool ArtifactStore::put(const ArtifactKey& key, std::uint16_t kind_version,
                        std::span<const std::byte> payload) {
  const auto write_scope = write_timer().measure();
  const fs::path final_path = path_of(key);
  std::error_code ec;
  fs::create_directories(final_path.parent_path(), ec);
  if (ec) return false;

  std::uint8_t header[MappedArtifact::kHeaderSize];
  std::memcpy(header, kMagic, 4);
  put_u16le(header + 4, kContainerVersion);
  put_u16le(header + 6, kind_version);
  put_u64le(header + 8, key.key);
  put_u64le(header + 16, payload.size());
  put_u64le(header + 24, xxh64(payload.data(), payload.size()));

  const fs::path temp_path = final_path.string() + temp_suffix();
  if (!write_file_durable(temp_path, header, sizeof header, payload)) {
    fs::remove(temp_path, ec);
    return false;
  }
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    return false;
  }
  bytes_written_counter().add(sizeof header + payload.size());
  record_bytes_hist().record(sizeof header + payload.size());
  return true;
}

std::optional<ArtifactStore::Header> ArtifactStore::load_header(
    const fs::path& path, const ArtifactKey& key, std::uint16_t kind_version,
    std::span<const std::byte> file_bytes) {
  const auto fail = [&]() -> std::optional<Header> {
    corrupt_counter().add();
    quarantine(path);
    return std::nullopt;
  };
  if (file_bytes.size() < MappedArtifact::kHeaderSize) return fail();
  const auto* h = reinterpret_cast<const std::uint8_t*>(file_bytes.data());
  if (std::memcmp(h, kMagic, 4) != 0) return fail();
  Header out;
  out.container_version = get_u16le(h + 4);
  out.kind_version = get_u16le(h + 6);
  out.key = get_u64le(h + 8);
  out.payload_size = get_u64le(h + 16);
  out.payload_hash = get_u64le(h + 24);
  // A version difference is not corruption (a different build wrote it), but
  // the key is derived from the versions, so a mismatch here means the file
  // content does not match its address: quarantine.
  if (out.container_version != kContainerVersion ||
      out.kind_version != kind_version || out.key != key.key) {
    return fail();
  }
  if (out.payload_size != file_bytes.size() - MappedArtifact::kHeaderSize) {
    return fail();
  }
  const std::span<const std::byte> payload =
      file_bytes.subspan(MappedArtifact::kHeaderSize);
  if (xxh64(payload.data(), payload.size()) != out.payload_hash) return fail();
  return out;
}

void ArtifactStore::quarantine(const fs::path& path) {
  std::error_code ec;
  fs::rename(path, path.string() + ".corrupt", ec);
  if (ec) fs::remove(path, ec);  // last resort: clear the bad slot
}

std::optional<std::vector<std::byte>> ArtifactStore::get(
    const ArtifactKey& key, std::uint16_t kind_version) {
  const auto read_scope = read_timer().measure();
  const std::uint64_t t0 = now_ns();
  const fs::path path = path_of(key);

  std::vector<std::byte> bytes;
  {
#if !defined(_WIN32)
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      misses_counter().add();
      return std::nullopt;
    }
    struct ::stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      misses_counter().add();
      return std::nullopt;
    }
    bytes.resize(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    bool ok = true;
    while (off < bytes.size()) {
      const ::ssize_t n =
          ::read(fd, bytes.data() + off, bytes.size() - off);
      if (n <= 0) {
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (!ok) {
      misses_counter().add();
      return std::nullopt;
    }
#else
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      misses_counter().add();
      return std::nullopt;
    }
    bytes.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in) {
      misses_counter().add();
      return std::nullopt;
    }
#endif
  }

  if (!load_header(path, key, kind_version, bytes)) {
    misses_counter().add();
    return std::nullopt;
  }
  hits_counter().add();
  bytes_read_counter().add(bytes.size());
  record_bytes_hist().record(bytes.size());
  hit_ns_hist().record(now_ns() - t0);
  bytes.erase(bytes.begin(), bytes.begin() + MappedArtifact::kHeaderSize);
  return bytes;
}

std::optional<MappedArtifact> ArtifactStore::map(const ArtifactKey& key,
                                                 std::uint16_t kind_version) {
  const auto read_scope = read_timer().measure();
  const std::uint64_t t0 = now_ns();
  const fs::path path = path_of(key);
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    misses_counter().add();
    return std::nullopt;
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    misses_counter().add();
    return std::nullopt;
  }
  if (st.st_size < static_cast<::off_t>(MappedArtifact::kHeaderSize)) {
    ::close(fd);
    misses_counter().add();
    corrupt_counter().add();
    quarantine(path);
    return std::nullopt;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    misses_counter().add();
    return std::nullopt;
  }
  MappedArtifact mapped(base, size, size - MappedArtifact::kHeaderSize);
  const std::span<const std::byte> file_bytes{
      static_cast<const std::byte*>(base), size};
  if (!load_header(path, key, kind_version, file_bytes)) {
    misses_counter().add();
    return std::nullopt;
  }
  hits_counter().add();
  bytes_read_counter().add(size);
  record_bytes_hist().record(size);
  hit_ns_hist().record(now_ns() - t0);
  return mapped;
#else
  // No mmap on this platform: fall back to a heap copy with the same
  // ownership semantics.
  auto bytes = get(key, kind_version);
  if (!bytes) return std::nullopt;
  auto* heap = new std::byte[MappedArtifact::kHeaderSize + bytes->size()];
  std::memcpy(heap + MappedArtifact::kHeaderSize, bytes->data(), bytes->size());
  return MappedArtifact(heap, MappedArtifact::kHeaderSize + bytes->size(),
                        bytes->size());
#endif
}

bool ArtifactStore::contains(const ArtifactKey& key,
                             std::uint16_t kind_version) {
  return get(key, kind_version).has_value();
}

}  // namespace pdf::store
