// Content-addressed on-disk artifact store.
//
// Layout: `<root>/<kind>/<16-hex-key>.art`, one record per file. A record is
// a fixed 32-byte header followed by the payload:
//
//   offset  size  field
//   0       4     magic "PDAS"
//   4       2     container format version (kContainerVersion)
//   6       2     payload kind version (Serde<T>::version)
//   8       8     key (sanity: must match the filename-derived key)
//   16      8     payload size in bytes
//   24      8     XXH64 of the payload
//   32      —     payload (8-byte-aligned file offset, so mmapped payloads
//                 support the zero-copy views of serde.hpp)
//
// Crash safety / concurrency: writers write to a unique temp file in the
// same directory, fsync it, then rename() onto the final path. rename() is
// atomic on POSIX, so readers only ever observe complete records — when two
// processes race on one key, one rename wins and both files were valid.
// Readers verify magic, versions, key, size and checksum on every load; any
// mismatch counts as a miss and the offending file is quarantined (renamed
// to `<name>.corrupt`) so the slot heals by recomputation.
//
// The store is best-effort by design: every I/O failure degrades to a miss
// (reads) or a dropped write — callers always fall back to recomputation and
// never observe an exception from storage problems. Hit/miss/corruption and
// byte counters land in the runtime metrics registry (`store.*`).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pdf::store {

inline constexpr std::uint16_t kContainerVersion = 1;

/// Address of one artifact: the record kind (subdirectory) plus the 64-bit
/// content key (derived from kind, versions, input digests and parameters —
/// see StageCache::make_key).
struct ArtifactKey {
  std::string kind;
  std::uint64_t key = 0;
};

/// An mmapped record held open for zero-copy reads. Movable; unmaps on
/// destruction. payload() stays valid for the lifetime of the mapping.
class MappedArtifact {
 public:
  MappedArtifact() = default;
  MappedArtifact(void* base, std::size_t file_size, std::size_t payload_size);
  MappedArtifact(MappedArtifact&& other) noexcept;
  MappedArtifact& operator=(MappedArtifact&& other) noexcept;
  MappedArtifact(const MappedArtifact&) = delete;
  MappedArtifact& operator=(const MappedArtifact&) = delete;
  ~MappedArtifact();

  std::span<const std::byte> payload() const {
    return {static_cast<const std::byte*>(base_) + kHeaderSize, payload_size_};
  }

  static constexpr std::size_t kHeaderSize = 32;

 private:
  void* base_ = nullptr;
  std::size_t file_size_ = 0;
  std::size_t payload_size_ = 0;
};

class ArtifactStore {
 public:
  /// Binds to a store root. Nothing is created until the first put().
  explicit ArtifactStore(std::filesystem::path root);

  const std::filesystem::path& root() const { return root_; }

  /// Atomically publishes a record. Returns false (dropping the write) on
  /// any I/O failure; existing records for the key are replaced.
  bool put(const ArtifactKey& key, std::uint16_t kind_version,
           std::span<const std::byte> payload);

  /// Loads and verifies a record; nullopt on miss or corruption (corrupt
  /// files are quarantined as a side effect).
  std::optional<std::vector<std::byte>> get(const ArtifactKey& key,
                                            std::uint16_t kind_version);

  /// Zero-copy variant of get(): maps the record and verifies the checksum
  /// over the mapping. The payload span borrows from the returned object.
  std::optional<MappedArtifact> map(const ArtifactKey& key,
                                    std::uint16_t kind_version);

  /// True when a verified record exists (verifies, quarantining if corrupt).
  bool contains(const ArtifactKey& key, std::uint16_t kind_version);

  /// Final path of a key's record file (whether or not it exists).
  std::filesystem::path path_of(const ArtifactKey& key) const;

 private:
  struct Header;
  /// Reads + verifies the header against key/version/file size; on any
  /// mismatch quarantines and returns nullopt.
  std::optional<Header> load_header(const std::filesystem::path& path,
                                    const ArtifactKey& key,
                                    std::uint16_t kind_version,
                                    std::span<const std::byte> file_bytes);
  void quarantine(const std::filesystem::path& path);

  std::filesystem::path root_;
};

}  // namespace pdf::store
