// Stage-level memoization over the artifact store.
//
// `StageCache::memoize<T>(input_digests, compute)` is the single entry point
// the pipeline uses: the key folds `Serde<T>::kind`, both format versions
// and every input digest, so two calls collide exactly when they would
// compute the same value. A hit decodes the stored record; a miss (absent,
// corrupt, or undecodable) runs `compute` and publishes the result. Storage
// failures never propagate: the cache silently degrades to recomputation,
// and a null StageCache pointer is the universal "caching disabled" value —
// the cached_* helpers below accept one and fall through.
//
// Per-stage hit/miss counters land in the runtime metrics registry as
// `store.stage.<kind>.{hits,misses}`, next to the byte-level `store.*`
// counters of ArtifactStore.
//
// The cached_* helpers wrap the expensive pipeline stages
// (enumeration+screening via build_target_sets, test generation, coverage
// simulation, detection-matrix construction) with the right key derivation;
// EnrichmentWorkbench and the bench drivers call these instead of the raw
// engines when a store is configured.
#pragma once

#include <filesystem>
#include <span>
#include <utility>

#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "store/artifact_store.hpp"
#include "store/hash.hpp"
#include "store/serde.hpp"

namespace pdf {
class BatchSimulator;
}

namespace pdf::store {

class StageCache {
 public:
  explicit StageCache(std::filesystem::path root) : store_(std::move(root)) {}

  ArtifactStore& store() { return store_; }

  /// Content address for a record of type T: kind, container and kind
  /// versions, and every input digest, folded in order.
  template <typename T>
  static ArtifactKey make_key(std::span<const std::uint64_t> input_digests) {
    Hasher64 h;
    h.update_string(Serde<T>::kind);
    h.update_u64(kContainerVersion);
    h.update_u64(Serde<T>::version);
    for (const std::uint64_t d : input_digests) h.update_u64(d);
    return ArtifactKey{std::string(Serde<T>::kind), h.digest()};
  }

  template <typename T, typename Fn>
  T memoize(std::initializer_list<std::uint64_t> input_digests, Fn&& compute) {
    return memoize<T>(std::span<const std::uint64_t>(input_digests.begin(),
                                                     input_digests.size()),
                      std::forward<Fn>(compute));
  }

  template <typename T, typename Fn>
  T memoize(std::span<const std::uint64_t> input_digests, Fn&& compute) {
    const std::uint64_t span_begin =
        obs::trace_active() ? obs::trace_now_ns() : 0;
    const ArtifactKey key = make_key<T>(input_digests);
    if (auto bytes = store_.get(key, Serde<T>::version)) {
      try {
        ByteReader r(*bytes);
        T value = Serde<T>::get(r);
        stage_counter(Serde<T>::kind, true).add();
        trace_stage(Serde<T>::kind, true, span_begin);
        return value;
      } catch (const SerdeError&) {
        // Checksum-valid but undecodable (e.g. written by a buggy build at
        // the same version). Treat as a miss; the rewrite below heals it.
      }
    }
    stage_counter(Serde<T>::kind, false).add();
    T value = compute();
    ByteWriter w;
    Serde<T>::put(w, value);
    store_.put(key, Serde<T>::version, w.view());
    trace_stage(Serde<T>::kind, false, span_begin);
    return value;
  }

 private:
  static runtime::Metrics::Counter& stage_counter(std::string_view kind,
                                                  bool hit);
  /// Emits a `store.memoize.<kind>.hit|.miss` span covering
  /// [begin_ns, now] into the active trace session, if any.
  static void trace_stage(std::string_view kind, bool hit,
                          std::uint64_t begin_ns);

  ArtifactStore store_;
};

// ---- cached pipeline stages -------------------------------------------------
// Every helper takes `cache == nullptr` to mean "just compute".

/// Enumeration + screening + P0/P1 split (the front of every experiment).
TargetSets cached_target_sets(StageCache* cache, const Netlist& nl,
                              const TargetSetConfig& cfg);

/// Test generation (basic when p1 is empty, enrichment otherwise). The key
/// derives from the netlist and the *configs* that produced the target sets,
/// so it matches across processes without digesting the fault lists.
GenerationResult cached_generate(StageCache* cache, const Netlist& nl,
                                 std::span<const TargetFault> p0,
                                 std::span<const TargetFault> p1,
                                 const TargetSetConfig& target_cfg,
                                 const GeneratorConfig& gen_cfg);

/// Union coverage of a test set over P0/P1 via pattern-parallel simulation.
UnionCoverage cached_union_coverage(StageCache* cache, const Netlist& nl,
                                    std::span<const TwoPatternTest> tests,
                                    std::span<const TargetFault> p0,
                                    std::span<const TargetFault> p1,
                                    const TargetSetConfig& target_cfg);

/// Full fault-by-test detection matrix. The key is backend-free on purpose:
/// every sim::SimBackend produces the bit-identical matrix (DESIGN.md §11),
/// so a record written under one backend is a valid hit under any other.
DetectionMatrix cached_detection_matrix(StageCache* cache,
                                        const BatchSimulator& fsim,
                                        const Netlist& nl,
                                        std::span<const TwoPatternTest> tests,
                                        std::span<const TargetFault> faults);

}  // namespace pdf::store
