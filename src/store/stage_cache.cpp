#include "store/stage_cache.hpp"

#include <algorithm>
#include <string>

#include "faultsim/batch_sim.hpp"

namespace pdf::store {

runtime::Metrics::Counter& StageCache::stage_counter(std::string_view kind,
                                                     bool hit) {
  // Handles are stable for the process lifetime; resolve per call site —
  // this path runs once per pipeline *stage*, not per gate, so the registry
  // mutex is not a concern.
  return runtime::Metrics::global().counter(
      "store.stage." + std::string(kind) + (hit ? ".hits" : ".misses"));
}

void StageCache::trace_stage(std::string_view kind, bool hit,
                             std::uint64_t begin_ns) {
  obs::TraceSession* session = obs::active_session();
  if (session == nullptr || begin_ns == 0) return;
  const char* name = session->intern("store.memoize." + std::string(kind) +
                                     (hit ? ".hit" : ".miss"));
  session->record(name, begin_ns, obs::trace_now_ns());
}

TargetSets cached_target_sets(StageCache* cache, const Netlist& nl,
                              const TargetSetConfig& cfg) {
  if (cache == nullptr) return build_target_sets(nl, cfg);
  return cache->memoize<TargetSets>({digest(nl), digest(cfg)}, [&] {
    return build_target_sets(nl, cfg);
  });
}

GenerationResult cached_generate(StageCache* cache, const Netlist& nl,
                                 std::span<const TargetFault> p0,
                                 std::span<const TargetFault> p1,
                                 const TargetSetConfig& target_cfg,
                                 const GeneratorConfig& gen_cfg) {
  if (cache == nullptr) return generate_tests(nl, p0, p1, gen_cfg);
  // p0/p1 are a deterministic function of (netlist, target_cfg); keying on
  // the configs keeps the key cheap. The p1-empty flag distinguishes a basic
  // run from an enrichment run on the same workbench.
  return cache->memoize<GenerationResult>(
      {digest(nl), digest(target_cfg), digest(gen_cfg),
       static_cast<std::uint64_t>(p1.empty() ? 0 : 1)},
      [&] { return generate_tests(nl, p0, p1, gen_cfg); });
}

UnionCoverage cached_union_coverage(StageCache* cache, const Netlist& nl,
                                    std::span<const TwoPatternTest> tests,
                                    std::span<const TargetFault> p0,
                                    std::span<const TargetFault> p1,
                                    const TargetSetConfig& target_cfg) {
  const auto compute = [&] {
    BatchSimulator fsim(nl);
    const std::vector<bool> d0 = fsim.detects_any(tests, p0);
    const std::vector<bool> d1 = fsim.detects_any(tests, p1);
    UnionCoverage c;
    c.p0_total = p0.size();
    c.p1_total = p1.size();
    c.p0_detected =
        static_cast<std::size_t>(std::count(d0.begin(), d0.end(), true));
    c.p1_detected =
        static_cast<std::size_t>(std::count(d1.begin(), d1.end(), true));
    return c;
  };
  if (cache == nullptr) return compute();
  return cache->memoize<UnionCoverage>(
      {digest(nl), digest(target_cfg), digest(tests)}, compute);
}

DetectionMatrix cached_detection_matrix(StageCache* cache,
                                        const BatchSimulator& fsim,
                                        const Netlist& nl,
                                        std::span<const TwoPatternTest> tests,
                                        std::span<const TargetFault> faults) {
  if (cache == nullptr) return fsim.detection_matrix(tests, faults);
  return cache->memoize<DetectionMatrix>(
      {digest(nl), digest(tests), digest(faults)},
      [&] { return fsim.detection_matrix(tests, faults); });
}

}  // namespace pdf::store
