#include "atpg/test_pattern.hpp"

#include <sstream>

namespace pdf {

bool TwoPatternTest::fully_specified() const {
  for (const Triple& t : pi_values) {
    if (!is_specified(t.a1) || !is_specified(t.a3)) return false;
  }
  return !pi_values.empty();
}

std::string TwoPatternTest::patterns_string() const {
  std::string first, second;
  first.reserve(pi_values.size());
  second.reserve(pi_values.size());
  for (const Triple& t : pi_values) {
    first.push_back(to_char(t.a1));
    second.push_back(to_char(t.a3));
  }
  return first + "/" + second;
}

std::string test_to_string(const Netlist& nl, const TwoPatternTest& t) {
  std::ostringstream os;
  for (std::size_t i = 0; i < t.pi_values.size(); ++i) {
    if (i) os << " ";
    os << nl.node(nl.inputs()[i]).name << "=" << t.pi_values[i];
  }
  return os.str();
}

}  // namespace pdf
