#include "atpg/bnb_justify.hpp"

#include "atpg/support.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "sim/triple_sim.hpp"

namespace pdf {

BnbJustifier::BnbJustifier(const Netlist& nl)
    : cc_(nl), sim_(cc_), implication_(cc_) {}

bool BnbJustifier::bit_specified(std::size_t input, int plane) const {
  const Triple& t = sim_.pi(input);
  return is_specified(plane == 0 ? t.a1 : t.a3);
}

void BnbJustifier::apply_bit(std::size_t input, int plane, V3 v) {
  const Triple& t = sim_.pi(input);
  const V3 b1 = plane == 0 ? v : t.a1;
  const V3 b3 = plane == 0 ? t.a3 : v;
  sim_.set_pi(input, pi_triple(b1, b3));
}

bool BnbJustifier::probe_conflicts(std::size_t input, int plane, V3 v) {
  ++stats_.probes;
  const std::size_t token = sim_.begin_txn();
  apply_bit(input, plane, v);
  const bool conflict = sim_.violations() > 0;
  sim_.rollback(token);
  return conflict;
}

bool BnbJustifier::propagate_forced() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t input : support_) {
      for (int plane : {0, 2}) {
        if (bit_specified(input, plane)) continue;
        const bool c0 = probe_conflicts(input, plane, V3::Zero);
        const bool c1 = probe_conflicts(input, plane, V3::One);
        if (c0 && c1) return false;
        if (c0 != c1) {
          apply_bit(input, plane, c0 ? V3::One : V3::Zero);
          if (sim_.violations() > 0) return false;
          progress = true;
        }
      }
    }
  }
  return true;
}

BnbJustifier::Search BnbJustifier::solve() {
  if (sim_.violations() > 0) return Search::Unsat;
  if (!propagate_forced()) return Search::Unsat;

  // Decision bit: prefer a half-specified input (and try the copy value
  // first, making the input steady) — hazard-freedom constraints on the
  // intermediate plane are only satisfiable through steady inputs, and this
  // ordering reaches such assignments without exhausting the subtree of
  // gratuitous transitions. Falls back to the first fully-free support bit.
  std::size_t input = static_cast<std::size_t>(-1);
  int plane = 0;
  V3 first_value = V3::Zero;
  for (std::size_t i : support_) {
    const Triple& t = sim_.pi(i);
    const bool s1 = is_specified(t.a1);
    const bool s3 = is_specified(t.a3);
    if (s1 != s3) {
      input = i;
      plane = s1 ? 2 : 0;
      first_value = s1 ? t.a1 : t.a3;
      break;
    }
    if (!s1 && input == static_cast<std::size_t>(-1)) {
      input = i;
      plane = 0;
      first_value = V3::Zero;
    }
  }
  if (input == static_cast<std::size_t>(-1)) {
    // Leaf: support fully assigned. The test is valid only if every
    // requirement component (including intermediate-plane demands that no
    // remaining free input can influence) is covered.
    return sim_.violations() == 0 && sim_.unsatisfied() == 0 ? Search::Sat
                                                             : Search::Unsat;
  }

  ++decisions_this_call_;
  ++stats_.decisions;
  for (V3 v : {first_value, not3(first_value)}) {
    const std::size_t token = sim_.begin_txn();
    apply_bit(input, plane, v);
    if (sim_.violations() == 0) {
      const Search sub = solve();
      if (sub != Search::Unsat) {
        // Keep the assignment on success; aborts unwind entirely.
        if (sub == Search::Sat) {
          sim_.commit(token);
        } else {
          sim_.rollback(token);
        }
        return sub;
      }
    }
    sim_.rollback(token);
    ++backtracks_this_call_;
    ++stats_.backtracks;
    if (backtracks_this_call_ > budget_) return Search::Abort;
  }
  return Search::Unsat;
}

BnbResult BnbJustifier::justify(std::span<const ValueRequirement> reqs,
                                const BnbConfig& cfg) {
  PDF_TRACE_SPAN("atpg.bnb_justify");
  ++stats_.calls;
  backtracks_this_call_ = 0;
  decisions_this_call_ = 0;
  budget_ = cfg.max_backtracks;

  sim_.reset();
  for (const auto& r : reqs) sim_.add_requirement(r.line, r.value);

  BnbResult out;
  auto finish = [&](BnbStatus st) {
    static auto& backtracks_hist =
        runtime::Metrics::global().histogram("atpg.bnb.backtracks");
    backtracks_hist.record(backtracks_this_call_);
    out.status = st;
    out.backtracks = backtracks_this_call_;
    out.decisions = decisions_this_call_;
    switch (st) {
      case BnbStatus::Satisfiable: ++stats_.sat; break;
      case BnbStatus::Unsatisfiable: ++stats_.unsat; break;
      case BnbStatus::Aborted: ++stats_.aborted; break;
    }
    return out;
  };

  if (sim_.violations() > 0) return finish(BnbStatus::Unsatisfiable);

  support_ = support_inputs(cc_, reqs);

  if (cfg.use_implication_seed) {
    const ImplicationResult imp = implication_.imply(reqs);
    if (!imp.consistent) return finish(BnbStatus::Unsatisfiable);
    for (std::size_t i = 0; i < cc_.inputs().size(); ++i) {
      const Triple& t = imp.values[cc_.inputs()[i]];
      if (is_specified(t.a1)) apply_bit(i, 0, t.a1);
      if (is_specified(t.a3)) apply_bit(i, 2, t.a3);
    }
    if (sim_.violations() > 0) return finish(BnbStatus::Unsatisfiable);
  }

  const Search res = solve();
  if (res == Search::Abort) return finish(BnbStatus::Aborted);
  if (res == Search::Unsat) return finish(BnbStatus::Unsatisfiable);

  // Fill non-support bits with stable zeros (they cannot affect any
  // required line) and extract the witness.
  for (std::size_t i = 0; i < cc_.inputs().size(); ++i) {
    const Triple& t = sim_.pi(i);
    const V3 b1 = is_specified(t.a1) ? t.a1 : V3::Zero;
    const V3 b3 = is_specified(t.a3) ? t.a3 : V3::Zero;
    out.test.pi_values.push_back(pi_triple(b1, b3));
  }
  return finish(BnbStatus::Satisfiable);
}

}  // namespace pdf
