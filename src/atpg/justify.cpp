#include "atpg/justify.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "sim/triple_sim.hpp"

namespace pdf {

JustificationEngine::JustificationEngine(const Netlist& nl, std::uint64_t seed)
    : cc_(nl), sim_(cc_), implication_(cc_), rng_(seed) {
  bit1_.assign(cc_.inputs().size(), V3::X);
  bit3_.assign(cc_.inputs().size(), V3::X);
  in_support_.assign(cc_.inputs().size(), false);
  visit_mark_.assign(cc_.node_count(), 0);
}

bool JustificationEngine::bit_specified(std::size_t input, int plane) const {
  return is_specified(plane == 0 ? bit1_[input] : bit3_[input]);
}

void JustificationEngine::apply_bit(std::size_t input, int plane, V3 v) {
  (plane == 0 ? bit1_[input] : bit3_[input]) = v;
  sim_.set_pi(input, pi_triple(bit1_[input], bit3_[input]));
}

bool JustificationEngine::probe_conflicts(std::size_t input, int plane, V3 v) {
  ++stats_.probes;
  const V3 b1 = plane == 0 ? v : bit1_[input];
  const V3 b3 = plane == 0 ? bit3_[input] : v;
  const std::size_t token = sim_.begin_txn();
  sim_.set_pi(input, pi_triple(b1, b3));
  const bool conflict = sim_.violations() > 0;
  sim_.rollback(token);
  return conflict;
}

void JustificationEngine::compute_support(
    std::span<const ValueRequirement> reqs) {
  std::fill(in_support_.begin(), in_support_.end(), false);
  support_inputs_.clear();
  std::fill(visit_mark_.begin(), visit_mark_.end(), 0);
  std::vector<NodeId> stack;
  for (const auto& r : reqs) {
    if (!visit_mark_[r.line]) {
      visit_mark_[r.line] = 1;
      stack.push_back(r.line);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (const int idx = cc_.input_index(id); idx >= 0) {
      if (!in_support_[static_cast<std::size_t>(idx)]) {
        in_support_[static_cast<std::size_t>(idx)] = true;
        support_inputs_.push_back(static_cast<std::size_t>(idx));
      }
    }
    for (NodeId f : cc_.fanins(id)) {
      if (!visit_mark_[f]) {
        visit_mark_[f] = 1;
        stack.push_back(f);
      }
    }
  }
  std::sort(support_inputs_.begin(), support_inputs_.end());
}

bool JustificationEngine::necessary_passes() {
  bool progress = true;
  while (progress) {
    progress = false;
    ++stats_.passes;
    for (std::size_t input : support_inputs_) {
      for (int plane : {0, 2}) {
        if (bit_specified(input, plane)) continue;
        const bool c0 = probe_conflicts(input, plane, V3::Zero);
        const bool c1 = probe_conflicts(input, plane, V3::One);
        if (c0 && c1) return false;
        if (c0 != c1) {
          apply_bit(input, plane, c0 ? V3::One : V3::Zero);
          if (sim_.violations() > 0) return false;
          progress = true;
        }
      }
    }
  }
  return true;
}

bool JustificationEngine::attempt(std::span<const ValueRequirement> reqs,
                                  const JustifyConfig& cfg) {
  ++stats_.attempts;
  sim_.reset();
  std::fill(bit1_.begin(), bit1_.end(), V3::X);
  std::fill(bit3_.begin(), bit3_.end(), V3::X);

  for (const auto& r : reqs) sim_.add_requirement(r.line, r.value);
  if (sim_.violations() > 0) return false;

  compute_support(reqs);

  if (cfg.use_implication_seed) {
    const ImplicationResult imp = implication_.imply(reqs);
    if (!imp.consistent) return false;
    for (std::size_t i = 0; i < cc_.inputs().size(); ++i) {
      const Triple& t = imp.values[cc_.inputs()[i]];
      if (is_specified(t.a1)) apply_bit(i, 0, t.a1);
      if (is_specified(t.a3)) apply_bit(i, 2, t.a3);
    }
    if (sim_.violations() > 0) return false;
  }

  // Main loop: necessary values to fixpoint, then one decision, repeat.
  for (;;) {
    if (!necessary_passes()) return false;

    // Find an unspecified support bit; prefer the paper's "make a
    // half-specified input steady" decision.
    std::size_t half_input = static_cast<std::size_t>(-1);
    std::vector<std::pair<std::size_t, int>> free_bits;
    for (std::size_t input : support_inputs_) {
      const bool s1 = bit_specified(input, 0);
      const bool s3 = bit_specified(input, 2);
      if (s1 != s3 && half_input == static_cast<std::size_t>(-1)) {
        half_input = input;
      }
      if (!s1) free_bits.emplace_back(input, 0);
      if (!s3) free_bits.emplace_back(input, 2);
    }
    if (free_bits.empty()) break;

    ++stats_.decisions;
    if (half_input != static_cast<std::size_t>(-1)) {
      const bool have1 = bit_specified(half_input, 0);
      const V3 v = have1 ? bit1_[half_input] : bit3_[half_input];
      apply_bit(half_input, have1 ? 2 : 0, v);
    } else {
      const auto [input, plane] = free_bits[rng_.below(free_bits.size())];
      apply_bit(input, plane, rng_.coin() ? V3::One : V3::Zero);
    }
    if (sim_.violations() > 0) return false;
  }

  // Fill the bits outside the support of A: they cannot affect any required
  // line, so any fully specified values complete the test.
  for (std::size_t i = 0; i < bit1_.size(); ++i) {
    if (!is_specified(bit1_[i])) apply_bit(i, 0, rng_.coin() ? V3::One : V3::Zero);
    if (!is_specified(bit3_[i])) apply_bit(i, 2, rng_.coin() ? V3::One : V3::Zero);
  }

  return sim_.violations() == 0 && sim_.unsatisfied() == 0;
}

std::optional<TwoPatternTest> JustificationEngine::justify(
    std::span<const ValueRequirement> reqs, const JustifyConfig& cfg) {
  PDF_TRACE_SPAN("atpg.justify");
  static auto& probes_hist =
      runtime::Metrics::global().histogram("atpg.justify.probes");
  const std::uint64_t probes_before = stats_.probes;

  std::optional<TwoPatternTest> result;
  const int attempts = std::max(1, cfg.max_attempts);
  for (int k = 0; k < attempts; ++k) {
    if (attempt(reqs, cfg)) {
      ++stats_.successes;
      TwoPatternTest t;
      t.pi_values.resize(bit1_.size());
      for (std::size_t i = 0; i < bit1_.size(); ++i) {
        t.pi_values[i] = pi_triple(bit1_[i], bit3_[i]);
      }
      result = std::move(t);
      break;
    }
  }
  if (!result) ++stats_.failures;
  probes_hist.record(stats_.probes - probes_before);
  return result;
}

}  // namespace pdf
