#include "atpg/application.hpp"

#include <stdexcept>

#include "sim/triple_sim.hpp"

namespace pdf {

TestApplicationAnalyzer::TestApplicationAnalyzer(const CombinationalCircuit& cc)
    : nl_(&cc.netlist) {
  if (cc.pseudo_inputs.size() != cc.pseudo_outputs.size()) {
    throw std::invalid_argument(
        "TestApplicationAnalyzer: pseudo input/output count mismatch");
  }
  std::vector<int> pi_index(nl_->node_count(), -1);
  for (std::size_t i = 0; i < nl_->inputs().size(); ++i) {
    pi_index[nl_->inputs()[i]] = static_cast<int>(i);
  }
  for (std::size_t k = 0; k < cc.pseudo_inputs.size(); ++k) {
    const int idx = pi_index[cc.pseudo_inputs[k]];
    if (idx < 0) {
      throw std::invalid_argument(
          "TestApplicationAnalyzer: pseudo input is not a primary input");
    }
    state_pi_index_.push_back(static_cast<std::size_t>(idx));
    data_node_.push_back(cc.pseudo_outputs[k]);
  }
}

bool TestApplicationAnalyzer::broadside_compatible(
    const TwoPatternTest& test) const {
  if (test.pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("broadside_compatible: test width mismatch");
  }
  if (state_pi_index_.empty()) return true;  // purely combinational

  // Next state under the first pattern.
  std::vector<V3> v1(nl_->inputs().size());
  for (std::size_t i = 0; i < v1.size(); ++i) v1[i] = test.pi_values[i].a1;
  const std::vector<V3> values = simulate_plane(*nl_, v1);

  for (std::size_t k = 0; k < state_pi_index_.size(); ++k) {
    const V3 produced = values[data_node_[k]];
    const V3 wanted = test.pi_values[state_pi_index_[k]].a3;
    if (!is_specified(wanted)) continue;  // free bit: always realizable
    if (produced != wanted) return false;  // unspecified 'produced' cannot
                                           // guarantee the needed value
  }
  return true;
}

bool TestApplicationAnalyzer::skewed_load_compatible(
    const TwoPatternTest& test) const {
  if (test.pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("skewed_load_compatible: test width mismatch");
  }
  // State k takes the previous chain position's V1 value; position 0 takes
  // the (free) scan-in bit.
  for (std::size_t k = 1; k < state_pi_index_.size(); ++k) {
    const V3 shifted = test.pi_values[state_pi_index_[k - 1]].a1;
    const V3 wanted = test.pi_values[state_pi_index_[k]].a3;
    if (!is_specified(wanted)) continue;
    if (shifted != wanted) return false;
  }
  return true;
}

ApplicationStats TestApplicationAnalyzer::classify(
    std::span<const TwoPatternTest> tests) const {
  ApplicationStats s;
  s.total = tests.size();
  for (const auto& t : tests) {
    const bool b = broadside_compatible(t);
    const bool k = skewed_load_compatible(t);
    if (b) ++s.broadside;
    if (k) ++s.skewed_load;
    if (!b && !k) ++s.enhanced_only;
  }
  return s;
}

}  // namespace pdf
