#include "atpg/ordering.hpp"

#include <bit>
#include <stdexcept>

#include "faultsim/parallel_sim.hpp"

namespace pdf {

OrderingResult order_tests_by_coverage(const Netlist& nl,
                                       std::span<const TwoPatternTest> tests,
                                       std::span<const TargetFault> faults) {
  ParallelFaultSimulator sim(nl);
  const auto matrix = sim.detection_matrix(tests, faults);

  // Transpose into per-test fault masks.
  const std::size_t fault_words = (faults.size() + 63) / 64;
  std::vector<std::vector<std::uint64_t>> per_test(
      tests.size(), std::vector<std::uint64_t>(fault_words, 0));
  for (std::size_t f = 0; f < faults.size(); ++f) {
    for (std::size_t t = 0; t < tests.size(); ++t) {
      if ((matrix[f][t / 64] >> (t % 64)) & 1) {
        per_test[t][f / 64] |= std::uint64_t{1} << (f % 64);
      }
    }
  }

  OrderingResult out;
  std::vector<bool> used(tests.size(), false);
  std::vector<std::uint64_t> covered(fault_words, 0);
  std::size_t covered_count = 0;

  for (std::size_t round = 0; round < tests.size(); ++round) {
    std::size_t best = static_cast<std::size_t>(-1);
    std::size_t best_gain = 0;
    for (std::size_t t = 0; t < tests.size(); ++t) {
      if (used[t]) continue;
      std::size_t gain = 0;
      for (std::size_t w = 0; w < fault_words; ++w) {
        gain += static_cast<std::size_t>(
            std::popcount(per_test[t][w] & ~covered[w]));
      }
      if (best == static_cast<std::size_t>(-1) || gain > best_gain) {
        best = t;
        best_gain = gain;
      }
      if (gain == faults.size()) break;  // cannot be beaten
    }
    used[best] = true;
    for (std::size_t w = 0; w < fault_words; ++w) covered[w] |= per_test[best][w];
    covered_count += best_gain;
    out.order.push_back(best);
    out.cumulative_detected.push_back(covered_count);
  }
  return out;
}

std::vector<TwoPatternTest> apply_order(std::span<const TwoPatternTest> tests,
                                        std::span<const std::size_t> order) {
  if (order.size() != tests.size()) {
    throw std::invalid_argument("apply_order: permutation size mismatch");
  }
  std::vector<TwoPatternTest> out;
  out.reserve(tests.size());
  for (std::size_t idx : order) {
    if (idx >= tests.size()) {
      throw std::invalid_argument("apply_order: index out of range");
    }
    out.push_back(tests[idx]);
  }
  return out;
}

}  // namespace pdf
