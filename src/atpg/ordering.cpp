#include "atpg/ordering.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "faultsim/batch_sim.hpp"
#include "runtime/thread_pool.hpp"

namespace pdf {

OrderingResult order_tests_by_coverage(const Netlist& nl,
                                       std::span<const TwoPatternTest> tests,
                                       std::span<const TargetFault> faults) {
  BatchSimulator sim(nl);
  const DetectionMatrix matrix = sim.detection_matrix(tests, faults);
  runtime::ThreadPool& pool = runtime::global_pool();

  // Transpose into per-test fault masks (flat, test-major). Each task owns a
  // range of tests, so writes never collide.
  const std::size_t fault_words = (faults.size() + 63) / 64;
  std::vector<std::uint64_t> per_test(tests.size() * fault_words, 0);
  pool.parallel_for(tests.size(), 16, [&](std::size_t t0, std::size_t t1) {
    for (std::size_t t = t0; t < t1; ++t) {
      std::uint64_t* row = per_test.data() + t * fault_words;
      for (std::size_t f = 0; f < faults.size(); ++f) {
        if (matrix.bit(f, t)) row[f / 64] |= std::uint64_t{1} << (f % 64);
      }
    }
  });

  OrderingResult out;
  std::vector<bool> used(tests.size(), false);
  std::vector<std::uint64_t> covered(fault_words, 0);
  std::size_t covered_count = 0;

  // Greedy max-gain selection. The scan over candidate tests is a
  // deterministic parallel reduce: per-chunk maxima are joined in chunk
  // order with ties won by the smaller test index, which is exactly the
  // sequential first-maximum rule.
  using Best = std::pair<std::size_t, std::size_t>;  // (test, gain)
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  for (std::size_t round = 0; round < tests.size(); ++round) {
    const Best best = pool.parallel_reduce<Best>(
        tests.size(), 64, Best{kNone, 0},
        [&](std::size_t t0, std::size_t t1) {
          Best local{kNone, 0};
          for (std::size_t t = t0; t < t1; ++t) {
            if (used[t]) continue;
            const std::uint64_t* row = per_test.data() + t * fault_words;
            std::size_t gain = 0;
            for (std::size_t w = 0; w < fault_words; ++w) {
              gain += static_cast<std::size_t>(
                  std::popcount(row[w] & ~covered[w]));
            }
            if (local.first == kNone || gain > local.second) {
              local = {t, gain};
            }
          }
          return local;
        },
        [](const Best& a, const Best& b) {
          if (a.first == kNone) return b;
          if (b.first == kNone) return a;
          return b.second > a.second ? b : a;
        });

    used[best.first] = true;
    const std::uint64_t* row = per_test.data() + best.first * fault_words;
    for (std::size_t w = 0; w < fault_words; ++w) covered[w] |= row[w];
    covered_count += best.second;
    out.order.push_back(best.first);
    out.cumulative_detected.push_back(covered_count);
  }
  return out;
}

std::vector<TwoPatternTest> apply_order(std::span<const TwoPatternTest> tests,
                                        std::span<const std::size_t> order) {
  if (order.size() != tests.size()) {
    throw std::invalid_argument("apply_order: permutation size mismatch");
  }
  std::vector<TwoPatternTest> out;
  out.reserve(tests.size());
  for (std::size_t idx : order) {
    if (idx >= tests.size()) {
      throw std::invalid_argument("apply_order: index out of range");
    }
    out.push_back(tests[idx]);
  }
  return out;
}

}  // namespace pdf
