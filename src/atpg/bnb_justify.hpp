// Branch-and-bound justification.
//
// The paper's simulation-based procedure is greedy and randomized; it notes
// that the resulting run-to-run variations "can be eliminated by using a
// branch-and-bound procedure instead of a simulation-based procedure for
// justification". This engine is that alternative: a complete backtracking
// search over the pattern bits of the requirement set's support inputs.
//
//  * At every search node the necessary-value rule runs to a fixpoint
//    (probe each free support bit with 0 and 1 on the event-driven
//    simulator; both conflict -> dead branch, one conflicts -> forced).
//  * Decisions pick the first free support bit (static order) and try 0
//    then 1; everything a decision and its consequences changed is undone by
//    transaction rollback on backtrack.
//  * A leaf (all support bits assigned) succeeds only when every requirement
//    component is covered, including hazard-freedom demands on the
//    intermediate plane.
//
// Within the backtrack budget the engine is exact: Satisfiable comes with a
// witness test, Unsatisfiable is a proof that no two-pattern test meets the
// requirements, Aborted means the budget ran out.
#pragma once

#include <cstdint>
#include <span>

#include "atpg/test_pattern.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/requirements.hpp"
#include "implication/implication.hpp"
#include "netlist/netlist.hpp"
#include "sim/event_sim.hpp"

namespace pdf {

enum class BnbStatus { Satisfiable, Unsatisfiable, Aborted };

struct BnbConfig {
  /// Backtrack budget; exceeded -> Aborted.
  std::size_t max_backtracks = 2000;
  /// Seed the search with one static implication pass over the requirements.
  bool use_implication_seed = true;
};

struct BnbStats {
  std::uint64_t calls = 0;
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t probes = 0;
  std::uint64_t sat = 0;
  std::uint64_t unsat = 0;
  std::uint64_t aborted = 0;
};

struct BnbResult {
  BnbStatus status = BnbStatus::Aborted;
  /// Witness (fully specified) when status == Satisfiable.
  TwoPatternTest test;
  std::size_t backtracks = 0;
  std::size_t decisions = 0;
};

class BnbJustifier {
 public:
  /// Compiles `nl` once; the event simulator and the implication engine share
  /// the flattened view.
  explicit BnbJustifier(const Netlist& nl);

  BnbJustifier(const BnbJustifier&) = delete;
  BnbJustifier& operator=(const BnbJustifier&) = delete;

  BnbResult justify(std::span<const ValueRequirement> reqs,
                    const BnbConfig& cfg = {});

  const BnbStats& stats() const { return stats_; }

 private:
  enum class Search { Sat, Unsat, Abort };

  Search solve();
  /// Necessary-value fixpoint over the free support bits; false on conflict.
  bool propagate_forced();
  bool probe_conflicts(std::size_t input, int plane, V3 v);
  void apply_bit(std::size_t input, int plane, V3 v);
  bool bit_specified(std::size_t input, int plane) const;

  CompiledCircuit cc_;  // shared execution view (declared first: members below borrow it)
  EventSim sim_;
  ImplicationEngine implication_;
  BnbStats stats_;

  std::vector<std::size_t> support_;
  std::size_t budget_ = 0;
  std::size_t backtracks_this_call_ = 0;
  std::size_t decisions_this_call_ = 0;
};

}  // namespace pdf
