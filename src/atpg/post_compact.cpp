#include "atpg/post_compact.hpp"

#include <algorithm>

#include "faultsim/fault_sim.hpp"

namespace pdf {

PostCompactionResult post_compact(const Netlist& nl,
                                  std::span<const TwoPatternTest> tests,
                                  std::span<const TargetFault> p0,
                                  std::span<const TargetFault> p1) {
  FaultSimulator fsim(nl);

  // Detection matrix, one row per test over the concatenated fault list.
  const std::size_t n_faults = p0.size() + p1.size();
  std::vector<std::vector<bool>> detects(tests.size());
  for (std::size_t t = 0; t < tests.size(); ++t) {
    std::vector<bool> row = fsim.detects(tests[t], p0);
    const std::vector<bool> row1 = fsim.detects(tests[t], p1);
    row.insert(row.end(), row1.begin(), row1.end());
    detects[t] = std::move(row);
  }

  std::vector<bool> covered(n_faults, false);
  std::vector<std::size_t> kept;
  for (std::size_t rt = tests.size(); rt-- > 0;) {
    bool useful = false;
    for (std::size_t f = 0; f < n_faults; ++f) {
      if (detects[rt][f] && !covered[f]) {
        useful = true;
        break;
      }
    }
    if (!useful) continue;
    kept.push_back(rt);
    for (std::size_t f = 0; f < n_faults; ++f) {
      if (detects[rt][f]) covered[f] = true;
    }
  }
  std::reverse(kept.begin(), kept.end());

  PostCompactionResult out;
  out.kept_indices = std::move(kept);
  out.tests.reserve(out.kept_indices.size());
  for (std::size_t idx : out.kept_indices) out.tests.push_back(tests[idx]);
  out.dropped = tests.size() - out.tests.size();
  return out;
}

}  // namespace pdf
