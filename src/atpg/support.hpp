// Structural support of a requirement set: the primary inputs that can
// influence at least one required line. Only these PI bits need to be
// searched by a justification engine; all others can be filled arbitrarily.
#pragma once

#include <span>
#include <vector>

#include "core/compiled_circuit.hpp"
#include "faults/requirements.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

/// Indices into nl.inputs() of the PIs in the fanin cone of any required
/// line, ascending.
std::vector<std::size_t> support_inputs(const Netlist& nl,
                                        std::span<const ValueRequirement> reqs);

/// Compiled-core overload: walks the CSR fanin arrays and reuses the view's
/// PI index map instead of rebuilding it per call.
std::vector<std::size_t> support_inputs(const CompiledCircuit& cc,
                                        std::span<const ValueRequirement> reqs);

}  // namespace pdf
