// Test-application analysis for scan designs.
//
// Two-pattern tests on the combinational core implicitly assume *enhanced
// scan* (both patterns arbitrarily controllable). Standard scan hardware
// restricts the second pattern's state part:
//   * broadside (launch-on-capture): the state bits of V2 must equal the
//     next-state function applied to V1 — the capture clock produces them;
//   * skewed-load (launch-on-shift): the state bits of V2 are V1's state
//     shifted one position along the scan chain (the chain input bit is
//     free).
// This analyzer classifies generated tests by which application scheme can
// deliver them, so users know how much of a test set survives without
// enhanced-scan flops. Primary (non-state) inputs are assumed to be freely
// controllable in both cycles.
//
// The scan-chain order for skewed-load is the order of
// CombinationalCircuit::pseudo_inputs (position 0 receives the scan-in bit).
#pragma once

#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "netlist/combinational.hpp"

namespace pdf {

struct ApplicationStats {
  std::size_t total = 0;
  std::size_t broadside = 0;
  std::size_t skewed_load = 0;
  std::size_t enhanced_only = 0;  // neither standard scheme can apply it
};

class TestApplicationAnalyzer {
 public:
  /// The analyzed circuit, with its state bookkeeping. The referenced
  /// netlist must outlive the analyzer.
  explicit TestApplicationAnalyzer(const CombinationalCircuit& cc);

  /// True when the capture clock reproduces V2's state part from V1.
  bool broadside_compatible(const TwoPatternTest& test) const;

  /// True when one scan shift turns V1's state part into V2's.
  bool skewed_load_compatible(const TwoPatternTest& test) const;

  ApplicationStats classify(std::span<const TwoPatternTest> tests) const;

 private:
  const Netlist* nl_;
  /// Parallel arrays: state element k reads next-state from data_node_[k]
  /// and appears as PI index state_pi_index_[k].
  std::vector<NodeId> data_node_;
  std::vector<std::size_t> state_pi_index_;
};

}  // namespace pdf
