// Two-pattern tests.
//
// A test assigns every primary input a fully specified pair of pattern values
// (v1, v2); the intermediate value of each PI follows (v1 if v1 == v2, else
// unknown). Tests produced by the justification engine are always fully
// specified, matching the paper's simulation-based procedure.
#pragma once

#include <string>
#include <vector>

#include "base/triple.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

struct TwoPatternTest {
  /// One triple per primary input, indexed like Netlist::inputs(). Planes 1
  /// and 3 are specified for a complete test; plane 2 is derived.
  std::vector<Triple> pi_values;

  bool fully_specified() const;

  /// "0101.../1100..." — first pattern / second pattern.
  std::string patterns_string() const;
};

/// Pretty-print with input names.
std::string test_to_string(const Netlist& nl, const TwoPatternTest& t);

}  // namespace pdf
