// Test generation with dynamic compaction and (optionally) a second set of
// target faults — the engine behind both the basic procedure (Section 2) and
// the enrichment procedure (Section 3.2).
//
// One call generates a complete test set for the primary target set P0:
//   * a primary target fault is chosen from P0 (by the heuristic's order) and
//     justified; failures mark the fault as tried and move on;
//   * secondary target faults are added one at a time: a candidate is
//     accepted if a test satisfying the union of requirements of everything
//     in P(t) plus the candidate can be generated (the test is re-generated
//     from scratch on every acceptance, as in the paper's adaptation of the
//     primary/secondary scheme to fully specified tests);
//   * with a second target set P1 (enrichment), secondaries are drawn from
//     P1 only after every eligible P0 candidate has been considered; P1
//     faults are never primaries, so the test count is determined by P0;
//   * after a test is finalized it is fault-simulated against every
//     still-undetected fault of both sets and detected faults are dropped.
//
// Secondary-selection heuristics (Section 2.2): none (uncomp), arbitrary,
// length-based, value-based (minimum n_Delta).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/bnb_justify.hpp"
#include "atpg/justify.hpp"
#include "atpg/test_pattern.hpp"
#include "faults/screen.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

enum class CompactionHeuristic {
  None,       // "uncomp": primaries only
  Arbitrary,  // "arbit": fault-list order
  Length,     // "length": longest path first
  Value,      // "values": fewest new required values first
};

const char* heuristic_name(CompactionHeuristic h);

struct GeneratorConfig {
  CompactionHeuristic heuristic = CompactionHeuristic::Value;
  std::uint64_t seed = 1;
  JustifyConfig justify{};
  /// The paper's fault list order is "arbitrary"; ours arrives sorted by
  /// length from enumeration, so by default the Arbitrary heuristic applies a
  /// deterministic shuffle to be a genuinely order-agnostic baseline.
  bool shuffle_arbitrary = true;
  /// Stop offering secondary candidates for the current test after this many
  /// consecutive rejections (0 = consider every candidate, as in the paper).
  std::size_t max_consecutive_secondary_failures = 0;
  /// Use the complete branch-and-bound justifier instead of the paper's
  /// greedy simulation-based one (the paper's suggested variance-free
  /// alternative). Slower; results become independent of the value-decision
  /// randomness.
  bool use_branch_and_bound = false;
  BnbConfig bnb{};
};

struct GenerationStats {
  std::size_t primary_attempts = 0;
  std::size_t primary_failures = 0;
  std::size_t secondary_accepted = 0;
  std::size_t secondary_rejected = 0;
  JustifyStats justify;
  double seconds = 0.0;
};

struct GenerationResult {
  std::vector<TwoPatternTest> tests;
  /// Per-set detection flags, indexed like the input spans. detected[0] is
  /// the must-detect set; detected[k], k >= 1, the opportunistic sets.
  std::vector<std::vector<bool>> detected;
  /// Aliases of detected[0] / detected[1] kept for the common two-set case
  /// (detected_p1 is empty when only one set was passed).
  std::vector<bool> detected_p0;
  std::vector<bool> detected_p1;
  /// tests[i] was generated for sets[0]'s fault primary_targets[i] (an index
  /// into the p0 span). Lets checkers verify the metamorphic invariant that
  /// every generated test robustly detects the fault it was built for.
  std::vector<std::size_t> primary_targets;
  GenerationStats stats;

  std::size_t detected_p0_count() const;
  std::size_t detected_p1_count() const;
  std::size_t detected_count(std::size_t set) const;
};

/// Generates tests for `p0`, opportunistically detecting `p1` (pass an empty
/// span for the basic single-set procedure). The netlist must be finalized,
/// combinational and primitive-only.
GenerationResult generate_tests(const Netlist& nl,
                                std::span<const TargetFault> p0,
                                std::span<const TargetFault> p1,
                                const GeneratorConfig& cfg = {});

/// Generalization to any number of target subsets (the paper's "larger
/// number of subsets" remark): sets[0] supplies the primary targets and
/// determines the test count; sets[k] is offered for secondary detection
/// only after every eligible candidate of sets[0..k-1] has been considered.
GenerationResult generate_tests_multi(
    const Netlist& nl, std::span<const std::span<const TargetFault>> sets,
    const GeneratorConfig& cfg = {});

}  // namespace pdf
