// Tester-schedule ordering of a test set.
//
// On the tester, a failing chip can be binned as soon as any test fails, so
// ordering tests by marginal fault coverage (greedy set cover over the
// detection matrix) minimizes the expected time-to-first-fail. The test set
// itself is unchanged — only its application order.
#pragma once

#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "faults/screen.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

struct OrderingResult {
  /// Permutation of test indices, best-first.
  std::vector<std::size_t> order;
  /// cumulative_detected[k]: faults detected by the first k+1 tests.
  std::vector<std::size_t> cumulative_detected;
};

/// Greedy max-marginal-coverage ordering of `tests` against `faults`.
/// Tests with zero marginal coverage keep their relative order at the end.
OrderingResult order_tests_by_coverage(const Netlist& nl,
                                       std::span<const TwoPatternTest> tests,
                                       std::span<const TargetFault> faults);

/// Applies a permutation (as returned in OrderingResult::order).
std::vector<TwoPatternTest> apply_order(std::span<const TwoPatternTest> tests,
                                        std::span<const std::size_t> order);

}  // namespace pdf
