// Test-set file I/O.
//
// A minimal, diff-friendly text format for two-pattern test sets:
//
//   # free-form comments
//   circuit <name>
//   inputs <name0> <name1> ...
//   test <first-pattern>/<second-pattern>
//   ...
//
// Patterns are strings over {0,1,x}, one character per input, in the
// declared input order. The reader validates the input list against the
// netlist (names and order) so tests cannot silently be applied to the
// wrong pins.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

void write_tests(std::ostream& out, const Netlist& nl,
                 std::span<const TwoPatternTest> tests);
void write_tests_file(const std::string& path, const Netlist& nl,
                      std::span<const TwoPatternTest> tests);
std::string tests_to_string(const Netlist& nl,
                            std::span<const TwoPatternTest> tests);

/// Parses a test file; throws std::runtime_error (with a line number) on
/// syntax errors, input-name mismatch, or pattern-width mismatch.
std::vector<TwoPatternTest> read_tests(std::istream& in, const Netlist& nl);
std::vector<TwoPatternTest> read_tests_file(const std::string& path,
                                            const Netlist& nl);
std::vector<TwoPatternTest> tests_from_string(const std::string& text,
                                              const Netlist& nl);

}  // namespace pdf
