#include "atpg/test_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "base/error.hpp"
#include "sim/triple_sim.hpp"

namespace pdf {
namespace {

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw ParseError("tests", line_no,
                   "test file line " + std::to_string(line_no) + ": " + msg);
}

}  // namespace

void write_tests(std::ostream& out, const Netlist& nl,
                 std::span<const TwoPatternTest> tests) {
  out << "# two-pattern robust path delay tests\n";
  out << "circuit " << nl.name() << "\n";
  out << "inputs";
  for (NodeId id : nl.inputs()) out << " " << nl.node(id).name;
  out << "\n";
  for (const auto& t : tests) {
    if (t.pi_values.size() != nl.inputs().size()) {
      throw std::invalid_argument("write_tests: test width mismatch");
    }
    out << "test " << t.patterns_string() << "\n";
  }
}

void write_tests_file(const std::string& path, const Netlist& nl,
                      std::span<const TwoPatternTest> tests) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write test file: " + path);
  write_tests(out, nl, tests);
}

std::string tests_to_string(const Netlist& nl,
                            std::span<const TwoPatternTest> tests) {
  std::ostringstream os;
  write_tests(os, nl, tests);
  return os.str();
}

std::vector<TwoPatternTest> read_tests(std::istream& in, const Netlist& nl) {
  std::vector<TwoPatternTest> out;
  bool inputs_seen = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;

    if (keyword == "circuit") {
      std::string name;
      ls >> name;  // informational only
    } else if (keyword == "inputs") {
      std::string name;
      std::size_t idx = 0;
      while (ls >> name) {
        if (idx >= nl.inputs().size()) fail(line_no, "too many input names");
        const std::string& expect = nl.node(nl.inputs()[idx]).name;
        if (name != expect) {
          fail(line_no, "input " + std::to_string(idx) + " is '" + name +
                            "' but the netlist has '" + expect + "'");
        }
        ++idx;
      }
      if (idx != nl.inputs().size()) fail(line_no, "too few input names");
      inputs_seen = true;
    } else if (keyword == "test") {
      if (!inputs_seen) fail(line_no, "'test' before 'inputs'");
      std::string patterns;
      if (!(ls >> patterns)) fail(line_no, "missing pattern pair");
      const auto slash = patterns.find('/');
      if (slash == std::string::npos) fail(line_no, "expected v1/v2");
      const std::string v1 = patterns.substr(0, slash);
      const std::string v2 = patterns.substr(slash + 1);
      if (v1.size() != nl.inputs().size() || v2.size() != nl.inputs().size()) {
        fail(line_no, "pattern width does not match input count");
      }
      TwoPatternTest t;
      t.pi_values.reserve(v1.size());
      for (std::size_t i = 0; i < v1.size(); ++i) {
        V3 a, b;
        try {
          a = v3_from_char(v1[i]);
          b = v3_from_char(v2[i]);
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
        t.pi_values.push_back(pi_triple(a, b));
      }
      out.push_back(std::move(t));
    } else {
      fail(line_no, "unknown keyword: " + keyword);
    }
  }
  return out;
}

std::vector<TwoPatternTest> read_tests_file(const std::string& path,
                                            const Netlist& nl) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open test file: " + path);
  return read_tests(in, nl);
}

std::vector<TwoPatternTest> tests_from_string(const std::string& text,
                                              const Netlist& nl) {
  std::istringstream in(text);
  return read_tests(in, nl);
}

}  // namespace pdf
