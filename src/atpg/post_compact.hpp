// Static post-compaction of a generated test set.
//
// Dynamic compaction (primary/secondary targets) still leaves slack: early
// tests are often fully covered by the union of later ones. The classic
// remedy is reverse-order fault simulation — walk the test set from the last
// test to the first, keeping a test only if it detects at least one fault no
// kept test detects. The result detects exactly the same fault set with a
// (weakly) smaller test count. This complements the paper's procedure; the
// ablation bench quantifies how little it finds after value-based dynamic
// compaction (evidence the dynamic heuristics already do the work).
#pragma once

#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "faults/screen.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

struct PostCompactionResult {
  std::vector<TwoPatternTest> tests;     // surviving tests, original order
  std::vector<std::size_t> kept_indices; // into the input test set, ascending
  std::size_t dropped = 0;
};

/// Reverse-order pass over `tests` against the union of the given fault
/// sets. Faults detected by no test at all do not influence the result.
PostCompactionResult post_compact(const Netlist& nl,
                                  std::span<const TwoPatternTest> tests,
                                  std::span<const TargetFault> p0,
                                  std::span<const TargetFault> p1 = {});

}  // namespace pdf
