// Simulation-based justification (paper Section 2.1).
//
// Given a set of required line values A, the engine searches for a fully
// specified two-pattern test satisfying A:
//   1. every primary input starts at xxx;
//   2. necessary values: for every unspecified PI pattern bit, probe 0 and 1
//      — if both conflict with A the attempt fails, if exactly one conflicts
//      the other value is assigned permanently; repeat to a fixpoint;
//   3. decision: prefer a PI with exactly one pattern bit specified and copy
//      that value to the other bits (making the input steady); otherwise pick
//      a random unspecified pattern bit and a random value;
//   4. repeat 2-3 until all inputs are specified or a conflict occurs.
// The attempt succeeds when the fully specified test satisfies every
// component of every requirement (including hazard-freedom demands on the
// intermediate plane). There is no backtracking; like the paper's procedure
// the search is greedy and randomized, and a configurable number of fresh
// attempts may be made.
//
// Engineering on top of the paper's description (behaviour-preserving):
//   * probes run on an event-driven simulator with transactional rollback,
//     so a probe costs one fanout-cone propagation instead of a full pass;
//   * a static implication pass over A seeds the forced PI values that pure
//     probing would discover one by one;
//   * only PI bits in the structural support of A are probed — bits outside
//     every required line's input cone cannot conflict and are filled at the
//     end (randomly, as decisions would).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "atpg/test_pattern.hpp"
#include "base/rng.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/requirements.hpp"
#include "implication/implication.hpp"
#include "netlist/netlist.hpp"
#include "sim/event_sim.hpp"

namespace pdf {

struct JustifyConfig {
  /// Total greedy attempts (1 = single pass, the paper-faithful setting).
  int max_attempts = 1;
  /// Seed forced values with one static implication run before probing.
  bool use_implication_seed = true;
};

struct JustifyStats {
  std::uint64_t attempts = 0;
  std::uint64_t probes = 0;
  std::uint64_t passes = 0;
  std::uint64_t decisions = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
};

class JustificationEngine {
 public:
  /// Compiles `nl` once; the event simulator and the implication engine share
  /// the flattened view.
  JustificationEngine(const Netlist& nl, std::uint64_t seed);

  JustificationEngine(const JustificationEngine&) = delete;
  JustificationEngine& operator=(const JustificationEngine&) = delete;

  /// Searches for a test satisfying `reqs`. nullopt when every attempt fails.
  std::optional<TwoPatternTest> justify(std::span<const ValueRequirement> reqs,
                                        const JustifyConfig& cfg = {});

  const JustifyStats& stats() const { return stats_; }
  Rng& rng() { return rng_; }

 private:
  bool attempt(std::span<const ValueRequirement> reqs, const JustifyConfig& cfg);
  void compute_support(std::span<const ValueRequirement> reqs);
  bool probe_conflicts(std::size_t input, int plane, V3 v);
  void apply_bit(std::size_t input, int plane, V3 v);
  bool bit_specified(std::size_t input, int plane) const;
  /// Runs necessary-value passes to fixpoint; false on a both-values-conflict
  /// failure.
  bool necessary_passes();

  CompiledCircuit cc_;  // shared execution view (declared first: members below borrow it)
  EventSim sim_;
  ImplicationEngine implication_;
  Rng rng_;
  JustifyStats stats_;

  std::vector<V3> bit1_, bit3_;    // decision bits per PI
  std::vector<bool> in_support_;   // per PI index
  std::vector<std::size_t> support_inputs_;
  std::vector<char> visit_mark_;   // per node scratch for support BFS
};

}  // namespace pdf
