#include "atpg/generator.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include "faultsim/fault_sim.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"

namespace pdf {

const char* heuristic_name(CompactionHeuristic h) {
  switch (h) {
    case CompactionHeuristic::None: return "uncomp";
    case CompactionHeuristic::Arbitrary: return "arbit";
    case CompactionHeuristic::Length: return "length";
    case CompactionHeuristic::Value: return "values";
  }
  return "?";
}

std::size_t GenerationResult::detected_p0_count() const {
  return static_cast<std::size_t>(
      std::count(detected_p0.begin(), detected_p0.end(), true));
}

std::size_t GenerationResult::detected_p1_count() const {
  return static_cast<std::size_t>(
      std::count(detected_p1.begin(), detected_p1.end(), true));
}

std::size_t GenerationResult::detected_count(std::size_t set) const {
  if (set >= detected.size()) return 0;
  return static_cast<std::size_t>(
      std::count(detected[set].begin(), detected[set].end(), true));
}

namespace {

// One target set during generation: faults plus bookkeeping flags.
struct SetState {
  std::span<const TargetFault> faults;
  std::vector<bool> detected;
  std::vector<bool> in_current_test;   // member of P(t)
  std::vector<bool> tried_this_test;   // offered as secondary for current t
  std::vector<std::size_t> order;      // heuristic visit order

  explicit SetState(std::span<const TargetFault> f)
      : faults(f),
        detected(f.size(), false),
        in_current_test(f.size(), false),
        tried_this_test(f.size(), false) {}

  void begin_test() {
    std::fill(in_current_test.begin(), in_current_test.end(), false);
    std::fill(tried_this_test.begin(), tried_this_test.end(), false);
  }

  bool eligible(std::size_t i) const {
    return !detected[i] && !in_current_test[i] && !tried_this_test[i];
  }
};

class Generator {
 public:
  Generator(const Netlist& nl,
            std::span<const std::span<const TargetFault>> sets,
            const GeneratorConfig& cfg)
      : nl_(nl), cfg_(cfg), engine_(nl, cfg.seed), bnb_(nl), fsim_(nl) {
    sets_.reserve(sets.size());
    for (const auto& s : sets) sets_.emplace_back(s);
    if (sets_.empty()) sets_.emplace_back(std::span<const TargetFault>{});
  }

  GenerationResult run() {
    PDF_TRACE_SPAN("atpg.generate");
    auto& metrics = runtime::Metrics::global();
    const auto timer_scope = metrics.timer("atpg.generate").measure();
    const auto start = std::chrono::steady_clock::now();
    for (auto& s : sets_) s.order = make_order(s.faults);

    SetState& s0 = sets_[0];
    std::vector<bool> primary_tried(s0.faults.size(), false);
    for (;;) {
      const std::size_t primary = next_primary(primary_tried);
      if (primary == kNone) break;
      primary_tried[primary] = true;
      ++result_.stats.primary_attempts;

      auto test = do_justify(s0.faults[primary].requirements);
      if (!test) {
        ++result_.stats.primary_failures;
        continue;
      }

      for (auto& s : sets_) s.begin_test();
      s0.in_current_test[primary] = true;
      union_.clear();
      union_.add_all(s0.faults[primary].requirements);

      if (cfg_.heuristic != CompactionHeuristic::None) {
        // Sets are offered strictly in order: a set-k candidate is selected
        // only once every eligible candidate of sets 0..k-1 was considered.
        for (auto& s : sets_) grow_with_secondaries(s, *test);
      }

      drop_detected(*test);
      result_.primary_targets.push_back(primary);
      result_.tests.push_back(std::move(*test));
    }

    result_.detected.reserve(sets_.size());
    for (auto& s : sets_) result_.detected.push_back(std::move(s.detected));
    result_.detected_p0 = result_.detected[0];
    if (result_.detected.size() > 1) result_.detected_p1 = result_.detected[1];
    metrics.counter("atpg.tests_generated").add(result_.tests.size());
    result_.stats.justify = engine_.stats();
    result_.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::move(result_);
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::optional<TwoPatternTest> do_justify(
      std::span<const ValueRequirement> reqs) {
    if (cfg_.use_branch_and_bound) {
      BnbResult r = bnb_.justify(reqs, cfg_.bnb);
      if (r.status == BnbStatus::Satisfiable) return std::move(r.test);
      return std::nullopt;
    }
    return engine_.justify(reqs, cfg_.justify);
  }

  std::vector<std::size_t> make_order(std::span<const TargetFault> faults) {
    std::vector<std::size_t> order(faults.size());
    std::iota(order.begin(), order.end(), 0);
    switch (cfg_.heuristic) {
      case CompactionHeuristic::None:
        break;
      case CompactionHeuristic::Arbitrary:
        if (cfg_.shuffle_arbitrary) {
          Rng rng(cfg_.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
          for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[rng.below(i)]);
          }
        }
        break;
      case CompactionHeuristic::Length:
      case CompactionHeuristic::Value:
        // Longest path first (the value heuristic uses this for primaries and
        // re-ranks secondaries by n_Delta dynamically).
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return faults[a].fault.length > faults[b].fault.length;
                         });
        break;
    }
    return order;
  }

  std::size_t next_primary(const std::vector<bool>& tried) const {
    const SetState& s0 = sets_[0];
    for (std::size_t idx : s0.order) {
      if (!tried[idx] && !s0.detected[idx]) return idx;
    }
    return kNone;
  }

  // Offers the eligible faults of `set` as secondary targets for the current
  // test, updating `test` and the requirement union on every acceptance.
  void grow_with_secondaries(SetState& set, TwoPatternTest& test) {
    std::size_t consecutive_failures = 0;
    for (;;) {
      if (cfg_.max_consecutive_secondary_failures > 0 &&
          consecutive_failures >= cfg_.max_consecutive_secondary_failures) {
        break;
      }
      const std::size_t cand = pick_secondary(set);
      if (cand == kNone) break;
      set.tried_this_test[cand] = true;

      const auto& reqs = set.faults[cand].requirements;
      if (union_.would_conflict(reqs)) {
        ++result_.stats.secondary_rejected;
        ++consecutive_failures;
        continue;
      }
      RequirementSet merged = union_;
      merged.add_all(reqs);
      auto new_test = do_justify(merged.items());
      if (!new_test) {
        ++result_.stats.secondary_rejected;
        ++consecutive_failures;
        continue;
      }
      union_ = std::move(merged);
      set.in_current_test[cand] = true;
      test = std::move(*new_test);
      ++result_.stats.secondary_accepted;
      consecutive_failures = 0;
    }
  }

  std::size_t pick_secondary(const SetState& set) const {
    if (cfg_.heuristic != CompactionHeuristic::Value) {
      for (std::size_t idx : set.order) {
        if (set.eligible(idx)) return idx;
      }
      return kNone;
    }
    // Value-based: minimum number of requirements not already guaranteed by
    // the current union; ties resolve to the longer path (orders are
    // length-sorted), then earlier list position.
    std::size_t best = kNone;
    std::size_t best_delta = 0;
    for (std::size_t idx : set.order) {
      if (!set.eligible(idx)) continue;
      const std::size_t d = union_.delta_count(set.faults[idx].requirements);
      if (best == kNone || d < best_delta) {
        best = idx;
        best_delta = d;
        if (d == 0) break;  // cannot do better
      }
    }
    return best;
  }

  void drop_detected(const TwoPatternTest& test) {
    const std::vector<Triple> values = fsim_.line_values(test);
    for (auto& set : sets_) {
      for (std::size_t i = 0; i < set.faults.size(); ++i) {
        if (set.detected[i]) continue;
        bool ok = true;
        for (const auto& r : set.faults[i].requirements) {
          if (!values[r.line].covers(r.value)) {
            ok = false;
            break;
          }
        }
        if (ok) set.detected[i] = true;
      }
    }
  }

  const Netlist& nl_;
  GeneratorConfig cfg_;
  JustificationEngine engine_;
  BnbJustifier bnb_;
  FaultSimulator fsim_;
  std::vector<SetState> sets_;
  RequirementSet union_;
  GenerationResult result_;
};

}  // namespace

GenerationResult generate_tests_multi(
    const Netlist& nl, std::span<const std::span<const TargetFault>> sets,
    const GeneratorConfig& cfg) {
  Generator g(nl, sets, cfg);
  return g.run();
}

GenerationResult generate_tests(const Netlist& nl,
                                std::span<const TargetFault> p0,
                                std::span<const TargetFault> p1,
                                const GeneratorConfig& cfg) {
  const std::span<const TargetFault> sets[] = {p0, p1};
  // A basic (single-set) run keeps detected_p1 empty for clarity.
  if (p1.empty()) {
    const std::span<const TargetFault> only[] = {p0};
    GenerationResult r = generate_tests_multi(nl, only, cfg);
    return r;
  }
  return generate_tests_multi(nl, sets, cfg);
}

}  // namespace pdf
