#include "atpg/support.hpp"

#include <algorithm>

namespace pdf {

std::vector<std::size_t> support_inputs(const Netlist& nl,
                                        std::span<const ValueRequirement> reqs) {
  std::vector<int> input_index(nl.node_count(), -1);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    input_index[nl.inputs()[i]] = static_cast<int>(i);
  }

  std::vector<char> visited(nl.node_count(), 0);
  std::vector<NodeId> stack;
  std::vector<std::size_t> out;
  for (const auto& r : reqs) {
    if (!visited[r.line]) {
      visited[r.line] = 1;
      stack.push_back(r.line);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (const int idx = input_index[id]; idx >= 0) {
      out.push_back(static_cast<std::size_t>(idx));
    }
    for (NodeId f : nl.node(id).fanin) {
      if (!visited[f]) {
        visited[f] = 1;
        stack.push_back(f);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> support_inputs(const CompiledCircuit& cc,
                                        std::span<const ValueRequirement> reqs) {
  std::vector<char> visited(cc.node_count(), 0);
  std::vector<NodeId> stack;
  std::vector<std::size_t> out;
  for (const auto& r : reqs) {
    if (!visited[r.line]) {
      visited[r.line] = 1;
      stack.push_back(r.line);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (const int idx = cc.input_index(id); idx >= 0) {
      out.push_back(static_cast<std::size_t>(idx));
    }
    for (NodeId f : cc.fanins(id)) {
      if (!visited[f]) {
        visited[f] = 1;
        stack.push_back(f);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pdf
