#include "core/compiled_circuit.hpp"

#include <stdexcept>

namespace pdf {

CompiledCircuit::CompiledCircuit(const Netlist& nl) : nl_(&nl) {
  if (!nl.finalized()) {
    throw std::logic_error("CompiledCircuit: netlist not finalized");
  }
  const std::size_t n = nl.node_count();

  type_.resize(n);
  level_.resize(n);
  is_output_.resize(n);
  input_index_.assign(n, -1);

  // CSR adjacency. Fanin/fanout orders are preserved exactly as the netlist
  // stores them so traversals see the same neighbor sequences as before.
  fanin_off_.assign(n + 1, 0);
  fanout_off_.assign(n + 1, 0);
  std::size_t fanin_total = 0, fanout_total = 0;
  for (NodeId id = 0; id < n; ++id) {
    const Node& nd = nl.node(id);
    fanin_total += nd.fanin.size();
    fanout_total += nd.fanout.size();
  }
  fanin_.reserve(fanin_total);
  fanout_.reserve(fanout_total);

  depth_ = nl.depth();
  for (NodeId id = 0; id < n; ++id) {
    const Node& nd = nl.node(id);
    type_[id] = nd.type;
    level_[id] = nd.level;
    is_output_[id] = nd.is_output ? 1 : 0;
    has_sequential_ |= nd.type == GateType::Dff;
    max_fanin_ = std::max(max_fanin_, nd.fanin.size());
    for (NodeId f : nd.fanin) fanin_.push_back(f);
    fanin_off_[id + 1] = static_cast<std::uint32_t>(fanin_.size());
    for (NodeId f : nd.fanout) fanout_.push_back(f);
    fanout_off_[id + 1] = static_cast<std::uint32_t>(fanout_.size());
  }
  if (max_fanin_ > kMaxGateFanin) {
    throw std::logic_error("CompiledCircuit: fanin exceeds kMaxGateFanin");
  }

  inputs_.assign(nl.inputs().begin(), nl.inputs().end());
  outputs_.assign(nl.outputs().begin(), nl.outputs().end());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    input_index_[inputs_[i]] = static_cast<int>(i);
  }

  // Level-packed topological order via a counting sort by level (ascending
  // NodeId within a level). Every combinational edge goes to a strictly
  // higher level, so this is a valid evaluation order; DFF nodes are level-0
  // sources exactly as in Netlist::topo_order().
  level_off_.assign(static_cast<std::size_t>(depth_) + 2, 0);
  for (NodeId id = 0; id < n; ++id) {
    ++level_off_[static_cast<std::size_t>(level_[id]) + 1];
  }
  for (std::size_t l = 1; l < level_off_.size(); ++l) {
    level_off_[l] += level_off_[l - 1];
  }
  topo_.resize(n);
  std::vector<std::uint32_t> cursor(level_off_.begin(), level_off_.end() - 1);
  for (NodeId id = 0; id < n; ++id) {
    topo_[cursor[static_cast<std::size_t>(level_[id])]++] = id;
  }
}

}  // namespace pdf
