// Flattened, immutable execution view of a finalized netlist.
//
// `Netlist` is the construction/transform API: nodes carry names, per-node
// heap vectors and mutation helpers. Every simulation or ATPG engine used to
// chase those heap vectors through `Netlist::node()` in its hot loop, paying
// one pointer dereference and one cache miss per fanin list per gate.
// `CompiledCircuit` is the execution API: it is built once from a finalized
// netlist and packs everything a traversal needs into contiguous
// structure-of-arrays storage —
//   * CSR fanin/fanout adjacency (one index array + one offset array each),
//   * a dense `GateType` array and dense level / output-flag arrays,
//   * a level-packed topological order with per-level offsets (all nodes of
//     level L are contiguous, enabling level-synchronous batching),
//   * PI/PO index maps (NodeId -> input ordinal and back).
// The view never mutates; engines share one instance freely. Rebuild it after
// any netlist transform (the source netlist must outlive the view).
//
// `SimScratch` is the companion reusable arena: engines size it once per
// circuit and run every simulation inside it, so nothing allocates in a
// per-gate hot loop. The fused evaluators below read each fanin triple once
// and accumulate all three planes simultaneously; they are bit-identical to
// plane-wise `eval_gate` (same accumulation order).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "base/triple.hpp"
#include "netlist/gate.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

class CompiledCircuit {
 public:
  /// Builds the view. `nl` must be finalized and must outlive the view.
  explicit CompiledCircuit(const Netlist& nl);

  /// The source netlist (valid as long as it has not been mutated since the
  /// view was built). Names and transform helpers live there.
  const Netlist& netlist() const { return *nl_; }

  std::size_t node_count() const { return type_.size(); }
  GateType type(NodeId id) const { return type_[id]; }
  std::span<const GateType> types() const { return type_; }
  int level(NodeId id) const { return level_[id]; }
  int depth() const { return depth_; }
  bool is_output(NodeId id) const { return is_output_[id] != 0; }
  bool has_sequential() const { return has_sequential_; }

  /// Largest fanin count of any node (0 for a pure-input netlist).
  std::size_t max_fanin() const { return max_fanin_; }

  std::span<const NodeId> fanins(NodeId id) const {
    return {fanin_.data() + fanin_off_[id], fanin_off_[id + 1] - fanin_off_[id]};
  }
  std::span<const NodeId> fanouts(NodeId id) const {
    return {fanout_.data() + fanout_off_[id],
            fanout_off_[id + 1] - fanout_off_[id]};
  }

  std::span<const NodeId> inputs() const { return inputs_; }
  std::span<const NodeId> outputs() const { return outputs_; }

  /// Index of `id` in inputs(), or -1 when the node is not a primary input.
  int input_index(NodeId id) const { return input_index_[id]; }

  /// Level-packed topological order: all nodes of level 0 first (ascending
  /// NodeId), then level 1, ... Valid evaluation order for combinational
  /// edges; sequential (DFF) nodes appear as level-0 sources.
  std::span<const NodeId> topo_order() const { return topo_; }

  /// Nodes of one level, as a slice of topo_order().
  std::span<const NodeId> level_nodes(int level) const {
    return {topo_.data() + level_off_[static_cast<std::size_t>(level)],
            level_off_[static_cast<std::size_t>(level) + 1] -
                level_off_[static_cast<std::size_t>(level)]};
  }

  /// depth()+2 offsets into topo_order(): level L spans
  /// [level_offsets()[L], level_offsets()[L+1]).
  std::span<const std::uint32_t> level_offsets() const { return level_off_; }

 private:
  const Netlist* nl_;
  std::vector<GateType> type_;
  std::vector<int> level_;
  std::vector<std::uint8_t> is_output_;
  std::vector<std::uint32_t> fanin_off_;
  std::vector<NodeId> fanin_;
  std::vector<std::uint32_t> fanout_off_;
  std::vector<NodeId> fanout_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<int> input_index_;
  std::vector<NodeId> topo_;
  std::vector<std::uint32_t> level_off_;
  std::size_t max_fanin_ = 0;
  int depth_ = 0;
  bool has_sequential_ = false;
};

/// Reusable simulation buffers, sized on first use for a given circuit.
/// One scratch per engine instance; engines reuse it across calls so the
/// steady state performs zero heap allocations.
struct SimScratch {
  std::vector<Triple> triples;  // node-indexed triple plane
  std::vector<V3> plane;        // node-indexed single 3-valued plane

  void prepare_triples(const CompiledCircuit& cc, const Triple& fill = kAllX) {
    triples.assign(cc.node_count(), fill);
  }
  void prepare_plane(const CompiledCircuit& cc, V3 fill = V3::X) {
    plane.assign(cc.node_count(), fill);
  }
};

/// Fused triple evaluation of node `id` reading fanin triples from the dense
/// node-indexed array `values`. Accumulates the three planes in one pass over
/// the fanins; bit-identical to evaluating each plane with `eval_gate`.
/// `id` must not be an Input node.
inline Triple eval_node_triple(const CompiledCircuit& cc, NodeId id,
                               const Triple* values) {
  const std::span<const NodeId> fin = cc.fanins(id);
  switch (cc.type(id)) {
    case GateType::Buf:
    case GateType::Dff:
      return values[fin[0]];
    case GateType::Not: {
      const Triple& a = values[fin[0]];
      return Triple{not3(a.a1), not3(a.a2), not3(a.a3)};
    }
    case GateType::And:
    case GateType::Nand: {
      V3 a1 = V3::One, a2 = V3::One, a3 = V3::One;
      for (NodeId f : fin) {
        const Triple& v = values[f];
        a1 = and3(a1, v.a1);
        a2 = and3(a2, v.a2);
        a3 = and3(a3, v.a3);
      }
      if (cc.type(id) == GateType::Nand) {
        return Triple{not3(a1), not3(a2), not3(a3)};
      }
      return Triple{a1, a2, a3};
    }
    case GateType::Or:
    case GateType::Nor: {
      V3 a1 = V3::Zero, a2 = V3::Zero, a3 = V3::Zero;
      for (NodeId f : fin) {
        const Triple& v = values[f];
        a1 = or3(a1, v.a1);
        a2 = or3(a2, v.a2);
        a3 = or3(a3, v.a3);
      }
      if (cc.type(id) == GateType::Nor) {
        return Triple{not3(a1), not3(a2), not3(a3)};
      }
      return Triple{a1, a2, a3};
    }
    case GateType::Xor:
    case GateType::Xnor: {
      V3 a1 = V3::Zero, a2 = V3::Zero, a3 = V3::Zero;
      for (NodeId f : fin) {
        const Triple& v = values[f];
        a1 = xor3(a1, v.a1);
        a2 = xor3(a2, v.a2);
        a3 = xor3(a3, v.a3);
      }
      if (cc.type(id) == GateType::Xnor) {
        return Triple{not3(a1), not3(a2), not3(a3)};
      }
      return Triple{a1, a2, a3};
    }
    case GateType::Input:
      break;
  }
  assert(false && "eval_node_triple on an Input node");
  return kAllX;
}

/// Single-plane fused evaluation: like eval_node_triple but over a dense V3
/// array. Bit-identical to `eval_gate` over the gathered fanin values.
inline V3 eval_node_plane(const CompiledCircuit& cc, NodeId id,
                          const V3* values) {
  const std::span<const NodeId> fin = cc.fanins(id);
  switch (cc.type(id)) {
    case GateType::Buf:
    case GateType::Dff:
      return values[fin[0]];
    case GateType::Not:
      return not3(values[fin[0]]);
    case GateType::And:
    case GateType::Nand: {
      V3 acc = V3::One;
      for (NodeId f : fin) acc = and3(acc, values[f]);
      return cc.type(id) == GateType::Nand ? not3(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      V3 acc = V3::Zero;
      for (NodeId f : fin) acc = or3(acc, values[f]);
      return cc.type(id) == GateType::Nor ? not3(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      V3 acc = V3::Zero;
      for (NodeId f : fin) acc = xor3(acc, values[f]);
      return cc.type(id) == GateType::Xnor ? not3(acc) : acc;
    }
    case GateType::Input:
      break;
  }
  assert(false && "eval_node_plane on an Input node");
  return V3::X;
}

}  // namespace pdf
