// Distance of every line from the primary outputs (paper Section 3.1,
// Figure 2): d(g) is the maximum number of lines on any path from g's output
// to a primary output, so that a partial path p ending at g can at best grow
// into a complete path of length  len(p) = partial_length(p) + d(g).
// Computed in one reverse-topological pass.
#pragma once

#include <vector>

#include "core/compiled_circuit.hpp"
#include "paths/path.hpp"

namespace pdf {

/// Sentinel distance for nodes from which no primary output is reachable.
inline constexpr int kUnreachable = -1;

/// d[id] = max lines appended after id's stem on the best completion, or
/// kUnreachable when id cannot reach an output. An output node with no
/// further fanout has d == branch-cost contribution 0.
std::vector<int> distances_to_outputs(const LineDelayModel& dm);

/// Compiled-core overload: one reverse pass over the level-packed order and
/// the CSR fanout arrays. `cc` must view dm.netlist().
std::vector<int> distances_to_outputs(const LineDelayModel& dm,
                                      const CompiledCircuit& cc);

}  // namespace pdf
