#include "paths/length_stats.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace pdf {

LengthProfile::LengthProfile(const std::vector<int>& lengths) {
  std::map<int, std::size_t, std::greater<int>> by_length;
  for (int l : lengths) ++by_length[l];
  std::size_t cum = 0;
  buckets_.reserve(by_length.size());
  for (const auto& [len, cnt] : by_length) {
    cum += cnt;
    buckets_.push_back({len, cnt, cum});
  }
}

std::size_t LengthProfile::select_i0(std::size_t threshold) const {
  if (buckets_.empty()) throw std::logic_error("select_i0 on empty profile");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].cumulative >= threshold) return i;
  }
  return buckets_.size() - 1;
}

int LengthProfile::cutoff_length(std::size_t threshold) const {
  return buckets_[select_i0(threshold)].length;
}

}  // namespace pdf
