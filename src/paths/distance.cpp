#include "paths/distance.hpp"

#include <algorithm>

#include "runtime/thread_pool.hpp"

namespace pdf {
namespace {

int node_distance(const LineDelayModel& dm, const CompiledCircuit& cc,
                  const std::vector<int>& d, NodeId id) {
  int best = kUnreachable;
  if (cc.is_output(id)) {
    // Completing here crosses the output branch if the node also feeds
    // other consumers.
    best = dm.branch_cost(id);
  }
  for (NodeId v : cc.fanouts(id)) {
    if (d[v] == kUnreachable) continue;
    best = std::max(best, dm.branch_cost(id) + dm.stem_weight(v) + d[v]);
  }
  return best;
}

}  // namespace

std::vector<int> distances_to_outputs(const LineDelayModel& dm) {
  return distances_to_outputs(dm, CompiledCircuit(dm.netlist()));
}

std::vector<int> distances_to_outputs(const LineDelayModel& dm,
                                      const CompiledCircuit& cc) {
  std::vector<int> d(cc.node_count(), kUnreachable);
  if (!cc.has_sequential()) {
    // Frontier expansion from the outputs towards the inputs, one level at a
    // time: every combinational edge goes to a strictly higher level, so all
    // nodes of a level depend only on levels already finished and each writes
    // only its own slot — the level loop parallelizes with bit-identical
    // results for any thread count.
    for (int level = cc.depth(); level >= 0; --level) {
      const std::span<const NodeId> nodes = cc.level_nodes(level);
      runtime::global_pool().parallel_for(
          nodes.size(), 256, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              d[nodes[i]] = node_distance(dm, cc, d, nodes[i]);
            }
          });
    }
    return d;
  }
  // Sequential-circuit fallback: plain reverse-topological sweep (DFF edges
  // may connect nodes inside level 0, so the level frontier does not apply).
  const auto topo = cc.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    d[*it] = node_distance(dm, cc, d, *it);
  }
  return d;
}

}  // namespace pdf
