#include "paths/distance.hpp"

#include <algorithm>

namespace pdf {

std::vector<int> distances_to_outputs(const LineDelayModel& dm) {
  return distances_to_outputs(dm, CompiledCircuit(dm.netlist()));
}

std::vector<int> distances_to_outputs(const LineDelayModel& dm,
                                      const CompiledCircuit& cc) {
  std::vector<int> d(cc.node_count(), kUnreachable);
  const auto topo = cc.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId id = *it;
    int best = kUnreachable;
    if (cc.is_output(id)) {
      // Completing here crosses the output branch if the node also feeds
      // other consumers.
      best = dm.branch_cost(id);
    }
    for (NodeId v : cc.fanouts(id)) {
      if (d[v] == kUnreachable) continue;
      best = std::max(best, dm.branch_cost(id) + dm.stem_weight(v) + d[v]);
    }
    d[id] = best;
  }
  return d;
}

}  // namespace pdf
