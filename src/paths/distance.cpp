#include "paths/distance.hpp"

#include <algorithm>

namespace pdf {

std::vector<int> distances_to_outputs(const LineDelayModel& dm) {
  const Netlist& nl = dm.netlist();
  std::vector<int> d(nl.node_count(), kUnreachable);
  const auto topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId id = *it;
    const Node& n = nl.node(id);
    int best = kUnreachable;
    if (n.is_output) {
      // Completing here crosses the output branch if the node also feeds
      // other consumers.
      best = dm.branch_cost(id);
    }
    for (NodeId v : n.fanout) {
      if (d[v] == kUnreachable) continue;
      best = std::max(best, dm.branch_cost(id) + dm.stem_weight(v) + d[v]);
    }
    d[id] = best;
  }
  return d;
}

}  // namespace pdf
