// Path-length statistics (paper Section 3.1, Table 2).
//
// For a set of faults/paths with lengths L_0 > L_1 > ... > L_{n-1}:
//   n_p(L_i)  — number of items of length exactly L_i
//   N_p(L_i)  — number of items of length L_i or higher (cumulative)
// These drive the selection of the first target-fault set P0: the smallest
// i0 with N_p(L_{i0}) >= N_P0.
#pragma once

#include <cstddef>
#include <vector>

namespace pdf {

struct LengthBucket {
  int length = 0;            // L_i
  std::size_t count = 0;     // n_p(L_i)
  std::size_t cumulative = 0;  // N_p(L_i)
};

class LengthProfile {
 public:
  LengthProfile() = default;
  /// Builds the profile from arbitrary item lengths (need not be sorted).
  explicit LengthProfile(const std::vector<int>& lengths);

  /// Buckets in decreasing length order (index i corresponds to L_i).
  const std::vector<LengthBucket>& buckets() const { return buckets_; }
  bool empty() const { return buckets_.empty(); }
  std::size_t total() const {
    return buckets_.empty() ? 0 : buckets_.back().cumulative;
  }

  /// Smallest index i0 such that N_p(L_{i0}) >= threshold, or the last index
  /// if no bucket reaches the threshold (then the selection takes everything).
  std::size_t select_i0(std::size_t threshold) const;

  /// L_{i0} for the given threshold (see select_i0).
  int cutoff_length(std::size_t threshold) const;

 private:
  std::vector<LengthBucket> buckets_;
};

}  // namespace pdf
