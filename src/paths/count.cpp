#include "paths/count.hpp"

#include <stdexcept>

namespace pdf {
namespace {

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return (s < a || s > kPathCountCap) ? kPathCountCap : s;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kPathCountCap / b) return kPathCountCap;
  return a * b;
}

}  // namespace

PathCounts count_paths(const Netlist& nl) {
  if (!nl.finalized()) throw std::logic_error("count_paths: not finalized");
  const auto topo = nl.topo_order();

  // prefixes[id]: number of PI-to-id paths (the PI itself counts as the
  // trivial prefix of length 1).
  std::vector<std::uint64_t> prefixes(nl.node_count(), 0);
  for (NodeId id : topo) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) {
      prefixes[id] = 1;
      continue;
    }
    std::uint64_t sum = 0;
    for (NodeId f : n.fanin) sum = sat_add(sum, prefixes[f]);
    prefixes[id] = sum;
  }

  // suffixes[id]: number of id-to-output completions (1 when id is itself an
  // output, plus continuations through every fanout).
  std::vector<std::uint64_t> suffixes(nl.node_count(), 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId id = *it;
    std::uint64_t sum = nl.node(id).is_output ? 1 : 0;
    for (NodeId v : nl.node(id).fanout) sum = sat_add(sum, suffixes[v]);
    suffixes[id] = sum;
  }

  PathCounts out;
  out.through.resize(nl.node_count());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    out.through[id] = sat_mul(prefixes[id], suffixes[id]);
  }
  std::uint64_t total = 0;
  for (NodeId pi : nl.inputs()) total = sat_add(total, suffixes[pi]);
  out.total = total;
  out.saturated = total >= kPathCountCap;
  return out;
}

bool has_at_least_paths(const Netlist& nl, std::uint64_t threshold) {
  return count_paths(nl).total >= threshold;
}

}  // namespace pdf
