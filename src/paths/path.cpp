#include "paths/path.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace pdf {

std::string path_to_string(const Netlist& nl, const Path& p) {
  std::ostringstream os;
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    if (i) os << " -> ";
    os << nl.node(p.nodes[i]).name;
  }
  return os.str();
}

LineDelayModel::LineDelayModel(const Netlist& nl)
    : LineDelayModel(nl, std::vector<int>(nl.node_count(), 1)) {}

LineDelayModel::LineDelayModel(const Netlist& nl, std::vector<int> stem_weights)
    : nl_(&nl), stem_weight_(std::move(stem_weights)) {
  if (!nl.finalized()) throw std::logic_error("LineDelayModel: netlist not finalized");
  if (stem_weight_.size() != nl.node_count()) {
    throw ConfigError("LineDelayModel: wrong stem-weight vector size");
  }
  for (int w : stem_weight_) {
    if (w < 0) throw ConfigError("LineDelayModel: negative stem weight");
  }
  consumers_.resize(nl.node_count());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    consumers_[id] = static_cast<int>(n.fanout.size()) + (n.is_output ? 1 : 0);
  }
}

int LineDelayModel::partial_length(std::span<const NodeId> nodes) const {
  assert(!nodes.empty());
  int len = 0;
  for (NodeId id : nodes) len += stem_weight_[id];
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    len += branch_cost(nodes[i]);
  }
  return len;
}

int LineDelayModel::complete_length(std::span<const NodeId> nodes) const {
  const NodeId last = nodes.back();
  if (!nl_->node(last).is_output) {
    throw std::logic_error("complete_length: path does not end at an output");
  }
#ifdef PATHDELAY_MUTATION_PATH_LENGTH_OFF_BY_ONE
  // Seeded bug (mutation testing only): the branch line at the final
  // output tap is dropped, shortening every path ending at a fanout stem.
  return partial_length(nodes);
#else
  return partial_length(nodes) + branch_cost(last);
#endif
}

LineDelayModel random_delay_model(const Netlist& nl, int min_delay,
                                  int max_delay, std::uint64_t seed) {
  if (min_delay < 0 || max_delay < min_delay) {
    throw std::invalid_argument("random_delay_model: bad delay range");
  }
  Rng rng(seed);
  std::vector<int> w(nl.node_count(), 0);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == GateType::Input) continue;
    w[id] = static_cast<int>(rng.range(min_delay, max_delay));
  }
  return LineDelayModel(nl, std::move(w));
}

}  // namespace pdf
