// Physical paths and the line-counting delay model.
//
// A path is a sequence of nodes from a primary input to a node marked as a
// (pseudo) primary output, where consecutive nodes are gate fanin/fanout
// connected. Following the paper (and the usual ISCAS convention, which the
// paper's s27 example uses), the *length* of a path is the number of LINES it
// traverses: every node contributes its output stem, and whenever a node
// drives more than one consumer the traversed fanout branch is a line too. A
// primary-output tap counts as a consumer, so completing a path at a node
// that also feeds other gates crosses a branch line. This model reproduces
// the paper's s27 lengths exactly (longest path 10 lines, shortest complete
// path (G2, G13) 2 lines).
//
// Other delay models can be supported by replacing LineDelayModel; all
// enumeration code takes lengths through it.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace pdf {

/// A structural path, stored as the ordered list of nodes it passes through.
struct Path {
  std::vector<NodeId> nodes;

  NodeId source() const { return nodes.front(); }
  NodeId sink() const { return nodes.back(); }
  std::size_t size() const { return nodes.size(); }
  bool empty() const { return nodes.empty(); }

  friend bool operator==(const Path&, const Path&) = default;
};

/// "G0 -> G14 -> G8" style rendering.
std::string path_to_string(const Netlist& nl, const Path& p);

/// Line-counting delay model over one netlist.
///
/// By default every line weighs one unit (the paper's model). A weighted
/// variant ("other delay models can be accommodated by the procedure we
/// use") assigns each node's output stem an integer weight — e.g. a gate
/// delay in picoseconds plus wire load — while fanout branches keep unit
/// weight; all enumeration, distance and target-set machinery works through
/// this class unchanged.
class LineDelayModel {
 public:
  explicit LineDelayModel(const Netlist& nl);

  /// Weighted model: stem_weights[id] is the cost of node id's output stem
  /// (must be >= 0; inputs typically 0 or small). Vector size must equal
  /// nl.node_count().
  LineDelayModel(const Netlist& nl, std::vector<int> stem_weights);

  /// Number of consumers of a node's output: gate fanouts plus one if the
  /// node is a (pseudo) primary output.
  int consumers(NodeId id) const { return consumers_[id]; }

  /// 1 if traversing any branch out of `id` costs a line (multi-consumer), 0
  /// otherwise.
  int branch_cost(NodeId id) const { return consumers_[id] > 1 ? 1 : 0; }

  /// Weight of a node's output stem (1 in the unit model).
  int stem_weight(NodeId id) const { return stem_weight_[id]; }

  /// Length in lines of a node sequence treated as a partial path (stems of
  /// all nodes plus branch lines between consecutive nodes; no terminal
  /// output branch).
  int partial_length(std::span<const NodeId> nodes) const;

  /// Length in lines of a complete path (adds the output branch line when the
  /// terminal node has multiple consumers).
  int complete_length(std::span<const NodeId> nodes) const;

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<int> consumers_;
  std::vector<int> stem_weight_;
};

/// Convenience: a weighted model with randomized per-gate delays in
/// [min_delay, max_delay] (inputs weigh 0), deterministic from `seed`.
/// Models process variation studies on synthetic circuits.
LineDelayModel random_delay_model(const Netlist& nl, int min_delay,
                                  int max_delay, std::uint64_t seed);

}  // namespace pdf
