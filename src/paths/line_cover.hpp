// Line-cover path selection (the criterion of Li, Reddy & Sahni, the paper's
// reference [3]): select a set of paths such that every line of the circuit
// lies on at least one selected path, and that path is one of the longest
// paths through the line. The paper names this as the alternative way of
// choosing the conventional target set P0.
//
// Longest path through a line g = (longest PI-to-g prefix) ++ (longest
// g-to-output suffix); both halves come from one forward and one backward
// distance pass, so selection is linear in circuit size after deduplication.
#pragma once

#include <vector>

#include "paths/path.hpp"

namespace pdf {

/// A selected path with its length under the delay model.
struct CoverPath {
  Path path;
  int length = 0;
};

/// Arrival distances: for each node, the maximum length in lines of a partial
/// path from any primary input up to and including the node's stem, or
/// kUnreachableArrival when no PI reaches it.
inline constexpr int kUnreachableArrival = -1;
std::vector<int> distances_from_inputs(const LineDelayModel& dm);

/// Computes the line-cover selection, sorted by descending length and
/// deduplicated. Nodes that cannot both be reached from a PI and reach an
/// output are skipped (they lie on no complete path).
std::vector<CoverPath> select_line_cover_paths(const LineDelayModel& dm);

}  // namespace pdf
