// Bounded enumeration of the longest circuit paths (paper Section 3.1).
//
// The enumerator grows paths from the primary inputs towards the outputs,
// keeping a working set P of partial and complete paths. Whenever the number
// of path delay faults associated with P reaches the bound N_P it prunes the
// least promising members. Two variants, both from the paper:
//
//  * Basic (moderate path counts): extend the first partial path in list
//    order; prune only *complete* paths, shortest first, never touching the
//    longest complete paths. This is the variant of the paper's s27 example
//    (Table 1).
//  * Distance-guided (large path counts): precompute d(g), the distance of
//    every line to the outputs; a partial path p ending at g can at best
//    become a complete path of len(p) = length(p) + d(g). Always extend the
//    partial path with maximum len(p), and prune entries (partial or
//    complete) with minimum len(p), stopping if all survivors share the same
//    maximum length.
//
// The result is the set of complete paths in P once no partial path remains,
// sorted by descending length. Optionally records a trace of prune events and
// working-set snapshots so the Table 1 experiment can display the process.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "paths/path.hpp"

namespace pdf {

enum class SelectionPolicy {
  FirstPartial,  // paper's basic example: list order, replace-in-place
  MaxBound,      // distance-guided best-first
};

enum class PrunePolicy {
  CompleteShortestFirst,  // basic: remove shortest complete paths only
  MinBound,               // distance-guided: remove minimum len(p), any kind
};

struct EnumerationConfig {
  /// N_P: prune when the fault count of the working set reaches this bound.
  std::size_t max_faults = 10000;
  /// Faults per path (2 for slow-to-rise + slow-to-fall; the paper's s27
  /// illustration counts paths, i.e. 1).
  int faults_per_path = 2;
  SelectionPolicy selection = SelectionPolicy::MaxBound;
  PrunePolicy prune = PrunePolicy::MinBound;
  /// Safety valve on extension steps; hitting it sets step_limit_hit.
  std::size_t max_steps = 20'000'000;
  /// Backstop for circuits with enormous tie bands: the paper's prune rule
  /// stops removing once every survivor shares the maximum length, which is
  /// unbounded when millions of paths tie. Once the working set exceeds
  /// hard_cap_factor * (max_faults / faults_per_path) entries, pruning
  /// removes minimum-length entries regardless of the tie rule and
  /// prune_stalled is reported.
  std::size_t hard_cap_factor = 8;
  bool record_trace = false;
};

struct EnumeratedPath {
  Path path;
  int length = 0;
};

/// One entry of a recorded working-set snapshot.
struct TraceEntry {
  std::string rendering;  // "G1 -> G12 -> G13"
  bool complete = false;
  int length = 0;  // complete length or partial length
  int bound = 0;   // len(p): length + d(last) for partials, length for complete
};

struct PruneEvent {
  std::size_t step = 0;
  std::size_t entries_before = 0;
  std::vector<int> removed_lengths;           // key of each removed entry
  std::vector<TraceEntry> snapshot_before;    // only when record_trace
};

struct EnumerationTrace {
  std::vector<PruneEvent> prunes;
  std::vector<TraceEntry> final_set;
};

struct EnumerationResult {
  std::vector<EnumeratedPath> paths;  // complete paths, length-descending
  std::size_t steps = 0;
  bool step_limit_hit = false;
  /// Basic prune policy only: set when the working set could not be reduced
  /// below the bound because only longest-complete/partial entries remained.
  bool prune_stalled = false;
  EnumerationTrace trace;
};

EnumerationResult enumerate_longest_paths(const LineDelayModel& dm,
                                          const EnumerationConfig& cfg = {});

}  // namespace pdf
