// Non-enumerative path counting.
//
// The number of structural paths of a circuit grows exponentially, which is
// the paper's premise (its reference [2] is a non-enumerative coverage
// estimator for exactly that reason) and its circuit-selection criterion
// ("we only consider circuits with at least 1000 paths"). This module counts
// complete paths without enumerating them: one topological DP for the number
// of PI-to-node prefixes, one reverse pass for node-to-output suffixes.
// Counts saturate at kPathCountCap so overflow is explicit rather than
// silent.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace pdf {

/// Saturation bound for all counts (2^62; anything larger reads "huge").
inline constexpr std::uint64_t kPathCountCap = std::uint64_t{1} << 62;

struct PathCounts {
  /// Complete paths (PI -> output) in the whole circuit; saturated.
  std::uint64_t total = 0;
  bool saturated = false;
  /// Per node: complete paths passing through its stem; saturated entries
  /// clamp to kPathCountCap.
  std::vector<std::uint64_t> through;
};

PathCounts count_paths(const Netlist& nl);

/// Convenience: the paper's ">= 1000 paths" selection test.
bool has_at_least_paths(const Netlist& nl, std::uint64_t threshold);

}  // namespace pdf
