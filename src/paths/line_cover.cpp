#include "paths/line_cover.hpp"

#include <algorithm>
#include <set>

#include "paths/distance.hpp"

namespace pdf {

std::vector<int> distances_from_inputs(const LineDelayModel& dm) {
  const Netlist& nl = dm.netlist();
  std::vector<int> d(nl.node_count(), kUnreachableArrival);
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) {
      d[id] = dm.stem_weight(id);
      continue;
    }
    int best = kUnreachableArrival;
    for (NodeId f : n.fanin) {
      if (d[f] == kUnreachableArrival) continue;
      best = std::max(best, d[f] + dm.branch_cost(f) + dm.stem_weight(id));
    }
    d[id] = best;
  }
  return d;
}

std::vector<CoverPath> select_line_cover_paths(const LineDelayModel& dm) {
  const Netlist& nl = dm.netlist();
  const std::vector<int> arrive = distances_from_inputs(dm);
  const std::vector<int> depart = distances_to_outputs(dm);

  std::set<std::vector<NodeId>> seen;
  std::vector<CoverPath> out;

  for (NodeId g = 0; g < nl.node_count(); ++g) {
    if (arrive[g] == kUnreachableArrival || depart[g] == kUnreachable) continue;

    // Backward half: from g to a primary input, always via the fanin with
    // the maximum arrival (ties by first, deterministically).
    std::vector<NodeId> prefix{g};
    while (nl.node(prefix.back()).type != GateType::Input) {
      const Node& n = nl.node(prefix.back());
      NodeId best = kNoNode;
      for (NodeId f : n.fanin) {
        if (arrive[f] == kUnreachableArrival) continue;
        if (best == kNoNode || arrive[f] + dm.branch_cost(f) >
                                   arrive[best] + dm.branch_cost(best)) {
          best = f;
        }
      }
      prefix.push_back(best);
    }
    std::reverse(prefix.begin(), prefix.end());

    // Forward half: from g to an output, preferring the fanout continuation
    // while its value exceeds completing at g (when g itself is an output).
    std::vector<NodeId>& nodes = prefix;
    for (;;) {
      const NodeId cur = nodes.back();
      const Node& n = nl.node(cur);
      NodeId best = kNoNode;
      for (NodeId v : n.fanout) {
        if (depart[v] == kUnreachable) continue;
        if (best == kNoNode ||
            dm.stem_weight(v) + depart[v] > dm.stem_weight(best) + depart[best]) {
          best = v;
        }
      }
      const bool can_complete_here = n.is_output;
      if (best == kNoNode) break;  // must be an output (depart != unreachable)
      const int continue_gain = dm.branch_cost(cur) + dm.stem_weight(best) +
                                depart[best];
      const int complete_gain = can_complete_here ? dm.branch_cost(cur) : -1;
      if (can_complete_here && complete_gain >= continue_gain) break;
      nodes.push_back(best);
    }

    if (!seen.insert(nodes).second) continue;
    CoverPath cp;
    cp.path.nodes = nodes;
    cp.length = dm.complete_length(cp.path.nodes);
    out.push_back(std::move(cp));
  }

  std::stable_sort(out.begin(), out.end(), [](const CoverPath& a, const CoverPath& b) {
    return a.length > b.length;
  });
  return out;
}

}  // namespace pdf
