#include "paths/line_cover.hpp"

#include <algorithm>
#include <set>

#include "paths/distance.hpp"
#include "runtime/thread_pool.hpp"

namespace pdf {
namespace {

// Longest complete path through g, or empty when g lies on no complete path.
// Pure function of the distance passes — safe to run for all nodes in
// parallel; each node writes only its own slot.
std::vector<NodeId> longest_path_through(const LineDelayModel& dm,
                                         const Netlist& nl,
                                         const std::vector<int>& arrive,
                                         const std::vector<int>& depart,
                                         NodeId g) {
  if (arrive[g] == kUnreachableArrival || depart[g] == kUnreachable) return {};

  // Backward half: from g to a primary input, always via the fanin with
  // the maximum arrival (ties by first, deterministically).
  std::vector<NodeId> nodes{g};
  while (nl.node(nodes.back()).type != GateType::Input) {
    const Node& n = nl.node(nodes.back());
    NodeId best = kNoNode;
    for (NodeId f : n.fanin) {
      if (arrive[f] == kUnreachableArrival) continue;
      if (best == kNoNode || arrive[f] + dm.branch_cost(f) >
                                 arrive[best] + dm.branch_cost(best)) {
        best = f;
      }
    }
    nodes.push_back(best);
  }
  std::reverse(nodes.begin(), nodes.end());

  // Forward half: from g to an output, preferring the fanout continuation
  // while its value exceeds completing at g (when g itself is an output).
  for (;;) {
    const NodeId cur = nodes.back();
    const Node& n = nl.node(cur);
    NodeId best = kNoNode;
    for (NodeId v : n.fanout) {
      if (depart[v] == kUnreachable) continue;
      if (best == kNoNode ||
          dm.stem_weight(v) + depart[v] > dm.stem_weight(best) + depart[best]) {
        best = v;
      }
    }
    const bool can_complete_here = n.is_output;
    if (best == kNoNode) break;  // must be an output (depart != unreachable)
    const int continue_gain = dm.branch_cost(cur) + dm.stem_weight(best) +
                              depart[best];
    const int complete_gain = can_complete_here ? dm.branch_cost(cur) : -1;
    if (can_complete_here && complete_gain >= continue_gain) break;
    nodes.push_back(best);
  }
  return nodes;
}

}  // namespace

std::vector<int> distances_from_inputs(const LineDelayModel& dm) {
  const Netlist& nl = dm.netlist();
  std::vector<int> d(nl.node_count(), kUnreachableArrival);
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) {
      d[id] = dm.stem_weight(id);
      continue;
    }
    int best = kUnreachableArrival;
    for (NodeId f : n.fanin) {
      if (d[f] == kUnreachableArrival) continue;
      best = std::max(best, d[f] + dm.branch_cost(f) + dm.stem_weight(id));
    }
    d[id] = best;
  }
  return d;
}

std::vector<CoverPath> select_line_cover_paths(const LineDelayModel& dm) {
  const Netlist& nl = dm.netlist();
  const std::vector<int> arrive = distances_from_inputs(dm);
  const std::vector<int> depart = distances_to_outputs(dm);

  // Per-node path construction is independent: fan it out over the pool,
  // each node filling its own slot. Deduplication stays sequential in node
  // order below, so the selection is bit-identical for any thread count.
  std::vector<std::vector<NodeId>> built(nl.node_count());
  runtime::global_pool().parallel_for(
      nl.node_count(), 64, [&](std::size_t b, std::size_t e) {
        for (std::size_t g = b; g < e; ++g) {
          built[g] = longest_path_through(dm, nl, arrive, depart,
                                          static_cast<NodeId>(g));
        }
      });

  std::set<std::vector<NodeId>> seen;
  std::vector<CoverPath> out;
  for (NodeId g = 0; g < nl.node_count(); ++g) {
    std::vector<NodeId>& nodes = built[g];
    if (nodes.empty()) continue;
    if (!seen.insert(nodes).second) continue;
    CoverPath cp;
    cp.path.nodes = std::move(nodes);
    cp.length = dm.complete_length(cp.path.nodes);
    out.push_back(std::move(cp));
  }

  std::stable_sort(out.begin(), out.end(), [](const CoverPath& a, const CoverPath& b) {
    return a.length > b.length;
  });
  return out;
}

}  // namespace pdf
