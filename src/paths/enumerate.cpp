#include "paths/enumerate.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <stdexcept>

#include "base/error.hpp"
#include "obs/trace.hpp"
#include "paths/distance.hpp"
#include "runtime/metrics.hpp"

namespace pdf {
namespace {

struct Entry {
  Path path;
  bool complete = false;
  int length = 0;  // partial_length for partials, complete_length for complete
  int key = 0;     // len(p): length + d(last) for partials, length for complete
  bool alive = false;
};

// Max/min-heap items; lazy deletion validated against the slab.
struct HeapItem {
  int key;
  std::size_t idx;
};
struct MaxCmp {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    // Prefer larger key; on ties prefer smaller index (older entry) for
    // deterministic, insertion-stable behaviour.
    if (a.key != b.key) return a.key < b.key;
    return a.idx > b.idx;
  }
};
struct MinCmp {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.idx > b.idx;
  }
};

class Enumerator {
 public:
  Enumerator(const LineDelayModel& dm, const EnumerationConfig& cfg)
      : dm_(dm),
        nl_(dm.netlist()),
        cfg_(cfg),
        cc_(dm.netlist()),
        dist_(distances_to_outputs(dm, cc_)) {}

  EnumerationResult run() {
    PDF_TRACE_SPAN("paths.enumerate");
    const auto timer_scope =
        runtime::Metrics::global().timer("paths.enumerate").measure();
    seed();
    maybe_prune();
    while (partial_count_ > 0) {
      if (result_.steps >= cfg_.max_steps) {
        result_.step_limit_hit = true;
        break;
      }
      ++result_.steps;
      const std::size_t idx = pick_partial();
      extend(idx);
      maybe_prune();
    }
    collect();
    runtime::Metrics::global().counter("paths.enumerate.steps")
        .add(result_.steps);
    return std::move(result_);
  }

 private:
  void seed() {
    for (NodeId pi : cc_.inputs()) {
      make_entries_for(Path{{pi}}, /*replace_pos=*/order_.size());
    }
  }

  // Creates the complete and/or partial entries for a path ending at its
  // last node. `replace_pos` is the list position the first created entry
  // takes (FirstPartial keeps paper-style in-place replacement); subsequent
  // entries append.
  void make_entries_for(Path p, std::size_t replace_pos) {
    const NodeId last = p.sink();
    const auto fanouts = cc_.fanouts(last);
    bool first = true;
    auto place = [&](Entry e) {
      const std::size_t idx = slab_.size();
      slab_.push_back(std::move(e));
      if (first && replace_pos < order_.size()) {
        order_[replace_pos] = idx;
      } else {
        order_.push_back(idx);
      }
      first = false;
      on_insert(idx);
    };

    const bool can_extend = std::any_of(
        fanouts.begin(), fanouts.end(),
        [&](NodeId v) { return dist_[v] != kUnreachable; });

    if (cc_.is_output(last)) {
      static auto& length_hist =
          runtime::Metrics::global().histogram("paths.length");
      Entry e;
      e.complete = true;
      e.length = dm_.complete_length(p.nodes);
      length_hist.record(static_cast<std::uint64_t>(std::max(e.length, 0)));
      e.key = e.length;
      e.alive = true;
      e.path = can_extend ? p : std::move(p);  // copy only when both needed
      place(std::move(e));
    }
    if (can_extend) {
      Entry e;
      e.complete = false;
      e.length = dm_.partial_length(p.nodes);
      assert(dist_[last] != kUnreachable);
      e.key = e.length + dist_[last];
      e.alive = true;
      e.path = std::move(p);
      place(std::move(e));
    }
  }

  void on_insert(std::size_t idx) {
    const Entry& e = slab_[idx];
    ++alive_count_;
    if (!e.complete) {
      ++partial_count_;
      partial_heap_.push({e.key, idx});
    }
    min_heap_.push({e.key, idx});
    ++key_count_[e.key];
  }

  void kill(std::size_t idx) {
    Entry& e = slab_[idx];
    assert(e.alive);
    e.alive = false;
    --alive_count_;
    if (!e.complete) --partial_count_;
    auto it = key_count_.find(e.key);
    if (--it->second == 0) key_count_.erase(it);
    e.path.nodes.clear();
    e.path.nodes.shrink_to_fit();
  }

  std::size_t pick_partial() {
    if (cfg_.selection == SelectionPolicy::FirstPartial) {
      for (std::size_t pos = 0; pos < order_.size(); ++pos) {
        const std::size_t idx = order_[pos];
        if (slab_[idx].alive && !slab_[idx].complete) {
          pick_pos_ = pos;
          return idx;
        }
      }
      throw std::logic_error("pick_partial: no partial entry");
    }
    for (;;) {
      assert(!partial_heap_.empty());
      const HeapItem top = partial_heap_.top();
      partial_heap_.pop();
      const Entry& e = slab_[top.idx];
      if (e.alive && !e.complete && e.key == top.key) {
        pick_pos_ = order_.size();  // children append
        return top.idx;
      }
    }
  }

  void extend(std::size_t idx) {
    // Move the path out, retire the partial entry, then create children.
    Path base = std::move(slab_[idx].path);
    const std::size_t replace_pos = pick_pos_;
    slab_[idx].path = Path{};
    kill(idx);

    const NodeId last = base.sink();
    std::size_t pos = replace_pos;
    for (NodeId v : cc_.fanouts(last)) {
      if (dist_[v] == kUnreachable) continue;
      Path child;
      child.nodes.reserve(base.nodes.size() + 1);
      child.nodes = base.nodes;
      child.nodes.push_back(v);
      make_entries_for(std::move(child), pos);
      pos = order_.size();  // only the first child replaces in place
    }
  }

  int max_alive_key() const {
    assert(!key_count_.empty());
    return key_count_.rbegin()->first;
  }

  void maybe_prune() {
    if (alive_count_ == 0) return;
    const std::size_t fpp = static_cast<std::size_t>(cfg_.faults_per_path);
    if (alive_count_ * fpp < cfg_.max_faults) return;

    PruneEvent ev;
    ev.step = result_.steps;
    ev.entries_before = alive_count_;
    if (cfg_.record_trace) ev.snapshot_before = snapshot();

    const std::size_t hard_cap =
        cfg_.hard_cap_factor * std::max<std::size_t>(1, cfg_.max_faults / fpp);
    while (alive_count_ * fpp >= cfg_.max_faults) {
      const int max_key = max_alive_key();
      std::size_t victim = static_cast<std::size_t>(-1);
      if (cfg_.prune == PrunePolicy::MinBound) {
        // Pop the minimum-key entry unless every survivor already shares the
        // maximum length.
        while (!min_heap_.empty()) {
          const HeapItem top = min_heap_.top();
          const Entry& e = slab_[top.idx];
          if (!e.alive || e.key != top.key) {
            min_heap_.pop();
            continue;
          }
          break;
        }
        assert(!min_heap_.empty());
        const HeapItem top = min_heap_.top();
        if (top.key >= max_key && alive_count_ <= hard_cap) {
          break;  // all survivors share the max length (paper's stop rule)
        }
        min_heap_.pop();
        victim = top.idx;
      } else {
        // Basic policy: shortest complete path that is not among the longest
        // complete paths.
        int max_complete = kUnreachable;
        for (std::size_t i = 0; i < slab_.size(); ++i) {
          const Entry& e = slab_[i];
          if (e.alive && e.complete) max_complete = std::max(max_complete, e.length);
        }
        int best_len = 0;
        for (std::size_t i = 0; i < slab_.size(); ++i) {
          const Entry& e = slab_[i];
          if (!e.alive || !e.complete || e.length >= max_complete) continue;
          if (victim == static_cast<std::size_t>(-1) || e.length < best_len) {
            victim = i;
            best_len = e.length;
          }
        }
        if (victim == static_cast<std::size_t>(-1)) break;  // nothing removable
      }
      ev.removed_lengths.push_back(slab_[victim].key);
      kill(victim);
    }

    if (alive_count_ * fpp >= cfg_.max_faults) result_.prune_stalled = true;
    if (!ev.removed_lengths.empty()) {
      static auto& removed_hist =
          runtime::Metrics::global().histogram("paths.prune.removed_length");
      for (int len : ev.removed_lengths) {
        removed_hist.record(static_cast<std::uint64_t>(std::max(len, 0)));
      }
      result_.trace.prunes.push_back(std::move(ev));
    }
  }

  std::vector<TraceEntry> snapshot() const {
    std::vector<TraceEntry> out;
    for (std::size_t pos = 0; pos < order_.size(); ++pos) {
      const Entry& e = slab_[order_[pos]];
      if (!e.alive) continue;
      TraceEntry te;
      te.rendering = path_to_string(nl_, e.path);
      te.complete = e.complete;
      te.length = e.length;
      te.bound = e.key;
      out.push_back(std::move(te));
    }
    return out;
  }

  void collect() {
    if (cfg_.record_trace) result_.trace.final_set = snapshot();
    for (std::size_t pos = 0; pos < order_.size(); ++pos) {
      Entry& e = slab_[order_[pos]];
      if (!e.alive || !e.complete) continue;
      result_.paths.push_back({std::move(e.path), e.length});
    }
    std::stable_sort(result_.paths.begin(), result_.paths.end(),
                     [](const EnumeratedPath& a, const EnumeratedPath& b) {
                       return a.length > b.length;
                     });
  }

  const LineDelayModel& dm_;
  const Netlist& nl_;  // names for trace rendering; traversal uses cc_
  EnumerationConfig cfg_;
  CompiledCircuit cc_;
  std::vector<int> dist_;

  std::vector<Entry> slab_;
  std::vector<std::size_t> order_;  // list positions -> slab indices
  std::size_t alive_count_ = 0;
  std::size_t partial_count_ = 0;
  std::size_t pick_pos_ = 0;

  std::priority_queue<HeapItem, std::vector<HeapItem>, MaxCmp> partial_heap_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, MinCmp> min_heap_;
  std::map<int, std::size_t> key_count_;

  EnumerationResult result_;
};

}  // namespace

EnumerationResult enumerate_longest_paths(const LineDelayModel& dm,
                                          const EnumerationConfig& cfg) {
  if (cfg.max_faults == 0) throw ConfigError("max_faults must be > 0");
  if (cfg.faults_per_path <= 0) {
    throw ConfigError("faults_per_path must be > 0");
  }
  Enumerator e(dm, cfg);
  return e.run();
}

}  // namespace pdf
