// Deterministic pseudo-random number generator.
//
// All stochastic choices in the library (random value decisions in the
// justification engine, synthetic circuit generation) draw from this
// generator so that every experiment is bit-reproducible from its seed.
// xoshiro256** — small, fast, and good enough for Monte-Carlo style use.
#pragma once

#include <cstdint>

namespace pdf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive; lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Fair coin.
  bool coin();

  /// Uniform double in [0, 1).
  double uniform();

  /// Forks an independently seeded generator (for per-task determinism that
  /// is insensitive to the number of draws made by other tasks). Advances
  /// this generator by one draw.
  Rng fork();

  /// Derives the `stream`-th child generator from the current state without
  /// advancing it: split(i) always returns the same generator for the same
  /// parent state and i. This is the runtime's RNG contract for parallel
  /// work — task i draws only from split(i), so results are bit-identical
  /// regardless of how tasks are scheduled across threads.
  Rng split(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace pdf
