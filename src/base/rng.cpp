#include "base/rng.hpp"

#include <cassert>

namespace pdf {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::coin() { return (next() >> 63) != 0; }

double Rng::uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

Rng Rng::fork() { return Rng(next()); }

Rng Rng::split(std::uint64_t stream) const {
  // Hash the full parent state with the stream index so distinct parents and
  // distinct streams both decorrelate; Rng's seeding then splitmixes again.
  std::uint64_t sm = stream;
  std::uint64_t h = splitmix64(sm);
  h ^= s_[0];
  h = splitmix64(h);
  h ^= s_[1] ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  return Rng(splitmix64(h));
}

}  // namespace pdf
