#include "base/logic.hpp"

#include <ostream>
#include <stdexcept>

namespace pdf {

char to_char(V3 v) {
  switch (v) {
    case V3::Zero: return '0';
    case V3::One: return '1';
    default: return 'x';
  }
}

V3 v3_from_char(char c) {
  switch (c) {
    case '0': return V3::Zero;
    case '1': return V3::One;
    case 'x':
    case 'X': return V3::X;
    default: throw std::invalid_argument(std::string("bad V3 character: ") + c);
  }
}

std::ostream& operator<<(std::ostream& os, V3 v) { return os << to_char(v); }

}  // namespace pdf
