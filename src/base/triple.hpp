// The two-pattern value algebra of the paper (Section 2.1).
//
// A test for a path delay fault is a pair of patterns. Every line carries a
// *triple* a1 a2 a3 where a1 is the line's value under the first pattern, a3
// its value under the second pattern, and a2 the intermediate value during
// the transition between the two patterns. A stable value has a1==a2==a3; a
// rising transition is 0x1 and a falling transition is 1x0 (the intermediate
// value of a transitioning line is unknown). An intermediate value that is
// *specified* asserts hazard-freedom: the line provably holds that value for
// the whole duration of the test, which is what robust off-path constraints
// such as "steady 0" (000) demand.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "base/logic.hpp"

namespace pdf {

/// A value triple a1 a2 a3 over {0,1,x}. Plain aggregate; ordered/hashable so
/// it can key requirement sets.
struct Triple {
  V3 a1 = V3::X;
  V3 a2 = V3::X;
  V3 a3 = V3::X;

  friend bool operator==(const Triple&, const Triple&) = default;

  V3 operator[](int plane) const;

  /// True when no component is x.
  bool fully_specified() const {
    return is_specified(a1) && is_specified(a2) && is_specified(a3);
  }

  /// True when every component is x.
  bool all_x() const {
    return !is_specified(a1) && !is_specified(a2) && !is_specified(a3);
  }

  /// Componentwise cover: this triple guarantees everything `required` asks.
  bool covers(const Triple& required) const {
    return pdf::covers(a1, required.a1) && pdf::covers(a2, required.a2) &&
           pdf::covers(a3, required.a3);
  }

  /// Componentwise conflict: some component is specified in both and differs.
  bool conflicts_with(const Triple& other) const {
    return pdf::conflicts(a1, other.a1) || pdf::conflicts(a2, other.a2) ||
           pdf::conflicts(a3, other.a3);
  }

  /// "000", "0x1", ...
  std::string str() const;
};

/// Componentwise merge of two non-conflicting triples (specified values win
/// over x). Precondition: !a.conflicts_with(b).
Triple merge(const Triple& a, const Triple& b);

/// Parses a 3-character string such as "0x1".
Triple triple_from_string(const std::string& s);

// Named constants of the algebra.
inline constexpr Triple kSteady0{V3::Zero, V3::Zero, V3::Zero};
inline constexpr Triple kSteady1{V3::One, V3::One, V3::One};
inline constexpr Triple kRise{V3::Zero, V3::X, V3::One};
inline constexpr Triple kFall{V3::One, V3::X, V3::Zero};
inline constexpr Triple kAllX{V3::X, V3::X, V3::X};
/// Final-value-only constraints used for off-path inputs whose on-path
/// transition ends at the controlling value of the gate (xx c-bar).
inline constexpr Triple kFinal0{V3::X, V3::X, V3::Zero};
inline constexpr Triple kFinal1{V3::X, V3::X, V3::One};

/// Steady triple for a binary value.
constexpr Triple steady(V3 v) { return Triple{v, v, v}; }
/// xx`v` triple for a binary value.
constexpr Triple final_only(V3 v) { return Triple{V3::X, V3::X, v}; }
/// 0x1 for rising=true, 1x0 otherwise.
constexpr Triple transition(bool rising) { return rising ? kRise : kFall; }

std::ostream& operator<<(std::ostream& os, const Triple& t);

}  // namespace pdf
