#include "base/triple.hpp"

#include <cassert>
#include <ostream>
#include <stdexcept>

namespace pdf {

V3 Triple::operator[](int plane) const {
  switch (plane) {
    case 0: return a1;
    case 1: return a2;
    case 2: return a3;
    default: throw std::out_of_range("Triple plane index");
  }
}

std::string Triple::str() const {
  return std::string{to_char(a1), to_char(a2), to_char(a3)};
}

Triple merge(const Triple& a, const Triple& b) {
  assert(!a.conflicts_with(b));
  return Triple{
      is_specified(a.a1) ? a.a1 : b.a1,
      is_specified(a.a2) ? a.a2 : b.a2,
      is_specified(a.a3) ? a.a3 : b.a3,
  };
}

Triple triple_from_string(const std::string& s) {
  if (s.size() != 3) throw std::invalid_argument("triple string must have length 3: " + s);
  return Triple{v3_from_char(s[0]), v3_from_char(s[1]), v3_from_char(s[2])};
}

std::ostream& operator<<(std::ostream& os, const Triple& t) { return os << t.str(); }

}  // namespace pdf
