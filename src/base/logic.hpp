// Three-valued logic (0, 1, x) used as the per-plane value domain of the
// two-pattern test algebra (see base/triple.hpp).
//
// The x value is the usual pessimistic unknown: any operation whose result
// would depend on the concrete binary value of an x operand yields x, while
// controlling values dominate (0 AND x == 0, 1 OR x == 1).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace pdf {

/// A single three-valued logic value.
enum class V3 : std::uint8_t {
  Zero = 0,
  One = 1,
  X = 2,
};

/// True when `v` is 0 or 1 (not x).
constexpr bool is_specified(V3 v) { return v != V3::X; }

/// Logical complement; x maps to x.
constexpr V3 not3(V3 v) {
  switch (v) {
    case V3::Zero: return V3::One;
    case V3::One: return V3::Zero;
    default: return V3::X;
  }
}

/// Three-valued AND with controlling-value dominance.
constexpr V3 and3(V3 a, V3 b) {
  if (a == V3::Zero || b == V3::Zero) return V3::Zero;
  if (a == V3::One && b == V3::One) return V3::One;
  return V3::X;
}

/// Three-valued OR with controlling-value dominance.
constexpr V3 or3(V3 a, V3 b) {
  if (a == V3::One || b == V3::One) return V3::One;
  if (a == V3::Zero && b == V3::Zero) return V3::Zero;
  return V3::X;
}

/// Three-valued XOR; x if either operand is x.
constexpr V3 xor3(V3 a, V3 b) {
  if (!is_specified(a) || !is_specified(b)) return V3::X;
  return a == b ? V3::Zero : V3::One;
}

/// '0', '1' or 'x'.
char to_char(V3 v);

/// Parses '0', '1', 'x' or 'X'; throws std::invalid_argument otherwise.
V3 v3_from_char(char c);

/// Convenience constants for concise test/algorithm code.
inline constexpr V3 v0 = V3::Zero;
inline constexpr V3 v1 = V3::One;
inline constexpr V3 vx = V3::X;

std::ostream& operator<<(std::ostream& os, V3 v);

/// `value` is compatible with `required` when `required` is x, or both are
/// specified and equal, or `value` is x (i.e. it could still become the
/// required value). Used for conflict detection: a conflict is exactly the
/// case where both are specified and differ.
constexpr bool conflicts(V3 value, V3 required) {
  return is_specified(value) && is_specified(required) && value != required;
}

/// `value` covers `required` when every behaviour demanded by `required` is
/// guaranteed by `value`: required x is always covered; a specified
/// requirement is covered only by the identical specified value.
constexpr bool covers(V3 value, V3 required) {
  return !is_specified(required) || value == required;
}

}  // namespace pdf
