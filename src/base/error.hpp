// Typed error hierarchy for recoverable pipeline failures.
//
// Long-running consumers — the pdf_serve daemon above all — must map a bad
// request (malformed .bench text, an inconsistent config) to a structured
// failure response instead of dying, so the error *class* has to be
// recoverable from the exception type alone:
//
//   * ParseError  — malformed input text (.bench netlists, test files).
//     Derives std::runtime_error (what parsers historically threw, so
//     existing catch sites keep working) and carries the input source name
//     and the 1-based line number as data, not just as message prose.
//   * ConfigError — structurally valid input with invalid parameters
//     (zero fault budgets, mis-sized stem-weight vectors, unknown enum
//     names). Derives std::invalid_argument for the same compatibility
//     reason.
//
// Everything else (std::logic_error, SerdeError, bad_alloc, ...) remains an
// internal error: serve maps it to a generic failure and keeps running.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace pdf {

/// Malformed input text. `line() == 0` means the error is not attributable
/// to a single line (e.g. an unreadable file or a whole-netlist check).
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string source, int line, const std::string& what)
      : std::runtime_error(what), source_(std::move(source)), line_(line) {}

  const std::string& source() const noexcept { return source_; }
  int line() const noexcept { return line_; }

 private:
  std::string source_;
  int line_;
};

/// Well-formed input with invalid parameter values.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

}  // namespace pdf
