#include "faultsim/diagnosis.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "faultsim/batch_sim.hpp"

namespace pdf {

Diagnoser::Diagnoser(const Netlist& nl, std::span<const TwoPatternTest> tests,
                     std::span<const TargetFault> faults)
    : test_count_(tests.size()) {
  BatchSimulator sim(nl);
  matrix_ = sim.detection_matrix(tests, faults);
}

std::vector<bool> Diagnoser::signature_of(std::size_t fault_index) const {
  if (fault_index >= matrix_.fault_count()) {
    throw std::out_of_range("Diagnoser::signature_of");
  }
  std::vector<bool> out(test_count_, false);
  for (std::size_t t = 0; t < test_count_; ++t) {
    out[t] = matrix_.bit(fault_index, t);
  }
  return out;
}

DiagnosisResult Diagnoser::diagnose(const std::vector<bool>& failing) const {
  if (failing.size() != test_count_) {
    throw std::invalid_argument("Diagnoser: wrong failing-vector size");
  }
  // Pack the observed signature.
  const std::size_t words = (test_count_ + 63) / 64;
  std::vector<std::uint64_t> observed(words, 0);
  std::size_t n_fail = 0;
  for (std::size_t t = 0; t < test_count_; ++t) {
    if (failing[t]) {
      observed[t / 64] |= std::uint64_t{1} << (t % 64);
      ++n_fail;
    }
  }

  DiagnosisResult out;
  out.observed_failures = n_fail;
  for (std::size_t f = 0; f < matrix_.fault_count(); ++f) {
    DiagnosisCandidate c;
    c.fault_index = f;
    const std::span<const std::uint64_t> row = matrix_.row(f);
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t detects = row[w];
      c.explained += static_cast<std::size_t>(
          std::popcount(detects & observed[w]));
      c.contradicted += static_cast<std::size_t>(
          std::popcount(detects & ~observed[w]));
      c.missed += static_cast<std::size_t>(
          std::popcount(~detects & observed[w]));
    }
    if (c.explained > 0) out.candidates.push_back(c);
  }

  std::stable_sort(out.candidates.begin(), out.candidates.end(),
                   [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
                     if (a.exact() != b.exact()) return a.exact();
                     const auto sa = static_cast<long>(a.explained) -
                                     static_cast<long>(a.contradicted);
                     const auto sb = static_cast<long>(b.explained) -
                                     static_cast<long>(b.contradicted);
                     if (sa != sb) return sa > sb;
                     return a.missed < b.missed;
                   });
  return out;
}

}  // namespace pdf
