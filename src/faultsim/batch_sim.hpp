// Batched robust fault simulation through a pluggable sim::SimBackend.
//
// BatchSimulator is the engine every whole-test-set consumer uses —
// detection-matrix construction, enrichment coverage sweeps, greedy test
// ordering, diagnosis. It compiles the netlist once, validates inputs, keeps
// the engine-level observability (the `faultsim.detection_matrix` timer and
// `faultsim.matrix_tests` histogram), and delegates the actual simulation to
// a SimBackend: the process-wide selected backend by default (`--backend`),
// or one pinned explicitly for differential testing.
//
// Every backend produces the bit-identical DetectionMatrix for any thread
// count (see src/sim/backend.hpp and DESIGN.md §11), so results never depend
// on which backend ran — callers may cache them under backend-free keys
// (store::cached_detection_matrix does). Per-test scalar queries stay on
// FaultSimulator, the ATPG inner-loop engine.
#pragma once

#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/screen.hpp"
#include "faultsim/detection_matrix.hpp"
#include "netlist/netlist.hpp"
#include "sim/backend.hpp"

namespace pdf {

class BatchSimulator {
 public:
  /// The netlist must be finalized, combinational, and outlive the
  /// simulator. `backend == nullptr` means the process-wide selection
  /// (sim::selected_backend(), captured at construction).
  explicit BatchSimulator(const Netlist& nl,
                          const sim::SimBackend* backend = nullptr);

  BatchSimulator(const BatchSimulator&) = delete;
  BatchSimulator& operator=(const BatchSimulator&) = delete;

  const sim::SimBackend& backend() const { return *backend_; }

  /// Full detection matrix: row f is a bitset over tests (bit t set when
  /// tests[t] detects faults[f]), packed 64 per word regardless of how many
  /// lanes the backend simulates at once (backend().lanes(): 64 for bitpar,
  /// up to 512 for avx512 — a wide backend fills lanes()/64 matrix words per
  /// simulation). Parallel over word columns on the global runtime pool.
  DetectionMatrix detection_matrix(std::span<const TwoPatternTest> tests,
                                   std::span<const TargetFault> faults) const;

  /// Width-independent precomputation for a batch that will be re-masked
  /// repeatedly (n-detection sweeps, ADI ordering): the PI bit-pack and
  /// requirement plan built once, reusable with any backend. Validates test
  /// widths; reuses `prep`'s buffers across calls.
  void prepare(std::span<const TwoPatternTest> tests,
               std::span<const TargetFault> faults,
               sim::PreparedBatch& prep) const;

  /// detection_matrix() with the setup supplied: `prep` must come from
  /// prepare() on exactly the same (tests, faults). Byte-identical result;
  /// steady-state calls skip the O(tests x inputs) pack and the requirement
  /// flattening entirely.
  DetectionMatrix detection_matrix(std::span<const TwoPatternTest> tests,
                                   std::span<const TargetFault> faults,
                                   const sim::PreparedBatch& prep) const;

  /// Per-fault flags: detected by at least one of `tests`.
  std::vector<bool> detects_any(std::span<const TwoPatternTest> tests,
                                std::span<const TargetFault> faults) const;

 private:
  CompiledCircuit cc_;
  const sim::SimBackend* backend_;
};

}  // namespace pdf
