#include "faultsim/defect_mc.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace pdf {
namespace {

runtime::Metrics::Counter& trial_counter() {
  static runtime::Metrics::Counter& c =
      runtime::Metrics::global().counter("faultsim.mc_trials");
  return c;
}

}  // namespace

DefectSimulator::DefectSimulator(const Netlist& nl, const DefectMcConfig& cfg)
    : nl_(&nl), cc_(nl), cfg_(cfg) {
  if (cc_.has_sequential()) {
    throw std::logic_error("DefectSimulator: netlist is sequential");
  }
  if (cfg.nominal_gate_delay <= 0) {
    throw std::invalid_argument("DefectSimulator: nominal delay must be > 0");
  }
  if (cfg.clock_period <= 0) {
    throw std::invalid_argument("DefectSimulator: clock period must be > 0");
  }
  nominal_delays_.assign(nl.node_count(), cfg.nominal_gate_delay);
  for (NodeId pi : nl.inputs()) nominal_delays_[pi] = 0;
  zero_switch_.assign(nl.inputs().size(), 0);
}

std::vector<Waveform> DefectSimulator::run(const TwoPatternTest& test,
                                           const Defect* defect) const {
  if (defect == nullptr) {
    return simulate_timed(cc_, test.pi_values, zero_switch_, nominal_delays_);
  }
  std::vector<int> delays = nominal_delays_;
  if (defect->gate >= delays.size()) {
    throw std::invalid_argument("DefectSimulator: bad defect gate");
  }
  delays[defect->gate] += defect->extra_delay;
  return simulate_timed(cc_, test.pi_values, zero_switch_, delays);
}

int DefectSimulator::nominal_settle(const TwoPatternTest& test) const {
  const std::vector<Waveform> wf = run(test, nullptr);
  int settle = 0;
  for (NodeId out : nl_->outputs()) {
    settle = std::max(settle, wf[out].settle_time());
  }
  return settle;
}

bool DefectSimulator::catches(const TwoPatternTest& test,
                              const Defect& defect) const {
  // Good-machine response: the settled (zero-delay-equivalent) final values.
  const std::vector<Waveform> good = run(test, nullptr);
  const std::vector<Waveform> bad = run(test, &defect);
  for (NodeId out : nl_->outputs()) {
    if (bad[out].value_at(cfg_.clock_period) != good[out].final_value()) {
      return true;
    }
  }
  return false;
}

bool DefectSimulator::caught_by_any(std::span<const TwoPatternTest> tests,
                                    const Defect& defect) const {
  for (const auto& t : tests) {
    if (catches(t, defect)) return true;
  }
  return false;
}

double DefectSimulator::catch_rate(std::span<const TwoPatternTest> tests,
                                   std::span<const Defect> defects) const {
  PDF_TRACE_SPAN("faultsim.catch_rate");
  if (defects.empty()) return 0.0;
  const std::size_t caught = runtime::global_pool().parallel_reduce<std::size_t>(
      defects.size(), 4, std::size_t{0},
      [&](std::size_t b, std::size_t e) {
        std::size_t c = 0;
        for (std::size_t i = b; i < e; ++i) {
          if (caught_by_any(tests, defects[i])) ++c;
        }
        trial_counter().add(e - b);
        return c;
      },
      std::plus<std::size_t>());
  return static_cast<double>(caught) / static_cast<double>(defects.size());
}

DefectSimulator::TrialStats DefectSimulator::monte_carlo(
    std::span<const TwoPatternTest> tests, std::span<const NodeId> gate_pool,
    std::size_t trials, int min_extra, int max_extra, const Rng& rng) const {
  if (gate_pool.empty()) {
    throw std::invalid_argument("monte_carlo: empty gate pool");
  }
  if (min_extra <= 0 || max_extra < min_extra) {
    throw std::invalid_argument("monte_carlo: bad extra-delay range");
  }
  PDF_TRACE_SPAN("faultsim.monte_carlo");
  TrialStats out;
  out.trials = trials;
  out.caught = runtime::global_pool().parallel_reduce<std::size_t>(
      trials, 4, std::size_t{0},
      [&](std::size_t b, std::size_t e) {
        std::size_t c = 0;
        for (std::size_t i = b; i < e; ++i) {
          Rng stream = rng.split(i);
          Defect d;
          d.gate = gate_pool[stream.below(gate_pool.size())];
          d.extra_delay = static_cast<int>(stream.range(min_extra, max_extra));
          if (caught_by_any(tests, d)) ++c;
        }
        trial_counter().add(e - b);
        return c;
      },
      std::plus<std::size_t>());
  return out;
}

std::vector<Defect> sample_defects_on(std::span<const NodeId> gate_pool,
                                      std::size_t count, int min_extra,
                                      int max_extra, Rng& rng) {
  if (gate_pool.empty() || count == 0) return {};
  if (min_extra <= 0 || max_extra < min_extra) {
    throw std::invalid_argument("sample_defects_on: bad extra-delay range");
  }
  std::vector<Defect> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Defect d;
    d.gate = gate_pool[rng.below(gate_pool.size())];
    d.extra_delay = static_cast<int>(rng.range(min_extra, max_extra));
    out.push_back(d);
  }
  return out;
}

}  // namespace pdf
