#include "faultsim/defect_mc.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdf {

DefectSimulator::DefectSimulator(const Netlist& nl, const DefectMcConfig& cfg)
    : nl_(&nl), cc_(nl), cfg_(cfg) {
  if (cc_.has_sequential()) {
    throw std::logic_error("DefectSimulator: netlist is sequential");
  }
  if (cfg.nominal_gate_delay <= 0) {
    throw std::invalid_argument("DefectSimulator: nominal delay must be > 0");
  }
  if (cfg.clock_period <= 0) {
    throw std::invalid_argument("DefectSimulator: clock period must be > 0");
  }
  nominal_delays_.assign(nl.node_count(), cfg.nominal_gate_delay);
  for (NodeId pi : nl.inputs()) nominal_delays_[pi] = 0;
  zero_switch_.assign(nl.inputs().size(), 0);
}

std::vector<Waveform> DefectSimulator::run(const TwoPatternTest& test,
                                           const Defect* defect) const {
  if (defect == nullptr) {
    return simulate_timed(cc_, test.pi_values, zero_switch_, nominal_delays_);
  }
  std::vector<int> delays = nominal_delays_;
  if (defect->gate >= delays.size()) {
    throw std::invalid_argument("DefectSimulator: bad defect gate");
  }
  delays[defect->gate] += defect->extra_delay;
  return simulate_timed(cc_, test.pi_values, zero_switch_, delays);
}

int DefectSimulator::nominal_settle(const TwoPatternTest& test) const {
  const std::vector<Waveform> wf = run(test, nullptr);
  int settle = 0;
  for (NodeId out : nl_->outputs()) {
    settle = std::max(settle, wf[out].settle_time());
  }
  return settle;
}

bool DefectSimulator::catches(const TwoPatternTest& test,
                              const Defect& defect) const {
  // Good-machine response: the settled (zero-delay-equivalent) final values.
  const std::vector<Waveform> good = run(test, nullptr);
  const std::vector<Waveform> bad = run(test, &defect);
  for (NodeId out : nl_->outputs()) {
    if (bad[out].value_at(cfg_.clock_period) != good[out].final_value()) {
      return true;
    }
  }
  return false;
}

bool DefectSimulator::caught_by_any(std::span<const TwoPatternTest> tests,
                                    const Defect& defect) const {
  for (const auto& t : tests) {
    if (catches(t, defect)) return true;
  }
  return false;
}

double DefectSimulator::catch_rate(std::span<const TwoPatternTest> tests,
                                   std::span<const Defect> defects) const {
  if (defects.empty()) return 0.0;
  std::size_t caught = 0;
  for (const auto& d : defects) {
    if (caught_by_any(tests, d)) ++caught;
  }
  return static_cast<double>(caught) / static_cast<double>(defects.size());
}

std::vector<Defect> sample_defects_on(std::span<const NodeId> gate_pool,
                                      std::size_t count, int min_extra,
                                      int max_extra, Rng& rng) {
  if (gate_pool.empty() || count == 0) return {};
  if (min_extra <= 0 || max_extra < min_extra) {
    throw std::invalid_argument("sample_defects_on: bad extra-delay range");
  }
  std::vector<Defect> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Defect d;
    d.gate = gate_pool[rng.below(gate_pool.size())];
    d.extra_delay = static_cast<int>(rng.range(min_extra, max_extra));
    out.push_back(d);
  }
  return out;
}

}  // namespace pdf
