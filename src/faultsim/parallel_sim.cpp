#include "faultsim/parallel_sim.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/triple_sim.hpp"

namespace pdf {
namespace {

constexpr std::uint64_t kAll = ~std::uint64_t{0};

runtime::Metrics::Counter& word_counter() {
  static runtime::Metrics::Counter& c =
      runtime::Metrics::global().counter("faultsim.words");
  return c;
}
runtime::Metrics::Timer& matrix_timer() {
  static runtime::Metrics::Timer& t =
      runtime::Metrics::global().timer("faultsim.detection_matrix");
  return t;
}

}  // namespace

ParallelFaultSimulator::ParallelFaultSimulator(const Netlist& nl) : cc_(nl) {
  if (cc_.has_sequential()) {
    throw std::logic_error("ParallelFaultSimulator: netlist is sequential");
  }
}

void ParallelFaultSimulator::simulate_word(
    std::span<const TwoPatternTest> tests, std::size_t base, std::size_t lanes,
    std::vector<PlaneWord> planes[3]) const {
  const CompiledCircuit& cc = cc_;
  for (int q = 0; q < 3; ++q) {
    planes[q].assign(cc.node_count(), PlaneWord{});
  }

  // Pack the PI triples lane by lane.
  const std::span<const NodeId> inputs = cc.inputs();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const TwoPatternTest& t = tests[base + lane];
    if (t.pi_values.size() != inputs.size()) {
      throw std::invalid_argument("ParallelFaultSimulator: bad test width");
    }
    const std::uint64_t bit = std::uint64_t{1} << lane;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const Triple tri = pi_triple(t.pi_values[i].a1, t.pi_values[i].a3);
      const NodeId id = inputs[i];
      const V3 vals[3] = {tri.a1, tri.a2, tri.a3};
      for (int q = 0; q < 3; ++q) {
        if (is_specified(vals[q])) {
          planes[q][id].known |= bit;
          if (vals[q] == V3::One) planes[q][id].value |= bit;
        }
      }
    }
  }

  // Word-parallel 3-valued evaluation per plane, level-packed over the
  // compiled arrays.
  for (NodeId id : cc.topo_order()) {
    const GateType t = cc.type(id);
    if (t == GateType::Input) continue;
    const std::span<const NodeId> fanin = cc.fanins(id);
    for (int q = 0; q < 3; ++q) {
      auto& out = planes[q][id];
      switch (t) {
        case GateType::Buf:
        case GateType::Not: {
          const PlaneWord& a = planes[q][fanin[0]];
          out.known = a.known;
          out.value = t == GateType::Not ? (~a.value & a.known)
                                         : (a.value & a.known);
          break;
        }
        case GateType::And:
        case GateType::Nand: {
          std::uint64_t all_one = kAll;  // every fanin known-1
          std::uint64_t any_zero = 0;    // some fanin known-0
          for (NodeId f : fanin) {
            const PlaneWord& a = planes[q][f];
            all_one &= a.value & a.known;
            any_zero |= ~a.value & a.known;
          }
          std::uint64_t one = all_one & ~any_zero;
          std::uint64_t zero = any_zero;
          if (t == GateType::Nand) std::swap(one, zero);
          out.known = one | zero;
          out.value = one;
          break;
        }
        case GateType::Or:
        case GateType::Nor: {
          std::uint64_t any_one = 0;
          std::uint64_t all_zero = kAll;
          for (NodeId f : fanin) {
            const PlaneWord& a = planes[q][f];
            any_one |= a.value & a.known;
            all_zero &= ~a.value & a.known;
          }
          std::uint64_t one = any_one;
          std::uint64_t zero = all_zero & ~any_one;
          if (t == GateType::Nor) std::swap(one, zero);
          out.known = one | zero;
          out.value = one;
          break;
        }
        default:
          throw std::logic_error("ParallelFaultSimulator: non-primitive gate " +
                                 cc.netlist().node(id).name);
      }
    }
  }
}

DetectionMatrix ParallelFaultSimulator::detection_matrix(
    std::span<const TwoPatternTest> tests,
    std::span<const TargetFault> faults) const {
  PDF_TRACE_SPAN("faultsim.detection_matrix");
  const auto scope = matrix_timer().measure();
  static auto& tests_hist =
      runtime::Metrics::global().histogram("faultsim.matrix_tests");
  tests_hist.record(tests.size());
  DetectionMatrix matrix(faults.size(), tests.size());
  const std::size_t words = matrix.words_per_row();

  // Each task owns a disjoint set of 64-test words: it simulates them into
  // its worker's plane scratch and writes word column w of every fault row.
  // No two tasks touch the same matrix word, so the fill is race-free and
  // bit-identical to the sequential loop.
  runtime::global_pool().parallel_for(words, 1, [&](std::size_t w0,
                                                    std::size_t w1) {
    std::vector<PlaneWord>* planes = scratch_.local().planes;
    for (std::size_t w = w0; w < w1; ++w) {
      const std::size_t base = w * 64;
      const std::size_t lanes = std::min<std::size_t>(64, tests.size() - base);
      simulate_word(tests, base, lanes, planes);
      const std::uint64_t lane_mask =
          lanes == 64 ? kAll : ((std::uint64_t{1} << lanes) - 1);

      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        std::uint64_t mask = lane_mask;
        for (const auto& r : faults[fi].requirements) {
          const V3 req[3] = {r.value.a1, r.value.a2, r.value.a3};
          for (int q = 0; q < 3 && mask; ++q) {
            if (!is_specified(req[q])) continue;
            const PlaneWord& pw = planes[q][r.line];
            mask &= pw.known &
                    (req[q] == V3::One ? pw.value : ~pw.value);
          }
          if (!mask) break;
        }
        matrix.word(fi, w) = mask;
      }
    }
    word_counter().add(w1 - w0);
  });
  return matrix;
}

std::vector<bool> ParallelFaultSimulator::detects_any(
    std::span<const TwoPatternTest> tests,
    std::span<const TargetFault> faults) const {
  std::vector<bool> out(faults.size(), false);
  if (tests.empty()) return out;
  const DetectionMatrix matrix = detection_matrix(tests, faults);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
#ifdef PATHDELAY_MUTATION_DROPPED_COVERAGE_UNION
    // Seeded bug (mutation testing only): the last test is dropped from the
    // union, so coverage attributable solely to it goes missing.
    bool any = false;
    for (std::size_t ti = 0; ti + 1 < tests.size(); ++ti) {
      any = any || matrix.bit(fi, ti);
    }
    out[fi] = any;
#else
    out[fi] = matrix.any(fi);
#endif
  }
  return out;
}

}  // namespace pdf
