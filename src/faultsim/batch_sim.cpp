#include "faultsim/batch_sim.hpp"

#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "runtime/metrics.hpp"

namespace pdf {
namespace {

runtime::Metrics::Timer& matrix_timer() {
  static runtime::Metrics::Timer& t =
      runtime::Metrics::global().timer("faultsim.detection_matrix");
  return t;
}

}  // namespace

BatchSimulator::BatchSimulator(const Netlist& nl,
                               const sim::SimBackend* backend)
    : cc_(nl),
      backend_(backend != nullptr ? backend : &sim::selected_backend()) {
  if (cc_.has_sequential()) {
    throw std::logic_error("BatchSimulator: netlist is sequential");
  }
  if (!backend_->supports(cc_)) {
    throw std::logic_error(std::string("BatchSimulator: backend '") +
                           backend_->name() +
                           "' does not support this circuit");
  }
}

DetectionMatrix BatchSimulator::detection_matrix(
    std::span<const TwoPatternTest> tests,
    std::span<const TargetFault> faults) const {
  PDF_TRACE_SPAN("faultsim.detection_matrix");
  const auto scope = matrix_timer().measure();
  static auto& tests_hist =
      runtime::Metrics::global().histogram("faultsim.matrix_tests");
  tests_hist.record(tests.size());
  // Validate up front so a width error surfaces as one exception on the
  // calling thread, not from inside a pool task.
  for (const TwoPatternTest& t : tests) {
    if (t.pi_values.size() != cc_.inputs().size()) {
      throw std::invalid_argument("BatchSimulator: bad test width");
    }
  }
  return backend_->detection_matrix(cc_, tests, faults);
}

void BatchSimulator::prepare(std::span<const TwoPatternTest> tests,
                             std::span<const TargetFault> faults,
                             sim::PreparedBatch& prep) const {
  for (const TwoPatternTest& t : tests) {
    if (t.pi_values.size() != cc_.inputs().size()) {
      throw std::invalid_argument("BatchSimulator: bad test width");
    }
  }
  sim::prepare_batch(cc_, tests, faults, prep);
}

DetectionMatrix BatchSimulator::detection_matrix(
    std::span<const TwoPatternTest> tests,
    std::span<const TargetFault> faults,
    const sim::PreparedBatch& prep) const {
  PDF_TRACE_SPAN("faultsim.detection_matrix");
  const auto scope = matrix_timer().measure();
  return backend_->detection_matrix_prepared(cc_, tests, faults, prep);
}

std::vector<bool> BatchSimulator::detects_any(
    std::span<const TwoPatternTest> tests,
    std::span<const TargetFault> faults) const {
  std::vector<bool> out(faults.size(), false);
  if (tests.empty()) return out;
  const DetectionMatrix matrix = detection_matrix(tests, faults);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
#ifdef PATHDELAY_MUTATION_DROPPED_COVERAGE_UNION
    // Seeded bug (mutation testing only): the last test is dropped from the
    // union, so coverage attributable solely to it goes missing.
    bool any = false;
    for (std::size_t ti = 0; ti + 1 < tests.size(); ++ti) {
      any = any || matrix.bit(fi, ti);
    }
    out[fi] = any;
#else
    out[fi] = matrix.any(fi);
#endif
  }
  return out;
}

}  // namespace pdf
