// Failure diagnosis from tester pass/fail signatures.
//
// When a chip fails a delay test set, the tester reports which tests failed.
// Under the single-slow-path assumption, the candidate faults are those
// whose detection signature (the set of tests that detect them) matches the
// observed failures: a fault explains an observed failing test iff it is
// detected by it, and a fault is ruled out by a passing test that detects
// it. Candidates are ranked by signature agreement so that physical-failure
// analysis can start from the most likely slow paths.
//
// Built on the pattern-parallel detection matrix, so diagnosing against
// thousands of faults and hundreds of tests costs one parallel simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "faults/screen.hpp"
#include "faultsim/detection_matrix.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

struct DiagnosisCandidate {
  std::size_t fault_index = 0;  // into the fault span given to diagnose()
  /// Observed failing tests this fault detects / fails to detect.
  std::size_t explained = 0;
  std::size_t missed = 0;
  /// Passing tests that should have failed under this fault.
  std::size_t contradicted = 0;

  /// Perfect match: explains every failure and contradicts no pass.
  bool exact() const { return missed == 0 && contradicted == 0; }
};

struct DiagnosisResult {
  /// Candidates ranked best first (exact matches, then by
  /// explained - contradicted, descending).
  std::vector<DiagnosisCandidate> candidates;
  std::size_t observed_failures = 0;
};

class Diagnoser {
 public:
  Diagnoser(const Netlist& nl, std::span<const TwoPatternTest> tests,
            std::span<const TargetFault> faults);

  /// `failing[t]` is true when the chip failed tests[t]. Candidates that
  /// explain nothing are omitted.
  DiagnosisResult diagnose(const std::vector<bool>& failing) const;

  /// Simulated tester signature for a given fault (useful for testing and
  /// for what-if analysis): which tests would fail if `fault_index` were the
  /// slow path.
  std::vector<bool> signature_of(std::size_t fault_index) const;

 private:
  std::size_t test_count_ = 0;
  DetectionMatrix matrix_;  // fault-major, 64 tests per word
};

}  // namespace pdf
