#include "faultsim/fault_sim.hpp"

#include <stdexcept>

#include "sim/triple_sim.hpp"

namespace pdf {

FaultSimulator::FaultSimulator(const Netlist& nl) : cc_(nl) {}

std::span<const Triple> FaultSimulator::simulate_test(
    const TwoPatternTest& test, ThreadState& st) const {
  const std::size_t n = cc_.inputs().size();
  if (test.pi_values.size() != n) {
    throw std::invalid_argument("FaultSimulator: test has wrong PI count");
  }
  // Normalize plane 2 of the PI triples from the pattern planes so callers
  // may hand in tests with stale intermediate values, and compare against the
  // memoized test while doing so.
  bool same = st.memo_valid && st.pi_buf.size() == n;
  st.pi_buf.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Triple t = pi_triple(test.pi_values[i].a1, test.pi_values[i].a3);
    same = same && t == st.pi_buf[i];
    st.pi_buf[i] = t;
  }
  if (same) return st.scratch.triples;
  st.memo_valid = false;  // invalid while scratch is being rewritten
  const std::span<const Triple> values = simulate(cc_, st.pi_buf, st.scratch);
  st.memo_valid = true;
  return values;
}

std::vector<Triple> FaultSimulator::line_values(const TwoPatternTest& test) const {
  const std::span<const Triple> values = simulate_test(test, state_.local());
  return std::vector<Triple>(values.begin(), values.end());
}

void FaultSimulator::line_values(const TwoPatternTest& test,
                                 std::vector<Triple>& out) const {
  const std::span<const Triple> values = simulate_test(test, state_.local());
  out.assign(values.begin(), values.end());
}

bool FaultSimulator::satisfied(std::span<const Triple> values,
                               std::span<const ValueRequirement> reqs) {
  for (const auto& r : reqs) {
    if (!values[r.line].covers(r.value)) return false;
  }
  return true;
}

std::vector<bool> FaultSimulator::detects(
    const TwoPatternTest& test, std::span<const TargetFault> faults) const {
  const std::span<const Triple> values = simulate_test(test, state_.local());
  std::vector<bool> out(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out[i] = satisfied(values, faults[i].requirements);
  }
  return out;
}

bool FaultSimulator::detects(const TwoPatternTest& test,
                             const TargetFault& fault) const {
  return satisfied(simulate_test(test, state_.local()), fault.requirements);
}

std::vector<bool> FaultSimulator::detects_any(
    std::span<const TwoPatternTest> tests,
    std::span<const TargetFault> faults) const {
  ThreadState& st = state_.local();
  std::vector<bool> out(faults.size(), false);
  for (const auto& t : tests) {
    const std::span<const Triple> values = simulate_test(t, st);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (!out[i] && satisfied(values, faults[i].requirements)) out[i] = true;
    }
  }
  return out;
}

}  // namespace pdf
