#include "faultsim/fault_sim.hpp"

#include <stdexcept>

#include "sim/triple_sim.hpp"

namespace pdf {

FaultSimulator::FaultSimulator(const Netlist& nl) : nl_(&nl) {
  if (!nl.finalized()) throw std::logic_error("FaultSimulator: not finalized");
}

std::vector<Triple> FaultSimulator::line_values(const TwoPatternTest& test) const {
  if (test.pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("FaultSimulator: test has wrong PI count");
  }
  // Normalize plane 2 of the PI triples from the pattern planes so callers
  // may hand in tests with stale intermediate values.
  std::vector<Triple> pis(test.pi_values.size());
  for (std::size_t i = 0; i < pis.size(); ++i) {
    pis[i] = pi_triple(test.pi_values[i].a1, test.pi_values[i].a3);
  }
  return simulate(*nl_, pis);
}

bool FaultSimulator::satisfied(std::span<const Triple> values,
                               std::span<const ValueRequirement> reqs) {
  for (const auto& r : reqs) {
    if (!values[r.line].covers(r.value)) return false;
  }
  return true;
}

std::vector<bool> FaultSimulator::detects(
    const TwoPatternTest& test, std::span<const TargetFault> faults) const {
  const std::vector<Triple> values = line_values(test);
  std::vector<bool> out(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out[i] = satisfied(values, faults[i].requirements);
  }
  return out;
}

bool FaultSimulator::detects(const TwoPatternTest& test,
                             const TargetFault& fault) const {
  const std::vector<Triple> values = line_values(test);
  return satisfied(values, fault.requirements);
}

std::vector<bool> FaultSimulator::detects_any(
    std::span<const TwoPatternTest> tests,
    std::span<const TargetFault> faults) const {
  std::vector<bool> out(faults.size(), false);
  for (const auto& t : tests) {
    const std::vector<Triple> values = line_values(t);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (!out[i] && satisfied(values, faults[i].requirements)) out[i] = true;
    }
  }
  return out;
}

}  // namespace pdf
