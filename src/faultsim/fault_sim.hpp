// Robust path-delay fault simulation.
//
// The paper's detection criterion is exact in the triple algebra: a
// two-pattern test t robustly detects fault p iff t satisfies every value in
// A(p) (Section 2.1, "necessary and sufficient"). The simulator therefore
// simulates the test once per invocation and checks each fault's requirement
// list against the computed line triples (a requirement is satisfied when
// the computed triple covers it).
#pragma once

#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "faults/screen.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl);

  /// Simulates `test` and returns, for each fault in `faults`, whether it is
  /// robustly detected.
  std::vector<bool> detects(const TwoPatternTest& test,
                            std::span<const TargetFault> faults) const;

  /// True when `test` robustly detects `fault` (single-fault convenience).
  bool detects(const TwoPatternTest& test, const TargetFault& fault) const;

  /// Simulates a whole test set against a fault list, OR-accumulating
  /// detections. Returns per-fault detection flags.
  std::vector<bool> detects_any(std::span<const TwoPatternTest> tests,
                                std::span<const TargetFault> faults) const;

  /// Line triples produced by a test (exposes the underlying simulation).
  std::vector<Triple> line_values(const TwoPatternTest& test) const;

 private:
  static bool satisfied(std::span<const Triple> values,
                        std::span<const ValueRequirement> reqs);
  const Netlist* nl_;
};

}  // namespace pdf
