// Robust path-delay fault simulation.
//
// The paper's detection criterion is exact in the triple algebra: a
// two-pattern test t robustly detects fault p iff t satisfies every value in
// A(p) (Section 2.1, "necessary and sufficient"). The simulator therefore
// simulates the test once and checks each fault's requirement list against
// the computed line triples (a requirement is satisfied when the computed
// triple covers it).
//
// Simulation runs on the compiled execution core into a reusable scratch
// arena, and the triples of the most recently simulated test are memoized:
// a sequence of single-fault `detects(test, fault)` queries against the same
// test costs one simulation total, and the batched entry points cost exactly
// one simulation per test.
//
// The memo is per worker thread (runtime::PerWorker), so one simulator
// instance may be shared by the caller and the runtime pool's workers: each
// thread memoizes independently and answers are unaffected. Threads outside
// the runtime pool must not share an instance (they would share slot 0).
#pragma once

#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/screen.hpp"
#include "netlist/netlist.hpp"
#include "runtime/per_worker.hpp"

namespace pdf {

class FaultSimulator {
 public:
  /// The netlist must be finalized, combinational, and outlive the simulator.
  explicit FaultSimulator(const Netlist& nl);

  FaultSimulator(const FaultSimulator&) = delete;
  FaultSimulator& operator=(const FaultSimulator&) = delete;

  /// Simulates `test` and returns, for each fault in `faults`, whether it is
  /// robustly detected.
  std::vector<bool> detects(const TwoPatternTest& test,
                            std::span<const TargetFault> faults) const;

  /// True when `test` robustly detects `fault` (single-fault convenience).
  /// Repeated queries with the same test reuse one memoized simulation.
  bool detects(const TwoPatternTest& test, const TargetFault& fault) const;

  /// Query a fault against line triples already produced by line_values():
  /// no simulation at all.
  static bool detects(std::span<const Triple> line_values,
                      const TargetFault& fault) {
    return satisfied(line_values, fault.requirements);
  }

  /// Simulates a whole test set against a fault list, OR-accumulating
  /// detections (one simulation per test). Returns per-fault detection flags.
  std::vector<bool> detects_any(std::span<const TwoPatternTest> tests,
                                std::span<const TargetFault> faults) const;

  /// Line triples produced by a test (exposes the underlying simulation).
  std::vector<Triple> line_values(const TwoPatternTest& test) const;

  /// Buffer-reuse overload: fills `out` (resized to node_count()) without
  /// allocating when `out` is already warm.
  void line_values(const TwoPatternTest& test, std::vector<Triple>& out) const;

 private:
  /// Per-thread simulation state: the scratch arena plus the last-test memo.
  /// Each worker thread owns one, so concurrent queries neither race nor
  /// evict each other's memo.
  struct ThreadState {
    SimScratch scratch;
    std::vector<Triple> pi_buf;  // normalized PI triples of the memo
    bool memo_valid = false;
  };

  static bool satisfied(std::span<const Triple> values,
                        std::span<const ValueRequirement> reqs);

  /// One compiled simulation of `test`, memoized on the test's PI triples.
  std::span<const Triple> simulate_test(const TwoPatternTest& test,
                                        ThreadState& st) const;

  CompiledCircuit cc_;
  mutable runtime::PerWorker<ThreadState> state_;
};

}  // namespace pdf
