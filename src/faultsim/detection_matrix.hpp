// Flattened fault-by-test detection matrix.
//
// One contiguous row-major buffer of 64-bit words: row f holds the bitset of
// tests detecting fault f, packed 64 tests per word with a fixed row stride.
// Replaces the old vector<vector<uint64_t>> representation — no per-fault
// heap allocation, rows are cache-adjacent, and parallel producers can fill
// disjoint word columns of all rows without false sharing on control data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pdf {

class DetectionMatrix {
 public:
  DetectionMatrix() = default;
  DetectionMatrix(std::size_t fault_count, std::size_t test_count)
      : fault_count_(fault_count),
        test_count_(test_count),
        words_per_row_((test_count + 63) / 64),
        words_(fault_count * words_per_row_, 0) {}

  std::size_t fault_count() const { return fault_count_; }
  std::size_t test_count() const { return test_count_; }
  /// Row stride in 64-bit words.
  std::size_t words_per_row() const { return words_per_row_; }

  std::span<const std::uint64_t> row(std::size_t fault) const {
    return {words_.data() + fault * words_per_row_, words_per_row_};
  }
  std::span<std::uint64_t> row(std::size_t fault) {
    return {words_.data() + fault * words_per_row_, words_per_row_};
  }

  std::uint64_t word(std::size_t fault, std::size_t w) const {
    return words_[fault * words_per_row_ + w];
  }
  std::uint64_t& word(std::size_t fault, std::size_t w) {
    return words_[fault * words_per_row_ + w];
  }

  /// Does tests[test] detect faults[fault]?
  bool bit(std::size_t fault, std::size_t test) const {
    return (word(fault, test / 64) >> (test % 64)) & 1;
  }

  /// Is the fault detected by any test?
  bool any(std::size_t fault) const {
    for (std::uint64_t w : row(fault)) {
      if (w) return true;
    }
    return false;
  }

  /// Whole backing buffer (fault_count * words_per_row words, row-major).
  std::span<const std::uint64_t> words() const { return words_; }

  friend bool operator==(const DetectionMatrix&,
                         const DetectionMatrix&) = default;

 private:
  std::size_t fault_count_ = 0;
  std::size_t test_count_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pdf
