// Bit-parallel robust fault simulation (64 tests per machine word).
//
// Classic pattern-parallel simulation adapted to the two-pattern triple
// algebra: each of the three planes is a 3-valued network, and a 3-valued
// signal across 64 tests packs into two words — `known` (bit set: the value
// is specified for that test) and `value` (meaningful where known). Gate
// evaluation is a handful of word operations regardless of how many tests
// are packed, and requirement checking reduces to mask intersection:
//
//   detected(test, fault) = AND over requirements r, planes q specified in r:
//                           known[r.line][q] & (value ^ ~required)
//
// Produces results identical to FaultSimulator::detects_any at a fraction of
// the cost for large test sets (see bench/micro_engines).
//
// On top of the bit-level parallelism, the 64-test words are independent of
// each other, so detection_matrix farms them out over the runtime thread
// pool: each task simulates its words into per-worker plane scratch and
// fills the corresponding word column of every fault row. Results are
// bit-identical for any thread count (word boundaries don't depend on it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/screen.hpp"
#include "faultsim/detection_matrix.hpp"
#include "netlist/netlist.hpp"
#include "runtime/per_worker.hpp"

namespace pdf {

class ParallelFaultSimulator {
 public:
  explicit ParallelFaultSimulator(const Netlist& nl);

  ParallelFaultSimulator(const ParallelFaultSimulator&) = delete;
  ParallelFaultSimulator& operator=(const ParallelFaultSimulator&) = delete;

  /// Per-fault flags: detected by at least one of `tests`.
  std::vector<bool> detects_any(std::span<const TwoPatternTest> tests,
                                std::span<const TargetFault> faults) const;

  /// Full detection matrix: row f is a bitset over tests (bit t set when
  /// tests[t] detects faults[f]), packed 64 per word. Parallel over 64-test
  /// words on the global runtime pool.
  DetectionMatrix detection_matrix(std::span<const TwoPatternTest> tests,
                                   std::span<const TargetFault> faults) const;

 private:
  struct PlaneWord {
    std::uint64_t value = 0;
    std::uint64_t known = 0;
  };
  struct WordScratch {
    std::vector<PlaneWord> planes[3];
  };

  /// Simulates one 64-test word; planes[q][node] for q in 0..2.
  void simulate_word(std::span<const TwoPatternTest> tests, std::size_t base,
                     std::size_t lanes,
                     std::vector<PlaneWord> planes[3]) const;

  CompiledCircuit cc_;
  mutable runtime::PerWorker<WordScratch> scratch_;
};

}  // namespace pdf
