// Monte-Carlo defect-escape analysis.
//
// The paper's motivation is a tester-escape argument: a chip whose longest
// paths are all fast can still fail because a next-to-longest path is slow
// (small distributed defects, inaccurate length estimates). This module
// makes that measurable. A *defect* adds extra delay to one gate; a test set
// *catches* it when, for some test, some output sampled at the clock period
// still shows a value different from the good machine's settled response.
//
// Workflow: pick nominal per-gate delays and a clock period with guardband
// over the nominal critical path; sample defects (e.g. on gates that lie
// only on next-to-longest paths); apply the candidate test sets through the
// timed waveform simulator; report escape rates. The defect_escape bench
// uses this to show basic-P0 test sets letting P1-band defects through while
// enriched sets catch them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "base/rng.hpp"
#include "core/compiled_circuit.hpp"
#include "netlist/netlist.hpp"
#include "sim/timed_sim.hpp"

namespace pdf {

struct Defect {
  NodeId gate = kNoNode;
  int extra_delay = 0;
};

struct DefectMcConfig {
  /// Nominal delay of every gate (inputs switch at t = 0).
  int nominal_gate_delay = 1;
  /// Sampling instant: nominal critical-path settle time * guardband is a
  /// sensible choice; set explicitly here.
  int clock_period = 0;
};

class DefectSimulator {
 public:
  /// Netlist must be finalized, combinational, primitive-only.
  DefectSimulator(const Netlist& nl, const DefectMcConfig& cfg);

  DefectSimulator(const DefectSimulator&) = delete;
  DefectSimulator& operator=(const DefectSimulator&) = delete;

  /// Latest settle time over all outputs with nominal delays under `test`.
  int nominal_settle(const TwoPatternTest& test) const;

  /// True when `test` catches `defect`: some output's value at the clock
  /// period differs from the good machine's settled response.
  bool catches(const TwoPatternTest& test, const Defect& defect) const;

  /// True when any test of the set catches the defect.
  bool caught_by_any(std::span<const TwoPatternTest> tests,
                     const Defect& defect) const;

  /// Escape rate of a test set over a defect population: fraction caught.
  /// Parallel over defects on the runtime pool; the caught count is an exact
  /// integer reduce in chunk order, so the rate is bit-identical for any
  /// thread count.
  double catch_rate(std::span<const TwoPatternTest> tests,
                    std::span<const Defect> defects) const;

  /// One-call Monte Carlo: runs `trials` independent trials, each sampling a
  /// defect (gate uniform from `gate_pool`, extra delay uniform in
  /// [min_extra, max_extra]) and checking whether `tests` catches it. Trial
  /// i draws only from rng.split(i), so the result is bit-identical for any
  /// thread count and the caller's generator is not advanced.
  struct TrialStats {
    std::size_t trials = 0;
    std::size_t caught = 0;
    double catch_rate() const {
      return trials == 0
                 ? 0.0
                 : static_cast<double>(caught) / static_cast<double>(trials);
    }
  };
  TrialStats monte_carlo(std::span<const TwoPatternTest> tests,
                         std::span<const NodeId> gate_pool, std::size_t trials,
                         int min_extra, int max_extra, const Rng& rng) const;

  const DefectMcConfig& config() const { return cfg_; }

 private:
  std::vector<Waveform> run(const TwoPatternTest& test,
                            const Defect* defect) const;

  const Netlist* nl_;
  CompiledCircuit cc_;
  DefectMcConfig cfg_;
  std::vector<int> nominal_delays_;
  std::vector<int> zero_switch_;
};

/// Samples `count` defects whose gate lies on at least one of the given
/// paths' node sets (deduplicated gate pool; extra delay uniform in
/// [min_extra, max_extra]). Deterministic from `rng`.
std::vector<Defect> sample_defects_on(std::span<const NodeId> gate_pool,
                                      std::size_t count, int min_extra,
                                      int max_extra, Rng& rng);

}  // namespace pdf
