#include "runtime/metrics.hpp"

#include <sstream>

#include "runtime/thread_pool.hpp"

namespace pdf::runtime {

std::atomic<std::uint64_t>& Metrics::Counter::shard() {
  return shards_[worker_slot() % kShards].v;
}

Metrics& Metrics::global() {
  static Metrics m;
  return m;
}

Metrics::Counter& Metrics::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Metrics::Timer& Metrics::timer(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

std::string Metrics::dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " " << c->read() << "\n";
  }
  for (const auto& [name, t] : timers_) {
    os << "timer " << name << " " << t->total_ns() << " ns " << t->calls()
       << " calls\n";
  }
  return os.str();
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, t] : timers_) t->reset();
}

}  // namespace pdf::runtime
