#include "runtime/metrics.hpp"

#include <bit>
#include <sstream>

#include "runtime/thread_pool.hpp"

namespace pdf::runtime {

std::atomic<std::uint64_t>& Metrics::Counter::shard() {
  return shards_[worker_slot() % kShards].v;
}

std::size_t Metrics::Histogram::bucket_of(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Metrics::Histogram::bucket_lower(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t Metrics::Histogram::bucket_upper(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

Metrics::Histogram::Shard& Metrics::Histogram::shard() {
  return shards_[worker_slot() % kShards];
}

void Metrics::Histogram::record(std::uint64_t v) {
  Shard& s = shard();
  s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Metrics::Histogram::Snapshot Metrics::Histogram::snapshot() const {
  Snapshot out;
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    const std::uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
  }
  return out;
}

void Metrics::Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t Metrics::Histogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based: ceil(q * count), at least 1.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      const std::uint64_t upper = bucket_upper(b);
      return upper < max ? upper : max;
    }
  }
  return max;
}

namespace {

std::uint64_t clamped_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace

void Metrics::Histogram::Snapshot::merge(const Snapshot& other) {
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

Metrics::Histogram::Snapshot Metrics::Histogram::Snapshot::delta_since(
    const Snapshot& earlier) const {
  Snapshot out;
  out.count = clamped_sub(count, earlier.count);
  out.sum = clamped_sub(sum, earlier.sum);
  out.max = max;  // interval upper bound; see the header contract
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out.buckets[b] = clamped_sub(buckets[b], earlier.buckets[b]);
  }
  return out;
}

void Metrics::Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, t] : other.timers) {
    auto& mine = timers[name];
    mine.total_ns += t.total_ns;
    mine.calls += t.calls;
  }
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

Metrics::Snapshot Metrics::Snapshot::delta_since(
    const Snapshot& earlier) const {
  Snapshot out;
  for (const auto& [name, v] : counters) {
    auto it = earlier.counters.find(name);
    out.counters[name] =
        it == earlier.counters.end() ? v : clamped_sub(v, it->second);
  }
  for (const auto& [name, t] : timers) {
    auto it = earlier.timers.find(name);
    TimerValue d = t;
    if (it != earlier.timers.end()) {
      d.total_ns = clamped_sub(t.total_ns, it->second.total_ns);
      d.calls = clamped_sub(t.calls, it->second.calls);
    }
    out.timers[name] = d;
  }
  for (const auto& [name, h] : histograms) {
    auto it = earlier.histograms.find(name);
    out.histograms[name] =
        it == earlier.histograms.end() ? h : h.delta_since(it->second);
  }
  return out;
}

Metrics& Metrics::global() {
  static Metrics m;
  return m;
}

Metrics::Counter& Metrics::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Metrics::Timer& Metrics::timer(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

Metrics::Histogram& Metrics::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Metrics::Snapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->read();
  for (const auto& [name, t] : timers_) {
    out.timers[name] = TimerValue{t->total_ns(), t->calls()};
  }
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->snapshot();
  }
  return out;
}

std::string Metrics::dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " " << c->read() << "\n";
  }
  for (const auto& [name, t] : timers_) {
    os << "timer " << name << " " << t->total_ns() << " ns " << t->calls()
       << " calls\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    os << "hist " << name << " count " << s.count << " sum " << s.sum
       << " p50 " << s.p50() << " p90 " << s.p90() << " max " << s.max
       << "\n";
  }
  return os.str();
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, t] : timers_) t->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace pdf::runtime
