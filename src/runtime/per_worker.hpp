// Per-thread state slots for engines that keep mutable scratch (arenas,
// memo caches) but want one engine instance shared across pool workers.
//
// A PerWorker<T> is an array of lazily-constructed T slots indexed by
// worker_slot(). Distinct pool workers always resolve to distinct slots, so
// `local()` needs no lock: a slot's unique_ptr is only ever written by the
// one thread that owns the slot. The supported sharing contract is the same
// as the runtime's: one external thread plus the global pool's workers.
// Multiple *external* threads all map to slot 0 and must not share one
// instance — give each its own engine, as before the runtime existed.
#pragma once

#include <memory>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace pdf::runtime {

template <typename T>
class PerWorker {
 public:
  PerWorker() : slots_(kMaxWorkerSlots) {}

  /// The calling thread's slot, default-constructed on first use.
  T& local() {
    std::unique_ptr<T>& p = slots_[worker_slot()];
    if (!p) p = std::make_unique<T>();
    return *p;
  }

  /// Visits every slot that was ever materialized. Only safe when no thread
  /// is concurrently calling local() (e.g. after a parallel_for returned).
  template <typename F>
  void for_each(F&& f) {
    for (auto& p : slots_) {
      if (p) f(*p);
    }
  }

 private:
  std::vector<std::unique_ptr<T>> slots_;
};

}  // namespace pdf::runtime
