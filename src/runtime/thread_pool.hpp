// Deterministic parallel runtime: fixed-size thread pool with a chunked,
// work-stealing parallel_for / parallel_reduce.
//
// Design constraints, in priority order:
//
//  1. *Determinism*: an N-thread run must be bit-identical to a 1-thread run.
//     The pool therefore never decides *what* a chunk computes — only *which
//     thread* runs it. Chunk boundaries depend on (n, grain) alone, never on
//     the thread count, and parallel_reduce joins per-chunk results in chunk
//     order, so even floating-point reductions are reproducible.
//  2. *Load balance*: chunks are partitioned into one contiguous block of
//     chunk indices per participant; a participant that drains its own block
//     steals single chunks from the other blocks (atomic cursor per block).
//     Uneven per-chunk costs therefore spread across the pool without any
//     cost model.
//  3. *Nesting is inline*: a parallel_for issued from inside a pool task runs
//     sequentially on the issuing thread. Engines can parallelize their hot
//     loop unconditionally and still be safely composed under an outer
//     parallel sweep (e.g. a multi-seed experiment running whole workbenches
//     per task).
//
// The caller participates: a pool constructed with `threads = T` owns T-1
// worker threads and parallel_for uses the calling thread as the T-th
// participant. `threads <= 1` means no workers at all and every parallel_for
// runs inline — the sequential path stays allocation- and sync-free.
//
// Most code uses the process-global pool (`global_pool()`), sized once at
// startup or via set_global_threads (e.g. the benches' --threads flag).
// Per-thread state (scratch arenas, RNG streams, metric shards) is indexed by
// worker_slot(): a small dense id that is 0 on the main thread and unique per
// pool worker — see per_worker.hpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdf::runtime {

/// Upper bound on distinct worker slots handed out over the process lifetime
/// (slot 0 plus pool worker threads, across pool re-creations). Creating more
/// worker threads than this throws; per-worker state arrays size to it.
inline constexpr std::size_t kMaxWorkerSlots = 1024;

/// Dense per-thread id: 0 for the main/external thread, a unique value in
/// [1, kMaxWorkerSlots) for every pool worker thread.
std::size_t worker_slot();

/// RAII registration of a long-lived *external* thread (one the pool did not
/// create — e.g. a pdf_serve request worker) as a distinct per-worker-state
/// participant. Unregistered external threads all report worker_slot() == 0
/// and therefore must not run PerWorker-backed engines concurrently (the
/// singleton sim backends keep slot-indexed scratch). Holding an
/// ExternalWorkerScope for the thread's lifetime gives it a unique slot from
/// the same recycled pool the worker threads draw from, making concurrent
/// engine use from several external threads safe. Construct once per thread;
/// nesting (a thread that already has a nonzero slot) throws.
class ExternalWorkerScope {
 public:
  ExternalWorkerScope();
  ~ExternalWorkerScope();
  ExternalWorkerScope(const ExternalWorkerScope&) = delete;
  ExternalWorkerScope& operator=(const ExternalWorkerScope&) = delete;

  std::size_t slot() const { return slot_; }

 private:
  std::size_t slot_;
};

class ThreadPool {
 public:
  /// Total participant count including the caller; 0 picks the hardware
  /// concurrency. `threads <= 1` creates no worker threads.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants (workers + caller).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(begin, end) over disjoint subranges covering [0, n). Subrange
  /// boundaries are multiples of `grain` (last one clipped to n) regardless
  /// of the thread count. Runs inline when there are no workers, only one
  /// chunk, or the call is nested inside another parallel_for task. The first
  /// exception thrown by any chunk is rethrown on the calling thread after
  /// all chunks finish.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Deterministic map/reduce: `map(begin, end)` produces one T per chunk;
  /// the per-chunk results are joined *in chunk order*, so the value is
  /// independent of the thread count even for non-associative joins.
  template <typename T, typename Map, typename Join>
  T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map map,
                    Join join) {
    if (n == 0) return identity;
    if (grain == 0) grain = 1;
    const std::size_t chunks = (n + grain - 1) / grain;
    std::vector<T> partial(chunks, identity);
    parallel_for(chunks, 1, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        const std::size_t begin = c * grain;
        const std::size_t end = begin + grain < n ? begin + grain : n;
        partial[c] = map(begin, end);
      }
    });
    T acc = identity;
    for (std::size_t c = 0; c < chunks; ++c) acc = join(acc, partial[c]);
    return acc;
  }

 private:
  struct alignas(64) Block {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  void worker_main(std::size_t ordinal);
  void work(std::size_t self);
  void run_chunk(std::size_t chunk);

  std::vector<std::thread> workers_;

  // Job launch is serialized: one parallel_for at a time per pool. Nested or
  // concurrent-external calls either run inline or queue on this mutex.
  std::mutex run_mu_;

  // Job state, valid between publish and rendezvous (guarded by run_mu_ plus
  // the epoch handshake below).
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t grain_ = 1;
  std::size_t chunks_ = 0;
  std::vector<Block> blocks_;  // one contiguous chunk block per participant
  std::exception_ptr error_;
  std::mutex error_mu_;

  // Epoch handshake: the caller bumps epoch_ to publish a job and waits until
  // every worker has picked it up and finished (outstanding_ drops to zero)
  // before touching job state again.
  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t outstanding_ = 0;
  bool stop_ = false;
};

/// The process-global pool. Sized to the hardware on first use unless
/// set_global_threads ran earlier.
ThreadPool& global_pool();

/// Replaces the global pool with one of `threads` participants (0 = hardware
/// concurrency). Must not be called from inside a pool task or while another
/// thread is using the global pool.
void set_global_threads(std::size_t threads);

/// Participant count of the global pool.
std::size_t global_threads();

}  // namespace pdf::runtime
