// Lightweight counters/timers/histograms registry for the parallel runtime.
//
// Engines tick counters from inside parallel hot loops, so a counter must
// never serialize the threads that share it: each counter is an array of
// cache-line-padded shards and a thread always ticks the shard picked by its
// worker_slot() (relaxed atomic add — uncontended in the common case, merely
// slower, never wrong, when external threads collide on shard 0). Reads merge
// the shards, so `read()` is exact once the ticking threads have quiesced
// (e.g. after the parallel_for that ticked it returned). Histograms follow
// the same sharding discipline with per-shard log2 bucket arrays.
//
// Handles returned by counter()/timer()/histogram() are stable for the
// process lifetime; look them up once (static local) rather than per tick —
// the registry lookup takes a mutex, the tick itself never does.
//
// Metric names follow the dotted `layer.noun[.sub]` convention documented in
// DESIGN.md §9 (e.g. `store.hits`, `atpg.justify.probes`,
// `faultsim.detection_matrix`).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace pdf::runtime {

class Metrics {
 public:
  class Counter {
   public:
    void add(std::uint64_t v = 1) {
      shard().fetch_add(v, std::memory_order_relaxed);
    }
    std::uint64_t read() const {
      std::uint64_t sum = 0;
      for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
      return sum;
    }
    void reset() {
      for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
    }

   private:
    static constexpr std::size_t kShards = 64;
    struct alignas(64) Shard {
      std::atomic<std::uint64_t> v{0};
    };
    std::atomic<std::uint64_t>& shard();
    std::array<Shard, kShards> shards_;
  };

  /// Accumulated wall time (nanoseconds) plus a call count; tick with a
  /// Timer::Scope so early returns and exceptions are still counted.
  class Timer {
   public:
    class Scope {
     public:
      explicit Scope(Timer& t)
          : timer_(t), start_(std::chrono::steady_clock::now()) {}
      ~Scope() {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        timer_.ns_.add(static_cast<std::uint64_t>(ns));
        timer_.calls_.add(1);
      }
      Scope(const Scope&) = delete;
      Scope& operator=(const Scope&) = delete;

     private:
      Timer& timer_;
      std::chrono::steady_clock::time_point start_;
    };

    Scope measure() { return Scope(*this); }
    std::uint64_t total_ns() const { return ns_.read(); }
    std::uint64_t calls() const { return calls_.read(); }
    void reset() {
      ns_.reset();
      calls_.reset();
    }

   private:
    Counter ns_;
    Counter calls_;
  };

  /// Log-bucketed distribution of unsigned values. Bucket 0 holds the value
  /// 0 and bucket k (k >= 1) the range [2^(k-1), 2^k - 1], so any uint64
  /// lands in one of 65 buckets and `record()` is a handful of relaxed
  /// atomic operations on the caller's shard — safe from any pool worker,
  /// never a lock. Percentiles come from the merged buckets (the reported
  /// value is the bucket's upper bound, clipped to the observed maximum), so
  /// p50/p90 carry at most one power-of-two of quantization — plenty for
  /// "is this distribution heavy-tailed" questions, at counter-like cost.
  class Histogram {
   public:
    static constexpr std::size_t kBuckets = 65;

    /// Bucket index for a value: 0 for 0, otherwise std::bit_width(v).
    static std::size_t bucket_of(std::uint64_t v);
    /// Smallest / largest value mapping to bucket `b`.
    static std::uint64_t bucket_lower(std::size_t b);
    static std::uint64_t bucket_upper(std::size_t b);

    void record(std::uint64_t v);

    /// A merged, quiesced view of the histogram (exact once the recording
    /// threads have finished, like Counter::read()).
    struct Snapshot {
      std::uint64_t count = 0;
      std::uint64_t sum = 0;
      std::uint64_t max = 0;
      std::array<std::uint64_t, kBuckets> buckets{};

      /// Upper bound of the bucket containing quantile q in [0, 1], clipped
      /// to the observed maximum; 0 when the histogram is empty.
      std::uint64_t percentile(double q) const;
      std::uint64_t p50() const { return percentile(0.50); }
      std::uint64_t p90() const { return percentile(0.90); }
      std::uint64_t p99() const { return percentile(0.99); }

      /// Accumulates `other` into this snapshot: buckets/count/sum add,
      /// max takes the larger. Merging deltas from disjoint intervals (or
      /// disjoint processes) yields the combined distribution exactly.
      void merge(const Snapshot& other);

      /// The records observed between `earlier` and this snapshot:
      /// buckets/count/sum subtract (clamped at 0, so a reset() between the
      /// two snapshots degrades to "this" rather than underflowing). The
      /// delta keeps this snapshot's max — an upper bound for the interval,
      /// since per-interval maxima are not recoverable from running maxima.
      Snapshot delta_since(const Snapshot& earlier) const;
    };
    Snapshot snapshot() const;
    void reset();

   private:
    static constexpr std::size_t kShards = 16;
    struct alignas(64) Shard {
      std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
      std::atomic<std::uint64_t> sum{0};
      std::atomic<std::uint64_t> max{0};
    };
    Shard& shard();
    std::array<Shard, kShards> shards_;
  };

  /// The process-wide registry.
  static Metrics& global();

  /// Returns the named counter/timer/histogram, creating it on first use.
  /// The returned reference stays valid for the process lifetime.
  Counter& counter(std::string_view name);
  Timer& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// A point-in-time copy of every registered metric, for structured export
  /// (the --metrics-json run manifest; see obs/manifest.hpp).
  struct TimerValue {
    std::uint64_t total_ns = 0;
    std::uint64_t calls = 0;
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, TimerValue> timers;
    std::map<std::string, Histogram::Snapshot> histograms;

    /// Accumulates `other` into this snapshot, metric by metric: counters
    /// and timers add, histograms merge bucket-wise; metrics present in
    /// only one operand carry over unchanged.
    void merge(const Snapshot& other);

    /// The activity between `earlier` and this snapshot: counters/timers
    /// subtract (clamped at 0) and histograms take their bucket-wise delta.
    /// Metrics that did not exist at `earlier` appear with their full
    /// value. This is what the live `stats` admin request and the
    /// --stats-every poller diff against.
    Snapshot delta_since(const Snapshot& earlier) const;
  };
  Snapshot snapshot() const;

  /// One line per metric, name-sorted within each kind:
  ///   counter <name> <value>
  ///   timer <name> <total_ns> ns <calls> calls
  ///   hist <name> count <n> sum <s> p50 <v> p90 <v> max <v>
  std::string dump() const;

  /// Zeroes every registered metric (handles stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace pdf::runtime
