// Lightweight counters/timers registry for the parallel runtime.
//
// Engines tick counters from inside parallel hot loops, so a counter must
// never serialize the threads that share it: each counter is an array of
// cache-line-padded shards and a thread always ticks the shard picked by its
// worker_slot() (relaxed atomic add — uncontended in the common case, merely
// slower, never wrong, when external threads collide on shard 0). Reads merge
// the shards, so `read()` is exact once the ticking threads have quiesced
// (e.g. after the parallel_for that ticked it returned).
//
// Handles returned by counter()/timer() are stable for the process lifetime;
// look them up once (static local) rather than per tick — the registry lookup
// takes a mutex, the tick itself never does.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace pdf::runtime {

class Metrics {
 public:
  class Counter {
   public:
    void add(std::uint64_t v = 1) {
      shard().fetch_add(v, std::memory_order_relaxed);
    }
    std::uint64_t read() const {
      std::uint64_t sum = 0;
      for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
      return sum;
    }
    void reset() {
      for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
    }

   private:
    static constexpr std::size_t kShards = 64;
    struct alignas(64) Shard {
      std::atomic<std::uint64_t> v{0};
    };
    std::atomic<std::uint64_t>& shard();
    std::array<Shard, kShards> shards_;
  };

  /// Accumulated wall time (nanoseconds) plus a call count; tick with a
  /// Timer::Scope so early returns and exceptions are still counted.
  class Timer {
   public:
    class Scope {
     public:
      explicit Scope(Timer& t)
          : timer_(t), start_(std::chrono::steady_clock::now()) {}
      ~Scope() {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        timer_.ns_.add(static_cast<std::uint64_t>(ns));
        timer_.calls_.add(1);
      }
      Scope(const Scope&) = delete;
      Scope& operator=(const Scope&) = delete;

     private:
      Timer& timer_;
      std::chrono::steady_clock::time_point start_;
    };

    Scope measure() { return Scope(*this); }
    std::uint64_t total_ns() const { return ns_.read(); }
    std::uint64_t calls() const { return calls_.read(); }
    void reset() {
      ns_.reset();
      calls_.reset();
    }

   private:
    Counter ns_;
    Counter calls_;
  };

  /// The process-wide registry.
  static Metrics& global();

  /// Returns the named counter/timer, creating it on first use. The returned
  /// reference stays valid for the process lifetime.
  Counter& counter(std::string_view name);
  Timer& timer(std::string_view name);

  /// One line per metric, name-sorted:
  ///   counter <name> <value>
  ///   timer <name> <total_ns> ns <calls> calls
  std::string dump() const;

  /// Zeroes every registered metric (handles stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

}  // namespace pdf::runtime
