#include "runtime/thread_pool.hpp"

#include <memory>
#include <stdexcept>

#include "runtime/metrics.hpp"

namespace pdf::runtime {
namespace {

// Registry lookups take a mutex; resolve the runtime's own metrics once.
Metrics::Counter& steal_counter() {
  static Metrics::Counter& c = Metrics::global().counter("runtime.steals");
  return c;
}
Metrics::Counter& launch_counter() {
  static Metrics::Counter& c =
      Metrics::global().counter("runtime.parallel_for");
  return c;
}
Metrics::Counter& chunk_counter() {
  static Metrics::Counter& c = Metrics::global().counter("runtime.chunks");
  return c;
}

// Slot 0 is the main/external thread; pool workers draw unique slots from a
// free list refilled when workers exit, falling back to this counter. A
// dying worker's slot is only handed out after its pool joined it (release
// runs before the thread returns, acquire goes through the same mutex), so
// two live threads never share a slot and kMaxWorkerSlots bounds the
// *concurrent* worker count, not the number of pool re-creations — a
// long-lived process may resize the global pool freely (the pdf_check
// thread-determinism fuzz does so thousands of times).
std::atomic<std::size_t> g_next_slot{1};
std::mutex g_slot_mu;
std::vector<std::size_t> g_free_slots;
thread_local std::size_t t_worker_slot = 0;

std::size_t acquire_worker_slot() {
  {
    std::lock_guard<std::mutex> lk(g_slot_mu);
    if (!g_free_slots.empty()) {
      const std::size_t slot = g_free_slots.back();
      g_free_slots.pop_back();
      return slot;
    }
  }
  return g_next_slot.fetch_add(1, std::memory_order_relaxed);
}

void release_worker_slot(std::size_t slot) {
  std::lock_guard<std::mutex> lk(g_slot_mu);
  g_free_slots.push_back(slot);
}

// Depth of pool tasks on this thread; > 0 means a parallel_for here is
// nested and must run inline.
thread_local int t_task_depth = 0;

}  // namespace

std::size_t worker_slot() { return t_worker_slot; }

ExternalWorkerScope::ExternalWorkerScope() {
  if (t_worker_slot != 0) {
    throw std::logic_error(
        "ExternalWorkerScope: thread already holds a worker slot");
  }
  slot_ = acquire_worker_slot();
  if (slot_ >= kMaxWorkerSlots) {
    // Same bound as pool workers: never let two live threads share a slot.
    release_worker_slot(slot_);
    throw std::logic_error("ExternalWorkerScope: worker slots exhausted");
  }
  t_worker_slot = slot_;
}

ExternalWorkerScope::~ExternalWorkerScope() {
  t_worker_slot = 0;
  release_worker_slot(slot_);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  const std::size_t worker_count = threads - 1;
  workers_.reserve(worker_count);
  blocks_ = std::vector<Block>(threads);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main(std::size_t ordinal) {
  t_worker_slot = acquire_worker_slot();
  if (t_worker_slot >= kMaxWorkerSlots) {
    // Requires more than kMaxWorkerSlots concurrent workers; fail loudly
    // rather than risk two live threads sharing per-worker state.
    std::terminate();
  }
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) {
        release_worker_slot(t_worker_slot);
        return;
      }
      seen = epoch_;
    }
    work(ordinal + 1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_chunk(std::size_t chunk) {
  const std::size_t begin = chunk * grain_;
  const std::size_t end = begin + grain_ < n_ ? begin + grain_ : n_;
  try {
    (*body_)(begin, end);
  } catch (...) {
    std::lock_guard<std::mutex> lk(error_mu_);
    if (!error_) error_ = std::current_exception();
  }
}

void ThreadPool::work(std::size_t self) {
  ++t_task_depth;
  const std::size_t participants = blocks_.size();
  // Drain the own block first, then steal single chunks from the others.
  for (std::size_t v = 0; v < participants; ++v) {
    const std::size_t idx = (self + v) % participants;
    Block& b = blocks_[idx];
    for (;;) {
      const std::size_t c = b.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= b.end) break;
      if (v != 0) steal_counter().add(1);
      run_chunk(c);
    }
  }
  --t_task_depth;
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (workers_.empty() || chunks <= 1 || t_task_depth > 0) {
    // Sequential / nested path: same chunk boundaries, same thread.
    body(0, n);
    return;
  }

  std::lock_guard<std::mutex> run_lk(run_mu_);
  body_ = &body;
  n_ = n;
  grain_ = grain;
  chunks_ = chunks;
  error_ = nullptr;
  const std::size_t participants = blocks_.size();
  for (std::size_t p = 0; p < participants; ++p) {
    blocks_[p].next.store(chunks * p / participants,
                          std::memory_order_relaxed);
    blocks_[p].end = chunks * (p + 1) / participants;
  }
  launch_counter().add(1);
  chunk_counter().add(chunks);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++epoch_;
    outstanding_ = workers_.size();
  }
  wake_cv_.notify_all();

  work(0);  // the caller is participant 0

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return outstanding_ == 0; });
  }
  body_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(threads);
}

std::size_t global_threads() { return global_pool().thread_count(); }

}  // namespace pdf::runtime
