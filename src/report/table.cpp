#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace pdf {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_title(std::string title) {
  title_ = std::move(title);
  return *this;
}

Table& Table::columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i >= width.size()) width.resize(i + 1, 0);
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << (i ? "  " : "");
      os << cell << std::string(width[i] - cell.size(), ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace pdf
