#include "report/coverage.hpp"

#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

#include "faultsim/batch_sim.hpp"
#include "faultsim/fault_sim.hpp"

namespace pdf {
namespace {

CoverageBreakdown build(std::span<const TargetFault> faults,
                        const std::function<bool(std::size_t)>& is_detected) {
  std::map<int, CoverageBucket, std::greater<int>> by_length;
  CoverageBreakdown out;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    CoverageBucket& b = by_length[faults[i].fault.length];
    b.length = faults[i].fault.length;
    ++b.total;
    ++out.total;
    if (is_detected(i)) {
      ++b.detected;
      ++out.detected;
    }
  }
  out.buckets.reserve(by_length.size());
  for (auto& [len, b] : by_length) out.buckets.push_back(b);
  return out;
}

}  // namespace

CoverageBreakdown coverage_by_length(const Netlist& nl,
                                     std::span<const TwoPatternTest> tests,
                                     std::span<const TargetFault> faults) {
  // The batched backends need a combinational netlist; sequential circuits
  // take the per-test scalar path (identical results).
  if (!nl.has_sequential()) {
    BatchSimulator fsim(nl);
    return coverage_by_length(faults, fsim.detection_matrix(tests, faults));
  }
  FaultSimulator fsim(nl);
  const std::vector<bool> det = fsim.detects_any(tests, faults);
  return coverage_by_length(faults, det);
}

CoverageBreakdown coverage_by_length(std::span<const TargetFault> faults,
                                     std::span<const bool> detected) {
  if (detected.size() != faults.size()) {
    throw std::invalid_argument("coverage_by_length: size mismatch");
  }
  return build(faults, [&](std::size_t i) { return detected[i]; });
}

CoverageBreakdown coverage_by_length(std::span<const TargetFault> faults,
                                     const std::vector<bool>& detected) {
  if (detected.size() != faults.size()) {
    throw std::invalid_argument("coverage_by_length: size mismatch");
  }
  return build(faults, [&](std::size_t i) { return detected[i]; });
}

CoverageBreakdown coverage_by_length(std::span<const TargetFault> faults,
                                     const DetectionMatrix& matrix) {
  if (matrix.fault_count() != faults.size()) {
    throw std::invalid_argument("coverage_by_length: matrix row mismatch");
  }
  return build(faults, [&](std::size_t i) { return matrix.any(i); });
}

std::string coverage_summary(const CoverageBreakdown& b, std::size_t max_buckets) {
  std::ostringstream os;
  for (std::size_t i = 0; i < b.buckets.size() && i < max_buckets; ++i) {
    if (i) os << " | ";
    os << "L=" << b.buckets[i].length << ": " << b.buckets[i].detected << "/"
       << b.buckets[i].total;
  }
  if (b.buckets.size() > max_buckets) os << " | ...";
  return os.str();
}

}  // namespace pdf
