// Small running-statistics accumulator (Welford) for multi-seed experiment
// reporting: the paper's procedure is randomized, so serious comparisons
// should quote mean and spread over seeds, not a single draw.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace pdf {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1); 0 for fewer than two samples.
  double stddev() const {
    return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_ - 1)) : 0.0;
  }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pdf
