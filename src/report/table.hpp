// Minimal ASCII table / CSV emitter used by the table benches to print
// paper-style result tables.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace pdf {

class Table {
 public:
  explicit Table(std::string title = {});

  Table& set_title(std::string title);
  Table& columns(std::vector<std::string> headers);

  /// Appends a row; cells are stringified by the add_row overloads.
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: any mix of strings and arithmetic values.
  template <typename... Ts>
  Table& row(const Ts&... cells) {
    return add_row({stringify(cells)...});
  }

  void print(std::ostream& os) const;
  std::string to_csv() const;
  std::size_t row_count() const { return rows_.size(); }

 private:
  static std::string stringify(const std::string& s) { return s; }
  static std::string stringify(const char* s) { return s; }
  template <typename T>
  static std::string stringify(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.2f", static_cast<double>(v));
      return buf;
    } else {
      return std::to_string(v);
    }
  }

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdf
