// Coverage accounting by path length.
//
// The paper's quality argument is about *which* faults a test set detects,
// not just how many: coverage of the longest paths must be complete, and
// coverage of the next-to-longest band is the enrichment payoff. This module
// breaks detection down per path-length bucket so examples and benches can
// show the band structure directly.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "faults/screen.hpp"
#include "faultsim/detection_matrix.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

struct CoverageBucket {
  int length = 0;
  std::size_t total = 0;
  std::size_t detected = 0;
  double ratio() const {
    return total == 0 ? 0.0
                      : static_cast<double>(detected) / static_cast<double>(total);
  }
};

struct CoverageBreakdown {
  std::vector<CoverageBucket> buckets;  // descending length
  std::size_t total = 0;
  std::size_t detected = 0;

  double ratio() const {
    return total == 0 ? 0.0
                      : static_cast<double>(detected) / static_cast<double>(total);
  }
};

/// Buckets `faults` by path length and counts which are detected by `tests`.
/// Combinational netlists simulate through the pattern-parallel simulator
/// (and thus the runtime thread pool); sequential ones fall back to the
/// scalar simulator. Results are identical either way.
CoverageBreakdown coverage_by_length(const Netlist& nl,
                                     std::span<const TwoPatternTest> tests,
                                     std::span<const TargetFault> faults);

/// Same, from precomputed detection flags (must align with `faults`).
CoverageBreakdown coverage_by_length(std::span<const TargetFault> faults,
                                     std::span<const bool> detected);
CoverageBreakdown coverage_by_length(std::span<const TargetFault> faults,
                                     const std::vector<bool>& detected);

/// Same, from a precomputed detection matrix (rows must align with `faults`).
CoverageBreakdown coverage_by_length(std::span<const TargetFault> faults,
                                     const DetectionMatrix& matrix);

/// Compact one-line rendering: "L>=30: 299/308 | L=29: 41/52 | ...".
std::string coverage_summary(const CoverageBreakdown& b, std::size_t max_buckets = 8);

}  // namespace pdf
