#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pdf::obs {

double Json::as_double() const {
  if (type_ == Type::Int) return static_cast<double>(int_);
  expect(Type::Double);
  return double_;
}

const Json& Json::at(const std::string& key) const {
  expect(Type::Object);
  auto it = object_.find(key);
  if (it == object_.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::Object && object_.count(key) != 0;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;
  expect(Type::Object);
  return object_[key];
}

void Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  expect(Type::Array);
  array_.push_back(std::move(v));
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Int:
      out += std::to_string(int_);
      break;
    case Type::Double: {
      if (!std::isfinite(double_)) {
        out += "null";  // JSON has no inf/nan
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out += buf;
      break;
    }
    case Type::String:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw JsonError("json parse error at byte " + std::to_string(pos_) +
                    ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("bad literal");
    pos_ += lit.size();
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':'");
      ++pos_;
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    ++pos_;  // '['
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs not needed for
          // the metric/trace names this parser exists to read back).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (!is_double) {
      std::int64_t iv = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(iv);
      // Integer overflow: fall through to double.
    }
    double dv = 0.0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc() || p != tok.data() + tok.size()) fail("bad number");
    return Json(dv);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace pdf::obs
