#include "obs/exposition.hpp"

#include <cstdio>

namespace pdf::obs {

namespace {

using HistSnapshot = runtime::Metrics::Histogram::Snapshot;

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void type_line(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, const std::string& name, std::uint64_t v) {
  out += name;
  out += ' ';
  append_u64(out, v);
  out += '\n';
}

void sample(std::string& out, const std::string& name, double v) {
  out += name;
  out += ' ';
  append_double(out, v);
  out += '\n';
}

void histogram_block(std::string& out, const std::string& base,
                     const HistSnapshot& h) {
  type_line(out, base, "histogram");
  // Cumulative buckets up to the highest non-empty one. The log2 uppers of
  // buckets 0..63 are exact uint64 bounds; bucket 64 (values >= 2^63) folds
  // into the mandatory +Inf bucket.
  std::size_t top = 0;
  for (std::size_t b = 0; b < HistSnapshot{}.buckets.size() && b < 64; ++b) {
    if (h.buckets[b] != 0) top = b;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b <= top; ++b) {
    cumulative += h.buckets[b];
    out += base;
    out += "_bucket{le=\"";
    append_u64(out, runtime::Metrics::Histogram::bucket_upper(b));
    out += "\"} ";
    append_u64(out, cumulative);
    out += '\n';
  }
  out += base;
  out += "_bucket{le=\"+Inf\"} ";
  append_u64(out, h.count);
  out += '\n';
  sample(out, base + "_sum", h.sum);
  sample(out, base + "_count", h.count);
}

}  // namespace

Json histogram_json(const HistSnapshot& h) {
  Json j;
  j["count"] = h.count;
  j["sum"] = h.sum;
  j["p50"] = h.p50();
  j["p90"] = h.p90();
  j["p99"] = h.p99();
  j["max"] = h.max;
  return j;
}

Json snapshot_json(const runtime::Metrics::Snapshot& snap) {
  Json counters{Json::Object{}};
  for (const auto& [name, v] : snap.counters) counters[name] = v;
  Json timers{Json::Object{}};
  for (const auto& [name, t] : snap.timers) {
    Json tj;
    tj["total_ns"] = t.total_ns;
    tj["calls"] = t.calls;
    timers[name] = std::move(tj);
  }
  Json histograms{Json::Object{}};
  for (const auto& [name, h] : snap.histograms) {
    histograms[name] = histogram_json(h);
  }
  Json doc;
  doc["counters"] = std::move(counters);
  doc["timers"] = std::move(timers);
  doc["histograms"] = std::move(histograms);
  return doc;
}

std::string prometheus_name(std::string_view name, std::string_view prefix,
                            std::string_view suffix) {
  std::string out;
  out.reserve(prefix.size() + name.size() + suffix.size() + 1);
  out.append(prefix);
  if (!prefix.empty()) out += '_';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  out.append(suffix);
  return out;
}

std::string prometheus_text(const runtime::Metrics::Snapshot& snap,
                            const std::vector<Gauge>& gauges,
                            std::string_view prefix) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prometheus_name(name, prefix, "_total");
    type_line(out, n, "counter");
    sample(out, n, v);
  }
  for (const auto& [name, t] : snap.timers) {
    const std::string secs = prometheus_name(name, prefix, "_seconds_total");
    type_line(out, secs, "counter");
    sample(out, secs, static_cast<double>(t.total_ns) / 1e9);
    const std::string calls = prometheus_name(name, prefix, "_calls_total");
    type_line(out, calls, "counter");
    sample(out, calls, t.calls);
  }
  for (const auto& [name, h] : snap.histograms) {
    histogram_block(out, prometheus_name(name, prefix), h);
  }
  for (const auto& g : gauges) {
    const std::string n = prometheus_name(g.name, prefix);
    type_line(out, n, "gauge");
    sample(out, n, g.value);
  }
  return out;
}

}  // namespace pdf::obs
