// Low-overhead thread-aware span tracer with Chrome-trace-event export.
//
// Usage: a bench (or test) starts a TraceSession, engines mark scopes with
// `PDF_TRACE_SPAN("atpg.justify")`, and at exit the session writes a
// `{"traceEvents": [...]}` JSON file that loads directly in Perfetto or
// chrome://tracing (complete "X" events with ts/dur in microseconds and
// tid = the runtime worker_slot()).
//
// Cost model (the reason this exists as its own layer instead of more
// Metrics timers):
//  - disabled (no session running): one relaxed atomic load per span — the
//    macro compiles to a bool check, no clock read, no allocation. This is
//    the steady state for every table run without --trace.
//  - enabled: two steady_clock reads plus one slot write into the calling
//    worker's private ring buffer (PerWorker — no lock, no sharing). Rings
//    are fixed-capacity and overwrite oldest-first; `dropped()` reports how
//    many events fell off so a truncated trace is never mistaken for a
//    complete one.
//
// Span names are `const char*` compared by pointer, so callers pass string
// literals (the PDF_TRACE_SPAN macro enforces this). Cold paths that need a
// computed name (e.g. `store.memoize.<kind>.hit`) intern it once via
// `TraceSession::intern` — a mutex-guarded set, deliberately not for hot
// loops.
//
// One session may run at a time process-wide; start() while another session
// is active fails (returns false). Engines never touch TraceSession — only
// the macro and the bench harness do.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pdf::obs {

namespace detail {
/// Hot-path flag: true while a TraceSession is recording.
extern std::atomic<bool> g_trace_active;
}  // namespace detail

/// Monotonic nanoseconds (steady_clock) — the span clock.
std::uint64_t trace_now_ns();

/// True while some TraceSession is recording. Single relaxed load.
inline bool trace_active() {
  return detail::g_trace_active.load(std::memory_order_relaxed);
}

class TraceSession {
 public:
  struct Event {
    const char* name = nullptr;  // interned or literal; never owned here
    std::uint64_t begin_ns = 0;  // trace_now_ns() at scope entry
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;  // runtime::worker_slot() of the recording thread
  };

  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Begins recording into this session with `ring_capacity` events per
  /// worker thread. Returns false (and records nothing) when another
  /// session is already active.
  bool start(std::size_t ring_capacity = std::size_t{1} << 16);

  /// Stops recording. Events stay readable until the session is destroyed.
  void stop();

  bool running() const { return running_; }

  /// Appends one completed span to the calling worker's ring. Only called
  /// by TraceSpan / trace_stage helpers while the session is active.
  void record(const char* name, std::uint64_t begin_ns,
              std::uint64_t end_ns);

  /// Copies a string into session-lifetime storage and returns a stable
  /// pointer usable as an Event name. Takes a lock — cold paths only.
  const char* intern(std::string_view name);

  /// All recorded events merged across workers, sorted by begin time.
  /// Only safe once recording has stopped (or no worker is mid-record).
  std::vector<Event> events() const;

  /// Events that fell off the rings because a worker exceeded its capacity.
  std::uint64_t dropped() const;

  /// Chrome trace-event JSON: {"traceEvents": [{name,cat,ph:"X",ts,dur,
  /// pid,tid}, ...]} with ts/dur in microseconds.
  std::string chrome_json() const;

  /// Writes chrome_json() to `path`. Returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct Impl;
  Impl* impl_;
  bool running_ = false;
};

/// The session currently recording, or nullptr. Use for cold-path spans
/// that need a computed (interned) name; hot paths use PDF_TRACE_SPAN.
TraceSession* active_session();

/// RAII span: records [construction, destruction) into the active session.
/// `name` must outlive the session (use a string literal or intern()).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_active()) {
      name_ = name;
      begin_ns_ = trace_now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void finish();  // out of line: keeps the disabled path tiny
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
};

#define PDF_TRACE_CONCAT2(a, b) a##b
#define PDF_TRACE_CONCAT(a, b) PDF_TRACE_CONCAT2(a, b)

/// Marks the enclosing scope as a trace span named by the string literal.
#define PDF_TRACE_SPAN(name)                  \
  ::pdf::obs::TraceSpan PDF_TRACE_CONCAT(pdf_trace_span_, __COUNTER__) { \
    "" name                                   \
  }

}  // namespace pdf::obs
