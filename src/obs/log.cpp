#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "base/error.hpp"
#include "obs/json.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace pdf::obs {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::Off)};
}  // namespace detail

namespace {

std::mutex& sink_mu() {
  static std::mutex mu;
  return mu;
}

struct SinkState {
  LogSink sink;  // empty -> stderr
  std::uint64_t rate_limit = 1000;
  std::uint64_t window_start_s = 0;
  std::uint64_t emitted_in_window = 0;
};

SinkState& sink_state() {
  static SinkState s;
  return s;
}

std::string& line_buf() {
  static thread_local std::string buf;
  return buf;
}

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void append_key(std::string& buf, std::string_view key) {
  buf += ",\"";
  buf += Json::escape(key);
  buf += "\":";
}

void emit(std::string_view line) {
  std::lock_guard<std::mutex> lk(sink_mu());
  SinkState& s = sink_state();
  if (s.rate_limit != 0) {
    const std::uint64_t now_s = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    if (now_s != s.window_start_s) {
      s.window_start_s = now_s;
      s.emitted_in_window = 0;
    }
    if (s.emitted_in_window >= s.rate_limit) {
      static runtime::Metrics::Counter& dropped =
          runtime::Metrics::global().counter("log.dropped");
      dropped.add(1);
      return;
    }
    ++s.emitted_in_window;
  }
  if (s.sink) {
    s.sink(line);
  } else {
    std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()),
                 line.data());
  }
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(
      detail::g_log_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel lv) {
  detail::g_log_level.store(static_cast<int>(lv), std::memory_order_relaxed);
}

const char* log_level_name(LogLevel lv) {
  switch (lv) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "off";
}

LogLevel parse_log_level(std::string_view s) {
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off") return LogLevel::Off;
  throw ConfigError("unknown log level '" + std::string(s) +
                    "' (expected debug|info|warn|error|off)");
}

void init_log_level_from_env() {
  const char* env = std::getenv("PDF_LOG_LEVEL");
  if (env == nullptr) return;
  try {
    set_log_level(parse_log_level(env));
  } catch (const ConfigError&) {
    // A stale env var must not kill a daemon; the explicit flag still works.
  }
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lk(sink_mu());
  sink_state().sink = std::move(sink);
}

void set_log_rate_limit(std::uint64_t lines_per_sec) {
  std::lock_guard<std::mutex> lk(sink_mu());
  SinkState& s = sink_state();
  s.rate_limit = lines_per_sec;
  s.emitted_in_window = 0;
}

LogEvent::LogEvent(LogLevel lv, std::string_view event) : buf_(line_buf()) {
  buf_.clear();
  buf_ += "{\"event\":\"";
  buf_ += Json::escape(event);
  buf_ += "\",\"level\":\"";
  buf_ += log_level_name(lv);
  buf_ += "\",\"tid\":";
  buf_ += std::to_string(runtime::worker_slot());
  buf_ += ",\"ts_ms\":";
  buf_ += std::to_string(wall_ms());
}

LogEvent::~LogEvent() {
  buf_ += '}';
  emit(buf_);
}

LogEvent& LogEvent::str(std::string_view key, std::string_view value) {
  append_key(buf_, key);
  buf_ += '"';
  buf_ += Json::escape(value);
  buf_ += '"';
  return *this;
}

LogEvent& LogEvent::num(std::string_view key, std::int64_t value) {
  append_key(buf_, key);
  buf_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::num(std::string_view key, std::uint64_t value) {
  append_key(buf_, key);
  buf_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::num(std::string_view key, double value) {
  append_key(buf_, key);
  char tmp[40];
  std::snprintf(tmp, sizeof(tmp), "%.17g", value);
  buf_ += tmp;
  return *this;
}

LogEvent& LogEvent::flag(std::string_view key, bool value) {
  append_key(buf_, key);
  buf_ += value ? "true" : "false";
  return *this;
}

}  // namespace pdf::obs
