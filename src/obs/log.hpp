// Leveled structured JSON logging for the long-lived daemons.
//
// One line per event, one JSON object per line, key-sorted is NOT promised
// (fields append in call order) — consumers parse, they don't diff. Every
// line carries {"event", "level", "tid", "ts_ms"} plus whatever fields the
// call site attaches.
//
// Cost model mirrors PDF_TRACE_SPAN (obs/trace.hpp):
//  - disabled (level above the line's): one relaxed atomic load per
//    PDF_LOG — no clock read, no formatting, no allocation. The default
//    level is Off, so engines and tables pay nothing unless a daemon
//    opts in via PDF_LOG_LEVEL or --log-level.
//  - enabled: the line is formatted into a thread_local buffer (amortized
//    zero allocation) and handed to the sink under a mutex. Logging is for
//    daemon control paths (admission, drain, cancellation, errors), not
//    for per-gate hot loops — the mutex is deliberate, ordering lines
//    beats sharding them.
//
// A per-second rate limit guards the sink against error storms: lines over
// the budget are dropped and counted on the `log.dropped` metric, so a gap
// in the log is observable rather than silent.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace pdf::obs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

namespace detail {
/// Hot-path threshold: lines below this level are skipped. Defaults to Off.
extern std::atomic<int> g_log_level;
}  // namespace detail

/// True when a line at `lv` would be emitted. Single relaxed load.
inline bool log_enabled(LogLevel lv) {
  return static_cast<int>(lv) >= detail::g_log_level.load(std::memory_order_relaxed);
}

LogLevel log_level();
void set_log_level(LogLevel lv);

/// "debug" | "info" | "warn" | "error" | "off".
const char* log_level_name(LogLevel lv);

/// Parses a level name (case-sensitive, the five names above); throws
/// base::ConfigError on anything else.
LogLevel parse_log_level(std::string_view s);

/// Applies PDF_LOG_LEVEL from the environment if set (invalid values are
/// ignored — a daemon must not die because of a stale env var). Called by
/// the daemon mains before flag parsing so --log-level wins.
void init_log_level_from_env();

/// Receives one formatted line (no trailing newline). Called under the log
/// mutex — keep it fast. Passing nullptr restores the default stderr sink.
using LogSink = std::function<void(std::string_view line)>;
void set_log_sink(LogSink sink);

/// Lines per second before drops kick in (default 1000). 0 disables the
/// limit. Dropped lines tick the `log.dropped` counter.
void set_log_rate_limit(std::uint64_t lines_per_sec);

/// Builder for one log line; emits on destruction. Construct only through
/// PDF_LOG so the disabled path stays a single load.
class LogEvent {
 public:
  LogEvent(LogLevel lv, std::string_view event);
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& str(std::string_view key, std::string_view value);
  LogEvent& num(std::string_view key, std::int64_t value);
  LogEvent& num(std::string_view key, std::uint64_t value);
  LogEvent& num(std::string_view key, double value);
  LogEvent& flag(std::string_view key, bool value);

 private:
  std::string& buf_;  // thread_local line buffer
};

/// Emits a structured line when `lvl` (a LogLevel enumerator name) clears
/// the threshold; otherwise costs one relaxed load. Chain fields:
///   PDF_LOG(Info, "serve.job.done").num("id", id).str("circuit", name);
#define PDF_LOG(lvl, event)                                        \
  if (!::pdf::obs::log_enabled(::pdf::obs::LogLevel::lvl)) {       \
  } else                                                           \
    ::pdf::obs::LogEvent(::pdf::obs::LogLevel::lvl, event)

}  // namespace pdf::obs
