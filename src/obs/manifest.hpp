// Machine-readable run manifest: one JSON document per bench run.
//
// `--metrics-json FILE` turns the flat stderr metric dump into a stable
// schema (`pdf.run_manifest/1`) that downstream tooling can diff across
// PRs: build info, run parameters (seed, N_P, N_P0, threads), per-circuit
// wall times, and a full runtime::Metrics snapshot — counters, timers, and
// histograms with count/sum/p50/p90/p99/max. Store hit/miss totals get a
// dedicated top-level object so cache regressions are one jq away.
//
// The manifest never goes to stdout: table output must stay bit-identical
// with and without observability flags (tested by ObsDeterminism and the CI
// observability job).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace pdf::obs {

/// Everything the manifest reports that the Metrics registry doesn't know.
struct RunInfo {
  std::string bench;  // driver name, e.g. "table6_enrichment"
  std::uint64_t seed = 0;
  std::uint64_t n_p = 0;   // N_P target-set budget
  std::uint64_t n_p0 = 0;  // N_P0 subset budget
  std::uint64_t threads = 1;
  std::string backend;  // sim::SimBackend name ("scalar", "bitpar", ...)
  bool paper = false;   // --paper preset active
  bool store_enabled = false;
  std::string store_dir;
  /// (circuit, wall seconds) in run order.
  std::vector<std::pair<std::string, double>> circuits;
  /// Trace-session totals when --trace was active (0/0 otherwise).
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
};

/// Builds the manifest document from `info` plus a snapshot of
/// runtime::Metrics::global().
Json run_manifest(const RunInfo& info);

/// Writes run_manifest(info).dump() to `path`. Returns false on I/O error.
bool write_run_manifest(const std::string& path, const RunInfo& info);

}  // namespace pdf::obs
