#include "obs/manifest.hpp"

#include <fstream>

#include "runtime/metrics.hpp"

namespace pdf::obs {

namespace {

Json build_info() {
  Json b;
#if defined(__clang__)
  b["compiler"] = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  b["compiler"] = std::string("gcc ") + __VERSION__;
#else
  b["compiler"] = "unknown";
#endif
  b["cpp_standard"] = static_cast<std::int64_t>(__cplusplus);
#ifdef NDEBUG
  b["build_type"] = "release";
#else
  b["build_type"] = "debug";
#endif
  return b;
}

Json histogram_json(const runtime::Metrics::Histogram::Snapshot& h) {
  Json j;
  j["count"] = h.count;
  j["sum"] = h.sum;
  j["p50"] = h.p50();
  j["p90"] = h.p90();
  j["p99"] = h.p99();
  j["max"] = h.max;
  return j;
}

}  // namespace

Json run_manifest(const RunInfo& info) {
  const runtime::Metrics::Snapshot m = runtime::Metrics::global().snapshot();

  Json doc;
  doc["schema"] = "pdf.run_manifest/1";
  doc["bench"] = info.bench;
  doc["build"] = build_info();

  Json params;
  params["seed"] = info.seed;
  params["n_p"] = info.n_p;
  params["n_p0"] = info.n_p0;
  params["threads"] = info.threads;
  params["backend"] = info.backend;
  params["paper"] = info.paper;
  params["store_enabled"] = info.store_enabled;
  params["store_dir"] = info.store_dir;
  doc["params"] = std::move(params);

  Json circuits;
  circuits = Json(Json::Array{});
  for (const auto& [name, seconds] : info.circuits) {
    Json c;
    c["circuit"] = name;
    c["seconds"] = seconds;
    circuits.push_back(std::move(c));
  }
  doc["circuits"] = std::move(circuits);

  Json counters;
  counters = Json(Json::Object{});
  for (const auto& [name, v] : m.counters) counters[name] = v;
  Json timers;
  timers = Json(Json::Object{});
  for (const auto& [name, t] : m.timers) {
    Json tj;
    tj["total_ns"] = t.total_ns;
    tj["calls"] = t.calls;
    timers[name] = std::move(tj);
  }
  Json histograms;
  histograms = Json(Json::Object{});
  for (const auto& [name, h] : m.histograms) {
    histograms[name] = histogram_json(h);
  }
  Json metrics;
  metrics["counters"] = std::move(counters);
  metrics["timers"] = std::move(timers);
  metrics["histograms"] = std::move(histograms);
  doc["metrics"] = std::move(metrics);

  // Store totals pulled out of the flat counter map: the numbers a
  // trajectory dashboard reads first.
  Json store;
  const auto counter_or_zero = [&](const char* name) -> std::uint64_t {
    auto it = m.counters.find(name);
    return it == m.counters.end() ? 0 : it->second;
  };
  store["enabled"] = info.store_enabled;
  store["hits"] = counter_or_zero("store.hits");
  store["misses"] = counter_or_zero("store.misses");
  store["corrupt"] = counter_or_zero("store.corrupt");
  store["bytes_read"] = counter_or_zero("store.bytes_read");
  store["bytes_written"] = counter_or_zero("store.bytes_written");
  doc["store"] = std::move(store);

  Json trace;
  trace["events"] = info.trace_events;
  trace["dropped"] = info.trace_dropped;
  doc["trace"] = std::move(trace);

  return doc;
}

bool write_run_manifest(const std::string& path, const RunInfo& info) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << run_manifest(info).dump() << "\n";
  return static_cast<bool>(f);
}

}  // namespace pdf::obs
