#include "obs/manifest.hpp"

#include <fstream>

#include "obs/exposition.hpp"
#include "runtime/metrics.hpp"

namespace pdf::obs {

namespace {

Json build_info() {
  Json b;
#if defined(__clang__)
  b["compiler"] = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  b["compiler"] = std::string("gcc ") + __VERSION__;
#else
  b["compiler"] = "unknown";
#endif
  b["cpp_standard"] = static_cast<std::int64_t>(__cplusplus);
#ifdef NDEBUG
  b["build_type"] = "release";
#else
  b["build_type"] = "debug";
#endif
  return b;
}

}  // namespace

Json run_manifest(const RunInfo& info) {
  const runtime::Metrics::Snapshot m = runtime::Metrics::global().snapshot();

  Json doc;
  doc["schema"] = "pdf.run_manifest/1";
  doc["bench"] = info.bench;
  doc["build"] = build_info();

  Json params;
  params["seed"] = info.seed;
  params["n_p"] = info.n_p;
  params["n_p0"] = info.n_p0;
  params["threads"] = info.threads;
  params["backend"] = info.backend;
  params["paper"] = info.paper;
  params["store_enabled"] = info.store_enabled;
  params["store_dir"] = info.store_dir;
  doc["params"] = std::move(params);

  Json circuits;
  circuits = Json(Json::Array{});
  for (const auto& [name, seconds] : info.circuits) {
    Json c;
    c["circuit"] = name;
    c["seconds"] = seconds;
    circuits.push_back(std::move(c));
  }
  doc["circuits"] = std::move(circuits);

  doc["metrics"] = snapshot_json(m);

  // Store totals pulled out of the flat counter map: the numbers a
  // trajectory dashboard reads first.
  Json store;
  const auto counter_or_zero = [&](const char* name) -> std::uint64_t {
    auto it = m.counters.find(name);
    return it == m.counters.end() ? 0 : it->second;
  };
  store["enabled"] = info.store_enabled;
  store["hits"] = counter_or_zero("store.hits");
  store["misses"] = counter_or_zero("store.misses");
  store["corrupt"] = counter_or_zero("store.corrupt");
  store["bytes_read"] = counter_or_zero("store.bytes_read");
  store["bytes_written"] = counter_or_zero("store.bytes_written");
  doc["store"] = std::move(store);

  Json trace;
  trace["events"] = info.trace_events;
  trace["dropped"] = info.trace_dropped;
  doc["trace"] = std::move(trace);

  return doc;
}

bool write_run_manifest(const std::string& path, const RunInfo& info) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << run_manifest(info).dump() << "\n";
  return static_cast<bool>(f);
}

}  // namespace pdf::obs
