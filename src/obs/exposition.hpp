// Renders a runtime::Metrics snapshot for external consumers.
//
// Two formats from the same Snapshot:
//  - snapshot_json(): the dependency-free obs::Json tree the run manifest
//    already embeds (counters as ints, timers as {total_ns, calls},
//    histograms as {count, sum, p50, p90, p99, max}). Key-sorted and
//    byte-stable like every obs::Json dump.
//  - prometheus_text(): Prometheus text exposition format 0.0.4, the body
//    the `prom` admin request returns. Counters become `<prefix>_<name>_total`,
//    timers a `_seconds_total` / `_calls_total` pair, histograms native
//    Prometheus histograms whose `le` bounds are the log2 bucket uppers
//    (only buckets up to the highest non-empty one are emitted, plus the
//    mandatory `+Inf`). Metric names are sanitized to [a-zA-Z0-9_:] with
//    dots mapped to underscores.
//
// Rendering works on a Snapshot, not on the live registry, so callers
// control the quiesce point and can render deltas (Snapshot::delta_since)
// with the same code path.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "runtime/metrics.hpp"

namespace pdf::obs {

/// One instantaneous value exported alongside the cumulative snapshot
/// (queue depth, in-flight jobs, uptime — things no Counter accumulates).
struct Gauge {
  std::string name;  // dotted, sanitized like the snapshot metrics
  double value = 0.0;
};

/// JSON rendering of one histogram snapshot: {count, sum, p50, p90, p99,
/// max}. Shared by the run manifest and the `stats` admin request.
Json histogram_json(const runtime::Metrics::Histogram::Snapshot& h);

/// JSON rendering of a full snapshot: {"counters": {...}, "timers":
/// {name: {total_ns, calls}}, "histograms": {name: histogram_json}}.
Json snapshot_json(const runtime::Metrics::Snapshot& snap);

/// A metric name in Prometheus form: `<prefix>_<name><suffix>` with every
/// character outside [a-zA-Z0-9_:] replaced by '_'.
std::string prometheus_name(std::string_view name, std::string_view prefix,
                            std::string_view suffix = "");

/// Prometheus text exposition (format 0.0.4) of `snap` plus optional
/// gauges. Deterministic: name-sorted within each kind, `%.17g` doubles.
std::string prometheus_text(const runtime::Metrics::Snapshot& snap,
                            const std::vector<Gauge>& gauges = {},
                            std::string_view prefix = "pdf");

/// The Content-Type a Prometheus scraper expects for prometheus_text().
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4";

}  // namespace pdf::obs
