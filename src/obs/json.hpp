// Minimal JSON value + writer + parser for the observability layer.
//
// The repo needs JSON in exactly two places — the Chrome-trace export and
// the --metrics-json run manifest — plus the ability to parse those files
// back in tests. This is a deliberately small tagged variant, not a general
// JSON library: objects are std::map (so dumps are key-sorted and
// byte-stable), integers are kept as int64 end-to-end (exact round-trip for
// counters and nanosecond timers), and everything else is a double.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pdf::obs {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(int v) : type_(Type::Int), int_(v) {}
  Json(long v) : type_(Type::Int), int_(v) {}
  Json(long long v) : type_(Type::Int), int_(v) {}
  Json(unsigned v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v)
      : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v)
      : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::Double), double_(v) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), string_(s) {}
  Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }

  bool as_bool() const { return expect(Type::Bool), bool_; }
  std::int64_t as_int() const { return expect(Type::Int), int_; }
  /// Numeric value whether stored as Int or Double.
  double as_double() const;
  const std::string& as_string() const {
    return expect(Type::String), string_;
  }
  const Array& as_array() const { return expect(Type::Array), array_; }
  const Object& as_object() const { return expect(Type::Object), object_; }

  /// Object member access; throws JsonError when absent or not an object.
  const Json& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Mutable object member (creates the member; converts Null to Object).
  Json& operator[](const std::string& key);
  /// Appends to an array (converts Null to Array).
  void push_back(Json v);

  /// Compact single-line serialization (objects key-sorted by std::map).
  std::string dump() const;

  /// Strict recursive-descent parse of a complete JSON document; throws
  /// JsonError with a byte offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  /// JSON string escaping (quotes not included).
  static std::string escape(std::string_view s);

 private:
  void expect(Type t) const {
    if (type_ != t) throw JsonError("json: wrong type access");
  }
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace pdf::obs
