#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>

#include "obs/json.hpp"
#include "runtime/per_worker.hpp"
#include "runtime/thread_pool.hpp"

namespace pdf::obs {

namespace detail {
std::atomic<bool> g_trace_active{false};
}  // namespace detail

namespace {
// The (single) session currently recording. Written only under g_start_mu;
// read with relaxed loads from span destructors, which is safe because a
// session flips g_trace_active off (and quiesces) before it goes away.
std::atomic<TraceSession*> g_session{nullptr};
std::mutex g_start_mu;
}  // namespace

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TraceSession::Impl {
  struct Ring {
    std::vector<Event> events;
    std::uint64_t total = 0;  // events ever recorded into this ring
  };

  runtime::PerWorker<Ring> rings;
  std::size_t capacity = std::size_t{1} << 16;

  std::mutex intern_mu;
  std::set<std::string, std::less<>> interned;
};

TraceSession::TraceSession() : impl_(new Impl) {}

TraceSession::~TraceSession() {
  stop();
  delete impl_;
}

bool TraceSession::start(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lk(g_start_mu);
  if (g_session.load(std::memory_order_relaxed) != nullptr) return false;
  impl_->capacity = ring_capacity == 0 ? 1 : ring_capacity;
  g_session.store(this, std::memory_order_release);
  detail::g_trace_active.store(true, std::memory_order_release);
  running_ = true;
  return true;
}

void TraceSession::stop() {
  std::lock_guard<std::mutex> lk(g_start_mu);
  if (g_session.load(std::memory_order_relaxed) != this) return;
  detail::g_trace_active.store(false, std::memory_order_release);
  g_session.store(nullptr, std::memory_order_release);
  running_ = false;
}

void TraceSession::record(const char* name, std::uint64_t begin_ns,
                          std::uint64_t end_ns) {
  Impl::Ring& ring = impl_->rings.local();
  Event ev;
  ev.name = name;
  ev.begin_ns = begin_ns;
  ev.dur_ns = end_ns > begin_ns ? end_ns - begin_ns : 0;
  ev.tid = static_cast<std::uint32_t>(runtime::worker_slot());
  if (ring.events.size() < impl_->capacity) {
    ring.events.push_back(ev);
  } else {
    ring.events[ring.total % impl_->capacity] = ev;
  }
  ++ring.total;
}

const char* TraceSession::intern(std::string_view name) {
  std::lock_guard<std::mutex> lk(impl_->intern_mu);
  auto it = impl_->interned.find(name);
  if (it == impl_->interned.end()) {
    it = impl_->interned.emplace(name).first;
  }
  return it->c_str();  // set nodes are stable: pointer lives with the session
}

std::vector<TraceSession::Event> TraceSession::events() const {
  std::vector<Event> out;
  impl_->rings.for_each([&](Impl::Ring& ring) {
    if (ring.total <= ring.events.size()) {
      out.insert(out.end(), ring.events.begin(), ring.events.end());
    } else {
      // The ring wrapped: oldest surviving event sits at total % capacity.
      const std::size_t cap = ring.events.size();
      const std::size_t start = static_cast<std::size_t>(ring.total % cap);
      out.insert(out.end(), ring.events.begin() + static_cast<std::ptrdiff_t>(start),
                 ring.events.end());
      out.insert(out.end(), ring.events.begin(),
                 ring.events.begin() + static_cast<std::ptrdiff_t>(start));
    }
  });
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
    return a.tid < b.tid;
  });
  return out;
}

std::uint64_t TraceSession::dropped() const {
  std::uint64_t n = 0;
  impl_->rings.for_each([&](Impl::Ring& ring) {
    if (ring.total > ring.events.size()) n += ring.total - ring.events.size();
  });
  return n;
}

std::string TraceSession::chrome_json() const {
  const std::vector<Event> evs = events();
  // Rebase timestamps so the trace starts near t=0 (Perfetto handles raw
  // steady_clock offsets fine, but small numbers are kinder to readers).
  std::uint64_t t0 = evs.empty() ? 0 : evs.front().begin_ns;
  std::string out;
  out.reserve(evs.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Event& ev : evs) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += Json::escape(ev.name);
    out += "\",\"cat\":\"pdf\",\"ph\":\"X\",\"ts\":";
    // Microseconds with nanosecond precision kept in the fraction.
    const std::uint64_t rel = ev.begin_ns - t0;
    out += std::to_string(rel / 1000);
    out += '.';
    char frac[4];
    std::snprintf(frac, sizeof(frac), "%03u",
                  static_cast<unsigned>(rel % 1000));
    out += frac;
    out += ",\"dur\":";
    out += std::to_string(ev.dur_ns / 1000);
    out += '.';
    std::snprintf(frac, sizeof(frac), "%03u",
                  static_cast<unsigned>(ev.dur_ns % 1000));
    out += frac;
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool TraceSession::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << chrome_json();
  return static_cast<bool>(f);
}

TraceSession* active_session() {
  return g_session.load(std::memory_order_acquire);
}

void TraceSpan::finish() {
  TraceSession* s = g_session.load(std::memory_order_acquire);
  if (s != nullptr) s->record(name_, begin_ns_, trace_now_ns());
}

}  // namespace pdf::obs
