#include "gen/structured.hpp"

#include <deque>
#include <stdexcept>
#include <vector>

namespace pdf {
namespace {

// a XOR b out of AND/OR/NOT, returning the output node.
NodeId xor2(Netlist& nl, NodeId a, NodeId b, const std::string& prefix) {
  const NodeId na = nl.add_gate(prefix + "_na", GateType::Not, {a});
  const NodeId nb = nl.add_gate(prefix + "_nb", GateType::Not, {b});
  const NodeId t0 = nl.add_gate(prefix + "_t0", GateType::And, {a, nb});
  const NodeId t1 = nl.add_gate(prefix + "_t1", GateType::And, {na, b});
  return nl.add_gate(prefix + "_x", GateType::Or, {t0, t1});
}

// 2:1 mux: sel ? a : b.
NodeId mux2(Netlist& nl, NodeId sel, NodeId a, NodeId b, const std::string& prefix) {
  const NodeId ns = nl.add_gate(prefix + "_ns", GateType::Not, {sel});
  const NodeId ta = nl.add_gate(prefix + "_ta", GateType::And, {sel, a});
  const NodeId tb = nl.add_gate(prefix + "_tb", GateType::And, {ns, b});
  return nl.add_gate(prefix + "_m", GateType::Or, {ta, tb});
}

}  // namespace

Netlist ripple_carry_adder(std::size_t bits, const std::string& name) {
  if (bits == 0) throw std::invalid_argument("adder needs at least 1 bit");
  Netlist nl(name);
  std::vector<NodeId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  NodeId carry = nl.add_input("cin");

  for (std::size_t i = 0; i < bits; ++i) {
    const std::string p = "s" + std::to_string(i);
    const NodeId axb = xor2(nl, a[i], b[i], p + "_ab");
    const NodeId sum = xor2(nl, axb, carry, p + "_sc");
    const NodeId gen = nl.add_gate(p + "_g", GateType::And, {a[i], b[i]});
    const NodeId prop = nl.add_gate(p + "_p", GateType::And, {axb, carry});
    carry = nl.add_gate(p + "_c", GateType::Or, {gen, prop});
    nl.mark_output(sum);
  }
  nl.mark_output(carry);
  nl.finalize();
  return nl;
}

Netlist mux_barrel_shifter(std::size_t width, std::size_t stages,
                           const std::string& name) {
  if (width < 2 || stages == 0) {
    throw std::invalid_argument("barrel shifter needs width >= 2, stages >= 1");
  }
  Netlist nl(name);
  std::vector<NodeId> data(width);
  for (std::size_t i = 0; i < width; ++i) {
    data[i] = nl.add_input("d" + std::to_string(i));
  }
  std::vector<NodeId> sel(stages);
  for (std::size_t s = 0; s < stages; ++s) {
    sel[s] = nl.add_input("s" + std::to_string(s));
  }

  std::size_t shift = 1;
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<NodeId> next(width);
    for (std::size_t i = 0; i < width; ++i) {
      const std::string p = "m" + std::to_string(s) + "_" + std::to_string(i);
      next[i] = mux2(nl, sel[s], data[(i + shift) % width], data[i], p);
    }
    data = std::move(next);
    shift = (shift * 2) % width;
    if (shift == 0) shift = 1;
  }
  for (std::size_t i = 0; i < width; ++i) nl.mark_output(data[i]);
  nl.finalize();
  return nl;
}

Netlist array_multiplier(std::size_t bits, const std::string& name) {
  if (bits < 2) throw std::invalid_argument("multiplier needs at least 2 bits");
  Netlist nl(name);
  std::vector<NodeId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));

  // Column-compression array: column j collects the partial products
  // a_i AND b_{j-i}; full/half adders compress each column to one bit,
  // pushing carries into the next column.
  std::vector<std::deque<NodeId>> cols(2 * bits);
  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = 0; j < bits; ++j) {
      const std::string nm = "pp" + std::to_string(i) + "_" + std::to_string(j);
      cols[i + j].push_back(nl.add_gate(nm, GateType::And, {a[i], b[j]}));
    }
  }

  std::size_t cell = 0;
  for (std::size_t j = 0; j < cols.size(); ++j) {
    auto& col = cols[j];
    while (col.size() >= 3) {
      const NodeId x = col.front(); col.pop_front();
      const NodeId y = col.front(); col.pop_front();
      const NodeId z = col.front(); col.pop_front();
      const std::string p = "fa" + std::to_string(cell++);
      const NodeId xy = xor2(nl, x, y, p + "_x1");
      const NodeId sum = xor2(nl, xy, z, p + "_x2");
      const NodeId c1 = nl.add_gate(p + "_c1", GateType::And, {x, y});
      const NodeId c2 = nl.add_gate(p + "_c2", GateType::And, {xy, z});
      const NodeId carry = nl.add_gate(p + "_c", GateType::Or, {c1, c2});
      col.push_back(sum);
      cols[j + 1].push_back(carry);
    }
    if (col.size() == 2) {
      const NodeId x = col.front(); col.pop_front();
      const NodeId y = col.front(); col.pop_front();
      const std::string p = "ha" + std::to_string(cell++);
      const NodeId sum = xor2(nl, x, y, p + "_x");
      const NodeId carry = nl.add_gate(p + "_c", GateType::And, {x, y});
      col.push_back(sum);
      cols[j + 1].push_back(carry);
    }
    if (!col.empty()) nl.mark_output(col.front());
  }
  nl.finalize();
  return nl;
}

Netlist carry_skip_chain(std::size_t stages, const std::string& name) {
  if (stages == 0) throw std::invalid_argument("chain needs at least 1 stage");
  Netlist nl(name);
  NodeId chain = nl.add_input("c0");
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string p = "st" + std::to_string(i);
    const NodeId g = nl.add_input(p + "_g");
    const NodeId k = nl.add_input(p + "_k");
    // chain' = (chain AND g) OR k  — a domino that both propagates and can be
    // forced, with every stage output observed like a DFF tap.
    const NodeId andp = nl.add_gate(p + "_a", GateType::And, {chain, g});
    chain = nl.add_gate(p + "_o", GateType::Or, {andp, k});
    nl.mark_output(chain);
  }
  nl.finalize();
  return nl;
}

}  // namespace pdf
