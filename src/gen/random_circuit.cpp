#include "gen/random_circuit.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "base/rng.hpp"

namespace pdf {
namespace {

// The generator builds "braided columns": each column is a chain of gates
// (the delay spine), and every chain gate mixes in side inputs that are
// mostly primary inputs or nodes of *other* columns at lower levels. This
// mirrors datapath/controller structure — long sensitizable chains whose
// side inputs are largely independent — which is what makes the robust path
// delay faults of the ISCAS benchmarks testable.
//
// Two disciplines keep the *longest* paths robustly testable, as they are in
// the real benchmarks:
//   * polarity discipline — each column draws its chain gates from one
//     controlling-value family ({AND, NAND} or {OR, NOR}), so repeated side
//     signals along a path always receive compatible off-path constraints
//     (all "non-controlling 1" or all "non-controlling 0");
//   * fresh side inputs — each column walks its own shuffled permutation of
//     the primary inputs (excluding its seed PI), so a side PI does not
//     repeat along a chain until the pool is exhausted.
// Length spread comes from per-column depth jitter and random inverter
// sub-chains, giving a thin top band over a widening body — the regime of
// the paper's Table 2.
struct Builder {
  const RandomCircuitConfig& cfg;
  Rng rng;
  Netlist nl;
  std::vector<NodeId> pis;

  struct Column {
    std::vector<NodeId> chain;   // nodes in order (last = head)
    bool and_family = true;      // polarity discipline
    std::vector<NodeId> side_perm;
    std::size_t side_pos = 0;
    std::size_t depth = 0;
  };
  std::vector<Column> columns;
  std::size_t gate_counter = 0;

  explicit Builder(const RandomCircuitConfig& c)
      : cfg(c), rng(c.seed), nl(c.name) {}

  std::string fresh(const char* tag) {
    return std::string(tag) + std::to_string(gate_counter++);
  }

  NodeId random_pi() { return pis[rng.below(pis.size())]; }

  NodeId next_side_pi(Column& col) {
    if (col.side_perm.empty()) return random_pi();
    const NodeId id = col.side_perm[col.side_pos % col.side_perm.size()];
    ++col.side_pos;
    return id;
  }

  // A side input for a gate of column `c` at chain position `pos`: a fresh
  // PI most of the time, or a node from a different column at a strictly
  // lower position (feed-forward cross link).
  NodeId side_input(std::size_t c, std::size_t pos) {
    if (columns.size() > 1 && rng.uniform() < 1.0 - cfg.chain_bias) {
      for (int attempt = 0; attempt < 4; ++attempt) {
        const std::size_t other = rng.below(columns.size());
        if (other == c) continue;
        const auto& chain = columns[other].chain;
        const std::size_t limit = std::min(pos, chain.size());
        if (limit == 0) continue;
        const std::size_t lo = limit > 4 ? limit - 4 : 0;
        return chain[lo + rng.below(limit - lo)];
      }
    }
    return next_side_pi(columns[c]);
  }

  NodeId unary_chain(NodeId from, std::size_t len) {
    NodeId cur = from;
    for (std::size_t k = 0; k < len; ++k) {
      const GateType t = rng.uniform() < 0.7 ? GateType::Not : GateType::Buf;
      cur = nl.add_gate(fresh("u"), t, {cur});
    }
    return cur;
  }

  Netlist build() {
    for (std::size_t i = 0; i < cfg.n_inputs; ++i) {
      pis.push_back(nl.add_input("I" + std::to_string(i)));
    }

    // Column count sized so the chains consume ~cfg.n_gates total gates.
    const std::size_t levels = static_cast<std::size_t>(cfg.levels);
    const double step_cost = 1.0 + cfg.unary_fraction * 1.5;
    const std::size_t n_cols = std::max<std::size_t>(
        2, static_cast<std::size_t>(static_cast<double>(cfg.n_gates) /
                                    (0.75 * static_cast<double>(levels) *
                                     step_cost)));
    columns.assign(n_cols, {});

    // Seeds are dedicated "data" inputs (one per column, reused round-robin
    // when columns outnumber PIs); the remaining "control" PIs are dealt into
    // disjoint per-column side pools. Disjointness means a side PI never
    // receives constraints from two different polarity families along any
    // path, and excluding the seeds keeps launch transitions unconstrained.
    std::vector<NodeId> shuffled = pis;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    }
    const std::size_t n_seeds = std::min(shuffled.size() / 3 + 1,
                                         std::min(n_cols, shuffled.size() - 1));
    for (std::size_t c = 0; c < n_cols; ++c) {
      Column& col = columns[c];
      const std::size_t jitter = rng.below(std::max<std::size_t>(1, levels / 2));
      col.depth = std::max<std::size_t>(2, levels - jitter);
      col.and_family = rng.coin();
      col.chain.push_back(shuffled[c % n_seeds]);
    }
    for (std::size_t i = n_seeds; i < shuffled.size(); ++i) {
      columns[(i - n_seeds) % n_cols].side_perm.push_back(shuffled[i]);
    }
    columns[0].depth = levels;

    // Grow the chains level-synchronously so cross links can reference other
    // columns' earlier nodes.
    for (std::size_t pos = 0; pos < levels; ++pos) {
      for (std::size_t c = 0; c < n_cols; ++c) {
        Column& col = columns[c];
        if (pos >= col.depth) continue;
        NodeId prev = col.chain.back();
        if (rng.uniform() < cfg.unary_fraction) {
          prev = unary_chain(prev, 1 + rng.below(2));
        }
        const GateType t =
            col.and_family
                ? (rng.coin() ? GateType::And : GateType::Nand)
                : (rng.coin() ? GateType::Or : GateType::Nor);
        std::vector<NodeId> fanin{prev};
        const std::size_t extra =
            1 + (cfg.max_fanin > 2 && rng.uniform() < 0.3 ? 1 : 0);
        for (std::size_t e = 0; e < extra; ++e) {
          const NodeId s = side_input(c, pos);
          if (std::find(fanin.begin(), fanin.end(), s) == fanin.end()) {
            fanin.push_back(s);
          }
        }
        if (fanin.size() < 2) fanin.push_back(next_side_pi(col));
        if (fanin.size() < 2 || fanin[0] == fanin[1]) {
          // Extremely unlikely (single-PI configs); keep the chain moving.
          col.chain.push_back(nl.add_gate(fresh("n"), GateType::Not, {prev}));
          continue;
        }
        col.chain.push_back(nl.add_gate(fresh("n"), t, std::move(fanin)));
      }
    }

    nl.finalize();

    // Wire unused PIs into the shallowest chain gates so every input starts
    // a path.
    for (NodeId pi : nl.inputs()) {
      if (!nl.node(pi).fanout.empty()) continue;
      bool attached = false;
      for (std::size_t c = 0; c < n_cols && !attached; ++c) {
        for (NodeId g : columns[c].chain) {
          const Node& n = nl.node(g);
          if (n.type == GateType::Input || n.fanin.size() < 2) continue;
          if (static_cast<int>(n.fanin.size()) >= std::max(2, cfg.max_fanin)) {
            continue;
          }
          std::vector<NodeId> fanin = n.fanin;
          fanin.push_back(pi);
          nl.redefine_gate(g, n.type, std::move(fanin));
          attached = true;
          break;
        }
      }
      nl.finalize();
    }

    // Outputs: requested count from the column heads (deepest first), then
    // every dangling gate (the DFF-tap analogue).
    std::vector<NodeId> heads;
    for (const auto& col : columns) heads.push_back(col.chain.back());
    std::stable_sort(heads.begin(), heads.end(), [&](NodeId x, NodeId y) {
      return nl.node(x).level > nl.node(y).level;
    });
    std::size_t marked = 0;
    for (NodeId h : heads) {
      if (marked >= cfg.n_outputs) break;
      if (nl.node(h).type == GateType::Input) continue;
      nl.mark_output(h);
      ++marked;
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      const Node& n = nl.node(id);
      if (n.type != GateType::Input && n.fanout.empty() && !n.is_output) {
        nl.mark_output(id);
      }
    }
    nl.finalize();
    return std::move(nl);
  }
};

}  // namespace

Netlist generate_random_circuit(const RandomCircuitConfig& cfg) {
  if (cfg.n_inputs < 2 || cfg.n_gates < 4 || cfg.levels < 2) {
    throw std::invalid_argument("random circuit config too small");
  }
  Builder b(cfg);
  return b.build();
}

}  // namespace pdf
