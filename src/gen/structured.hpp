// Structured circuit generators.
//
// Arithmetic-flavoured netlists whose path-length profiles resemble the
// datapath benchmarks (a dominant carry/select chain with dense bands of
// near-longest paths — exactly the regime where the paper's P0/P1 split
// matters). XOR is built from AND/OR/NOT directly so the results are
// ATPG-ready without a decomposition pass.
#pragma once

#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"

namespace pdf {

/// n-bit ripple-carry adder (2n+1 inputs: a[i], b[i], cin; n+1 outputs).
Netlist ripple_carry_adder(std::size_t bits, const std::string& name = "rca");

/// Barrel shifter built from 2:1 mux stages: `width` data inputs, log-ish
/// `stages` select inputs, `width` outputs. Dense, uniform path profile.
Netlist mux_barrel_shifter(std::size_t width, std::size_t stages,
                           const std::string& name = "barrel");

/// Priority/carry-skip style chain: alternating AND/OR dominoes with side
/// literals; the longest paths run the whole chain and each tap is observed.
Netlist carry_skip_chain(std::size_t stages, const std::string& name = "skipchain");

/// bits x bits array multiplier (carry-save partial-product rows folded by
/// ripple adders; XOR built from AND/OR/NOT). The classic dense near-critical
/// band: thousands of paths within a few lines of the critical one.
Netlist array_multiplier(std::size_t bits, const std::string& name = "mult");

}  // namespace pdf
