// Deterministic random-logic generator.
//
// Produces layered combinational netlists that structurally resemble the
// combinational cores of the ISCAS-89 / ITC-99 benchmarks: a controlled gate
// count and depth, mixed AND/OR/NAND/NOR/NOT logic, local reconvergent
// fanout, a spread of path lengths with many near-longest paths, and
// "pseudo-output"-like taps (every otherwise-unused gate output is observed,
// the way extracted DFF data inputs are). Fully deterministic from the seed.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace pdf {

struct RandomCircuitConfig {
  std::string name = "random";
  std::uint64_t seed = 1;

  std::size_t n_inputs = 24;
  std::size_t n_gates = 300;
  /// Number of logic levels to spread the gates over (approximate final
  /// depth; the actual depth can be slightly smaller for tiny configs).
  int levels = 18;
  int max_fanin = 3;

  /// Independence of the chain columns: side inputs are primary inputs with
  /// probability chain_bias and cross-column links otherwise. Higher values
  /// yield more robustly testable paths; lower values more reconvergence.
  double chain_bias = 0.75;
  /// Fraction of unary gates (NOT; a small share of BUF).
  double unary_fraction = 0.12;
  /// Number of explicitly chosen primary outputs among the deepest gates
  /// (all dangling gates additionally become outputs, like DFF taps).
  std::size_t n_outputs = 8;
};

Netlist generate_random_circuit(const RandomCircuitConfig& cfg);

}  // namespace pdf
