#include "gen/registry.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "gen/random_circuit.hpp"
#include "gen/structured.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/combinational.hpp"

namespace pdf {
namespace {

const char kC17Bench[] = R"(# c17 (ISCAS-85), the canonical five-input NAND example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

const char kS27Bench[] = R"(# s27 (ISCAS-89) — the circuit of the paper's Figure 1
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

struct RegistryEntry {
  BenchmarkInfo info;
  std::function<Netlist()> make;
};

Netlist make_s27() {
  const Netlist seq = parse_bench_string(kS27Bench, "s27");
  return extract_combinational(seq).netlist;
}

std::function<Netlist()> random_maker(RandomCircuitConfig cfg) {
  return [cfg]() { return generate_random_circuit(cfg); };
}

const std::vector<RegistryEntry>& registry() {
  static const std::vector<RegistryEntry> entries = [] {
    std::vector<RegistryEntry> r;
    r.push_back({{"s27", "s27", "exact ISCAS-89 s27 combinational core"},
                 make_s27});

    auto add_like = [&r](const std::string& name, const std::string& paper,
                         RandomCircuitConfig cfg, const std::string& desc) {
      cfg.name = name;
      r.push_back({{name, paper, desc}, random_maker(cfg)});
    };

    // Stand-ins for the paper's Tables 3-7 circuits; parameters approximate
    // the counterpart's combinational-input count, gate count and depth.
    add_like("s641_like", "s641",
             {.seed = 641, .n_inputs = 54, .n_gates = 380, .levels = 28,
              .max_fanin = 3, .chain_bias = 0.8, .unary_fraction = 0.18,
              .n_outputs = 24},
             "deep, skinny control/datapath mix");
    add_like("s953_like", "s953",
             {.seed = 953, .n_inputs = 45, .n_gates = 400, .levels = 16,
              .max_fanin = 3, .chain_bias = 0.72, .unary_fraction = 0.12,
              .n_outputs = 23},
             "mid-depth controller");
    add_like("s1196_like", "s1196",
             {.seed = 1196, .n_inputs = 32, .n_gates = 520, .levels = 20,
              .max_fanin = 4, .chain_bias = 0.7, .unary_fraction = 0.12,
              .n_outputs = 14},
             "wide cone logic, many reconvergences");
    add_like("s1423_like", "s1423",
             {.seed = 1423, .n_inputs = 60, .n_gates = 500, .levels = 32,
              .max_fanin = 3, .chain_bias = 0.82, .unary_fraction = 0.15,
              .n_outputs = 5},
             "deepest ISCAS-89 profile (Table 2 circuit)");
    add_like("s1488_like", "s1488",
             {.seed = 1488, .n_inputs = 14, .n_gates = 550, .levels = 14,
              .max_fanin = 4, .chain_bias = 0.65, .unary_fraction = 0.1,
              .n_outputs = 19},
             "shallow, dense FSM logic");
    add_like("b03_like", "b03",
             {.seed = 303, .n_inputs = 34, .n_gates = 200, .levels = 16,
              .max_fanin = 3, .chain_bias = 0.6, .unary_fraction = 0.12,
              .n_outputs = 30},
             "small ITC-99 controller");
    add_like("b04_like", "b04",
             {.seed = 304, .n_inputs = 70, .n_gates = 480, .levels = 16,
              .max_fanin = 3, .chain_bias = 0.7, .unary_fraction = 0.12,
              .n_outputs = 66},
             "ITC-99 datapath block");
    add_like("b09_like", "b09",
             {.seed = 309, .n_inputs = 29, .n_gates = 170, .levels = 18,
              .max_fanin = 3, .chain_bias = 0.65, .unary_fraction = 0.12,
              .n_outputs = 28},
             "small serial converter");
    // Wider ISCAS-89 family coverage (not used by the paper's tables, but
    // handy for sweeps and user experiments).
    add_like("s298_like", "s298",
             {.seed = 298, .n_inputs = 17, .n_gates = 120, .levels = 9,
              .max_fanin = 3, .chain_bias = 0.7, .unary_fraction = 0.12,
              .n_outputs = 20},
             "small FSM");
    add_like("s344_like", "s344",
             {.seed = 344, .n_inputs = 24, .n_gates = 160, .levels = 20,
              .max_fanin = 3, .chain_bias = 0.75, .unary_fraction = 0.14,
              .n_outputs = 26},
             "multiplier control");
    add_like("s386_like", "s386",
             {.seed = 386, .n_inputs = 13, .n_gates = 160, .levels = 11,
              .max_fanin = 4, .chain_bias = 0.68, .unary_fraction = 0.1,
              .n_outputs = 13},
             "dense FSM");
    add_like("s510_like", "s510",
             {.seed = 510, .n_inputs = 25, .n_gates = 210, .levels = 12,
              .max_fanin = 3, .chain_bias = 0.7, .unary_fraction = 0.12,
              .n_outputs = 13},
             "controller");
    add_like("s820_like", "s820",
             {.seed = 820, .n_inputs = 23, .n_gates = 290, .levels = 10,
              .max_fanin = 4, .chain_bias = 0.68, .unary_fraction = 0.1,
              .n_outputs = 24},
             "wide PLA-ish FSM");
    add_like("s1238_like", "s1238",
             {.seed = 1238, .n_inputs = 32, .n_gates = 500, .levels = 22,
              .max_fanin = 4, .chain_bias = 0.7, .unary_fraction = 0.12,
              .n_outputs = 14},
             "s1196 with inverted logic");
    add_like("s5378_like", "s5378",
             {.seed = 53780, .n_inputs = 120, .n_gates = 900, .levels = 24,
              .max_fanin = 3, .chain_bias = 0.72, .unary_fraction = 0.14,
              .n_outputs = 49},
             "large controller (scaled)");
    add_like("s13207_like", "s13207",
             {.seed = 13207, .n_inputs = 150, .n_gates = 1100, .levels = 26,
              .max_fanin = 3, .chain_bias = 0.74, .unary_fraction = 0.14,
              .n_outputs = 121},
             "very large design (scaled)");

    add_like("s1423r_like", "s1423*",
             {.seed = 11423, .n_inputs = 60, .n_gates = 460, .levels = 26,
              .max_fanin = 3, .chain_bias = 0.78, .unary_fraction = 0.14,
              .n_outputs = 5},
             "resynthesized-for-testability s1423 analogue");
    add_like("s5378r_like", "s5378*",
             {.seed = 5378, .n_inputs = 90, .n_gates = 700, .levels = 22,
              .max_fanin = 3, .chain_bias = 0.72, .unary_fraction = 0.15,
              .n_outputs = 49},
             "resynthesized s5378 analogue (scaled)");
    add_like("s9234r_like", "s9234*",
             {.seed = 9234, .n_inputs = 100, .n_gates = 800, .levels = 24,
              .max_fanin = 3, .chain_bias = 0.72, .unary_fraction = 0.15,
              .n_outputs = 39},
             "resynthesized s9234 analogue (scaled)");

    r.push_back({{"c17", "c17", "exact ISCAS-85 c17"}, [] {
                   return extract_combinational(
                              parse_bench_string(kC17Bench, "c17"))
                       .netlist;
                 }});
    r.push_back({{"rca16", "", "16-bit ripple-carry adder"},
                 [] { return ripple_carry_adder(16, "rca16"); }});
    r.push_back({{"mult8", "", "8x8 array multiplier"},
                 [] { return array_multiplier(8, "mult8"); }});
    r.push_back({{"barrel16x4", "", "16-wide 4-stage mux barrel shifter"},
                 [] { return mux_barrel_shifter(16, 4, "barrel16x4"); }});
    r.push_back({{"skipchain48", "", "48-stage carry-skip style chain"},
                 [] { return carry_skip_chain(48, "skipchain48"); }});
    return r;
  }();
  return entries;
}

}  // namespace

std::vector<BenchmarkInfo> benchmark_catalog() {
  std::vector<BenchmarkInfo> out;
  for (const auto& e : registry()) out.push_back(e.info);
  return out;
}

bool has_benchmark(const std::string& name) {
  for (const auto& e : registry()) {
    if (e.info.name == name) return true;
  }
  return false;
}

Netlist benchmark_circuit(const std::string& name) {
  for (const auto& e : registry()) {
    if (e.info.name == name) return e.make();
  }
  throw std::invalid_argument("unknown benchmark: " + name);
}

const std::string& s27_bench_text() {
  static const std::string text = kS27Bench;
  return text;
}

std::vector<std::string> table_circuits() {
  return {"s641_like", "s953_like", "s1196_like", "s1423_like",
          "s1488_like", "b03_like",  "b04_like",   "b09_like"};
}

std::vector<std::string> table6_extra_circuits() {
  return {"s1423r_like", "s5378r_like", "s9234r_like"};
}

}  // namespace pdf
