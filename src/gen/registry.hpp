// Named benchmark registry.
//
// "s27" is the exact ISCAS-89 netlist (the paper's Figure 1 circuit),
// embedded as .bench text and reduced to its combinational core. The
// "<name>_like" entries are deterministic synthetic stand-ins for the
// ISCAS-89 / ITC-99 circuits of the paper's evaluation (those netlists are
// not redistributable here); each stand-in approximates its counterpart's
// input count, gate count and depth, and has well over 1000 paths. The
// structured entries (rca16, barrel16x4, skipchain48) exercise
// datapath-shaped profiles. Every returned netlist is finalized,
// combinational and primitive-only (ATPG-ready).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace pdf {

struct BenchmarkInfo {
  std::string name;
  std::string paper_counterpart;  // empty when not a stand-in
  std::string description;
};

/// All registered names, in registry order.
std::vector<BenchmarkInfo> benchmark_catalog();

/// True when `name` is registered.
bool has_benchmark(const std::string& name);

/// Materializes a benchmark circuit. Throws std::invalid_argument for
/// unknown names.
Netlist benchmark_circuit(const std::string& name);

/// The embedded s27 .bench source (sequential, as published).
const std::string& s27_bench_text();

/// The eight circuits of the paper's Tables 3-5 comparison, in table order
/// (stand-in names).
std::vector<std::string> table_circuits();

/// The three additional resynthesized circuits of Table 6 (stand-in names).
std::vector<std::string> table6_extra_circuits();

}  // namespace pdf
