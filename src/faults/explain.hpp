// Untestability explanation.
//
// When a path delay fault is screened out (or a justification proves it
// unsatisfiable), test engineers want to know *why* — which side input of
// which gate kills the path. This module reruns the screens with
// diagnostics and reports the category plus a human-readable witness.
#pragma once

#include <string>

#include "faults/fault.hpp"
#include "faults/requirements.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

enum class UntestabilityKind {
  Testable,            // no problem found by the static screens
  LocalConflict,       // A(p) demands two different values on one line
  ImplicationConflict, // implying A(p) reaches a contradiction
};

struct UntestabilityReport {
  UntestabilityKind kind = UntestabilityKind::Testable;
  /// For LocalConflict: the line carrying contradictory requirements and the
  /// two triples that clash.
  NodeId line = kNoNode;
  Triple first;
  Triple second;
  /// Human-readable rendering of the finding.
  std::string message;
};

/// Analyzes a fault with the same screens used by screen_faults, but keeps
/// the evidence. Sensitization matches the screening configuration.
UntestabilityReport explain_untestability(
    const Netlist& nl, const PathDelayFault& fault,
    Sensitization sens = Sensitization::Robust);

}  // namespace pdf
