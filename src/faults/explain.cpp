#include "faults/explain.hpp"

#include <sstream>

#include "implication/implication.hpp"

namespace pdf {
namespace {

// Rebuilds A(p) requirement by requirement, watching for the first merge
// conflict (build_requirements only reports *that* one happened).
struct ConflictProbe {
  RequirementSet set;
  bool conflicting = false;
  NodeId line = kNoNode;
  Triple existing, incoming;

  void require(NodeId l, const Triple& v) {
    if (conflicting) return;
    if (const auto cur = set.at(l); cur && cur->conflicts_with(v)) {
      conflicting = true;
      line = l;
      existing = *cur;
      incoming = v;
      return;
    }
    set.add(l, v);
  }
};

}  // namespace

UntestabilityReport explain_untestability(const Netlist& nl,
                                          const PathDelayFault& fault,
                                          Sensitization sens) {
  UntestabilityReport report;

  // Walk the path like build_requirements, but through the probe.
  ConflictProbe probe;
  bool rising = fault.rising_source;
  const auto& nodes = fault.path.nodes;
  probe.require(nodes.front(), transition(rising));
  for (std::size_t i = 0; i + 1 < nodes.size() && !probe.conflicting; ++i) {
    const NodeId on_path = nodes[i];
    const NodeId gate = nodes[i + 1];
    const Node& g = nl.node(gate);
    const auto c = controlling_value(g.type);
    if (c.has_value()) {
      const V3 nc = not3(*c);
      const V3 final_on_path = rising ? V3::One : V3::Zero;
      const Triple off_req =
          (sens == Sensitization::Robust && final_on_path == *c)
              ? steady(nc)
              : final_only(nc);
      for (NodeId side : g.fanin) {
        if (side == on_path) continue;
        probe.require(side, off_req);
      }
    }
    rising = rising != is_inverting(g.type);
    probe.require(gate, sens == Sensitization::Robust
                            ? transition(rising)
                            : final_only(rising ? V3::One : V3::Zero));
  }

  if (probe.conflicting) {
    report.kind = UntestabilityKind::LocalConflict;
    report.line = probe.line;
    report.first = probe.existing;
    report.second = probe.incoming;
    std::ostringstream os;
    os << "line " << nl.node(probe.line).name << " must be "
       << probe.existing.str() << " and " << probe.incoming.str()
       << " at the same time (reconvergent side input of the path)";
    report.message = os.str();
    return report;
  }

  const auto items = probe.set.items();
  ImplicationEngine engine(nl);
  if (engine.contradicts(items)) {
    report.kind = UntestabilityKind::ImplicationConflict;
    report.message =
        "the implications of A(p) are contradictory: no input assignment can "
        "produce all required side-input values";
    return report;
  }

  report.kind = UntestabilityKind::Testable;
  report.message = "no static conflict; the fault passed both screens";
  return report;
}

}  // namespace pdf
