#include "faults/requirements.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pdf {

std::vector<ValueRequirement>::iterator RequirementSet::lower_bound(NodeId line) {
  return std::lower_bound(
      items_.begin(), items_.end(), line,
      [](const ValueRequirement& r, NodeId l) { return r.line < l; });
}

std::vector<ValueRequirement>::const_iterator RequirementSet::lower_bound(
    NodeId line) const {
  return std::lower_bound(
      items_.begin(), items_.end(), line,
      [](const ValueRequirement& r, NodeId l) { return r.line < l; });
}

bool RequirementSet::add(NodeId line, const Triple& value) {
  auto it = lower_bound(line);
  if (it != items_.end() && it->line == line) {
    if (it->value.conflicts_with(value)) return false;
    it->value = merge(it->value, value);
    return true;
  }
  items_.insert(it, ValueRequirement{line, value});
  return true;
}

bool RequirementSet::add_all(std::span<const ValueRequirement> reqs) {
  // Check first so a failed add leaves the set unchanged.
  if (would_conflict(reqs)) return false;
  for (const auto& r : reqs) {
    const bool ok = add(r.line, r.value);
    (void)ok;
  }
  return true;
}

bool RequirementSet::would_conflict(NodeId line, const Triple& value) const {
  auto it = lower_bound(line);
  return it != items_.end() && it->line == line && it->value.conflicts_with(value);
}

bool RequirementSet::would_conflict(std::span<const ValueRequirement> reqs) const {
  for (const auto& r : reqs) {
    if (would_conflict(r.line, r.value)) return true;
  }
  return false;
}

std::size_t RequirementSet::delta_count(
    std::span<const ValueRequirement> reqs) const {
  std::size_t n = 0;
  for (const auto& r : reqs) {
    auto it = lower_bound(r.line);
    if (it == items_.end() || it->line != r.line || !it->value.covers(r.value)) {
      ++n;
    }
  }
  return n;
}

std::optional<Triple> RequirementSet::at(NodeId line) const {
  auto it = lower_bound(line);
  if (it == items_.end() || it->line != line) return std::nullopt;
  return it->value;
}

void RequirementSet::clear() { items_.clear(); }

FaultRequirements build_requirements(const Netlist& nl, const PathDelayFault& f,
                                     Sensitization sens) {
  if (f.path.empty()) throw std::invalid_argument("build_requirements: empty path");

  RequirementSet set;
  bool conflicting = false;
  auto require = [&](NodeId line, const Triple& v) {
    if (!set.add(line, v)) conflicting = true;
  };

  // Launch transition at the source and implied transitions along the path.
  bool rising = f.rising_source;
  const auto& nodes = f.path.nodes;
  if (nl.node(nodes.front()).type != GateType::Input) {
    throw std::invalid_argument("path must start at a primary input");
  }
  require(nodes.front(), transition(rising));

  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const NodeId on_path = nodes[i];
    const NodeId gate = nodes[i + 1];
    const Node& g = nl.node(gate);
    if (!is_primitive_logic(g.type)) {
      throw std::invalid_argument("path crosses non-primitive gate " + g.name +
                                  " (run decompose_xor first)");
    }
    // Validate connectivity (throws when on_path is not a fanin of gate).
    (void)nl.fanin_index(gate, on_path);

    const auto c = controlling_value(g.type);
    if (c.has_value()) {
      const V3 nc = not3(*c);
      const V3 final_on_path = rising ? V3::One : V3::Zero;
#ifdef PATHDELAY_MUTATION_WRONG_SIDE_INPUT
      // Seeded bug (mutation testing only): the robust steady-vs-final-only
      // decision is inverted, relaxing exactly the constraints that make a
      // transition-to-controlling detection robust.
      const Triple off_req =
          (sens == Sensitization::Robust && final_on_path != *c)
              ? steady(nc)
              : final_only(nc);
#else
      const Triple off_req =
          (sens == Sensitization::Robust && final_on_path == *c)
              ? steady(nc)
              : final_only(nc);
#endif
      for (NodeId side : g.fanin) {
        if (side == on_path) continue;
        require(side, off_req);
      }
    }
    rising = rising != is_inverting(g.type);  // flip through inverting gates
    // Non-robust sensitization constrains on-path lines in the final pattern
    // only (their initial values may glitch without invalidating the test).
    require(gate, sens == Sensitization::Robust
                      ? transition(rising)
                      : final_only(rising ? V3::One : V3::Zero));
  }

  if (!nl.node(nodes.back()).is_output) {
    throw std::invalid_argument("path must end at a (pseudo) primary output");
  }

  FaultRequirements out;
  out.conflicting = conflicting;
  const auto items = set.items();
  out.values.assign(items.begin(), items.end());
  return out;
}

std::string requirements_to_string(const Netlist& nl,
                                   std::span<const ValueRequirement> reqs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (i) os << " ";
    os << nl.node(reqs[i].line).name << "=" << reqs[i].value;
  }
  return os.str();
}

}  // namespace pdf
