// Undetectable-fault screening (paper Section 3.1).
//
// Two screens, applied after enumeration and before target-set selection:
//  (1) A(p) itself contains conflicting values on some line (reconvergent
//      off-path constraints, or an off-path constraint on an on-path line);
//  (2) the implications of A(p) assign conflicting values to some line.
// Faults passing both screens may still be undetectable (the screens are
// necessary-condition checks, not a complete proof), matching the paper: its
// detected-fault counts stay below the target totals for the same reason.
#pragma once

#include <vector>

#include "faults/fault.hpp"
#include "faults/requirements.hpp"
#include "implication/implication.hpp"

namespace pdf {

/// A fault with its precomputed requirement list, the unit the generators
/// operate on.
struct TargetFault {
  PathDelayFault fault;
  std::vector<ValueRequirement> requirements;
};

struct ScreenStats {
  std::size_t input_faults = 0;
  std::size_t conflict_dropped = 0;     // screen (1)
  std::size_t implication_dropped = 0;  // screen (2)
  std::size_t kept = 0;
};

/// Builds requirements for every fault and drops the provably undetectable
/// ones. Order of survivors matches the input order.
std::vector<TargetFault> screen_faults(const Netlist& nl,
                                       std::vector<PathDelayFault> faults,
                                       ScreenStats* stats = nullptr,
                                       Sensitization sens = Sensitization::Robust);

}  // namespace pdf
