#include "faults/transition.hpp"

#include <map>
#include <stdexcept>

namespace pdf {

TransitionTargets build_transition_targets(const Netlist& nl,
                                           const LineDelayModel& dm) {
  const auto cover = select_line_cover_paths(dm);

  TransitionTargets out;
  // Map (path nodes, launch direction) -> fault index, deduplicated.
  std::map<std::pair<std::vector<NodeId>, bool>, std::size_t> fault_index;

  for (const auto& cp : cover) {
    // For each line on the path and each direction at the line, the launch
    // direction is direction-at-line XOR (inversions along the prefix).
    bool parity = false;  // inversion parity from source up to current node
    for (std::size_t k = 0; k < cp.path.nodes.size(); ++k) {
      const NodeId line = cp.path.nodes[k];
      if (k > 0) parity = parity != is_inverting(nl.node(line).type);
      for (bool rising_at_line : {true, false}) {
        const bool launch_rising = parity ? !rising_at_line : rising_at_line;
        const auto key = std::make_pair(cp.path.nodes, launch_rising);
        auto it = fault_index.find(key);
        if (it == fault_index.end()) {
          // Screen this fault once; skip all its lines when untestable.
          PathDelayFault f{cp.path, launch_rising, cp.length};
          FaultRequirements reqs = build_requirements(nl, f);
          if (reqs.conflicting) {
            it = fault_index.emplace(key, static_cast<std::size_t>(-1)).first;
          } else {
            out.faults.push_back({std::move(f), std::move(reqs.values)});
            it = fault_index.emplace(key, out.faults.size() - 1).first;
          }
        }
        if (it->second == static_cast<std::size_t>(-1)) {
          ++out.untestable;
          continue;
        }
        out.targets.push_back({line, rising_at_line, it->second});
      }
    }
  }
  return out;
}

std::size_t covered_transitions(const TransitionTargets& t,
                                const std::vector<bool>& detected) {
  if (detected.size() != t.faults.size()) {
    throw std::invalid_argument("covered_transitions: flag count mismatch");
  }
  std::size_t covered = 0;
  for (const auto& target : t.targets) {
    if (detected[target.fault_index]) ++covered;
  }
  return covered;
}

}  // namespace pdf
