#include "faults/collapse.hpp"

#include <map>
#include <stdexcept>

namespace pdf {

CollapseResult collapse_faults(std::span<const TargetFault> faults) {
  CollapseResult out;
  out.class_of.resize(faults.size());
  // Requirement lists are kept sorted by line, so the vector itself is a
  // canonical signature.
  std::map<std::vector<ValueRequirement>, std::size_t,
           decltype([](const std::vector<ValueRequirement>& a,
                       const std::vector<ValueRequirement>& b) {
             if (a.size() != b.size()) return a.size() < b.size();
             for (std::size_t i = 0; i < a.size(); ++i) {
               if (a[i].line != b[i].line) return a[i].line < b[i].line;
               const auto ka = a[i].value.str(), kb = b[i].value.str();
               if (ka != kb) return ka < kb;
             }
             return false;
           })>
      classes;

  for (std::size_t i = 0; i < faults.size(); ++i) {
    auto [it, inserted] =
        classes.try_emplace(faults[i].requirements, out.representatives.size());
    if (inserted) out.representatives.push_back(i);
    out.class_of[i] = it->second;
  }
  return out;
}

std::vector<bool> expand_detection(const CollapseResult& collapse,
                                   std::span<const bool> representative_flags) {
  if (representative_flags.size() != collapse.representatives.size()) {
    throw std::invalid_argument("expand_detection: flag count mismatch");
  }
  std::vector<bool> out(collapse.class_of.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = representative_flags[collapse.class_of[i]];
  }
  return out;
}

}  // namespace pdf
