// Transition-fault targeting via path selection.
//
// A transition fault (gate delay fault) is a lumped slow-to-rise /
// slow-to-fall defect at a single line. Detecting it robustly *through the
// longest path* that crosses the line gives the strongest guarantee: the
// least timing slack masks the smallest defect size. This module derives a
// transition-fault target list by pairing every line with the longest
// structural path through it (the line-cover machinery) and reuses the whole
// path-delay ATPG stack for generation and simulation.
//
// Coverage is accounted per line: a line's transition fault counts as
// covered when the path-delay fault of its covering path (matching
// direction at the line) is detected.
#pragma once

#include <span>
#include <vector>

#include "faults/screen.hpp"
#include "netlist/netlist.hpp"
#include "paths/line_cover.hpp"

namespace pdf {

struct TransitionTarget {
  NodeId line = kNoNode;
  bool rising_at_line = true;  // slow-to-rise at the line itself
  /// Index of the representative path-delay fault in the target list (one
  /// TargetFault may represent many lines of the same path).
  std::size_t fault_index = 0;
};

struct TransitionTargets {
  /// De-duplicated path-delay faults to hand to the generator.
  std::vector<TargetFault> faults;
  /// One entry per (line, direction) whose covering fault survived
  /// screening.
  std::vector<TransitionTarget> targets;
  /// (line, direction) pairs whose covering path fault is provably
  /// untestable robustly.
  std::size_t untestable = 0;
};

/// Builds the transition-fault target list for every line lying on a
/// complete path. Direction bookkeeping: the transition at the line is the
/// launch direction propagated through the path prefix's inversions.
TransitionTargets build_transition_targets(const Netlist& nl,
                                           const LineDelayModel& dm);

/// Per-(line,direction) coverage from detection flags over `faults`.
std::size_t covered_transitions(const TransitionTargets& t,
                                const std::vector<bool>& detected);

}  // namespace pdf
