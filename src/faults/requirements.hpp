// Robust detection requirements A(p) and requirement-set algebra.
//
// To robustly detect a path delay fault p, a two-pattern test must assign
// (paper Section 2.1, validated against its s27 example):
//   * the launch transition 0x1 / 1x0 at the path source,
//   * at every on-path gate input whose transition ends at the gate's
//     controlling value c: steady non-controlling (c̄ c̄ c̄) on every off-path
//     input (any off-path activity could move the output before the on-path
//     transition arrives),
//   * at every on-path gate input whose transition ends at the
//     non-controlling value: final-pattern non-controlling (x x c̄) on every
//     off-path input (the initial controlling on-path value pins the output,
//     so only the final value matters),
//   * the implied transition triple on every on-path line (redundant in the
//     real circuit but included so that intra-set conflicts — e.g. an
//     off-path constraint falling on an on-path line of the same fault — are
//     detected immediately).
//
// A test t detects {p1..pm} robustly iff it satisfies the union of the A(pi);
// RequirementSet implements that union with conflict detection plus the
// Δ-count used by the value-based compaction heuristic.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/triple.hpp"
#include "faults/fault.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

struct ValueRequirement {
  NodeId line = kNoNode;
  Triple value;

  friend bool operator==(const ValueRequirement&, const ValueRequirement&) = default;
};

/// A set of line-value requirements with merge-on-add semantics.
class RequirementSet {
 public:
  /// Adds/merges a requirement. Returns false (and leaves the set unchanged)
  /// if the new value conflicts with the existing requirement on that line.
  bool add(NodeId line, const Triple& value);
  bool add_all(std::span<const ValueRequirement> reqs);

  /// True when `value` on `line` would conflict with this set.
  bool would_conflict(NodeId line, const Triple& value) const;
  bool would_conflict(std::span<const ValueRequirement> reqs) const;

  /// n_Δ of the value-based heuristic: the number of requirements in `reqs`
  /// not already guaranteed by this set (a requirement is guaranteed when the
  /// set's triple on that line covers it).
  std::size_t delta_count(std::span<const ValueRequirement> reqs) const;

  std::optional<Triple> at(NodeId line) const;
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear();

  /// Requirements in ascending line order.
  std::span<const ValueRequirement> items() const { return items_; }

 private:
  // Sorted by line id; small sets, so binary search + insert is ideal.
  std::vector<ValueRequirement> items_;
  std::vector<ValueRequirement>::iterator lower_bound(NodeId line);
  std::vector<ValueRequirement>::const_iterator lower_bound(NodeId line) const;
};

/// Sensitization criterion for A(p).
///
/// Robust is the paper's setting. NonRobust relaxes every off-path
/// constraint to final-pattern non-controlling (xx c̄) and constrains on-path
/// lines in the final pattern only — the classical non-robust two-pattern
/// condition: detection is guaranteed only when no other delay fault is
/// present. Every robust test for p also satisfies the non-robust A(p).
enum class Sensitization {
  Robust,
  NonRobust,
};

/// Result of building A(p).
struct FaultRequirements {
  std::vector<ValueRequirement> values;  // ascending line order
  /// Set when the construction itself found conflicting values on some line
  /// (the fault is undetectable).
  bool conflicting = false;
};

/// Builds A(p) for a fault. The netlist must be combinational and contain
/// only primitive gates (Input/Buf/Not/And/Nand/Or/Nor); run decompose_xor
/// first otherwise. Throws if the path is not structurally valid.
FaultRequirements build_requirements(const Netlist& nl, const PathDelayFault& f,
                                     Sensitization sens = Sensitization::Robust);

/// Debug rendering: "G7=000 G2=xx0 G1=0x1 ...".
std::string requirements_to_string(const Netlist& nl,
                                   std::span<const ValueRequirement> reqs);

}  // namespace pdf
