// Path delay faults.
//
// Every structural path carries two faults: slow-to-rise (a 0->1 transition
// launched at the path source arrives late) and slow-to-fall (1->0 late).
// The fault is identified by its path plus the direction of the transition
// at the source; transitions along the path follow from gate inversions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "paths/enumerate.hpp"
#include "paths/path.hpp"

namespace pdf {

using FaultId = std::uint32_t;
inline constexpr FaultId kNoFault = static_cast<FaultId>(-1);

struct PathDelayFault {
  Path path;
  bool rising_source = true;  // true: slow-to-rise, false: slow-to-fall
  int length = 0;             // path length under the delay model in use
};

/// "G1 -> G12 -> G13 (slow-to-rise, len 4)"
std::string fault_to_string(const Netlist& nl, const PathDelayFault& f);

/// Expands enumerated paths into the two faults per path, keeping lengths.
/// Order: both faults of the first path, then of the second, ...
std::vector<PathDelayFault> faults_for_paths(
    const std::vector<EnumeratedPath>& paths);

}  // namespace pdf
