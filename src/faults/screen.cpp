#include "faults/screen.hpp"

namespace pdf {

std::vector<TargetFault> screen_faults(const Netlist& nl,
                                       std::vector<PathDelayFault> faults,
                                       ScreenStats* stats, Sensitization sens) {
  ImplicationEngine engine(nl);
  ScreenStats local;
  local.input_faults = faults.size();

  std::vector<TargetFault> out;
  out.reserve(faults.size());
  for (auto& f : faults) {
    FaultRequirements reqs = build_requirements(nl, f, sens);
    if (reqs.conflicting) {
      ++local.conflict_dropped;
      continue;
    }
    if (engine.contradicts(reqs.values)) {
      ++local.implication_dropped;
      continue;
    }
    out.push_back({std::move(f), std::move(reqs.values)});
  }
  local.kept = out.size();
  if (stats) *stats = local;
  return out;
}

}  // namespace pdf
