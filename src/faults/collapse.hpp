// Fault collapsing for path delay faults.
//
// Two faults with the same requirement set A(p) are detected by exactly the
// same tests — targeting both wastes generation effort. Such duplicates are
// common after XOR decomposition (parallel branches re-join) and in fanout
// free regions. Collapsing keeps one representative per requirement
// signature and records the equivalence classes so coverage can be expanded
// back to the full fault list.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "faults/screen.hpp"

namespace pdf {

struct CollapseResult {
  /// Indices into the input list: one representative per class, in first
  /// occurrence order.
  std::vector<std::size_t> representatives;
  /// class_of[i] is the position (in `representatives`) of fault i's class.
  std::vector<std::size_t> class_of;

  std::size_t class_count() const { return representatives.size(); }
};

/// Groups faults by identical requirement sets.
CollapseResult collapse_faults(std::span<const TargetFault> faults);

/// Expands detection flags over representatives back to the full list.
std::vector<bool> expand_detection(const CollapseResult& collapse,
                                   std::span<const bool> representative_flags);

}  // namespace pdf
