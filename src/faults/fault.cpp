#include "faults/fault.hpp"

#include <sstream>

namespace pdf {

std::string fault_to_string(const Netlist& nl, const PathDelayFault& f) {
  std::ostringstream os;
  os << path_to_string(nl, f.path) << " ("
     << (f.rising_source ? "slow-to-rise" : "slow-to-fall") << ", len "
     << f.length << ")";
  return os.str();
}

std::vector<PathDelayFault> faults_for_paths(
    const std::vector<EnumeratedPath>& paths) {
  std::vector<PathDelayFault> out;
  out.reserve(paths.size() * 2);
  for (const EnumeratedPath& p : paths) {
    out.push_back({p.path, /*rising_source=*/true, p.length});
    out.push_back({p.path, /*rising_source=*/false, p.length});
  }
  return out;
}

}  // namespace pdf
