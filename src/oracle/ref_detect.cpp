// Robust detection decided from the definition of A(p) (paper Section 2.1).
//
// The requirement list is re-derived here from first principles: the
// controlling value of a gate is found by probing both binary values against
// every completion of the remaining inputs, and the transition direction at a
// gate output is obtained by evaluating the gate under the final pattern —
// no use of the production gate metadata (controlling_value/is_inverting) or
// of the triple-algebra helpers (covers/merge).
#include <map>
#include <stdexcept>

#include "oracle/oracle.hpp"

namespace pdf::oracle {
namespace {

bool plane_conflicts(V3 a, V3 b) {
  return a != V3::X && b != V3::X && a != b;
}

V3 plane_merge(V3 a, V3 b) { return a == V3::X ? b : a; }

/// Binary evaluation of a gate whose inputs are all specified.
bool eval_binary(GateType t, const std::vector<bool>& fanin) {
  std::vector<V3> v(fanin.size());
  for (std::size_t i = 0; i < fanin.size(); ++i) {
    v[i] = fanin[i] ? V3::One : V3::Zero;
  }
  const V3 out = eval_gate_definitional(t, v);
  if (out == V3::X) throw std::logic_error("oracle: binary eval returned x");
  return out == V3::One;
}

/// The controlling value of a multi-input gate, by probing: `v` is
/// controlling when pinning any single input to `v` fixes the output over
/// every completion of the others. Unary gates have no side inputs, so the
/// notion (and the off-path constraint it implies) does not apply.
std::optional<bool> probe_controlling_value(GateType t, std::size_t arity) {
  if (arity < 2) return std::nullopt;
  for (const bool v : {false, true}) {
    std::vector<bool> fanin(arity);
    bool constant = true;
    bool first = true;
    bool fixed = false;
    const std::size_t completions = std::size_t{1} << (arity - 1);
    for (std::size_t code = 0; code < completions && constant; ++code) {
      fanin[0] = v;
      for (std::size_t k = 1; k < arity; ++k) fanin[k] = (code >> (k - 1)) & 1;
      const bool out = eval_binary(t, fanin);
      if (first) {
        fixed = out;
        first = false;
      } else if (out != fixed) {
        constant = false;
      }
    }
    if (constant) return v;
  }
  return std::nullopt;
}

struct Merger {
  std::map<NodeId, Triple> values;
  bool conflicting = false;

  void require(NodeId line, const Triple& v) {
    auto [it, inserted] = values.emplace(line, v);
    if (inserted) return;
    Triple& have = it->second;
    if (plane_conflicts(have.a1, v.a1) || plane_conflicts(have.a2, v.a2) ||
        plane_conflicts(have.a3, v.a3)) {
      // Contradiction: keep the earlier value (the production merge rule) and
      // flag the fault undetectable.
      conflicting = true;
      return;
    }
    have = Triple{plane_merge(have.a1, v.a1), plane_merge(have.a2, v.a2),
                  plane_merge(have.a3, v.a3)};
  }
};

Triple transition_triple(bool rising) {
  return rising ? Triple{V3::Zero, V3::X, V3::One}
                : Triple{V3::One, V3::X, V3::Zero};
}

}  // namespace

RefRequirements requirements_by_definition(const Netlist& nl,
                                           const PathDelayFault& f) {
  const auto& nodes = f.path.nodes;
  if (nodes.empty()) throw std::invalid_argument("oracle: empty path");
  if (nl.node(nodes.front()).type != GateType::Input) {
    throw std::invalid_argument("oracle: path must start at a primary input");
  }

  Merger merged;
  bool rising = f.rising_source;
  merged.require(nodes.front(), transition_triple(rising));

  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const NodeId on_path = nodes[i];
    const Node& gate = nl.node(nodes[i + 1]);
    if (!is_primitive_logic(gate.type)) {
      throw std::invalid_argument("oracle: path crosses non-primitive gate " +
                                  gate.name);
    }
    bool connected = false;
    for (NodeId fi : gate.fanin) connected = connected || fi == on_path;
    if (!connected) {
      throw std::runtime_error("oracle: consecutive path nodes not connected");
    }

    const bool final_on_path = rising;  // 0x1 ends at 1, 1x0 ends at 0
    const std::optional<bool> c =
        probe_controlling_value(gate.type, gate.fanin.size());
    if (c.has_value()) {
      const V3 nc = *c ? V3::Zero : V3::One;
      // Transition ending at the controlling value: any off-path activity
      // could fire the gate early, so the side inputs must be provably steady
      // at non-controlling. Ending at the non-controlling value: the initial
      // controlling on-path value pins the output, so only the final values
      // of the side inputs matter.
      const Triple off = final_on_path == *c ? Triple{nc, nc, nc}
                                             : Triple{V3::X, V3::X, nc};
      for (NodeId side : gate.fanin) {
        if (side == on_path) continue;
        merged.require(side, off);
      }
    }

    // Direction of the propagated transition: evaluate the gate under the
    // final pattern (on-path input at its final value, side inputs at their
    // required non-controlling final value; unary gates have no sides).
    std::vector<bool> final_fanin(gate.fanin.size());
    for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
      final_fanin[k] =
          gate.fanin[k] == on_path ? final_on_path : (c.has_value() && !*c);
    }
    rising = eval_binary(gate.type, final_fanin);
    merged.require(nodes[i + 1], transition_triple(rising));
  }

  if (!nl.node(nodes.back()).is_output) {
    throw std::invalid_argument("oracle: path must end at an output");
  }

  RefRequirements out;
  out.conflicting = merged.conflicting;
  out.values.reserve(merged.values.size());
  for (const auto& [line, value] : merged.values) {
    out.values.push_back(ValueRequirement{line, value});
  }
  return out;
}

namespace {

bool satisfies(std::span<const Triple> simulated,
               std::span<const ValueRequirement> reqs) {
  for (const auto& r : reqs) {
    const Triple have = simulated[r.line];
    const Triple want = r.value;
    if (want.a1 != V3::X && have.a1 != want.a1) return false;
    if (want.a2 != V3::X && have.a2 != want.a2) return false;
    if (want.a3 != V3::X && have.a3 != want.a3) return false;
  }
  return true;
}

}  // namespace

bool detects(const Netlist& nl, const TwoPatternTest& t, const PathDelayFault& f) {
  const RefRequirements reqs = requirements_by_definition(nl, f);
  if (reqs.conflicting) return false;
  const std::vector<Triple> simulated = simulate(nl, t.pi_values);
  return satisfies(simulated, reqs.values);
}

std::optional<TwoPatternTest> find_robust_test(const Netlist& nl,
                                               const PathDelayFault& f,
                                               std::size_t max_inputs) {
  const std::size_t n = nl.inputs().size();
  if (n > max_inputs) {
    throw std::invalid_argument("oracle: too many inputs for exhaustion");
  }
  const RefRequirements reqs = requirements_by_definition(nl, f);
  if (reqs.conflicting) return std::nullopt;

  TwoPatternTest t;
  t.pi_values.resize(n);
  const std::size_t total = std::size_t{1} << (2 * n);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (std::size_t i = 0; i < n; ++i) {
      const V3 v1 = (c & 1) ? V3::One : V3::Zero;
      const V3 v3 = (c & 2) ? V3::One : V3::Zero;
      c >>= 2;
      t.pi_values[i] = Triple{v1, v1 == v3 ? v1 : V3::X, v3};
    }
    const std::vector<Triple> simulated = simulate(nl, t.pi_values);
    if (satisfies(simulated, reqs.values)) return t;
  }
  return std::nullopt;
}

std::vector<bool> detects_any(const Netlist& nl,
                              std::span<const TwoPatternTest> tests,
                              std::span<const PathDelayFault> faults) {
  std::vector<RefRequirements> reqs;
  reqs.reserve(faults.size());
  for (const auto& f : faults) reqs.push_back(requirements_by_definition(nl, f));

  std::vector<bool> detected(faults.size(), false);
  for (const auto& t : tests) {
    const std::vector<Triple> simulated = simulate(nl, t.pi_values);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (detected[i] || reqs[i].conflicting) continue;
      if (satisfies(simulated, reqs[i].values)) detected[i] = true;
    }
  }
  return detected;
}

}  // namespace pdf::oracle
