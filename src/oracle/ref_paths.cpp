// Exhaustive path enumeration by naive recursion, with lengths recomputed
// from the line-counting definition (paper Section 3.1 / ISCAS convention).
#include <algorithm>
#include <functional>
#include <stdexcept>

#include "oracle/oracle.hpp"

namespace pdf::oracle {

int consumers(const Netlist& nl, NodeId id) {
  // Recounted from the fanin lists (per occurrence, so a gate using the same
  // driver twice consumes it twice) instead of trusting the netlist's
  // precomputed fanout lists.
  int n = 0;
  for (NodeId g = 0; g < nl.node_count(); ++g) {
    for (NodeId f : nl.node(g).fanin) {
      if (f == id) ++n;
    }
  }
  if (nl.node(id).is_output) ++n;
  return n;
}

int complete_path_length(const Netlist& nl, std::span<const NodeId> nodes) {
  if (nodes.empty()) throw std::invalid_argument("oracle: empty path");
  if (!nl.node(nodes.back()).is_output) {
    throw std::invalid_argument("oracle: path does not end at an output");
  }
  int length = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    length += 1;  // the stem line out of nodes[i]
    // Crossing from nodes[i] to its consumer (the next node, or the output
    // tap at the end) traverses a branch line when the stem splits.
    if (consumers(nl, nodes[i]) > 1) length += 1;
  }
  return length;
}

std::vector<RefPath> all_complete_paths(const Netlist& nl, std::size_t cap) {
  if (!nl.finalized()) throw std::logic_error("oracle: netlist not finalized");
  std::vector<RefPath> out;
  std::vector<NodeId> current;

  std::function<void(NodeId)> grow = [&](NodeId at) {
    current.push_back(at);
    if (nl.node(at).is_output) {
      if (out.size() >= cap) {
        throw std::runtime_error("oracle: path count exceeds cap");
      }
      out.push_back(RefPath{current, complete_path_length(nl, current)});
    }
    for (NodeId next : nl.node(at).fanout) grow(next);
    current.pop_back();
  };
  for (NodeId pi : nl.inputs()) grow(pi);

  std::stable_sort(out.begin(), out.end(), [](const RefPath& a, const RefPath& b) {
    return a.length > b.length;
  });
  return out;
}

}  // namespace pdf::oracle
