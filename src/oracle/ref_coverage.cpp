// Set-based coverage accounting: detection decided per (test, fault) pair by
// the definitional detects_any, counts aggregated with std::map.
#include <map>

#include "oracle/oracle.hpp"

namespace pdf::oracle {

std::size_t count_detected(const Netlist& nl,
                           std::span<const TwoPatternTest> tests,
                           std::span<const PathDelayFault> faults) {
  std::size_t n = 0;
  for (const bool d : detects_any(nl, tests, faults)) {
    if (d) ++n;
  }
  return n;
}

std::vector<RefCoverageBucket> coverage_by_length(
    const Netlist& nl, std::span<const TwoPatternTest> tests,
    std::span<const PathDelayFault> faults) {
  const std::vector<bool> detected = detects_any(nl, tests, faults);
  // Descending length order via std::greater keys.
  std::map<int, RefCoverageBucket, std::greater<int>> buckets;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const int len = complete_path_length(nl, faults[i].path.nodes);
    RefCoverageBucket& b = buckets[len];
    b.length = len;
    b.total += 1;
    if (detected[i]) b.detected += 1;
  }
  std::vector<RefCoverageBucket> out;
  out.reserve(buckets.size());
  for (const auto& [len, b] : buckets) out.push_back(b);
  return out;
}

namespace {

/// One plane of the cover relation: an unknown requirement asks nothing; a
/// specified requirement is guaranteed only by the identical specified value.
bool plane_covers(V3 have, V3 want) { return want == V3::X || have == want; }

}  // namespace

std::size_t delta_count(std::span<const ValueRequirement> have,
                        std::span<const ValueRequirement> want) {
  std::size_t n = 0;
  for (const auto& w : want) {
    // A line `have` says nothing about carries the all-unknown triple.
    Triple h;
    for (const auto& entry : have) {
      if (entry.line == w.line) {
        h = entry.value;
        break;
      }
    }
    const bool guaranteed = plane_covers(h.a1, w.value.a1) &&
                            plane_covers(h.a2, w.value.a2) &&
                            plane_covers(h.a3, w.value.a3);
    if (!guaranteed) ++n;
  }
  return n;
}

}  // namespace pdf::oracle
