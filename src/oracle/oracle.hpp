// Brute-force reference implementations ("the oracle") for differential
// testing of every production engine.
//
// Everything in this namespace is written for readability and obvious
// correctness, not speed: recursion instead of flattened arrays, std::map
// instead of sorted vectors, and gate evaluation by enumerating binary
// completions instead of the hand-derived three-valued algebra. None of it
// shares code with the engines under test — the only common ground is the
// Netlist structure and the plain value types (V3, Triple, Path,
// PathDelayFault, TwoPatternTest), so a bug in the compiled execution core,
// the triple algebra, the enumerator's pruning, or the coverage accounting
// cannot cancel out of a comparison.
//
// Semantics implemented from the paper's definitions (validated against its
// s27 worked example):
//   * Section 2.1 — the two-pattern triple of a line is (value under the
//     first pattern, hazard-conservative intermediate value, value under the
//     second pattern); the intermediate plane is the three-valued simulation
//     in which every transitioning input is unknown.
//   * Section 2.1 — a test robustly detects a path delay fault iff it
//     satisfies every value requirement in A(p); A(p) is re-derived here
//     directly from the definition (launch transition, steady non-controlling
//     side inputs under transitions-to-controlling, final-only non-controlling
//     otherwise, implied on-path transitions).
//   * Section 3.1 — the length of a path counts the lines it crosses: each
//     node's output stem plus a branch line wherever the driver has more than
//     one consumer (a primary-output tap counts as a consumer).
//
// Intended for circuits of tens of gates; `find_robust_test` enumerates all
// 4^n two-pattern input pairs and refuses more than `max_inputs` PIs.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "base/triple.hpp"
#include "faults/fault.hpp"
#include "faults/requirements.hpp"
#include "netlist/netlist.hpp"

namespace pdf::oracle {

// ---- definitional simulation (ref_sim.cpp) ---------------------------------

/// Three-valued gate evaluation by enumerating every binary completion of the
/// x fanins: the result is v when all completions evaluate to v, x otherwise.
/// Throws std::invalid_argument for non-logic types or more than 20 unknowns.
V3 eval_gate_definitional(GateType t, std::span<const V3> fanin);

/// Single-plane three-valued simulation by memoized recursion from the
/// outputs. `pi_values[i]` belongs to nl.inputs()[i]. Returns one value per
/// node. The netlist must be finalized and combinational.
std::vector<V3> simulate_plane(const Netlist& nl, std::span<const V3> pi_values);

/// Two-pattern (triple) simulation from the definition: plane 1 and plane 3
/// are independent simulations of the pattern values; the intermediate plane
/// simulates with every transitioning PI unknown. Returns one triple per node.
std::vector<Triple> simulate(const Netlist& nl, std::span<const Triple> pi_values);

// ---- exhaustive path enumeration (ref_paths.cpp) ---------------------------

struct RefPath {
  std::vector<NodeId> nodes;
  int length = 0;
};

/// Number of consumers of a node's output, recomputed from every fanin list
/// (per occurrence) plus one when the node is a (pseudo) primary output.
int consumers(const Netlist& nl, NodeId id);

/// Length in lines of a complete input-to-output path, from the definition:
/// one stem per node, plus a branch line after every node (including the
/// last) that has more than one consumer.
int complete_path_length(const Netlist& nl, std::span<const NodeId> nodes);

/// Every structural input-to-output path, found by naive recursion, sorted by
/// descending length (ties in discovery order). Throws std::runtime_error
/// when the circuit has more than `cap` paths.
std::vector<RefPath> all_complete_paths(const Netlist& nl,
                                        std::size_t cap = 1'000'000);

// ---- robust detection from the definition (ref_detect.cpp) -----------------

struct RefRequirements {
  /// Merged requirements in ascending line order (same shape as
  /// FaultRequirements::values so differential tests can compare directly).
  std::vector<ValueRequirement> values;
  /// Some line received two contradictory specified values: the fault is
  /// provably undetectable. The kept value is the first one assigned,
  /// mirroring the production merge rule.
  bool conflicting = false;
};

/// Independently re-derives A(p) for a robust test of `f` by walking the
/// path. Throws std::invalid_argument on structurally invalid paths.
RefRequirements requirements_by_definition(const Netlist& nl,
                                           const PathDelayFault& f);

/// True when the definitional simulation of `t` satisfies every component of
/// every requirement in A(f): for each plane, a specified requirement demands
/// exactly that simulated value (an unknown simulated value satisfies
/// nothing). Conflicting requirement sets are never satisfied.
bool detects(const Netlist& nl, const TwoPatternTest& t, const PathDelayFault& f);

/// Exhaustively enumerates all 4^n binary two-pattern tests and returns the
/// first one that robustly detects `f`, or nullopt when none exists (the
/// fault is untestable). Throws std::invalid_argument when the circuit has
/// more than `max_inputs` PIs.
std::optional<TwoPatternTest> find_robust_test(const Netlist& nl,
                                               const PathDelayFault& f,
                                               std::size_t max_inputs = 12);

/// Per-fault flag: detected by at least one test in `tests`.
std::vector<bool> detects_any(const Netlist& nl,
                              std::span<const TwoPatternTest> tests,
                              std::span<const PathDelayFault> faults);

// ---- set-based coverage accounting (ref_coverage.cpp) ----------------------

/// Number of faults detected by at least one test.
std::size_t count_detected(const Netlist& nl,
                           std::span<const TwoPatternTest> tests,
                           std::span<const PathDelayFault> faults);

struct RefCoverageBucket {
  int length = 0;
  std::size_t total = 0;
  std::size_t detected = 0;
};

/// Detection counts bucketed by fault path length, descending length order.
std::vector<RefCoverageBucket> coverage_by_length(
    const Netlist& nl, std::span<const TwoPatternTest> tests,
    std::span<const PathDelayFault> faults);

/// The n_Delta of the value-based compaction heuristic, from the definition:
/// the number of requirements in `want` not already guaranteed by `have`
/// (a requirement is guaranteed when `have` assigns its line a triple whose
/// specified components include every specified component of the
/// requirement). `have` holds distinct lines in any order.
std::size_t delta_count(std::span<const ValueRequirement> have,
                        std::span<const ValueRequirement> want);

}  // namespace pdf::oracle
