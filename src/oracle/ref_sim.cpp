// Definitional simulation: gate evaluation by enumerating binary
// completions, netlist evaluation by memoized recursion.
#include <functional>
#include <stdexcept>

#include "oracle/oracle.hpp"

namespace pdf::oracle {
namespace {

/// Pure binary gate function, written from the textbook definition of each
/// gate (no controlling-value shortcuts).
bool eval_gate_binary(GateType t, const std::vector<bool>& fanin) {
  switch (t) {
    case GateType::Buf:
      return fanin[0];
    case GateType::Not:
      return !fanin[0];
    case GateType::And:
    case GateType::Nand: {
      bool all = true;
      for (bool v : fanin) all = all && v;
      return t == GateType::And ? all : !all;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool any = false;
      for (bool v : fanin) any = any || v;
      return t == GateType::Or ? any : !any;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool parity = false;
      for (bool v : fanin) parity = parity != v;
      return t == GateType::Xor ? parity : !parity;
    }
    default:
      throw std::invalid_argument("oracle: cannot evaluate gate type");
  }
}

}  // namespace

V3 eval_gate_definitional(GateType t, std::span<const V3> fanin) {
  std::vector<std::size_t> unknowns;
  for (std::size_t i = 0; i < fanin.size(); ++i) {
    if (fanin[i] == V3::X) unknowns.push_back(i);
  }
  if (unknowns.size() > 20) {
    throw std::invalid_argument("oracle: too many unknown fanins to enumerate");
  }
  std::vector<bool> bits(fanin.size());
  for (std::size_t i = 0; i < fanin.size(); ++i) bits[i] = fanin[i] == V3::One;

  bool saw0 = false;
  bool saw1 = false;
  const std::size_t completions = std::size_t{1} << unknowns.size();
  for (std::size_t code = 0; code < completions; ++code) {
    for (std::size_t k = 0; k < unknowns.size(); ++k) {
      bits[unknowns[k]] = (code >> k) & 1;
    }
    (eval_gate_binary(t, bits) ? saw1 : saw0) = true;
    if (saw0 && saw1) return V3::X;
  }
  return saw1 ? V3::One : V3::Zero;
}

std::vector<V3> simulate_plane(const Netlist& nl, std::span<const V3> pi_values) {
  if (!nl.finalized()) throw std::logic_error("oracle: netlist not finalized");
  if (pi_values.size() != nl.inputs().size()) {
    throw std::invalid_argument("oracle: wrong PI value count");
  }
  std::vector<V3> value(nl.node_count(), V3::X);
  std::vector<char> known(nl.node_count(), 0);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    value[nl.inputs()[i]] = pi_values[i];
    known[nl.inputs()[i]] = 1;
  }

  std::function<V3(NodeId)> eval = [&](NodeId id) -> V3 {
    if (known[id]) return value[id];
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) {
      throw std::logic_error("oracle: unvalued source node " + n.name);
    }
    std::vector<V3> fanin;
    fanin.reserve(n.fanin.size());
    for (NodeId f : n.fanin) fanin.push_back(eval(f));
    value[id] = eval_gate_definitional(n.type, fanin);
    known[id] = 1;
    return value[id];
  };
  for (NodeId id = 0; id < nl.node_count(); ++id) eval(id);
  return value;
}

std::vector<Triple> simulate(const Netlist& nl, std::span<const Triple> pi_values) {
  std::vector<V3> p1(pi_values.size());
  std::vector<V3> p2(pi_values.size());
  std::vector<V3> p3(pi_values.size());
  // PI triples are taken verbatim — deriving the intermediate value from the
  // pattern planes is the job of whoever builds the test (pi_triple /
  // TwoPatternTest), and the engines under test receive the same triples.
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    p1[i] = pi_values[i].a1;
    p2[i] = pi_values[i].a2;
    p3[i] = pi_values[i].a3;
  }
  const std::vector<V3> v1 = simulate_plane(nl, p1);
  const std::vector<V3> v2 = simulate_plane(nl, p2);
  const std::vector<V3> v3 = simulate_plane(nl, p3);
  std::vector<Triple> out(nl.node_count());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    out[id] = Triple{v1[id], v2[id], v3[id]};
  }
  return out;
}

}  // namespace pdf::oracle
