// Shared circuit fixtures for tests, fuzzers and the pdf_check harness.
//
// One header owns every hand-built example netlist, the seeded small-circuit
// generator used by property tests, the structural mutators the fuzzers
// perturb circuits with, and the small enumeration helpers. Test files,
// tests/test_fuzz.cpp and tools/pdf_check all include this header instead of
// keeping private copies (the pre-PR-5 state had four copies of named_path
// alone).
//
// Everything here is deterministic: any randomness comes in through the
// caller's Rng, so a failing seed replays exactly.
#pragma once

#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "base/triple.hpp"
#include "atpg/test_pattern.hpp"
#include "netlist/netlist.hpp"
#include "paths/path.hpp"

namespace pdf::testutil {

// ---- hand-built examples ----------------------------------------------------

/// y = AND(a, b), z = OR(y, c); outputs y, z.
inline Netlist tiny_and_or() {
  Netlist nl("tiny");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId y = nl.add_gate("y", GateType::And, {a, b});
  const NodeId z = nl.add_gate("z", GateType::Or, {y, c});
  nl.mark_output(y);
  nl.mark_output(z);
  nl.finalize();
  return nl;
}

/// A 2-level circuit with reconvergent fanout:
///   n = NOT(a); p = AND(a, b); q = OR(n, b); z = NAND(p, q).
inline Netlist reconvergent() {
  Netlist nl("reconv");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId n = nl.add_gate("n", GateType::Not, {a});
  const NodeId p = nl.add_gate("p", GateType::And, {a, b});
  const NodeId q = nl.add_gate("q", GateType::Or, {n, b});
  const NodeId z = nl.add_gate("z", GateType::Nand, {p, q});
  nl.mark_output(z);
  nl.finalize();
  return nl;
}

/// A pure inverter chain of `k` NOT gates behind one input; single output.
inline Netlist chain_circuit(int k) {
  Netlist nl("chain");
  NodeId prev = nl.add_input("i");
  for (int j = 0; j < k; ++j) {
    prev = nl.add_gate("n" + std::to_string(j), GateType::Not, {prev});
  }
  nl.mark_output(prev);
  nl.finalize();
  return nl;
}

// ---- seeded generators ------------------------------------------------------

/// Random small primitive-only combinational netlist for property tests.
/// Between 2 and 6 inputs, up to ~24 gates, every sink marked output.
inline Netlist random_small_netlist(Rng& rng) {
  Netlist nl("prop");
  const std::size_t n_in = 2 + rng.below(5);
  std::vector<NodeId> pool;
  for (std::size_t i = 0; i < n_in; ++i) {
    pool.push_back(nl.add_input("i" + std::to_string(i)));
  }
  const std::size_t n_gates = 4 + rng.below(21);
  for (std::size_t g = 0; g < n_gates; ++g) {
    static constexpr GateType kTypes[] = {GateType::And,  GateType::Nand,
                                          GateType::Or,   GateType::Nor,
                                          GateType::Not,  GateType::Buf};
    const GateType t = kTypes[rng.below(6)];
    std::vector<NodeId> fanin;
    fanin.push_back(pool[rng.below(pool.size())]);
    if (t != GateType::Not && t != GateType::Buf) {
      const std::size_t extra = 1 + rng.below(2);
      for (std::size_t e = 0; e < extra; ++e) {
        const NodeId f = pool[rng.below(pool.size())];
        bool dup = false;
        for (NodeId x : fanin) dup = dup || x == f;
        if (!dup) fanin.push_back(f);
      }
      if (fanin.size() < 2) continue;  // skip degenerate gate
    }
    pool.push_back(nl.add_gate("g" + std::to_string(g), t, std::move(fanin)));
  }
  nl.finalize();
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).fanout.empty() && nl.node(id).type != GateType::Input) {
      nl.mark_output(id);
    }
  }
  nl.finalize();
  return nl;
}

/// A random fully specified two-pattern test for `n_inputs` PIs (binary
/// pattern planes; the intermediate plane derived as the simulator does).
inline TwoPatternTest random_two_pattern_test(Rng& rng, std::size_t n_inputs) {
  TwoPatternTest t;
  t.pi_values.resize(n_inputs);
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const V3 v1 = rng.coin() ? V3::One : V3::Zero;
    const V3 v3 = rng.coin() ? V3::One : V3::Zero;
    t.pi_values[i] = Triple{v1, v1 == v3 ? v1 : V3::X, v3};
  }
  return t;
}

// ---- structural mutators ----------------------------------------------------
//
// Each mutator rebuilds the netlist with one local edit and re-finalizes it.
// Edits preserve acyclicity (rewires only target strictly lower levels) and
// observation (any gate left dangling is marked as an output, the way the
// generators treat DFF-tap pseudo outputs).

namespace detail {

/// Reconstructs `nl` from scratch applying `edit` to the copied node list
/// first. `fanin[id]` / `type[id]` may be edited freely as long as the result
/// stays a DAG over valid ids.
inline Netlist rebuild_with(
    const Netlist& nl,
    const std::function<void(std::vector<GateType>&,
                             std::vector<std::vector<NodeId>>&)>& edit) {
  std::vector<GateType> types(nl.node_count());
  std::vector<std::vector<NodeId>> fanin(nl.node_count());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    types[id] = nl.node(id).type;
    fanin[id] = nl.node(id).fanin;
  }
  edit(types, fanin);

  Netlist out(nl.name());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (types[id] == GateType::Input) {
      out.add_input(nl.node(id).name);
    } else {
      out.add_gate_placeholder(nl.node(id).name, types[id]);
    }
  }
  for (NodeId id = 0; id < fanin.size(); ++id) {
    if (types[id] != GateType::Input) out.set_fanin(id, fanin[id]);
  }
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).is_output) out.mark_output(id);
  }
  out.finalize();
  for (NodeId id = 0; id < out.node_count(); ++id) {
    if (out.node(id).fanout.empty() && out.node(id).type != GateType::Input &&
        !out.node(id).is_output) {
      out.mark_output(id);
    }
  }
  out.finalize();
  return out;
}

}  // namespace detail

/// Flips one random gate to another type of the same arity class
/// (AND/NAND/OR/NOR cycle; NOT <-> BUF). Returns the input unchanged when the
/// netlist has no gates.
inline Netlist mutate_gate_type(const Netlist& nl, Rng& rng) {
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (is_primitive_logic(nl.node(id).type) &&
        nl.node(id).type != GateType::Input) {
      gates.push_back(id);
    }
  }
  if (gates.empty()) return nl;
  const NodeId victim = gates[rng.below(gates.size())];
  return detail::rebuild_with(nl, [&](std::vector<GateType>& types,
                                      std::vector<std::vector<NodeId>>&) {
    const GateType t = types[victim];
    if (t == GateType::Not) {
      types[victim] = GateType::Buf;
    } else if (t == GateType::Buf) {
      types[victim] = GateType::Not;
    } else {
      static constexpr GateType kMulti[] = {GateType::And, GateType::Nand,
                                            GateType::Or, GateType::Nor};
      GateType next = t;
      while (next == t) next = kMulti[rng.below(4)];
      types[victim] = next;
    }
  });
}

/// Rewires one random fanin edge of a gate to a different node of strictly
/// lower level (acyclic by construction). No-op when no candidate exists.
inline Netlist mutate_rewire_fanin(const Netlist& nl, Rng& rng) {
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (!nl.node(id).fanin.empty()) gates.push_back(id);
  }
  if (gates.empty()) return nl;
  const NodeId gate = gates[rng.below(gates.size())];
  const std::size_t slot = rng.below(nl.node(gate).fanin.size());
  std::vector<NodeId> candidates;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).level < nl.node(gate).level && id != nl.node(gate).fanin[slot]) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) return nl;
  const NodeId target = candidates[rng.below(candidates.size())];
  return detail::rebuild_with(nl, [&](std::vector<GateType>&,
                                      std::vector<std::vector<NodeId>>& fanin) {
    fanin[gate][slot] = target;
  });
}

/// Inserts a NOT between one random fanin edge (f -> gate) of the netlist.
inline Netlist mutate_insert_inversion(const Netlist& nl, Rng& rng) {
  std::vector<NodeId> gates;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (!nl.node(id).fanin.empty()) gates.push_back(id);
  }
  if (gates.empty()) return nl;
  const NodeId gate = gates[rng.below(gates.size())];
  const std::size_t slot = rng.below(nl.node(gate).fanin.size());

  Netlist out(nl.name());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == GateType::Input) {
      out.add_input(nl.node(id).name);
    } else {
      out.add_gate_placeholder(nl.node(id).name, nl.node(id).type);
    }
  }
  const NodeId inv =
      out.add_gate_placeholder(out.fresh_name("inv"), GateType::Not);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == GateType::Input) continue;
    std::vector<NodeId> fanin = nl.node(id).fanin;
    if (id == gate) fanin[slot] = inv;
    out.set_fanin(id, fanin);
  }
  out.set_fanin(inv, {nl.node(gate).fanin[slot]});
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).is_output) out.mark_output(id);
  }
  out.finalize();
  for (NodeId id = 0; id < out.node_count(); ++id) {
    if (out.node(id).fanout.empty() && out.node(id).type != GateType::Input &&
        !out.node(id).is_output) {
      out.mark_output(id);
    }
  }
  out.finalize();
  return out;
}

/// Applies one randomly chosen structural mutation.
inline Netlist mutate_structure(const Netlist& nl, Rng& rng) {
  switch (rng.below(3)) {
    case 0: return mutate_gate_type(nl, rng);
    case 1: return mutate_rewire_fanin(nl, rng);
    default: return mutate_insert_inversion(nl, rng);
  }
}

// ---- small helpers ----------------------------------------------------------

/// Looks nodes up by name and builds a Path (used all over the path tests).
inline Path named_path(const Netlist& nl,
                       std::initializer_list<const char*> names) {
  Path p;
  for (const char* n : names) p.nodes.push_back(nl.id_of(n));
  return p;
}

inline Path named_path(const Netlist& nl, const std::vector<std::string>& names) {
  Path p;
  for (const auto& n : names) p.nodes.push_back(nl.id_of(n));
  return p;
}

/// Enumerates all fully specified PI triple assignments of small circuits by
/// calling `fn` with each assignment (both pattern planes binary; the
/// intermediate plane derived). 9^n assignments would be excessive, so this
/// walks the 4^n binary pattern pairs.
inline void for_each_binary_test(
    std::size_t n_inputs,
    const std::function<void(const std::vector<Triple>&)>& fn) {
  std::vector<Triple> pis(n_inputs);
  const std::size_t total = std::size_t{1} << (2 * n_inputs);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      const V3 v1 = (c & 1) ? V3::One : V3::Zero;
      const V3 v3 = (c & 2) ? V3::One : V3::Zero;
      c >>= 2;
      const V3 mid = v1 == v3 ? v1 : V3::X;
      pis[i] = Triple{v1, mid, v3};
    }
    fn(pis);
  }
}

}  // namespace pdf::testutil
