// Uniform PDF_BACKEND env hook for test binaries.
//
// Including this header makes the binary honor PDF_BACKEND=<name> before
// main() (and before gtest_main) runs: the process-wide default backend is
// switched, so every test that builds a BatchSimulator without naming a
// backend exercises the selected one. CI's backend matrix sets it once per
// job. An unknown name (including a wide backend the host CPU can't run —
// those are unregistered, see sim/cpu_features.hpp) exits with a message
// instead of silently testing the wrong engine; CI probes capabilities via
// `pdf_check --list-backends` before picking matrix values.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "sim/backend.hpp"

namespace pdf::testutil {

inline const bool backend_env_applied = [] {
  if (const char* env = std::getenv("PDF_BACKEND")) {
    try {
      sim::select_backend(env);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "PDF_BACKEND: %s\n", e.what());
      std::exit(2);
    }
  }
  return true;
}();

}  // namespace pdf::testutil
