// Avx2Backend: the wide kernel at 256 tests per word (4 x 64-lane subwords).
//
// Vec is a GCC vector-extension type, so the kernel stays plain C++ — the
// bitwise plane ops in backend_wide.hpp compile straight to VPAND/VPOR/
// VPXOR over ymm registers when this TU is built with -mavx2 (see
// src/CMakeLists.txt, which probes the flag and applies it to this file
// only). On a toolchain without the flag the same code still compiles and
// runs correctly via GCC's scalar lowering — registration is gated by the
// runtime cpuid probe either way, so this TU's code never executes on a
// host that cannot, and a capable host never silently loses the backend.
//
// Subword k of wide word w is DetectionMatrix word w*4+k: result bytes are
// bit-identical to bitpar/scalar by construction and enforced by the
// parameterized test_backend suite and the all-pairs `backends_agree` check.
#include "sim/backend_wide.hpp"

namespace pdf::sim {

namespace {
using Vec256 = std::uint64_t __attribute__((vector_size(32)));
static_assert(sizeof(Vec256) == 32);
}  // namespace

SimBackend& avx2_backend() {
  static WideBackend<Vec256> backend("avx2", "sim.avx2.matrix");
  return backend;
}

}  // namespace pdf::sim
