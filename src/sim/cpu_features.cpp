#include "sim/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

namespace pdf::sim {
namespace {

SimdLevel probe_host() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults cpuid (plus xgetbv for OS state), so a
  // "yes" means the instructions are actually executable, not just present
  // in silicon. This TU is compiled with baseline flags only.
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kNone;
#else
  return SimdLevel::kNone;
#endif
}

SimdLevel env_cap() {
  const char* env = std::getenv("PDF_SIMD");
  if (env == nullptr || *env == '\0') return SimdLevel::kAvx512;
  if (std::strcmp(env, "none") == 0) return SimdLevel::kNone;
  if (std::strcmp(env, "avx2") == 0) return SimdLevel::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return SimdLevel::kAvx512;
  // Unrecognized values cap at "none": a typo must not silently enable the
  // widest path, and the degradation direction is always safe.
  return SimdLevel::kNone;
}

}  // namespace

SimdLevel detected_simd_level() {
  static const SimdLevel level = probe_host();
  return level;
}

SimdLevel simd_level() {
  static const SimdLevel level = [] {
    SimdLevel host = detected_simd_level();
    SimdLevel cap = env_cap();
    return host < cap ? host : cap;
  }();
  return level;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kNone:
      break;
  }
  return "none";
}

}  // namespace pdf::sim
