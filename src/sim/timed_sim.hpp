// Timed two-pattern waveform simulation with arbitrary per-gate delays.
//
// This is an independent semantic reference for the triple algebra and the
// robust-detection criterion. A fully specified two-pattern test is applied
// as waveforms: each primary input holds its first-pattern value, switches
// (if it switches) at its own launch time, and holds its second-pattern
// value afterwards. Every gate evaluates its fanin waveforms instantaneously
// and delays the result by its own integer delay; glitches arise naturally
// from skewed arrivals.
//
// The library uses it only in validation: the conservative intermediate
// plane of the triple simulator must be sound against every delay
// assignment (a line reported steady never switches), and a test satisfying
// A(p) must propagate the launch transition along p such that each on-path
// gate's output settles exactly when its on-path input settles plus its own
// delay — the timing property that makes robust tests robust.
#pragma once

#include <span>
#include <vector>

#include "base/triple.hpp"
#include "core/compiled_circuit.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

/// A binary waveform: value `initial` until the first change time, then the
/// value of each change in order. Change times are strictly increasing and
/// consecutive values alternate.
struct Waveform {
  V3 initial = V3::Zero;
  std::vector<std::pair<int, V3>> changes;

  V3 final_value() const { return changes.empty() ? initial : changes.back().second; }
  V3 value_at(int t) const;
  bool constant() const { return changes.empty(); }
  /// Time of the last change; 0 when constant.
  int settle_time() const { return changes.empty() ? 0 : changes.back().first; }
};

/// Simulates the netlist under a two-pattern test.
///   pi_values       — fully specified triples (planes 1 and 3 used)
///   switch_times    — per input, the instant it switches (ignored for
///                     steady inputs)
///   gate_delays     — per node; inputs ignore theirs
/// Returns one waveform per node.
std::vector<Waveform> simulate_timed(const Netlist& nl,
                                     std::span<const Triple> pi_values,
                                     std::span<const int> switch_times,
                                     std::span<const int> gate_delays);

/// Compiled-core overload: same semantics over the flattened view. Repeated
/// callers (e.g. the defect Monte Carlo) build the view once and avoid
/// re-walking the node graph per run.
std::vector<Waveform> simulate_timed(const CompiledCircuit& cc,
                                     std::span<const Triple> pi_values,
                                     std::span<const int> switch_times,
                                     std::span<const int> gate_delays);

}  // namespace pdf
