// BitParallelBackend: pattern-parallel robust simulation, 64 tests per word.
//
// Classic bit-sliced simulation adapted to the two-pattern triple algebra:
// each of the three planes is a 3-valued network, and a 3-valued signal
// across 64 tests packs into two words — `known` (bit set: the value is
// specified for that test) and `value` (meaningful, and only ever set, where
// known). Gate evaluation is a handful of word operations regardless of how
// many tests are packed, and requirement checking reduces to mask
// intersection:
//
//   detected(test, fault) = AND over requirements r, planes q specified in r:
//                           known[r.line][q] & (value ^ ~required)
//
// The kernel itself lives in backend_wide.hpp, shared with the faultpar/
// avx2/avx512 backends; this TU is the Vec = std::uint64_t instantiation,
// compiled with baseline ISA flags. Produces matrices bit-identical to
// ScalarBackend at a fraction of the cost for large test sets (see
// `micro_engines backends`); 64-test word columns farm out over the runtime
// thread pool, bit-identical for any thread count.
#include "sim/backend_wide.hpp"

namespace pdf::sim {

SimBackend& bitpar_backend() {
  static WideBackend<std::uint64_t> backend("bitpar", "sim.bitpar.matrix");
  return backend;
}

}  // namespace pdf::sim
