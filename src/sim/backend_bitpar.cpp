// BitParallelBackend: pattern-parallel robust simulation, 64 tests per word.
//
// Classic bit-sliced simulation adapted to the two-pattern triple algebra:
// each of the three planes is a 3-valued network, and a 3-valued signal
// across 64 tests packs into two words — `known` (bit set: the value is
// specified for that test) and `value` (meaningful, and only ever set, where
// known). Gate evaluation is a handful of word operations regardless of how
// many tests are packed, and requirement checking reduces to mask
// intersection:
//
//   detected(test, fault) = AND over requirements r, planes q specified in r:
//                           known[r.line][q] & (value ^ ~required)
//
// Produces matrices bit-identical to ScalarBackend at a fraction of the cost
// for large test sets (see `micro_engines backends`). The 64-test words are
// independent of each other, so the matrix farms them out over the runtime
// thread pool: each task simulates its words into per-worker plane scratch
// and fills the corresponding word column of every fault row — the same
// decomposition as ScalarBackend, bit-identical for any thread count.
#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/per_worker.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/backend.hpp"
#include "sim/triple_sim.hpp"

namespace pdf::sim {
namespace {

constexpr std::uint64_t kAll = ~std::uint64_t{0};

runtime::Metrics::Counter& word_counter() {
  static auto& c = runtime::Metrics::global().counter("sim.bitpar.words");
  return c;
}
runtime::Metrics::Counter& grow_counter() {
  static auto& c =
      runtime::Metrics::global().counter("sim.bitpar.scratch_grows");
  return c;
}
runtime::Metrics::Timer& matrix_timer() {
  static auto& t = runtime::Metrics::global().timer("sim.bitpar.matrix");
  return t;
}

/// One 3-valued signal across 64 tests: a bit of `value` is meaningful (and
/// may be 1) only where the matching `known` bit is set.
struct PlaneWord {
  std::uint64_t value = 0;
  std::uint64_t known = 0;
};

class BitParallelBackend final : public SimBackend {
 public:
  const char* name() const override { return "bitpar"; }

  bool supports(const CompiledCircuit& cc) const override {
    return !cc.has_sequential();
  }

  DetectionMatrix detection_matrix(
      const CompiledCircuit& cc, std::span<const TwoPatternTest> tests,
      std::span<const TargetFault> faults) const override {
    PDF_TRACE_SPAN("sim.bitpar.matrix");
    const auto scope = matrix_timer().measure();
    DetectionMatrix matrix(faults.size(), tests.size());
    const std::size_t words = matrix.words_per_row();

    runtime::global_pool().parallel_for(words, 1, [&](std::size_t w0,
                                                      std::size_t w1) {
      Scratch& s = scratch_.local();
      if (s.planes[0].capacity() < cc.node_count()) grow_counter().add();
      for (std::size_t w = w0; w < w1; ++w) {
        const std::size_t base = w * 64;
        const std::size_t lanes =
            std::min<std::size_t>(64, tests.size() - base);
        simulate_word(cc, tests, base, lanes, s.planes);
        const std::uint64_t lane_mask =
            lanes == 64 ? kAll : ((std::uint64_t{1} << lanes) - 1);

        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
          std::uint64_t mask = lane_mask;
          for (const auto& r : faults[fi].requirements) {
            const V3 req[3] = {r.value.a1, r.value.a2, r.value.a3};
            for (int q = 0; q < 3 && mask; ++q) {
              if (!is_specified(req[q])) continue;
              const PlaneWord& pw = s.planes[q][r.line];
              mask &= pw.known & (req[q] == V3::One ? pw.value : ~pw.value);
            }
            if (!mask) break;
          }
          matrix.word(fi, w) = mask;
        }
      }
      word_counter().add(w1 - w0);
    });
    return matrix;
  }

 private:
  struct Scratch {
    std::vector<PlaneWord> planes[3];
  };

  /// Simulates one 64-test word; planes[q][node] for q in 0..2.
  static void simulate_word(const CompiledCircuit& cc,
                            std::span<const TwoPatternTest> tests,
                            std::size_t base, std::size_t lanes,
                            std::vector<PlaneWord> planes[3]) {
    for (int q = 0; q < 3; ++q) {
      planes[q].assign(cc.node_count(), PlaneWord{});
    }

    // Pack the PI triples lane by lane.
    const std::span<const NodeId> inputs = cc.inputs();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const TwoPatternTest& t = tests[base + lane];
      if (t.pi_values.size() != inputs.size()) {
        throw std::invalid_argument("BitParallelBackend: bad test width");
      }
      const std::uint64_t bit = std::uint64_t{1} << lane;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const Triple tri = pi_triple(t.pi_values[i].a1, t.pi_values[i].a3);
        const NodeId id = inputs[i];
        const V3 vals[3] = {tri.a1, tri.a2, tri.a3};
        for (int q = 0; q < 3; ++q) {
          if (!is_specified(vals[q])) continue;
#ifdef PATHDELAY_MUTATION_BITPLANE_PACKING
          // Seeded bug (mutation testing only): a known-1 on the intermediate
          // plane loses its `known` bit during packing, so steady-state
          // intermediate requirements silently stop matching in this backend
          // while ScalarBackend still detects — the exact class of packing
          // defect the cross-backend differential check exists to catch.
          if (q == 1 && vals[q] == V3::One) {
            planes[q][id].value |= bit;
            continue;
          }
#endif
          planes[q][id].known |= bit;
          if (vals[q] == V3::One) planes[q][id].value |= bit;
        }
      }
    }

    // Word-parallel 3-valued evaluation per plane, level-packed over the
    // compiled arrays.
    for (NodeId id : cc.topo_order()) {
      const GateType t = cc.type(id);
      if (t == GateType::Input) continue;
      const std::span<const NodeId> fanin = cc.fanins(id);
      for (int q = 0; q < 3; ++q) {
        auto& out = planes[q][id];
        switch (t) {
          case GateType::Buf:
          case GateType::Not: {
            const PlaneWord& a = planes[q][fanin[0]];
            out.known = a.known;
            out.value = t == GateType::Not ? (~a.value & a.known)
                                           : (a.value & a.known);
            break;
          }
          case GateType::And:
          case GateType::Nand: {
            std::uint64_t all_one = kAll;  // every fanin known-1
            std::uint64_t any_zero = 0;    // some fanin known-0
            for (NodeId f : fanin) {
              const PlaneWord& a = planes[q][f];
              all_one &= a.value & a.known;
              any_zero |= ~a.value & a.known;
            }
            std::uint64_t one = all_one & ~any_zero;
            std::uint64_t zero = any_zero;
            if (t == GateType::Nand) std::swap(one, zero);
            out.known = one | zero;
            out.value = one;
            break;
          }
          case GateType::Or:
          case GateType::Nor: {
            std::uint64_t any_one = 0;
            std::uint64_t all_zero = kAll;
            for (NodeId f : fanin) {
              const PlaneWord& a = planes[q][f];
              any_one |= a.value & a.known;
              all_zero &= ~a.value & a.known;
            }
            std::uint64_t one = any_one;
            std::uint64_t zero = all_zero & ~any_one;
            if (t == GateType::Nor) std::swap(one, zero);
            out.known = one | zero;
            out.value = one;
            break;
          }
          case GateType::Xor:
          case GateType::Xnor: {
            // xor3 is x as soon as any input is x: known = AND over fanin
            // known, value = parity of the known values, masked to known.
            std::uint64_t known = kAll;
            std::uint64_t parity = 0;
            for (NodeId f : fanin) {
              const PlaneWord& a = planes[q][f];
              known &= a.known;
              parity ^= a.value;
            }
            out.known = known;
            out.value = (t == GateType::Xnor ? ~parity : parity) & known;
            break;
          }
          default:
            throw std::logic_error("BitParallelBackend: unsupported gate " +
                                   cc.netlist().node(id).name);
        }
      }
    }
  }

  mutable runtime::PerWorker<Scratch> scratch_;
};

}  // namespace

SimBackend& bitpar_backend() {
  static BitParallelBackend backend;
  return backend;
}

}  // namespace pdf::sim
