// FaultParallelBackend: bitpar's kernel with the parallel axis flipped to
// faults.
//
// bitpar (and the wide backends) parallelize over test-word columns, which
// starves the pool when a batch has few tests but many faults — the shape
// n-detection analysis and ADI ordering produce (thousands of path faults
// against a small candidate test set). faultpar runs the same Vec =
// std::uint64_t kernel in two phases:
//
//   A. simulate every 64-test word column (per-worker plane scratch) and
//      record each column's unique-atom masks into one shared table
//      (words x atoms), parallel over columns;
//   B. fill whole DetectionMatrix rows, parallel over faults, each task
//      reading the (now read-only) atom-mask table.
//
// Each matrix word is the same pure function of (circuit, tests, fault) as
// in bitpar, so results are bit-identical to every other backend for any
// thread count; only the schedule differs. The cross-phase state is
// O(words x unique requirement atoms) — far smaller than the plane buffer
// a naive split would keep — but still scales with the test count, so
// faultpar is never the process default; callers opt in per workload shape.
//
// The shared table and the call-wide pre-pack/plan live in the *calling*
// thread's PerWorker slot, claimed before the parallel phases: pool tasks
// write disjoint column ranges of the table in phase A and only read it in
// phase B. Under the PerWorker contract (one external thread + the pool),
// concurrent sibling calls can only be nested ones, which inline on their
// own worker slot and thus get their own buffers.
#include "sim/backend_wide.hpp"

namespace pdf::sim {
namespace {

class FaultParallelBackend final : public SimBackend {
 public:
  const char* name() const override { return "faultpar"; }
  std::size_t lanes() const override { return 64; }

  bool supports(const CompiledCircuit& cc) const override {
    return !cc.has_sequential();
  }

  DetectionMatrix detection_matrix(
      const CompiledCircuit& cc, std::span<const TwoPatternTest> tests,
      std::span<const TargetFault> faults) const override {
    Scratch& cs = scratch_.local();
    const std::size_t words = (tests.size() + 63) / 64;
    const bool packed_grow =
        cs.pack.codes.capacity() < cc.inputs().size() * words * 64 ||
        cs.pack.bits.capacity() < cc.inputs().size() * 6 * words;
    const std::size_t plan_cap = plan_capacity(cs.plan);
    pack_tests(cc, tests, "faultpar", cs.pack);
    build_req_plan(cc, faults, cs.plan);
    if (packed_grow || plan_capacity(cs.plan) != plan_cap) {
      grow_counter().add();
    }
    return run(cc, tests, faults, cs.pack, cs.plan);
  }

  DetectionMatrix detection_matrix_prepared(
      const CompiledCircuit& cc, std::span<const TwoPatternTest> tests,
      std::span<const TargetFault> faults,
      const PreparedBatch& prep) const override {
    return run(cc, tests, faults, prep.tests_pack, prep.plan);
  }

 private:
  DetectionMatrix run(const CompiledCircuit& cc,
                      std::span<const TwoPatternTest> tests,
                      std::span<const TargetFault> faults,
                      const PackedTests& pack, const ReqPlan& plan) const {
    const obs::TraceSpan span("sim.faultpar.matrix");
    const auto scope = timer().measure();
    DetectionMatrix matrix(faults.size(), tests.size());
    const std::size_t words = matrix.words_per_row();

    Scratch& cs = scratch_.local();
    const std::size_t atoms = plan.atoms.size();
    if (cs.atom_table.capacity() < words * atoms) grow_counter().add();
    cs.atom_table.resize(words * atoms);
    std::uint64_t* const table = cs.atom_table.data();

    // Phase A: simulate each 64-test column into per-worker plane scratch
    // and record its atom masks in the shared table slice.
    runtime::global_pool().parallel_for(
        words, 1, [&](std::size_t w0, std::size_t w1) {
          Scratch& s = scratch_.local();
          if (s.planes[0].capacity() < cc.node_count()) grow_counter().add();
          for (int q = 0; q < 3; ++q) s.planes[q].resize(cc.node_count());
          PlaneVec<std::uint64_t>* const planes[3] = {s.planes[0].data(),
                                                      s.planes[1].data(),
                                                      s.planes[2].data()};
          for (std::size_t w = w0; w < w1; ++w) {
            const std::size_t base = w * 64;
            const std::size_t lanes =
                std::min<std::size_t>(64, tests.size() - base);
            simulate_wide_word<std::uint64_t>(cc, pack, w, lanes, planes);
            compute_atom_masks<std::uint64_t>(plan, planes, table + w * atoms);
          }
          word_counter().add(w1 - w0);
        });

    // Phase B: one task per fault chunk fills whole rows from the table.
    const std::uint64_t tail_mask =
        words == 0 ? 0
                   : make_lane_mask<std::uint64_t>(tests.size() -
                                                   (words - 1) * 64);
    runtime::global_pool().parallel_for(
        faults.size(), 1, [&](std::size_t f0, std::size_t f1) {
          for (std::size_t fi = f0; fi < f1; ++fi) {
            for (std::size_t w = 0; w < words; ++w) {
              const std::uint64_t lane_mask =
                  w + 1 == words ? tail_mask : ~std::uint64_t{0};
              matrix.word(fi, w) = fault_mask<std::uint64_t>(
                  plan, fi, table + w * atoms, lane_mask);
            }
          }
        });
    return matrix;
  }

  struct Scratch {
    // Per-worker simulation state (phase A).
    std::vector<PlaneVec<std::uint64_t>> planes[3];
    // Call-wide state, used only through the calling thread's slot.
    PackedTests pack;
    ReqPlan plan;
    std::vector<std::uint64_t> atom_table;  // words x atoms
  };

  static runtime::Metrics::Counter& word_counter() {
    static auto& c = runtime::Metrics::global().counter("sim.faultpar.words");
    return c;
  }
  static runtime::Metrics::Counter& grow_counter() {
    static auto& c =
        runtime::Metrics::global().counter("sim.faultpar.scratch_grows");
    return c;
  }
  static runtime::Metrics::Timer& timer() {
    static auto& t = runtime::Metrics::global().timer("sim.faultpar.matrix");
    return t;
  }

  mutable runtime::PerWorker<Scratch> scratch_;
};

}  // namespace

SimBackend& faultpar_backend() {
  static FaultParallelBackend backend;
  return backend;
}

}  // namespace pdf::sim
