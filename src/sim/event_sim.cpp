#include "sim/event_sim.hpp"

#include <cassert>
#include <stdexcept>

namespace pdf {

EventSim::EventSim(const Netlist& nl) {
  if (!nl.finalized()) throw std::logic_error("EventSim: netlist not finalized");
  owned_.emplace(nl);
  init(*owned_);
}

EventSim::EventSim(const CompiledCircuit& cc) { init(cc); }

void EventSim::init(const CompiledCircuit& cc) {
  cc_ = &cc;
  if (cc.has_sequential()) {
    throw std::logic_error("EventSim: netlist is sequential");
  }
  value_.assign(cc.node_count(), kAllX);
  pi_value_.assign(cc.inputs().size(), kAllX);
  required_.assign(cc.node_count(), kAllX);
  has_requirement_.assign(cc.node_count(), false);
  buckets_.resize(static_cast<std::size_t>(cc.depth()) + 1);
  queued_.assign(cc.node_count(), false);
  // With all PIs at xxx, most internal values are xxx too, but constant-free
  // gates of nonzero arity still evaluate to xxx; a full pass keeps us exact
  // even for degenerate netlists.
  for (NodeId id : cc.topo_order()) {
    if (cc.type(id) == GateType::Input) continue;
    value_[id] = eval_node_triple(cc, id, value_.data());
  }
}

const Triple& EventSim::pi(std::size_t input_index) const {
  return pi_value_.at(input_index);
}

void EventSim::sub_counter_contribution(NodeId, const Triple& req, const Triple& val) {
  if (val.conflicts_with(req)) --violations_;
  if (!val.covers(req)) --unsatisfied_;
}

void EventSim::add_counter_contribution(NodeId id) {
  if (!has_requirement_[id]) return;
  const Triple& req = required_[id];
  const Triple& val = value_[id];
  if (val.conflicts_with(req)) ++violations_;
  if (!val.covers(req)) ++unsatisfied_;
}

void EventSim::set_node_value(NodeId id, const Triple& v) {
  if (value_[id] == v) return;
  if (txn_depth_ > 0) {
    undo_log_.push_back({ChangeKind::NodeValue, id, value_[id], false});
  }
  if (has_requirement_[id]) {
    sub_counter_contribution(id, required_[id], value_[id]);
    value_[id] = v;
    add_counter_contribution(id);
  } else {
    value_[id] = v;
  }
}

void EventSim::propagate(NodeId from) {
  // Seed the worklist with the fanouts of the changed node and process in
  // level order; each node is evaluated at most once, directly over the
  // compiled CSR arrays (no per-propagation allocation).
  const CompiledCircuit& cc = *cc_;
  int min_level = cc.depth() + 1;
  for (NodeId out : cc.fanouts(from)) {
    if (!queued_[out]) {
      queued_[out] = true;
      const int lvl = cc.level(out);
      buckets_[static_cast<std::size_t>(lvl)].push_back(out);
      if (lvl < min_level) min_level = lvl;
    }
  }
  for (std::size_t lvl = static_cast<std::size_t>(min_level); lvl < buckets_.size();
       ++lvl) {
    auto& bucket = buckets_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId id = bucket[i];
      queued_[id] = false;
      const Triple nv = eval_node_triple(cc, id, value_.data());
      if (nv == value_[id]) continue;
      set_node_value(id, nv);
      for (NodeId out : cc.fanouts(id)) {
        if (!queued_[out]) {
          queued_[out] = true;
          buckets_[static_cast<std::size_t>(cc.level(out))].push_back(out);
        }
      }
    }
    bucket.clear();
  }
}

void EventSim::set_pi(std::size_t input_index, const Triple& t) {
  const NodeId id = cc_->inputs()[input_index];
  if (pi_value_[input_index] == t) return;
  if (txn_depth_ > 0) {
    undo_log_.push_back({ChangeKind::PiValue, static_cast<NodeId>(input_index),
                         pi_value_[input_index], false});
  }
  pi_value_[input_index] = t;
  set_node_value(id, t);
  propagate(id);
}

void EventSim::reset() {
  if (txn_depth_ > 0) throw std::logic_error("EventSim::reset inside a transaction");
  undo_log_.clear();
  clear_requirements();
  for (std::size_t i = 0; i < pi_value_.size(); ++i) {
    if (!(pi_value_[i] == kAllX)) set_pi(i, kAllX);
  }
}

void EventSim::add_requirement(NodeId id, const Triple& required) {
  const Triple merged =
      has_requirement_[id] ? merge(required_[id], required) : required;
  if (has_requirement_[id] && merged == required_[id]) return;
  if (txn_depth_ > 0) {
    undo_log_.push_back(
        {ChangeKind::Requirement, id, required_[id], has_requirement_[id]});
  }
  if (has_requirement_[id]) sub_counter_contribution(id, required_[id], value_[id]);
  required_[id] = merged;
  has_requirement_[id] = true;
  add_counter_contribution(id);
}

void EventSim::clear_requirements() {
  if (txn_depth_ > 0) {
    throw std::logic_error("EventSim::clear_requirements inside a transaction");
  }
  required_.assign(cc_->node_count(), kAllX);
  has_requirement_.assign(cc_->node_count(), false);
  violations_ = 0;
  unsatisfied_ = 0;
}

std::optional<Triple> EventSim::requirement(NodeId id) const {
  if (!has_requirement_[id]) return std::nullopt;
  return required_[id];
}

std::size_t EventSim::begin_txn() {
  ++txn_depth_;
  return undo_log_.size();
}

void EventSim::rollback(std::size_t token) {
  assert(txn_depth_ > 0);
  while (undo_log_.size() > token) {
    const Change c = undo_log_.back();
    undo_log_.pop_back();
    switch (c.kind) {
      case ChangeKind::NodeValue: {
        const NodeId id = c.node;
        if (has_requirement_[id]) {
          sub_counter_contribution(id, required_[id], value_[id]);
          value_[id] = c.old_value;
          add_counter_contribution(id);
        } else {
          value_[id] = c.old_value;
        }
        break;
      }
      case ChangeKind::PiValue:
        pi_value_[c.node] = c.old_value;
        break;
      case ChangeKind::Requirement: {
        const NodeId id = c.node;
        if (has_requirement_[id]) {
          sub_counter_contribution(id, required_[id], value_[id]);
        }
        required_[id] = c.old_value;
        has_requirement_[id] = c.had_requirement;
        add_counter_contribution(id);
        break;
      }
    }
  }
  --txn_depth_;
}

void EventSim::commit(std::size_t token) {
  assert(txn_depth_ > 0);
  --txn_depth_;
  if (txn_depth_ == 0) {
    undo_log_.clear();
  } else {
    (void)token;  // inner changes stay covered by the outer transaction
  }
}

}  // namespace pdf
