#include "sim/timed_sim.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace pdf {

V3 Waveform::value_at(int t) const {
  V3 v = initial;
  for (const auto& [time, val] : changes) {
    if (time > t) break;
    v = val;
  }
  return v;
}

std::vector<Waveform> simulate_timed(const Netlist& nl,
                                     std::span<const Triple> pi_values,
                                     std::span<const int> switch_times,
                                     std::span<const int> gate_delays) {
  if (pi_values.size() != nl.inputs().size() ||
      switch_times.size() != nl.inputs().size()) {
    throw std::invalid_argument("simulate_timed: wrong PI vector size");
  }
  if (gate_delays.size() != nl.node_count()) {
    throw std::invalid_argument("simulate_timed: wrong delay vector size");
  }

  std::vector<Waveform> wf(nl.node_count());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    const Triple& t = pi_values[i];
    if (!is_specified(t.a1) || !is_specified(t.a3)) {
      throw std::invalid_argument("simulate_timed: test not fully specified");
    }
    Waveform& w = wf[nl.inputs()[i]];
    w.initial = t.a1;
    if (t.a1 != t.a3) w.changes.emplace_back(switch_times[i], t.a3);
  }

  std::vector<V3> fanin_vals;
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    if (n.type == GateType::Dff) {
      throw std::invalid_argument("simulate_timed: sequential netlist");
    }
    // Candidate evaluation instants: every fanin change time.
    std::set<int> times;
    for (NodeId f : n.fanin) {
      for (const auto& [t, v] : wf[f].changes) times.insert(t);
    }
    Waveform& out = wf[id];
    fanin_vals.clear();
    for (NodeId f : n.fanin) fanin_vals.push_back(wf[f].initial);
    out.initial = eval_gate(n.type, fanin_vals);
    V3 cur = out.initial;
    for (int t : times) {
      fanin_vals.clear();
      for (NodeId f : n.fanin) fanin_vals.push_back(wf[f].value_at(t));
      const V3 v = eval_gate(n.type, fanin_vals);
      if (v != cur) {
        out.changes.emplace_back(t + gate_delays[id], v);
        cur = v;
      }
    }
  }
  return wf;
}

}  // namespace pdf
