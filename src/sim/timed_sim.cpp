#include "sim/timed_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdf {

V3 Waveform::value_at(int t) const {
  V3 v = initial;
  for (const auto& [time, val] : changes) {
    if (time > t) break;
    v = val;
  }
  return v;
}

std::vector<Waveform> simulate_timed(const CompiledCircuit& cc,
                                     std::span<const Triple> pi_values,
                                     std::span<const int> switch_times,
                                     std::span<const int> gate_delays) {
  if (pi_values.size() != cc.inputs().size() ||
      switch_times.size() != cc.inputs().size()) {
    throw std::invalid_argument("simulate_timed: wrong PI vector size");
  }
  if (gate_delays.size() != cc.node_count()) {
    throw std::invalid_argument("simulate_timed: wrong delay vector size");
  }

  std::vector<Waveform> wf(cc.node_count());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    const Triple& t = pi_values[i];
    if (!is_specified(t.a1) || !is_specified(t.a3)) {
      throw std::invalid_argument("simulate_timed: test not fully specified");
    }
    Waveform& w = wf[cc.inputs()[i]];
    w.initial = t.a1;
    if (t.a1 != t.a3) w.changes.emplace_back(switch_times[i], t.a3);
  }

  // Reused across gates: candidate evaluation instants and gathered fanin
  // values (fixed stack buffer, bounded by kMaxGateFanin).
  std::vector<int> times;
  V3 fanin_vals[kMaxGateFanin];
  for (NodeId id : cc.topo_order()) {
    const GateType t = cc.type(id);
    if (t == GateType::Input) continue;
    if (t == GateType::Dff) {
      throw std::invalid_argument("simulate_timed: sequential netlist");
    }
    const std::span<const NodeId> fanin = cc.fanins(id);
    // Candidate evaluation instants: every fanin change time, ascending and
    // deduplicated.
    times.clear();
    for (NodeId f : fanin) {
      for (const auto& [ct, v] : wf[f].changes) times.push_back(ct);
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    Waveform& out = wf[id];
    for (std::size_t i = 0; i < fanin.size(); ++i) {
      fanin_vals[i] = wf[fanin[i]].initial;
    }
    out.initial = eval_gate(t, std::span<const V3>(fanin_vals, fanin.size()));
    V3 cur = out.initial;
    for (int at : times) {
      for (std::size_t i = 0; i < fanin.size(); ++i) {
        fanin_vals[i] = wf[fanin[i]].value_at(at);
      }
      const V3 v = eval_gate(t, std::span<const V3>(fanin_vals, fanin.size()));
      if (v != cur) {
        out.changes.emplace_back(at + gate_delays[id], v);
        cur = v;
      }
    }
  }
  return wf;
}

std::vector<Waveform> simulate_timed(const Netlist& nl,
                                     std::span<const Triple> pi_values,
                                     std::span<const int> switch_times,
                                     std::span<const int> gate_delays) {
  return simulate_timed(CompiledCircuit(nl), pi_values, switch_times,
                        gate_delays);
}

}  // namespace pdf
