// Event-driven incremental triple simulator with transactional rollback.
//
// This is the engine behind the paper's necessary-value probing (Section
// 2.1): the justification procedure repeatedly asks "if I set this PI bit to
// v, does any value required by A conflict?". A full resimulation per probe
// would dominate runtime, so this simulator
//   * keeps the triple of every node up to date under the current PI
//     assignment,
//   * propagates a PI change through its fanout cone only, in level order
//     (each affected gate is evaluated at most once per change),
//   * maintains per-line requirement triples plus two global counters —
//     `violations` (a computed component is specified opposite to a required
//     component) and `unsatisfied` (some required component is not yet
//     covered) — updated on every value change, and
//   * records every change in an undo log so a probe is apply → inspect
//     counters → rollback.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "base/triple.hpp"
#include "core/compiled_circuit.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

class EventSim {
 public:
  /// The netlist must be finalized, combinational, and outlive the simulator.
  /// Builds (and owns) a compiled view of the netlist.
  explicit EventSim(const Netlist& nl);

  /// Shares an existing compiled view (must be combinational and outlive the
  /// simulator). Lets one engine build the view once for all its components.
  explicit EventSim(const CompiledCircuit& cc);

  // The simulator may own its compiled view; copying would dangle the
  // internal pointer, so instances are pinned.
  EventSim(const EventSim&) = delete;
  EventSim& operator=(const EventSim&) = delete;

  const Netlist& netlist() const { return cc_->netlist(); }
  const CompiledCircuit& circuit() const { return *cc_; }

  // ---- assignment ----------------------------------------------------------

  /// Sets the triple of the i-th primary input (index into nl.inputs()) and
  /// propagates. Changes are recorded for rollback if a transaction is open.
  void set_pi(std::size_t input_index, const Triple& t);

  /// Resets every PI to xxx and clears all requirements. Not undoable.
  void reset();

  const Triple& pi(std::size_t input_index) const;
  const Triple& value(NodeId id) const { return value_[id]; }
  std::span<const Triple> values() const { return value_; }

  // ---- requirements --------------------------------------------------------

  /// Installs/merges a requirement on a line. The caller guarantees the new
  /// requirement does not conflict with an already-installed one on the same
  /// line (RequirementSet enforces that invariant). Undoable.
  void add_requirement(NodeId id, const Triple& required);

  /// Removes all requirements. Not undoable (use between tests).
  void clear_requirements();

  /// Number of required lines whose computed value has a specified component
  /// opposite to a required component — any probe/assignment making this
  /// nonzero is a conflict in the paper's sense.
  int violations() const { return violations_; }

  /// Number of required lines not yet fully covered by computed values. A
  /// completed test is valid iff this is zero.
  int unsatisfied() const { return unsatisfied_; }

  std::optional<Triple> requirement(NodeId id) const;

  // ---- transactions --------------------------------------------------------

  /// Marks a rollback point. Transactions nest (the returned token must be
  /// passed to the matching rollback/commit).
  std::size_t begin_txn();
  /// Undoes every change since the token's rollback point.
  void rollback(std::size_t token);
  /// Keeps the changes; the rollback point disappears (outer transactions
  /// still cover them).
  void commit(std::size_t token);
  bool in_txn() const { return txn_depth_ > 0; }

 private:
  enum class ChangeKind : std::uint8_t { NodeValue, PiValue, Requirement };
  struct Change {
    ChangeKind kind;
    NodeId node;             // node id (NodeValue/Requirement) or input index (PiValue)
    Triple old_value;        // previous value / previous requirement
    bool had_requirement;    // Requirement changes: whether one existed before
  };

  void init(const CompiledCircuit& cc);
  void propagate(NodeId from);
  void set_node_value(NodeId id, const Triple& v);
  void update_counters_for(NodeId id, const Triple& old_req, bool had_old,
                           const Triple& old_val);
  // Recomputes the counter contribution of line `id` given its old
  // requirement/value status already subtracted.
  void add_counter_contribution(NodeId id);
  void sub_counter_contribution(NodeId id, const Triple& req, const Triple& val);

  std::optional<CompiledCircuit> owned_;  // set by the Netlist constructor
  const CompiledCircuit* cc_;
  std::vector<Triple> value_;
  std::vector<Triple> pi_value_;

  std::vector<Triple> required_;
  std::vector<bool> has_requirement_;

  int violations_ = 0;
  int unsatisfied_ = 0;

  // Level-bucketed worklist (reused across propagations).
  std::vector<std::vector<NodeId>> buckets_;
  std::vector<bool> queued_;

  std::vector<Change> undo_log_;
  int txn_depth_ = 0;
};

}  // namespace pdf
