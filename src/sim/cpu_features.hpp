// Runtime CPU-capability probe for the SIMD simulation backends.
//
// The wide backends (avx2, avx512) are compiled into every binary — their
// translation units carry the -mavx2 / -mavx512f flags — but they are only
// *registered* (and thus reachable) when the host CPU reports the matching
// feature bits. The probe runs once, on first use, from a TU compiled with
// the baseline ISA, so merely asking the question never executes a wide
// instruction.
//
// The PDF_SIMD environment variable caps (never raises) the detected level:
//   PDF_SIMD=none     pretend the host has no wide SIMD (scalar/bitpar only)
//   PDF_SIMD=avx2     cap at AVX2 even when AVX-512 is available
//   PDF_SIMD=avx512   no cap (the default behavior, spelled out)
// This is the supported way to exercise the "host without AVX" degradation
// paths on a host that has it — tests and CI use it.
#pragma once

namespace pdf::sim {

/// Widest supported register width family, ordered so levels compare.
enum class SimdLevel {
  kNone = 0,    // no usable wide SIMD (or a non-x86 host)
  kAvx2 = 1,    // 256-bit integer ops
  kAvx512 = 2,  // 512-bit foundation (AVX-512F)
};

/// The host's level as reported by cpuid, ignoring PDF_SIMD. Computed once.
SimdLevel detected_simd_level();

/// detected_simd_level() capped by the PDF_SIMD environment variable (read
/// once, at first call — set it before the process touches any backend).
/// This is what the backend registry consults.
SimdLevel simd_level();

/// "none" | "avx2" | "avx512" — for log lines and diagnostics.
const char* simd_level_name(SimdLevel level);

}  // namespace pdf::sim
