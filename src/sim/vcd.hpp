// VCD (Value Change Dump) export of timed two-pattern waveforms.
//
// Lets the waveforms produced by simulate_timed be inspected in any standard
// waveform viewer (GTKWave etc.) — invaluable when debugging why a defect
// escapes a test or how a hazard forms. One VCD file covers one two-pattern
// test application.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "netlist/netlist.hpp"
#include "sim/timed_sim.hpp"

namespace pdf {

/// Writes the waveforms (one per node, indexed by NodeId) as VCD. The
/// timescale is nominal "1ns" per delay unit.
void write_vcd(std::ostream& out, const Netlist& nl,
               std::span<const Waveform> waveforms,
               const std::string& comment = {});

std::string vcd_to_string(const Netlist& nl, std::span<const Waveform> waveforms,
                          const std::string& comment = {});

}  // namespace pdf
