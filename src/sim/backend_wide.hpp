// Width-generic bit-parallel simulation kernel shared by the bitpar,
// faultpar, avx2 and avx512 backends.
//
// The 64-tests/word kernel from PR 6 generalized over the word type: `Vec`
// is either plain std::uint64_t (64 lanes) or a GCC vector-extension type —
// uint64_t __attribute__((vector_size(32))) for 256 lanes (AVX2) or
// vector_size(64) for 512 lanes (AVX-512). All plane math is the same
// bitwise AND/NAND/OR/NOR/XOR/XNOR evaluation and per-fault requirement
// masking; the vector types just carry 4 or 8 independent 64-test subwords
// per register. Lane L of a wide word is bit (L % 64) of subword (L / 64),
// so subword k of wide word w is exactly DetectionMatrix word w*K+k — the
// wide kernels produce the same bytes as bitpar by construction, and the
// parameterized test_backend suite + all-pairs `backends_agree` enforce it.
//
// The width-independent setup — transposed PI bit-pack and the
// requirement-atom plan — lives in sim/prepared.{hpp,cpp} (plain uint64
// data, ordinary linkage, compiled baseline). The kernel here only reads
// it: a wide word's input planes are K consecutive subword loads, and the
// per-word mask phase is dense ANDs over precomputed atom masks. Callers
// either pass a reusable PreparedBatch (detection_matrix_prepared — the
// sweep path) or let the backend build both stages into its scratch per
// call (detection_matrix).
//
// EVERYTHING in this header lives in an anonymous namespace on purpose.
// The including TUs are compiled with different ISA flags (backend_avx2.cpp
// gets -mavx2, backend_avx512.cpp gets -mavx512f, the others baseline). With
// ordinary inline/comdat linkage the linker may keep the AVX-compiled copy
// of a shared helper and hand it to the baseline backends — an illegal
// instruction on hosts without AVX. Internal linkage gives every TU its own
// copy compiled with its own flags, which is the whole point of per-TU
// flags. Only the four backend .cpp files may include this header.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/compiled_circuit.hpp"
#include "faults/screen.hpp"
#include "faultsim/detection_matrix.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/per_worker.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/backend.hpp"
#include "sim/prepared.hpp"
#include "sim/triple_sim.hpp"

namespace pdf::sim {
namespace {

/// Subword access uniform across plain uint64_t and vector-extension types.
template <typename Vec>
struct VecOps {
  static constexpr std::size_t kSubwords = sizeof(Vec) / sizeof(std::uint64_t);
  static constexpr std::size_t kLanes = kSubwords * 64;
  static Vec ones() { return ~Vec{}; }
  static std::uint64_t sub(const Vec& v, std::size_t k) { return v[k]; }
  static void or_sub(Vec& v, std::size_t k, std::uint64_t bits) {
    v[k] |= bits;
  }
  static void xor_sub(Vec& v, std::size_t k, std::uint64_t bits) {
    v[k] ^= bits;
  }
  static bool any(const Vec& v) {
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < kSubwords; ++k) acc |= v[k];
    return acc != 0;
  }
};

template <>
struct VecOps<std::uint64_t> {
  static constexpr std::size_t kSubwords = 1;
  static constexpr std::size_t kLanes = 64;
  static std::uint64_t ones() { return ~std::uint64_t{0}; }
  static std::uint64_t sub(std::uint64_t v, std::size_t) { return v; }
  static void or_sub(std::uint64_t& v, std::size_t, std::uint64_t bits) {
    v |= bits;
  }
  static void xor_sub(std::uint64_t& v, std::size_t, std::uint64_t bits) {
    v ^= bits;
  }
  static bool any(std::uint64_t v) { return v != 0; }
};

/// One 3-valued signal across kLanes tests: a bit of `value` is meaningful
/// (and may be 1) only where the matching `known` bit is set.
template <typename Vec>
struct PlaneVec {
  Vec value{};
  Vec known{};
};

/// Mask with the low `lanes` lane bits set (full words in low subwords, one
/// partial subword, zero above) — the tail guard for a partial final word.
template <typename Vec>
Vec make_lane_mask(std::size_t lanes) {
  using Ops = VecOps<Vec>;
  Vec m{};
  for (std::size_t k = 0; k < Ops::kSubwords; ++k) {
    const std::size_t lo = k * 64;
    std::uint64_t bits = 0;
    if (lanes >= lo + 64) {
      bits = ~std::uint64_t{0};
    } else if (lanes > lo) {
      bits = (std::uint64_t{1} << (lanes - lo)) - 1;
    }
    Ops::or_sub(m, k, bits);
  }
  return m;
}

/// Simulates wide word `w` (tests [w*kLanes, w*kLanes + lanes)) into
/// planes[q][node]: loads each input's packed subwords from the call-wide
/// pre-pack, then evaluates gates word-parallel in topo order. Every node is
/// written (inputs here, every gate by the topo sweep — supports() rejects
/// sequential circuits), so no zeroing pass is needed.
template <typename Vec>
void simulate_wide_word(const CompiledCircuit& cc, const PackedTests& pt,
                        std::size_t w, std::size_t lanes,
                        PlaneVec<Vec>* const planes[3]) {
  using Ops = VecOps<Vec>;
  const Vec kAll = Ops::ones();
  const std::span<const NodeId> inputs = cc.inputs();

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (int q = 0; q < 3; ++q) {
      const std::uint64_t* kr = pt.row(i, q, 0);
      const std::uint64_t* vr = pt.row(i, q, 1);
      Vec known{};
      Vec value{};
      for (std::size_t k = 0; k < Ops::kSubwords; ++k) {
        const std::size_t col = w * Ops::kSubwords + k;
        if (col >= pt.words64) break;
        Ops::or_sub(known, k, kr[col]);
        Ops::or_sub(value, k, vr[col]);
      }
      planes[q][inputs[i]] = PlaneVec<Vec>{value, known};
    }
  }

#ifdef PATHDELAY_MUTATION_WIDE_LANE_SHUFFLE
  // Seeded bug (mutation testing only): lanes 1 and 65 swap places whenever
  // a word actually spans multiple 64-lane subwords — the canonical
  // lane-ordering defect a wide pack can have. Subword results land in the
  // wrong DetectionMatrix columns, so any wide backend disagrees with
  // scalar/bitpar on batches > 65 tests; the 64-lane backends are immune
  // (the swap needs lane 65 to exist), which is exactly why the
  // cross-backend battery must include a wide one.
  if constexpr (Ops::kSubwords > 1) {
    if (lanes > 65) {
      const auto swap_bit1 = [](Vec& x) {
        const std::uint64_t b1 = (Ops::sub(x, 0) >> 1) & 1;
        const std::uint64_t b65 = (Ops::sub(x, 1) >> 1) & 1;
        if (b1 != b65) {
          Ops::xor_sub(x, 0, 2);
          Ops::xor_sub(x, 1, 2);
        }
      };
      for (NodeId id : inputs) {
        for (int q = 0; q < 3; ++q) {
          swap_bit1(planes[q][id].value);
          swap_bit1(planes[q][id].known);
        }
      }
    }
  }
#endif
  (void)lanes;

  // Word-parallel 3-valued evaluation per plane, level-packed over the
  // compiled arrays.
  for (NodeId id : cc.topo_order()) {
    const GateType t = cc.type(id);
    if (t == GateType::Input) continue;
    const std::span<const NodeId> fanin = cc.fanins(id);
    for (int q = 0; q < 3; ++q) {
      auto& out = planes[q][id];
      switch (t) {
        case GateType::Buf:
        case GateType::Not: {
          const PlaneVec<Vec>& a = planes[q][fanin[0]];
          out.known = a.known;
          out.value = t == GateType::Not ? (~a.value & a.known)
                                         : (a.value & a.known);
          break;
        }
        case GateType::And:
        case GateType::Nand: {
          Vec all_one = kAll;  // every fanin known-1
          Vec any_zero{};      // some fanin known-0
          for (NodeId f : fanin) {
            const PlaneVec<Vec>& a = planes[q][f];
            all_one &= a.value & a.known;
            any_zero |= ~a.value & a.known;
          }
          Vec one = all_one & ~any_zero;
          Vec zero = any_zero;
          if (t == GateType::Nand) std::swap(one, zero);
          out.known = one | zero;
          out.value = one;
          break;
        }
        case GateType::Or:
        case GateType::Nor: {
          Vec any_one{};
          Vec all_zero = kAll;
          for (NodeId f : fanin) {
            const PlaneVec<Vec>& a = planes[q][f];
            any_one |= a.value & a.known;
            all_zero &= ~a.value & a.known;
          }
          Vec one = any_one;
          Vec zero = all_zero & ~any_one;
          if (t == GateType::Nor) std::swap(one, zero);
          out.known = one | zero;
          out.value = one;
          break;
        }
        case GateType::Xor:
        case GateType::Xnor: {
          // xor3 is x as soon as any input is x: known = AND over fanin
          // known, value = parity of the known values, masked to known.
          Vec known = kAll;
          Vec parity{};
          for (NodeId f : fanin) {
            const PlaneVec<Vec>& a = planes[q][f];
            known &= a.known;
            parity ^= a.value;
          }
          out.known = known;
          out.value = (t == GateType::Xnor ? ~parity : parity) & known;
          break;
        }
        default:
          throw std::logic_error("wide backend: unsupported gate " +
                                 cc.netlist().node(id).name);
      }
    }
  }
}

/// One simulated word's mask per unique atom: atom (line, q, polarity)
/// holds on a lane iff the plane is known with the required value there.
template <typename Vec>
void compute_atom_masks(const ReqPlan& plan,
                        const PlaneVec<Vec>* const planes[3], Vec* out) {
  for (std::size_t u = 0; u < plan.atoms.size(); ++u) {
    const std::uint32_t a = plan.atoms[u];
    const PlaneVec<Vec>& pw = planes[(a % 6) / 2][a / 6];
    out[u] = pw.known & ((a & 1) ? pw.value : ~pw.value);
  }
}

/// Detection word of fault `fi`: AND over its atoms' precomputed masks,
/// early-exiting once every lane is dead.
template <typename Vec>
Vec fault_mask(const ReqPlan& plan, std::size_t fi, const Vec* atom_masks,
               Vec lane_mask) {
  using Ops = VecOps<Vec>;
  Vec mask = lane_mask;
  const std::uint32_t* ids = plan.ids.data();
  const std::uint32_t end = plan.offsets[fi + 1];
  for (std::uint32_t k = plan.offsets[fi]; k < end; ++k) {
    mask &= atom_masks[ids[k]];
    if (!Ops::any(mask)) break;
  }
  return mask;
}

/// The test-parallel backend family: simulate one Vec-wide column of tests,
/// then mask every fault against it. bitpar is WideBackend<uint64_t>; avx2
/// and avx512 instantiate it with 256/512-bit vector types in TUs compiled
/// with the matching ISA flags. Parallelizes over wide-word columns with
/// chunk 1, like the PR 6 bitpar loop: every matrix word is a pure function
/// of (circuit, tests, fault), so any partition of the columns over workers
/// produces the same bytes — thread-count determinism by construction.
template <typename Vec>
class WideBackend final : public SimBackend {
 public:
  /// `name` and `span_name` must be string literals (they are stored).
  WideBackend(const char* name, const char* span_name)
      : name_(name),
        span_name_(span_name),
        words_(runtime::Metrics::global().counter(std::string("sim.") + name +
                                                  ".words")),
        grows_(runtime::Metrics::global().counter(std::string("sim.") + name +
                                                  ".scratch_grows")),
        timer_(runtime::Metrics::global().timer(std::string("sim.") + name +
                                                ".matrix")) {}

  const char* name() const override { return name_; }
  std::size_t lanes() const override { return Ops::kLanes; }

  bool supports(const CompiledCircuit& cc) const override {
    return !cc.has_sequential();
  }

  DetectionMatrix detection_matrix(
      const CompiledCircuit& cc, std::span<const TwoPatternTest> tests,
      std::span<const TargetFault> faults) const override {
    // Per-call setup on the calling thread's scratch slot; the parallel
    // phase only reads it. A nested call inlines on its own worker slot,
    // so the buffers can't alias.
    Scratch& cs = scratch_.local();
    const std::size_t words64 = (tests.size() + 63) / 64;
    const bool packed_grow =
        cs.pack.codes.capacity() < cc.inputs().size() * words64 * 64 ||
        cs.pack.bits.capacity() < cc.inputs().size() * 6 * words64;
    const std::size_t plan_cap = plan_capacity(cs.plan);
    pack_tests(cc, tests, name_, cs.pack);
    build_req_plan(cc, faults, cs.plan);
    if (packed_grow || plan_capacity(cs.plan) != plan_cap) grows_.add();
    return run(cc, tests, faults, cs.pack, cs.plan);
  }

  DetectionMatrix detection_matrix_prepared(
      const CompiledCircuit& cc, std::span<const TwoPatternTest> tests,
      std::span<const TargetFault> faults,
      const PreparedBatch& prep) const override {
    return run(cc, tests, faults, prep.tests_pack, prep.plan);
  }

 private:
  using Ops = VecOps<Vec>;
  struct Scratch {
    // Per-worker simulation state.
    std::vector<PlaneVec<Vec>> planes[3];
    std::vector<Vec> atom_masks;
    // Per-call setup, used only through the calling thread's slot.
    PackedTests pack;
    ReqPlan plan;
  };

  DetectionMatrix run(const CompiledCircuit& cc,
                      std::span<const TwoPatternTest> tests,
                      std::span<const TargetFault> faults,
                      const PackedTests& pack, const ReqPlan& plan) const {
    const obs::TraceSpan span(span_name_);
    const auto scope = timer_.measure();
    DetectionMatrix matrix(faults.size(), tests.size());
    const std::size_t words_per_row = matrix.words_per_row();
    const std::size_t wide_words =
        (tests.size() + Ops::kLanes - 1) / Ops::kLanes;

    runtime::global_pool().parallel_for(
        wide_words, 1, [&](std::size_t w0, std::size_t w1) {
          Scratch& s = scratch_.local();
          if (s.planes[0].capacity() < cc.node_count() ||
              s.atom_masks.capacity() < plan.atoms.size()) {
            grows_.add();
          }
          for (int q = 0; q < 3; ++q) s.planes[q].resize(cc.node_count());
          s.atom_masks.resize(plan.atoms.size());
          PlaneVec<Vec>* const planes[3] = {s.planes[0].data(),
                                            s.planes[1].data(),
                                            s.planes[2].data()};
          for (std::size_t w = w0; w < w1; ++w) {
            const std::size_t base = w * Ops::kLanes;
            const std::size_t lanes =
                std::min<std::size_t>(Ops::kLanes, tests.size() - base);
            simulate_wide_word<Vec>(cc, pack, w, lanes, planes);
            compute_atom_masks<Vec>(plan, planes, s.atom_masks.data());
            const Vec lane_mask = make_lane_mask<Vec>(lanes);

            for (std::size_t fi = 0; fi < faults.size(); ++fi) {
              const Vec mask =
                  fault_mask<Vec>(plan, fi, s.atom_masks.data(), lane_mask);
              // Subword k is matrix word w*K+k; the final wide word may
              // extend past the row (its high subwords are all-zero under
              // lane_mask), so guard the column index.
              for (std::size_t k = 0; k < Ops::kSubwords; ++k) {
                const std::size_t col = w * Ops::kSubwords + k;
                if (col >= words_per_row) break;
                matrix.word(fi, col) = Ops::sub(mask, k);
              }
            }
          }
          words_.add(w1 - w0);
        });
    return matrix;
  }

  const char* name_;
  const char* span_name_;
  runtime::Metrics::Counter& words_;
  runtime::Metrics::Counter& grows_;
  runtime::Metrics::Timer& timer_;
  mutable runtime::PerWorker<Scratch> scratch_;
};

}  // namespace
}  // namespace pdf::sim
