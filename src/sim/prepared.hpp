// Reusable per-batch precomputation for the packed simulation backends.
//
// A detection-matrix query has two width-independent setup stages that cost
// O(tests x inputs) and O(total requirements) scalar work per call:
//
//   * PackedTests — the batch's PI triples transposed and bit-packed at
//     64-bit granularity (6 bit-planes per input: known/value for each of
//     the a1/a2/a3 triple planes, 64 tests per word). Every packed backend
//     width reads the same subwords — a Vec-wide word w loads word64
//     columns [w*K, w*K+K) — which is what makes the backends bit-identical
//     by construction.
//   * ReqPlan — every fault's requirements flattened to *atoms*: single
//     (line, plane, polarity) conditions encoded line*6 + q*2 + (value==1),
//     deduplicated across the fault set. Path faults share most requirement
//     lines, so each simulated word computes every unique atom's mask once
//     and a fault's detection word reduces to sequential ANDs over a dense
//     table.
//
// The sweep workloads (n-detection analysis, ADI ordering, enrichment
// coverage) mask the same tests and faults over and over; preparing once
// and passing the PreparedBatch to detection_matrix_prepared() removes the
// setup from every repeated call. Everything here is plain std::uint64_t
// data — no SIMD types — so it has ordinary external linkage and is shared
// by all backend TUs regardless of their ISA flags.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/test_pattern.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/screen.hpp"

namespace pdf::sim {

/// The whole test batch's PI planes, packed 64 tests per std::uint64_t.
struct PackedTests {
  std::size_t words64 = 0;
  std::size_t inputs = 0;
  /// Transpose scratch: `inputs` rows of words64*64 predicate bytes.
  std::vector<std::uint8_t> codes;
  /// Packed planes: rows indexed by (input, plane q, known=0/value=1).
  std::vector<std::uint64_t> bits;

  const std::uint64_t* row(std::size_t i, int q, int which) const {
    return bits.data() + ((i * 3 + q) * 2 + which) * words64;
  }
  std::uint64_t* row(std::size_t i, int q, int which) {
    return bits.data() + ((i * 3 + q) * 2 + which) * words64;
  }
};

/// Transposes and bit-packs the batch; validates every test's width against
/// cc.inputs() (throws std::invalid_argument naming `backend_name`).
/// Reuses the struct's buffers — steady-state calls allocate nothing.
void pack_tests(const CompiledCircuit& cc,
                std::span<const TwoPatternTest> tests,
                const char* backend_name, PackedTests& pt);

/// The fault set's requirements as deduplicated atoms.
struct ReqPlan {
  std::vector<std::uint32_t> atoms;    ///< unique atom codes
  std::vector<std::uint32_t> offsets;  ///< fault f's ids are [f, f+1)
  std::vector<std::uint32_t> ids;      ///< atom indices, fault-major
  std::vector<std::int32_t> lut;       ///< dense node_count*6 dedup scratch
};

/// Builds the plan; reuses the struct's buffers across calls.
void build_req_plan(const CompiledCircuit& cc,
                    std::span<const TargetFault> faults, ReqPlan& plan);

/// Sum of vector capacities — a cheap "did any buffer reallocate" probe
/// (capacities never shrink under clear()/assign()).
inline std::size_t plan_capacity(const ReqPlan& plan) {
  return plan.atoms.capacity() + plan.offsets.capacity() +
         plan.ids.capacity() + plan.lut.capacity();
}

/// Both setup stages bundled for SimBackend::detection_matrix_prepared().
/// Valid for exactly the (circuit, tests, faults) it was built from —
/// callers own the pairing (BatchSimulator::prepare does it for them).
struct PreparedBatch {
  PackedTests tests_pack;
  ReqPlan plan;
};

/// Convenience: packs tests and plans faults in one shot.
void prepare_batch(const CompiledCircuit& cc,
                   std::span<const TwoPatternTest> tests,
                   std::span<const TargetFault> faults, PreparedBatch& prep);

}  // namespace pdf::sim
