// Full-pass two-pattern (triple) simulation.
//
// The triple algebra decomposes into three independent three-valued planes
// (first pattern / intermediate / second pattern); planes are coupled only at
// primary inputs, where the intermediate value of a PI is its stable value if
// both patterns agree and x otherwise. Internally each plane is an ordinary
// 3-valued simulation of the same netlist, evaluated in topological order.
//
// The intermediate plane implements the conservative hazard semantics the
// paper's robust constraints rely on: an internal line's intermediate value
// is specified only when the logic provably holds it steady for every
// possible skew of the transitioning inputs (e.g. a steady controlling side
// input blocks all hazards).
//
// Two entry points per simulation:
//   * the `Netlist` overloads walk the node graph directly and allocate the
//     result — the legacy reference path, kept as the differential-testing
//     baseline;
//   * the `CompiledCircuit` overloads run linear scans over the flattened
//     arrays into a caller-owned `SimScratch` and allocate nothing in the
//     steady state — the execution path every engine uses.
// Both produce bit-identical values.
#pragma once

#include <span>
#include <vector>

#include "base/triple.hpp"
#include "core/compiled_circuit.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

/// Derives a primary-input triple from its two decision bits (first/second
/// pattern values). The intermediate value is b1 when b1 == b3 and both are
/// specified, x otherwise.
Triple pi_triple(V3 b1, V3 b3);

/// Evaluates one gate over fanin triples (plane-wise). Fanin count must not
/// exceed kMaxGateFanin (Netlist::finalize() guarantees this).
Triple eval_gate_triple(GateType t, std::span<const Triple> fanin);

/// Simulates the whole netlist. `pi_values[i]` is the triple of
/// nl.inputs()[i]. Returns one triple per node (indexed by NodeId).
/// The netlist must be finalized and combinational.
std::vector<Triple> simulate(const Netlist& nl, std::span<const Triple> pi_values);

/// Single-plane (classic 3-valued) simulation helper.
std::vector<V3> simulate_plane(const Netlist& nl, std::span<const V3> pi_values);

/// Compiled-core simulation: fills scratch.triples (one triple per node) and
/// returns a view of it. No allocation once the scratch is warm.
std::span<const Triple> simulate(const CompiledCircuit& cc,
                                 std::span<const Triple> pi_values,
                                 SimScratch& scratch);

/// Compiled-core single-plane simulation into scratch.plane.
std::span<const V3> simulate_plane(const CompiledCircuit& cc,
                                   std::span<const V3> pi_values,
                                   SimScratch& scratch);

}  // namespace pdf
