// ScalarBackend: the compiled triple simulator run once per test.
//
// This is the reference implementation of the SimBackend contract — one
// `simulate(cc, pis, scratch)` pass per test, then a `Triple::covers` walk
// over every fault's requirement list. It deliberately parallelizes over the
// same 64-test word columns as the bit-parallel backend (not over individual
// tests), so the two backends share one parallel decomposition: each task
// owns a disjoint set of matrix word columns, writes race nothing, and the
// result is bit-identical at any thread count.
#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/per_worker.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/backend.hpp"
#include "sim/triple_sim.hpp"

namespace pdf::sim {
namespace {

runtime::Metrics::Counter& word_counter() {
  static auto& c = runtime::Metrics::global().counter("sim.scalar.words");
  return c;
}
runtime::Metrics::Counter& grow_counter() {
  static auto& c =
      runtime::Metrics::global().counter("sim.scalar.scratch_grows");
  return c;
}
runtime::Metrics::Timer& matrix_timer() {
  static auto& t = runtime::Metrics::global().timer("sim.scalar.matrix");
  return t;
}

class ScalarBackend final : public SimBackend {
 public:
  const char* name() const override { return "scalar"; }

  bool supports(const CompiledCircuit& cc) const override {
    return !cc.has_sequential();
  }

  DetectionMatrix detection_matrix(
      const CompiledCircuit& cc, std::span<const TwoPatternTest> tests,
      std::span<const TargetFault> faults) const override {
    PDF_TRACE_SPAN("sim.scalar.matrix");
    const auto scope = matrix_timer().measure();
    DetectionMatrix matrix(faults.size(), tests.size());
    const std::size_t words = matrix.words_per_row();
    const std::span<const NodeId> inputs = cc.inputs();

    runtime::global_pool().parallel_for(words, 1, [&](std::size_t w0,
                                                      std::size_t w1) {
      Scratch& s = scratch_.local();
      if (s.sim.triples.capacity() < cc.node_count() ||
          s.pis.capacity() < inputs.size()) {
        grow_counter().add();
      }
      for (std::size_t w = w0; w < w1; ++w) {
        const std::size_t base = w * 64;
        const std::size_t lanes =
            std::min<std::size_t>(64, tests.size() - base);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          const TwoPatternTest& t = tests[base + lane];
          if (t.pi_values.size() != inputs.size()) {
            throw std::invalid_argument("ScalarBackend: bad test width");
          }
          s.pis.resize(inputs.size());
          for (std::size_t i = 0; i < inputs.size(); ++i) {
            s.pis[i] = pi_triple(t.pi_values[i].a1, t.pi_values[i].a3);
          }
          const std::span<const Triple> values = simulate(cc, s.pis, s.sim);
          const std::uint64_t bit = std::uint64_t{1} << lane;
          for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            bool ok = true;
            for (const auto& r : faults[fi].requirements) {
              if (!values[r.line].covers(r.value)) {
                ok = false;
                break;
              }
            }
            if (ok) matrix.word(fi, w) |= bit;
          }
        }
      }
      word_counter().add(w1 - w0);
    });
    return matrix;
  }

 private:
  struct Scratch {
    SimScratch sim;
    std::vector<Triple> pis;  // normalized PI triples of the current test
  };
  mutable runtime::PerWorker<Scratch> scratch_;
};

}  // namespace

SimBackend& scalar_backend() {
  static ScalarBackend backend;
  return backend;
}

}  // namespace pdf::sim
