// Batch pre-pack and requirement planning (see prepared.hpp). Compiled
// baseline — the packed data is plain uint64 words every backend TU reads.
#include "sim/prepared.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/triple_sim.hpp"

namespace pdf::sim {
namespace {

/// Predicate byte of one PI triple: bit 2q = plane q known, bit 2q+1 =
/// plane q value (q over the a1/a2/a3 planes of pi_triple(b1, b3)).
std::uint8_t pi_code(V3 b1, V3 b3) {
  const Triple tri = pi_triple(b1, b3);
  const V3 vals[3] = {tri.a1, tri.a2, tri.a3};
  std::uint8_t code = 0;
  for (int q = 0; q < 3; ++q) {
    if (!is_specified(vals[q])) continue;
#ifdef PATHDELAY_MUTATION_BITPLANE_PACKING
    // Seeded bug (mutation testing only): a known-1 on the intermediate
    // plane loses its `known` bit during packing, so steady-state
    // intermediate requirements silently stop matching in the packed
    // backends while ScalarBackend still detects — the exact class of
    // packing defect the cross-backend differential check exists to catch.
    if (q == 1 && vals[q] == V3::One) {
      code = static_cast<std::uint8_t>(code | (2u << (2 * q)));
      continue;
    }
#endif
    code = static_cast<std::uint8_t>(code | (1u << (2 * q)));
    if (vals[q] == V3::One) {
      code = static_cast<std::uint8_t>(code | (2u << (2 * q)));
    }
  }
  return code;
}

/// pi_code over all 9 (b1, b3) combinations, indexed [b1][b3].
struct PiCodeTable {
  std::uint8_t code[3][3];
  PiCodeTable() {
    const V3 vals[3] = {V3::Zero, V3::One, V3::X};
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        code[static_cast<int>(vals[a])][static_cast<int>(vals[b])] =
            pi_code(vals[a], vals[b]);
      }
    }
  }
};

/// A requirement triple's atoms as (q*2 | polarity) nibbles, precomputed
/// for all 27 (a1, a2, a3) combinations — the plan builder's inner loop is
/// then a table walk instead of three is_specified branches per plane.
struct ReqCodeTable {
  struct Entry {
    std::uint8_t count = 0;
    std::uint8_t qp[3] = {0, 0, 0};  // q * 2 + (value == 1)
  };
  Entry entry[27];
  ReqCodeTable() {
    const V3 vals[3] = {V3::Zero, V3::One, V3::X};
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        for (int c = 0; c < 3; ++c) {
          Entry& e = entry[(a * 3 + b) * 3 + c];
          const V3 planes[3] = {vals[a], vals[b], vals[c]};
          for (int q = 0; q < 3; ++q) {
            if (!is_specified(planes[q])) continue;
            e.qp[e.count++] = static_cast<std::uint8_t>(
                q * 2 + (planes[q] == V3::One ? 1 : 0));
          }
        }
      }
    }
  }
  static int key(const Triple& t) {
    return (static_cast<int>(t.a1) * 3 + static_cast<int>(t.a2)) * 3 +
           static_cast<int>(t.a3);
  }
};

}  // namespace

void pack_tests(const CompiledCircuit& cc,
                std::span<const TwoPatternTest> tests,
                const char* backend_name, PackedTests& pt) {
  static const PiCodeTable kCodes;
  const std::span<const NodeId> inputs = cc.inputs();
  const std::size_t ni = inputs.size();
  const std::size_t words64 = (tests.size() + 63) / 64;
  pt.words64 = words64;
  pt.inputs = ni;
  pt.codes.assign(ni * words64 * 64, 0);
  pt.bits.assign(ni * 6 * words64, 0);

  // Transpose: test-major reads (each test's pi_values is contiguous),
  // input-major writes into per-input code rows.
  for (std::size_t t = 0; t < tests.size(); ++t) {
    const TwoPatternTest& tp = tests[t];
    if (tp.pi_values.size() != ni) {
      throw std::invalid_argument(std::string(backend_name) +
                                  " backend: bad test width");
    }
    const Triple* pv = tp.pi_values.data();
    std::uint8_t* col = pt.codes.data() + t;
    for (std::size_t i = 0; i < ni; ++i) {
      col[i * words64 * 64] =
          kCodes.code[static_cast<int>(pv[i].a1)][static_cast<int>(pv[i].a3)];
    }
  }

  // Gather each predicate bit of 64 codes into one packed word: bytes
  // restricted to 0/1, * 0x0102040810204080 pulls byte k's LSB to bit
  // 56+k with no cross-term carries (all 64 partial products land on
  // distinct bit positions).
  constexpr std::uint64_t kLsb = 0x0101010101010101ull;
  constexpr std::uint64_t kGather = 0x0102040810204080ull;
  for (std::size_t i = 0; i < ni; ++i) {
    const std::uint8_t* row = pt.codes.data() + i * words64 * 64;
    for (std::size_t w = 0; w < words64; ++w) {
      std::uint64_t chunk[8];
      std::memcpy(chunk, row + w * 64, 64);
      for (int q = 0; q < 3; ++q) {
        std::uint64_t known = 0;
        std::uint64_t value = 0;
        for (int j = 0; j < 8; ++j) {
          const std::uint64_t kb = (chunk[j] >> (2 * q)) & kLsb;
          const std::uint64_t vb = (chunk[j] >> (2 * q + 1)) & kLsb;
          known |= ((kb * kGather) >> 56) << (8 * j);
          value |= ((vb * kGather) >> 56) << (8 * j);
        }
        pt.row(i, q, 0)[w] = known;
        pt.row(i, q, 1)[w] = value;
      }
    }
  }
}

void build_req_plan(const CompiledCircuit& cc,
                    std::span<const TargetFault> faults, ReqPlan& plan) {
  static const ReqCodeTable kReqCodes;
  plan.atoms.clear();
  plan.ids.clear();
  plan.offsets.clear();
  plan.lut.assign(cc.node_count() * 6, -1);
  plan.offsets.reserve(faults.size() + 1);
  plan.offsets.push_back(0);
  for (const TargetFault& fault : faults) {
    for (const auto& r : fault.requirements) {
      const auto& e = kReqCodes.entry[ReqCodeTable::key(r.value)];
      for (int j = 0; j < e.count; ++j) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(r.line) * 6 + e.qp[j];
        std::int32_t& slot = plan.lut[key];
        if (slot < 0) {
          slot = static_cast<std::int32_t>(plan.atoms.size());
          plan.atoms.push_back(key);
        }
        plan.ids.push_back(static_cast<std::uint32_t>(slot));
      }
    }
    plan.offsets.push_back(static_cast<std::uint32_t>(plan.ids.size()));
  }
}

void prepare_batch(const CompiledCircuit& cc,
                   std::span<const TwoPatternTest> tests,
                   std::span<const TargetFault> faults, PreparedBatch& prep) {
  pack_tests(cc, tests, "prepared", prep.tests_pack);
  build_req_plan(cc, faults, prep.plan);
}

}  // namespace pdf::sim
