// Avx512Backend: the wide kernel at 512 tests per word (8 x 64-lane
// subwords). Identical in structure to backend_avx2.cpp one width up: the
// vector-extension ops lower to zmm VPANDQ/VPORQ/VPXORQ when this TU is
// built with -mavx512f, and the runtime cpuid probe gates registration so
// the code only ever executes on AVX-512F hosts. Subword k of wide word w
// is DetectionMatrix word w*8+k — bit-identical to every other backend.
#include "sim/backend_wide.hpp"

namespace pdf::sim {

namespace {
using Vec512 = std::uint64_t __attribute__((vector_size(64)));
static_assert(sizeof(Vec512) == 64);
}  // namespace

SimBackend& avx512_backend() {
  static WideBackend<Vec512> backend("avx512", "sim.avx512.matrix");
  return backend;
}

}  // namespace pdf::sim
