// Pluggable simulation backends for batched robust fault simulation.
//
// A SimBackend turns a CompiledCircuit plus a batch of two-pattern tests and
// target faults into a DetectionMatrix. The contract (DESIGN.md §11) is
// strict so callers can treat the backend as an interchangeable detail:
//
//   * Value encoding: the triple algebra's three {0,1,x} planes. How a
//     backend represents them internally (dense Triple arrays, 2-bit planes
//     packed 64 tests per word, SIMD lanes, ...) is its own business.
//   * Batching: the backend owns the loop over tests and faults. Callers
//     hand over whole batches; per-test APIs stay on FaultSimulator, which
//     remains the scalar single-query engine for ATPG inner loops.
//   * Determinism: every backend produces the bit-identical DetectionMatrix
//     for the same (circuit, tests, faults) — independent of backend choice
//     and of the runtime thread count. pdf_check's `backends_agree` check
//     and tests/test_backend.cpp enforce this continuously.
//   * Memory: backends own reusable per-worker scratch arenas; steady-state
//     batched queries perform no per-call heap allocation (observable via
//     the `sim.<name>.scratch_grows` counters; asserted by the
//     `micro_engines backends` mode).
//
// Backends are stateless singletons apart from their scratch arenas (which
// follow the runtime::PerWorker sharing contract: one external thread plus
// the global pool's workers). `selected_backend()` is the process-wide
// default used when a caller doesn't pin one explicitly — set it once at
// startup (`--backend` in the bench drivers and pdf_check), not mid-run.
//
// Registration is capability-gated: the wide SIMD backends (avx2: 256
// tests/word, avx512: 512 tests/word) are always compiled in — their TUs
// carry the matching -m flags — but only appear in all_backends() when the
// host CPU supports the ISA (sim/cpu_features.hpp; cap with PDF_SIMD). The
// default selection is the widest registered test-parallel backend, so a
// rebuilt binary automatically uses the fastest safe engine on each host.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "atpg/test_pattern.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/screen.hpp"
#include "faultsim/detection_matrix.hpp"
#include "sim/prepared.hpp"

namespace pdf::sim {

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  /// Stable identifier ("scalar", "bitpar", ...): the `--backend` value, the
  /// metric-name component and the manifest entry.
  virtual const char* name() const = 0;

  /// Can this backend simulate `cc`? All current backends require a
  /// combinational circuit; future accelerator backends may be narrower
  /// (callers fall back to another backend or to FaultSimulator).
  virtual bool supports(const CompiledCircuit& cc) const = 0;

  /// Tests simulated per packed word (1 scalar, 64 bitpar/faultpar, 256
  /// avx2, 512 avx512). Purely informational — result bytes never depend on
  /// it — but benches and reports use it for per-width labeling.
  virtual std::size_t lanes() const { return 1; }

  /// Full fault-by-test detection matrix: bit (f, t) is set iff tests[t]
  /// robustly detects faults[f]. Parallel over lanes()-test word columns on
  /// the global runtime pool; bit-identical across backends and thread
  /// counts. Test widths must match cc.inputs() (validated by
  /// BatchSimulator).
  virtual DetectionMatrix detection_matrix(
      const CompiledCircuit& cc, std::span<const TwoPatternTest> tests,
      std::span<const TargetFault> faults) const = 0;

  /// Same matrix, but with the width-independent setup (PI bit-pack +
  /// requirement plan) supplied by the caller instead of rebuilt per call.
  /// `prep` must have been built by prepare_batch() from exactly this
  /// (cc, tests, faults); results are byte-identical to detection_matrix().
  /// Sweep workloads (n-detection, ADI ordering) that re-mask the same
  /// batch repeatedly prepare once and amortize the setup away. The default
  /// ignores `prep` — backends without packed setup (scalar) gain nothing.
  virtual DetectionMatrix detection_matrix_prepared(
      const CompiledCircuit& cc, std::span<const TwoPatternTest> tests,
      std::span<const TargetFault> faults, const PreparedBatch& prep) const {
    (void)prep;
    return detection_matrix(cc, tests, faults);
  }
};

/// The scalar reference backend: one compiled triple simulation per test.
SimBackend& scalar_backend();

/// The bit-parallel backend: 64 tests per word, 2-bit-plane {0,1,x} encoding.
SimBackend& bitpar_backend();

/// The fault-parallel variant of bitpar: simulates all 64-test word columns
/// first (shared plane buffer), then parallelizes across faults — fills the
/// pool when faults vastly outnumber word columns. Always registered.
SimBackend& faultpar_backend();

/// The 256-tests/word AVX2 instantiation of the wide kernel. The accessor's
/// TU is compiled with -mavx2: call only when simd_level() >= kAvx2 (the
/// registry does; everyone else should go through find_backend()).
SimBackend& avx2_backend();

/// The 512-tests/word AVX-512 instantiation. TU compiled with -mavx512f:
/// call only when simd_level() >= kAvx512.
SimBackend& avx512_backend();

/// Every registered backend, in registration order (scalar first, then
/// bitpar, faultpar, and whichever wide backends the host CPU supports).
std::span<SimBackend* const> all_backends();

/// Lookup by name(); nullptr when unknown.
SimBackend* find_backend(std::string_view name);

/// Comma-separated list of registered backend names (for error messages).
std::string backend_names();

/// The process-wide default backend: the widest registered test-parallel
/// backend (avx512 > avx2 > bitpar; never faultpar or scalar) unless
/// select_backend() changed it. Engines that don't take an explicit backend
/// use this one. Identical result bytes either way — only speed varies.
SimBackend& selected_backend();

/// Sets the process-wide default. Throws std::invalid_argument on an unknown
/// name. Call at startup, before engines capture the selection.
void select_backend(std::string_view name);

}  // namespace pdf::sim
