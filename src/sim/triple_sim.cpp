#include "sim/triple_sim.hpp"

#include <cassert>
#include <stdexcept>

namespace pdf {

Triple pi_triple(V3 b1, V3 b3) {
  const V3 mid = (is_specified(b1) && b1 == b3) ? b1 : V3::X;
  return Triple{b1, mid, b3};
}

Triple eval_gate_triple(GateType t, std::span<const Triple> fanin) {
  // Fixed stack buffer: finalize() bounds fanin at kMaxGateFanin.
  assert(fanin.size() <= kMaxGateFanin);
  V3 plane[kMaxGateFanin];
  Triple out;
  for (int p = 0; p < 3; ++p) {
    for (std::size_t i = 0; i < fanin.size(); ++i) plane[i] = fanin[i][p];
    const V3 v = eval_gate(t, std::span<const V3>(plane, fanin.size()));
    switch (p) {
      case 0: out.a1 = v; break;
      case 1: out.a2 = v; break;
      default: out.a3 = v; break;
    }
  }
  return out;
}

std::vector<Triple> simulate(const Netlist& nl, std::span<const Triple> pi_values) {
  if (pi_values.size() != nl.inputs().size()) {
    throw std::invalid_argument("simulate: wrong number of PI triples");
  }
  std::vector<Triple> value(nl.node_count(), kAllX);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    value[nl.inputs()[i]] = pi_values[i];
  }
  std::vector<Triple> fanin;
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    if (n.type == GateType::Dff) {
      throw std::invalid_argument("simulate: netlist is sequential");
    }
    fanin.clear();
    for (NodeId f : n.fanin) fanin.push_back(value[f]);
    value[id] = eval_gate_triple(n.type, fanin);
  }
  return value;
}

std::vector<V3> simulate_plane(const Netlist& nl, std::span<const V3> pi_values) {
  if (pi_values.size() != nl.inputs().size()) {
    throw std::invalid_argument("simulate_plane: wrong number of PI values");
  }
  std::vector<V3> value(nl.node_count(), V3::X);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    value[nl.inputs()[i]] = pi_values[i];
  }
  std::vector<V3> fanin;
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    fanin.clear();
    for (NodeId f : n.fanin) fanin.push_back(value[f]);
    value[id] = eval_gate(n.type, fanin);
  }
  return value;
}

std::span<const Triple> simulate(const CompiledCircuit& cc,
                                 std::span<const Triple> pi_values,
                                 SimScratch& scratch) {
  if (pi_values.size() != cc.inputs().size()) {
    throw std::invalid_argument("simulate: wrong number of PI triples");
  }
  scratch.prepare_triples(cc);
  Triple* value = scratch.triples.data();
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    value[cc.inputs()[i]] = pi_values[i];
  }
  for (NodeId id : cc.topo_order()) {
    const GateType t = cc.type(id);
    if (t == GateType::Input) continue;
    if (t == GateType::Dff) {
      throw std::invalid_argument("simulate: netlist is sequential");
    }
    value[id] = eval_node_triple(cc, id, value);
  }
  return scratch.triples;
}

std::span<const V3> simulate_plane(const CompiledCircuit& cc,
                                   std::span<const V3> pi_values,
                                   SimScratch& scratch) {
  if (pi_values.size() != cc.inputs().size()) {
    throw std::invalid_argument("simulate_plane: wrong number of PI values");
  }
  scratch.prepare_plane(cc);
  V3* value = scratch.plane.data();
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    value[cc.inputs()[i]] = pi_values[i];
  }
  for (NodeId id : cc.topo_order()) {
    if (cc.type(id) == GateType::Input) continue;
    value[id] = eval_node_plane(cc, id, value);
  }
  return scratch.plane;
}

}  // namespace pdf
