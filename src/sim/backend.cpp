#include "sim/backend.hpp"

#include <array>
#include <stdexcept>

namespace pdf::sim {

namespace {

// The default stays bitpar: it is bit-identical to scalar (enforced by
// pdf_check and test_backend) and an order of magnitude faster on
// detection-matrix builds, so opting *down* to scalar is the explicit move.
SimBackend*& selected_slot() {
  static SimBackend* selected = &bitpar_backend();
  return selected;
}

}  // namespace

std::span<SimBackend* const> all_backends() {
  static const std::array<SimBackend*, 2> backends = {&scalar_backend(),
                                                      &bitpar_backend()};
  return backends;
}

SimBackend* find_backend(std::string_view name) {
  for (SimBackend* b : all_backends()) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

std::string backend_names() {
  std::string out;
  for (SimBackend* b : all_backends()) {
    if (!out.empty()) out += ", ";
    out += b->name();
  }
  return out;
}

SimBackend& selected_backend() { return *selected_slot(); }

void select_backend(std::string_view name) {
  SimBackend* b = find_backend(name);
  if (b == nullptr) {
    throw std::invalid_argument("unknown simulation backend '" +
                                std::string(name) + "' (available: " +
                                backend_names() + ")");
  }
  selected_slot() = b;
}

}  // namespace pdf::sim
