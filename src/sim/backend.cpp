#include "sim/backend.hpp"

#include <stdexcept>
#include <vector>

#include "sim/cpu_features.hpp"

namespace pdf::sim {

namespace {

// This TU is compiled with baseline ISA flags. The avx2/avx512 accessors
// live in TUs compiled with -mavx2/-mavx512f, so they are called — and
// their singletons constructed — only after the cpuid probe says the host
// can execute that code. Registration order is stable (scalar, bitpar,
// faultpar, then ascending width) so diagnostics and test parameterization
// are deterministic per host+PDF_SIMD.
const std::vector<SimBackend*>& registry() {
  static const std::vector<SimBackend*> backends = [] {
    std::vector<SimBackend*> v = {&scalar_backend(), &bitpar_backend(),
                                  &faultpar_backend()};
    const SimdLevel level = simd_level();
    if (level >= SimdLevel::kAvx2) v.push_back(&avx2_backend());
    if (level >= SimdLevel::kAvx512) v.push_back(&avx512_backend());
    return v;
  }();
  return backends;
}

// The default is the widest registered test-parallel backend: every backend
// is bit-identical (enforced by pdf_check and test_backend), so the only
// difference is throughput, and wider wins on the batched workloads behind
// BatchSimulator. faultpar is never the default — it trades memory for
// fault-axis parallelism and only pays off on particular shapes; opting
// into it (or down to scalar/bitpar) is the explicit move.
SimBackend*& selected_slot() {
  static SimBackend* selected = [] {
    SimBackend* widest = &bitpar_backend();
    for (SimBackend* b : registry()) {
      if (b == &faultpar_backend() || b == &scalar_backend()) continue;
      if (b->lanes() > widest->lanes()) widest = b;
    }
    return widest;
  }();
  return selected;
}

}  // namespace

std::span<SimBackend* const> all_backends() { return registry(); }

SimBackend* find_backend(std::string_view name) {
  for (SimBackend* b : all_backends()) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

std::string backend_names() {
  std::string out;
  for (SimBackend* b : all_backends()) {
    if (!out.empty()) out += ", ";
    out += b->name();
  }
  return out;
}

SimBackend& selected_backend() { return *selected_slot(); }

void select_backend(std::string_view name) {
  SimBackend* b = find_backend(name);
  if (b == nullptr) {
    throw std::invalid_argument("unknown simulation backend '" +
                                std::string(name) + "' (available: " +
                                backend_names() + ")");
  }
  selected_slot() = b;
}

}  // namespace pdf::sim
