// Line-delimited JSON protocol of the pdf_serve daemon.
//
// One request per line, one response line per request, over a local stream
// socket (or stdin/stdout in `pdf_serve --once`). Requests carry an
// enrichment job — a netlist (registry name or inline .bench text) plus the
// TargetSetConfig / GeneratorConfig knobs — or a control verb (ping, stats,
// cancel, shutdown). Responses carry a `status`, the deterministic `result`
// object for completed jobs, a typed `error` object for failures, and
// optional per-request observability (cache hit deltas, latencies, a full
// pdf.run_manifest/1 document).
//
// Determinism contract: the `result` object is a pure function of the job
// parameters — no timestamps, no latencies, no cache state — and obs::Json
// dumps are key-sorted, so the same job always serializes to the same result
// bytes whether it ran cold, warm, in the daemon or via --once. Timing and
// cache telemetry live in sibling envelope fields that comparisons exclude.
#pragma once

#include <cstdint>
#include <string>

#include "atpg/generator.hpp"
#include "enrich/target_sets.hpp"
#include "obs/json.hpp"

namespace pdf::serve {

inline constexpr const char* kProtocolVersion = "pdf.serve/1";

/// The admin request family (`stats`, `health`, `jobs`, `prom`): read-only
/// introspection answered synchronously on the connection-reader thread —
/// never enqueued, never touching a worker shard — so admin pollers observe
/// the daemon without perturbing enrichment `result` bytes. Admin result
/// objects carry `"schema": "pdf.admin/1"`.
inline constexpr const char* kAdminProtocolVersion = "pdf.admin/1";

enum class RequestKind {
  Enrich,
  Basic,
  Ping,
  Stats,     // pdf.admin/1: metrics snapshot with p50/p90/p99
  Health,    // pdf.admin/1: uptime, queue depth, in-flight, cache hit rate
  Jobs,      // pdf.admin/1: JobState registry listing
  Prom,      // pdf.admin/1: Prometheus text exposition
  Cancel,
  Shutdown
};

const char* kind_name(RequestKind k);

struct Request {
  std::int64_t id = 0;
  RequestKind kind = RequestKind::Enrich;
  /// Exactly one of `circuit` (registry name) or `bench_text` (inline
  /// .bench source) for job kinds.
  std::string circuit;
  std::string bench_text;
  TargetSetConfig target;  // n_p / n_p0 (defaults match the bench drivers)
  GeneratorConfig gen;     // seed / heuristic
  bool want_manifest = false;  // attach a pdf.run_manifest/1 document
  bool want_tests = false;     // attach the test patterns, not just counts
  std::int64_t cancel_target = 0;  // Cancel: the job id to cancel
};

/// Parses one request line. Throws obs::JsonError on malformed JSON and
/// pdf::ConfigError on a structurally valid line with bad fields (unknown
/// kind/heuristic, missing netlist, zero budgets). Never aborts.
Request parse_request(const std::string& line);

/// Canonical JSON for a request (round-trips through parse_request).
obs::Json request_json(const Request& req);

/// Best-effort `id` extraction from a line that failed parse_request, so an
/// error response can still be correlated; 0 when unrecoverable.
std::int64_t salvage_request_id(const std::string& line);

enum class Status { Ok, Error, Rejected, Cancelled };

const char* status_name(Status s);

struct ErrorInfo {
  std::string kind;  // "parse_error" | "config_error" | "overload" |
                     // "cancelled" | "shutting_down" | "internal"
  std::string message;
  int line = -1;  // source line for parse_error; -1 = absent
};

struct Response {
  std::int64_t id = 0;
  Status status = Status::Ok;
  obs::Json result;    // deterministic job result (object), else null
  ErrorInfo error;     // meaningful unless status == Ok
  std::uint64_t retry_after_ms = 0;  // Rejected: client backoff hint
  /// StageCache stage hit/miss deltas observed across this job. Exact for a
  /// serial server; approximate attribution under concurrent requests
  /// (global counters are sampled around the job).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t queue_ns = 0;  // admission -> worker pickup
  std::uint64_t run_ns = 0;    // worker pickup -> completion
  obs::Json manifest;  // pdf.run_manifest/1 when requested, else null

  obs::Json to_json() const;
  /// to_json().dump(): the wire format (newline appended by the writer).
  std::string to_line() const;
};

/// Parses one response line (pdf_load and the tests). Throws obs::JsonError
/// on malformed JSON or a missing/unknown status.
Response parse_response(const std::string& line);

/// Maps an exception thrown while parsing or running a request onto the
/// typed error taxonomy. `eptr` must be non-null.
ErrorInfo classify_error(std::exception_ptr eptr);

}  // namespace pdf::serve
