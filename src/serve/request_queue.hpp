// Bounded admission-controlled FIFO between the protocol front-end and the
// serve workers.
//
// Admission is non-blocking by design: a full queue must push back on the
// client *immediately* (reject-with-retry-after) rather than stall the
// connection reader — the daemon's only unbounded resource is the socket
// backlog the kernel already bounds. Workers block on pop() until work or
// close(); close() lets already-admitted jobs drain (pop keeps returning
// them) while every new try_push is turned away, which is exactly the
// SIGTERM graceful-drain sequence.
//
// Metrics: `serve.queue.depth` (histogram, sampled at every admission) and
// the `serve.admit.{accepted,rejected,closed}` counters land in the runtime
// registry next to the other serve.* metrics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pdf::serve {

enum class Admission { Accepted, Rejected, Closed };

template <typename Job>
class RequestQueue {
 public:
  /// `capacity` is the maximum number of queued (not yet picked up) jobs.
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission; never waits for space.
  Admission try_push(Job job) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return note(Admission::Closed);
      if (jobs_.size() >= capacity_) return note(Admission::Rejected);
      jobs_.push_back(std::move(job));
      note(Admission::Accepted, jobs_.size());
    }
    ready_cv_.notify_one();
    return Admission::Accepted;
  }

  /// Blocks until a job is available or the queue is closed *and* empty
  /// (drain complete) — then returns nullopt forever.
  std::optional<Job> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    ready_cv_.wait(lk, [&] { return closed_ || !jobs_.empty(); });
    if (jobs_.empty()) return std::nullopt;
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
  }

  /// Stops admitting; queued jobs keep draining through pop().
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return jobs_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Removes the first queued job matching `pred`; returns it if found.
  /// (Cancellation of a not-yet-started job.)
  template <typename Pred>
  std::optional<Job> remove_if(Pred pred) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (pred(*it)) {
        Job job = std::move(*it);
        jobs_.erase(it);
        return job;
      }
    }
    return std::nullopt;
  }

 private:
  // Defined in request_queue.cpp (non-template): keeps the metrics handles
  // out of every instantiation.
  static Admission note(Admission a, std::size_t depth_after = 0);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<Job> jobs_;
  bool closed_ = false;
};

/// Shared metric-recording hook for all RequestQueue instantiations.
Admission record_admission(Admission a, std::size_t depth_after);

template <typename Job>
Admission RequestQueue<Job>::note(Admission a, std::size_t depth_after) {
  return record_admission(a, depth_after);
}

}  // namespace pdf::serve
