#include "serve/protocol.hpp"

#include <exception>

#include "base/error.hpp"

namespace pdf::serve {

namespace {

RequestKind kind_from_string(const std::string& s) {
  if (s == "enrich") return RequestKind::Enrich;
  if (s == "basic") return RequestKind::Basic;
  if (s == "ping") return RequestKind::Ping;
  if (s == "stats") return RequestKind::Stats;
  if (s == "health") return RequestKind::Health;
  if (s == "jobs") return RequestKind::Jobs;
  if (s == "prom") return RequestKind::Prom;
  if (s == "cancel") return RequestKind::Cancel;
  if (s == "shutdown") return RequestKind::Shutdown;
  throw ConfigError(
      "unknown request kind '" + s +
      "' (enrich, basic, ping, stats, health, jobs, prom, cancel, shutdown)");
}

CompactionHeuristic heuristic_from_string(const std::string& s) {
  if (s == "none" || s == "uncomp") return CompactionHeuristic::None;
  if (s == "arbitrary" || s == "arbit") return CompactionHeuristic::Arbitrary;
  if (s == "length") return CompactionHeuristic::Length;
  if (s == "value" || s == "values") return CompactionHeuristic::Value;
  throw ConfigError("unknown heuristic '" + s +
                    "' (none, arbitrary, length, value)");
}

Status status_from_string(const std::string& s) {
  if (s == "ok") return Status::Ok;
  if (s == "error") return Status::Error;
  if (s == "rejected") return Status::Rejected;
  if (s == "cancelled") return Status::Cancelled;
  throw obs::JsonError("unknown response status '" + s + "'");
}

std::int64_t int_field(const obs::Json& doc, const char* key,
                       std::int64_t fallback) {
  if (!doc.contains(key)) return fallback;
  const std::int64_t v = doc.at(key).as_int();
  return v;
}

std::uint64_t uint_field(const obs::Json& doc, const char* key,
                         std::int64_t fallback) {
  const std::int64_t v = int_field(doc, key, fallback);
  if (v < 0) throw ConfigError(std::string(key) + " must be >= 0");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::Enrich: return "enrich";
    case RequestKind::Basic: return "basic";
    case RequestKind::Ping: return "ping";
    case RequestKind::Stats: return "stats";
    case RequestKind::Health: return "health";
    case RequestKind::Jobs: return "jobs";
    case RequestKind::Prom: return "prom";
    case RequestKind::Cancel: return "cancel";
    case RequestKind::Shutdown: return "shutdown";
  }
  return "?";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Error: return "error";
    case Status::Rejected: return "rejected";
    case Status::Cancelled: return "cancelled";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  const obs::Json doc = obs::Json::parse(line);
  if (!doc.is_object()) throw obs::JsonError("request must be a JSON object");

  Request req;
  req.id = int_field(doc, "id", 0);
  if (doc.contains("kind")) {
    req.kind = kind_from_string(doc.at("kind").as_string());
  }
  if (doc.contains("circuit")) req.circuit = doc.at("circuit").as_string();
  if (doc.contains("bench")) req.bench_text = doc.at("bench").as_string();
  req.target.n_p = static_cast<std::size_t>(
      uint_field(doc, "np", static_cast<std::int64_t>(req.target.n_p)));
  req.target.n_p0 = static_cast<std::size_t>(
      uint_field(doc, "np0", static_cast<std::int64_t>(req.target.n_p0)));
  req.gen.seed = uint_field(doc, "seed",
                            static_cast<std::int64_t>(req.gen.seed));
  if (doc.contains("heuristic")) {
    req.gen.heuristic = heuristic_from_string(doc.at("heuristic").as_string());
  }
  if (doc.contains("manifest")) req.want_manifest = doc.at("manifest").as_bool();
  if (doc.contains("tests")) req.want_tests = doc.at("tests").as_bool();
  if (doc.contains("target")) req.cancel_target = doc.at("target").as_int();

  const bool is_job =
      req.kind == RequestKind::Enrich || req.kind == RequestKind::Basic;
  if (is_job) {
    if (req.circuit.empty() == req.bench_text.empty()) {
      throw ConfigError(
          "job requests need exactly one of 'circuit' (registry name) or "
          "'bench' (inline .bench text)");
    }
    if (req.target.n_p == 0) throw ConfigError("np must be > 0");
    if (req.target.n_p0 == 0) throw ConfigError("np0 must be > 0");
    if (req.target.n_p0 > req.target.n_p) {
      throw ConfigError("np0 must be <= np");
    }
  }
  if (req.kind == RequestKind::Cancel && req.cancel_target == 0) {
    throw ConfigError("cancel requests need a nonzero 'target' job id");
  }
  return req;
}

obs::Json request_json(const Request& req) {
  obs::Json doc;
  doc["id"] = req.id;
  doc["kind"] = kind_name(req.kind);
  if (!req.circuit.empty()) doc["circuit"] = req.circuit;
  if (!req.bench_text.empty()) doc["bench"] = req.bench_text;
  doc["np"] = static_cast<std::int64_t>(req.target.n_p);
  doc["np0"] = static_cast<std::int64_t>(req.target.n_p0);
  doc["seed"] = req.gen.seed;
  doc["heuristic"] = [&] {
    switch (req.gen.heuristic) {
      case CompactionHeuristic::None: return "none";
      case CompactionHeuristic::Arbitrary: return "arbitrary";
      case CompactionHeuristic::Length: return "length";
      case CompactionHeuristic::Value: return "value";
    }
    return "value";
  }();
  if (req.want_manifest) doc["manifest"] = true;
  if (req.want_tests) doc["tests"] = true;
  if (req.cancel_target != 0) doc["target"] = req.cancel_target;
  return doc;
}

std::int64_t salvage_request_id(const std::string& line) {
  try {
    const obs::Json doc = obs::Json::parse(line);
    if (doc.contains("id")) return doc.at("id").as_int();
  } catch (const obs::JsonError&) {
  }
  // The line is not valid JSON; scan for a top-level-looking `"id": <int>`
  // so the client can still correlate the error response.
  const auto key = line.find("\"id\"");
  if (key == std::string::npos) return 0;
  std::size_t i = key + 4;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != ':') return 0;
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  const bool neg = i < line.size() && line[i] == '-';
  if (neg) ++i;
  std::int64_t value = 0;
  bool any = false;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + (line[i] - '0');
    any = true;
    ++i;
  }
  if (!any) return 0;
  return neg ? -value : value;
}

obs::Json Response::to_json() const {
  obs::Json doc;
  doc["id"] = id;
  doc["status"] = status_name(status);
  if (!result.is_null()) doc["result"] = result;
  if (status != Status::Ok) {
    obs::Json e;
    e["kind"] = error.kind;
    e["message"] = error.message;
    if (error.line >= 0) e["line"] = error.line;
    doc["error"] = std::move(e);
  }
  if (retry_after_ms != 0) doc["retry_after_ms"] = retry_after_ms;
  obs::Json cache;
  cache["hits"] = cache_hits;
  cache["misses"] = cache_misses;
  doc["cache"] = std::move(cache);
  obs::Json latency;
  latency["queue_ns"] = queue_ns;
  latency["run_ns"] = run_ns;
  doc["latency"] = std::move(latency);
  if (!manifest.is_null()) doc["manifest"] = manifest;
  return doc;
}

std::string Response::to_line() const { return to_json().dump(); }

Response parse_response(const std::string& line) {
  const obs::Json doc = obs::Json::parse(line);
  if (!doc.is_object()) throw obs::JsonError("response must be a JSON object");
  Response r;
  r.id = int_field(doc, "id", 0);
  r.status = status_from_string(doc.at("status").as_string());
  if (doc.contains("result")) r.result = doc.at("result");
  if (doc.contains("error")) {
    const obs::Json& e = doc.at("error");
    r.error.kind = e.at("kind").as_string();
    r.error.message = e.at("message").as_string();
    if (e.contains("line")) {
      r.error.line = static_cast<int>(e.at("line").as_int());
    }
  }
  if (doc.contains("retry_after_ms")) {
    r.retry_after_ms = static_cast<std::uint64_t>(
        doc.at("retry_after_ms").as_int());
  }
  if (doc.contains("cache")) {
    r.cache_hits =
        static_cast<std::uint64_t>(doc.at("cache").at("hits").as_int());
    r.cache_misses =
        static_cast<std::uint64_t>(doc.at("cache").at("misses").as_int());
  }
  if (doc.contains("latency")) {
    r.queue_ns =
        static_cast<std::uint64_t>(doc.at("latency").at("queue_ns").as_int());
    r.run_ns =
        static_cast<std::uint64_t>(doc.at("latency").at("run_ns").as_int());
  }
  if (doc.contains("manifest")) r.manifest = doc.at("manifest");
  return r;
}

ErrorInfo classify_error(std::exception_ptr eptr) {
  ErrorInfo info;
  try {
    std::rethrow_exception(eptr);
  } catch (const ParseError& e) {
    info.kind = "parse_error";
    info.message = e.what();
    info.line = e.line();
  } catch (const ConfigError& e) {
    info.kind = "config_error";
    info.message = e.what();
  } catch (const obs::JsonError& e) {
    info.kind = "parse_error";
    info.message = e.what();
  } catch (const std::invalid_argument& e) {
    // Engine-level parameter rejections that predate ConfigError.
    info.kind = "config_error";
    info.message = e.what();
  } catch (const std::exception& e) {
    info.kind = "internal";
    info.message = e.what();
  } catch (...) {
    info.kind = "internal";
    info.message = "unknown error";
  }
  return info;
}

}  // namespace pdf::serve
