// One enrichment job, start to finish, on the calling thread.
//
// run_job() is the single execution path shared by the Server workers and
// `pdf_serve --once`: netlist resolution (registry name or inline .bench
// text), EnrichmentWorkbench construction against the shared StageCache warm
// tier, generation, coverage, and the deterministic result object. Because
// both entry points go through this function, a daemon answer for a job is
// byte-identical to the single-shot CLI answer for the same job — the CI
// serve-smoke job diffs exactly that.
//
// run_job never throws: every failure is folded into a typed error response
// via classify_error(). Telemetry (run_ns, cache deltas, the optional
// manifest) lands in the response envelope, never inside `result`.
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"

namespace pdf::store {
class StageCache;
}

namespace pdf::serve {

/// Server-wide execution context shared by every job.
struct JobContext {
  /// Shared warm tier; null = caching disabled.
  store::StageCache* cache = nullptr;
  /// sim backend name recorded in manifests (fixed at server startup —
  /// sim::select_backend is not safe to flip per request).
  std::string backend;
  std::string store_dir;  // manifest bookkeeping only
  /// When non-empty, every job writes `job-<serial>.json` (a full
  /// pdf.run_manifest/1 document) into this directory.
  std::string manifest_dir;
};

/// Runs `req` (kind Enrich or Basic) to completion. `serial` is the
/// server-assigned job number used to name the manifest file uniquely under
/// concurrent sessions; pass 0 from single-shot callers.
Response run_job(const Request& req, const JobContext& ctx,
                 std::uint64_t serial = 0);

/// Canonical circuit label for a request: the registry name, or
/// "inline:<netlist digest>" for inline .bench jobs (deterministic, so it is
/// safe inside `result`). Parses the bench text; throws like run_job's
/// netlist resolution does.
std::string job_circuit_label(const Request& req);

}  // namespace pdf::serve
