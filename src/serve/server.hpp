// The in-process enrichment server: admission-controlled queue + worker
// threads + shared StageCache warm tier.
//
// Transport-agnostic on purpose: the pdf_serve daemon feeds it requests
// parsed off a Unix socket, the tests and the micro_engines serve mode feed
// it directly. submit() never blocks — a full queue turns into an immediate
// Rejected response with a retry_after_ms hint, and after drain() begins new
// submissions are rejected as shutting_down while already-admitted jobs run
// to completion (the SIGTERM contract).
//
// Each worker thread holds a runtime::ExternalWorkerScope for its lifetime:
// the sim backends keep PerWorker scratch keyed by worker_slot(), and
// without a scope every external thread would map to slot 0 and race on the
// shared scratch. The scope gives each worker its own slot, so concurrent
// jobs are as isolated as pool workers are.
//
// Metrics (runtime registry): serve.admit.{accepted,rejected,closed},
// serve.queue.depth, serve.jobs.{completed,failed,cancelled,slow},
// serve.latency.{queue_ns,run_ns} histograms, serve.cache.{hits,misses}.
//
// The pdf.admin/1 family (stats/health/jobs/prom) is answered synchronously
// by the submitting thread from registry snapshots and the JobState map —
// admin reads never enqueue, never run on a worker, and never write a
// metric a job reads, so polling them cannot perturb job `result` bytes.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/request_queue.hpp"
#include "store/stage_cache.hpp"

namespace pdf::serve {

struct ServerConfig {
  std::size_t concurrency = 2;   // worker threads
  std::size_t queue_depth = 64;  // queued (not yet running) job bound
  std::uint64_t retry_after_ms = 50;  // backoff hint on admission reject
  /// Artifact-store root; empty = caching disabled.
  std::string store_dir;
  /// Per-request manifest output directory; empty = none.
  std::string manifest_dir;
  /// Backend name recorded in manifests (select_backend() is the caller's
  /// job, once, at startup). Empty = resolve to the process-wide selection
  /// (sim::selected_backend()) at Server construction.
  std::string backend;
  /// Invoked (on the submitting thread) when a shutdown request arrives, so
  /// the daemon can kick its own graceful-exit path. May be empty.
  std::function<void()> shutdown_hook;
  /// Jobs whose run time exceeds this threshold get their span tree dumped
  /// as `job-<serial>.trace.json` next to the manifests (cwd when
  /// manifest_dir is empty). 0 disables capture.
  std::uint64_t slow_job_ms = 0;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  /// Drains (see drain()) before destruction.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles any request kind. Job kinds go through admission control:
  /// accepted jobs complete asynchronously and `done` fires on a worker
  /// thread; rejections and control kinds invoke `done` synchronously on
  /// this thread. `done` is invoked exactly once either way.
  void submit(Request req, std::function<void(Response)> done);

  /// Synchronous convenience wrapper around submit() (tests, --once).
  Response call(Request req);

  /// Graceful shutdown: closes admissions, lets queued and running jobs
  /// finish (their `done` callbacks fire), joins the workers. Idempotent;
  /// must not be called from a worker (i.e. from inside a `done` callback).
  void drain();

  bool draining() const { return queue_.closed(); }
  std::size_t queue_depth() const { return queue_.depth(); }
  const JobContext& context() const { return ctx_; }

  /// pdf.admin/1 payloads. All are cheap, synchronous, read-only views;
  /// submit() routes the matching request kinds here.
  obs::Json stats() const;   // full metrics snapshot with p50/p90/p99
  obs::Json health() const;  // uptime, queue depth, in-flight, hit rate
  obs::Json jobs() const;    // JobState registry listing
  std::string prometheus() const;  // text exposition (obs/exposition.hpp)

 private:
  enum class JobPhase { Queued, Running, Done };
  struct JobState {
    std::mutex mu;
    JobPhase phase = JobPhase::Queued;
    bool cancelled = false;
    // Identity for the `jobs` admin listing; immutable after submit().
    std::int64_t id = 0;
    std::uint64_t serial = 0;
    RequestKind kind = RequestKind::Enrich;
    std::string circuit;  // registry name, or "inline" for bench text
    std::chrono::steady_clock::time_point admitted;
  };
  struct Job {
    Request req;
    std::function<void(Response)> done;
    std::shared_ptr<JobState> state;
    std::uint64_t serial = 0;
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_main();
  void finish(Job& job, Response resp);
  void forget(std::int64_t id, const std::shared_ptr<JobState>& state);
  Response control(const Request& req);
  Response cancel(const Request& req);
  std::size_t inflight() const;  // active jobs in phase Running

  ServerConfig cfg_;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::optional<store::StageCache> cache_;
  JobContext ctx_;
  RequestQueue<Job> queue_;

  // Queued/running jobs by request id, for cancellation. Entries are erased
  // when the job finishes; duplicate client ids shadow (first match wins).
  mutable std::mutex active_mu_;
  std::multimap<std::int64_t, std::shared_ptr<JobState>> active_;

  std::uint64_t next_serial_ = 1;  // guarded by active_mu_
  std::once_flag drain_once_;
  std::vector<std::thread> workers_;
};

}  // namespace pdf::serve
