#include "serve/socket_io.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace pdf::serve {

#ifdef _WIN32

bool sockets_supported() { return false; }
int listen_unix(const std::string&, int, std::string* err) {
  if (err) *err = "unix sockets unavailable on this platform";
  return -1;
}
int connect_unix(const std::string&, std::string* err) {
  if (err) *err = "unix sockets unavailable on this platform";
  return -1;
}
int accept_connection(int) { return -1; }
bool write_all(int, std::string_view) { return false; }
bool LineReader::read_line(std::string*) { return false; }
void close_fd(int) {}
void shutdown_fd(int) {}

#else

namespace {

bool fill_sockaddr(const std::string& path, sockaddr_un* addr,
                   std::string* err) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (err) *err = "socket path too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

bool sockets_supported() { return true; }

int listen_unix(const std::string& path, int backlog, std::string* err) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, &addr, err)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_message("socket");
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err) *err = errno_message(("bind " + path).c_str());
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    if (err) *err = errno_message("listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* err) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, &addr, err)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_message("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (err) *err = errno_message(("connect " + path).c_str());
    ::close(fd);
    return -1;
  }
  return fd;
}

int accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a client that hung up must surface as EPIPE here, not
    // kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool LineReader::read_line(std::string* line) {
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buf_.empty()) return false;
      line->swap(buf_);
      buf_.clear();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

#endif  // _WIN32

}  // namespace pdf::serve
