#include "serve/job.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <utility>

#include "base/error.hpp"
#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/combinational.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "store/serde.hpp"
#include "store/stage_cache.hpp"

namespace pdf::serve {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// Registry lookup or inline parse; sequential inline netlists are reduced
/// to their combinational core (same normalization the registry applies to
/// s27). Throws ParseError / ConfigError.
Netlist resolve_netlist(const Request& req) {
  if (!req.circuit.empty()) {
    if (!has_benchmark(req.circuit)) {
      throw ConfigError("unknown circuit '" + req.circuit +
                        "' (see benchmark_catalog)");
    }
    return benchmark_circuit(req.circuit);
  }
  Netlist nl = parse_bench_string(req.bench_text, "inline");
  if (nl.has_sequential()) nl = extract_combinational(nl).netlist;
  return nl;
}

struct CacheDelta {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Snapshot of the store-level hit/miss counters. Deltas around a job are
/// exact when jobs run serially; under concurrency attribution is
/// approximate (the counters are process-global) — documented in
/// protocol.hpp and fine for the hit-ratio metrics they feed.
CacheDelta cache_counters() {
  auto& m = runtime::Metrics::global();
  static auto& hits = m.counter("store.hits");
  static auto& misses = m.counter("store.misses");
  return {hits.read(), misses.read()};
}

}  // namespace

std::string job_circuit_label(const Request& req) {
  if (!req.circuit.empty()) return req.circuit;
  const Netlist nl = resolve_netlist(req);
  return "inline:" + hex64(store::digest(nl));
}

Response run_job(const Request& req, const JobContext& ctx,
                 std::uint64_t serial) {
  Response resp;
  resp.id = req.id;

  auto& m = runtime::Metrics::global();
  static auto& completed = m.counter("serve.jobs.completed");
  static auto& failed = m.counter("serve.jobs.failed");
  static auto& run_hist = m.histogram("serve.latency.run_ns");
  static auto& cache_hits = m.counter("serve.cache.hits");
  static auto& cache_misses = m.counter("serve.cache.misses");

  const obs::TraceSpan span("serve.job");
  const CacheDelta before = cache_counters();
  const auto t0 = std::chrono::steady_clock::now();

  try {
    const bool basic = req.kind == RequestKind::Basic;
    const Netlist nl = resolve_netlist(req);
    const std::string label = !req.circuit.empty()
                                  ? req.circuit
                                  : "inline:" + hex64(store::digest(nl));

    const EnrichmentWorkbench wb(nl, req.target, ctx.cache);
    const GenerationResult gen =
        basic ? wb.run_basic(req.gen) : wb.run_enriched(req.gen);
    const UnionCoverage cov = wb.coverage_of(gen);

    // Deterministic result: a pure function of (netlist, target, gen, kind).
    // No clocks, no cache state — see the protocol.hpp determinism contract.
    obs::Json result;
    result["schema"] = "pdf.serve.result/1";
    result["circuit"] = label;
    result["kind"] = kind_name(req.kind);
    result["np"] = static_cast<std::int64_t>(req.target.n_p);
    result["np0"] = static_cast<std::int64_t>(req.target.n_p0);
    result["seed"] = req.gen.seed;
    result["heuristic"] = heuristic_name(req.gen.heuristic);
    result["i0"] = static_cast<std::int64_t>(wb.targets().i0);
    result["cutoff_length"] = wb.targets().cutoff_length;
    result["p0_total"] = static_cast<std::int64_t>(cov.p0_total);
    result["p1_total"] = static_cast<std::int64_t>(cov.p1_total);
    result["p0_detected"] = static_cast<std::int64_t>(cov.p0_detected);
    result["p1_detected"] = static_cast<std::int64_t>(cov.p1_detected);
    result["union_detected"] = static_cast<std::int64_t>(cov.union_detected());
    result["union_total"] = static_cast<std::int64_t>(cov.union_total());
    result["test_count"] = static_cast<std::int64_t>(gen.tests.size());
    result["tests_digest"] = hex64(store::digest(
        std::span<const TwoPatternTest>(gen.tests.data(), gen.tests.size())));
    if (req.want_tests) {
      obs::Json tests{obs::Json::Array{}};  // empty array even with 0 tests
      for (const auto& t : gen.tests) tests.push_back(t.patterns_string());
      result["tests"] = std::move(tests);
    }
    resp.result = std::move(result);

    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (req.want_manifest || !ctx.manifest_dir.empty()) {
      obs::RunInfo info;
      info.bench = "pdf_serve";
      info.seed = req.gen.seed;
      info.n_p = req.target.n_p;
      info.n_p0 = req.target.n_p0;
      info.threads = runtime::global_threads();
      info.backend = ctx.backend;
      info.store_enabled = ctx.cache != nullptr;
      info.store_dir = ctx.store_dir;
      info.circuits.emplace_back(label, secs);
      if (!ctx.manifest_dir.empty()) {
        const auto path = std::filesystem::path(ctx.manifest_dir) /
                          ("job-" + std::to_string(serial) + ".json");
        obs::write_run_manifest(path.string(), info);
      }
      if (req.want_manifest) resp.manifest = obs::run_manifest(info);
    }
    completed.add();
  } catch (...) {
    resp.status = Status::Error;
    resp.error = classify_error(std::current_exception());
    failed.add();
  }

  const CacheDelta after = cache_counters();
  resp.cache_hits = after.hits - before.hits;
  resp.cache_misses = after.misses - before.misses;
  cache_hits.add(resp.cache_hits);
  cache_misses.add(resp.cache_misses);
  resp.run_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  run_hist.record(resp.run_ns);
  return resp;
}

}  // namespace pdf::serve
