#include "serve/request_queue.hpp"

#include "runtime/metrics.hpp"

namespace pdf::serve {

Admission record_admission(Admission a, std::size_t depth_after) {
  auto& m = runtime::Metrics::global();
  static auto& accepted = m.counter("serve.admit.accepted");
  static auto& rejected = m.counter("serve.admit.rejected");
  static auto& closed = m.counter("serve.admit.closed");
  static auto& depth = m.histogram("serve.queue.depth");
  switch (a) {
    case Admission::Accepted:
      accepted.add();
      depth.record(depth_after);
      break;
    case Admission::Rejected:
      rejected.add();
      break;
    case Admission::Closed:
      closed.add();
      break;
  }
  return a;
}

}  // namespace pdf::serve
