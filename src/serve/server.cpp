#include "serve/server.hpp"

#include <condition_variable>
#include <filesystem>
#include <memory>
#include <utility>

#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/backend.hpp"

namespace pdf::serve {

namespace {

runtime::Metrics::Counter& cancelled_counter() {
  static auto& c =
      runtime::Metrics::global().counter("serve.jobs.cancelled");
  return c;
}

runtime::Metrics::Histogram& queue_hist() {
  static auto& h =
      runtime::Metrics::global().histogram("serve.latency.queue_ns");
  return h;
}

Response make_error(std::int64_t id, Status status, std::string kind,
                    std::string message) {
  Response r;
  r.id = id;
  r.status = status;
  r.error.kind = std::move(kind);
  r.error.message = std::move(message);
  return r;
}

const char* phase_name(int phase) {
  switch (phase) {
    case 0: return "queued";
    case 1: return "running";
    default: return "done";
  }
}

double hit_rate(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)), queue_(cfg_.queue_depth) {
  if (cfg_.concurrency == 0) cfg_.concurrency = 1;
  if (cfg_.backend.empty()) cfg_.backend = sim::selected_backend().name();
  if (!cfg_.store_dir.empty()) cache_.emplace(cfg_.store_dir);
  ctx_.cache = cache_ ? &*cache_ : nullptr;
  ctx_.backend = cfg_.backend;
  ctx_.store_dir = cfg_.store_dir;
  ctx_.manifest_dir = cfg_.manifest_dir;
  workers_.reserve(cfg_.concurrency);
  for (std::size_t i = 0; i < cfg_.concurrency; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

Server::~Server() { drain(); }

void Server::submit(Request req, std::function<void(Response)> done) {
  switch (req.kind) {
    case RequestKind::Enrich:
    case RequestKind::Basic:
      break;
    case RequestKind::Cancel:
      done(cancel(req));
      return;
    case RequestKind::Shutdown: {
      Response r;
      r.id = req.id;
      r.result["draining"] = true;
      done(std::move(r));
      if (cfg_.shutdown_hook) cfg_.shutdown_hook();
      return;
    }
    default:
      done(control(req));
      return;
  }

  Job job;
  job.req = std::move(req);
  job.done = std::move(done);
  job.state = std::make_shared<JobState>();
  job.admitted = std::chrono::steady_clock::now();
  const std::int64_t id = job.req.id;
  job.state->id = id;
  job.state->kind = job.req.kind;
  job.state->circuit = job.req.circuit.empty() ? "inline" : job.req.circuit;
  job.state->admitted = job.admitted;
  {
    std::lock_guard<std::mutex> lk(active_mu_);
    job.serial = next_serial_++;
    job.state->serial = job.serial;
    active_.emplace(id, job.state);
  }
  const auto state = job.state;
  auto done_copy = job.done;  // try_push consumes the job on every path

  switch (queue_.try_push(std::move(job))) {
    case Admission::Accepted:
      PDF_LOG(Debug, "serve.job.admitted")
          .num("id", id)
          .num("serial", state->serial)
          .str("circuit", state->circuit);
      return;
    case Admission::Rejected: {
      Response r = make_error(id, Status::Rejected, "overload",
                              "queue full (depth " +
                                  std::to_string(queue_.capacity()) +
                                  "); retry after backoff");
      r.retry_after_ms = cfg_.retry_after_ms;
      PDF_LOG(Warn, "serve.admit.rejected")
          .num("id", id)
          .num("queue_capacity",
               static_cast<std::uint64_t>(queue_.capacity()))
          .num("retry_after_ms", cfg_.retry_after_ms);
      forget(id, state);
      done_copy(std::move(r));
      return;
    }
    case Admission::Closed: {
      PDF_LOG(Warn, "serve.admit.closed").num("id", id);
      forget(id, state);
      done_copy(make_error(id, Status::Rejected, "shutting_down",
                           "server is draining; not accepting new jobs"));
      return;
    }
  }
}

Response Server::call(Request req) {
  // Workers fire `done` asynchronously; rendezvous on a promise-like latch.
  std::mutex mu;
  std::condition_variable cv;
  std::optional<Response> out;
  submit(std::move(req), [&](Response r) {
    std::lock_guard<std::mutex> lk(mu);
    out = std::move(r);
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return out.has_value(); });
  return std::move(*out);
}

void Server::worker_main() {
  // Distinct per-worker slot: sim-backend scratch is keyed by worker_slot(),
  // and unscoped external threads all share slot 0 (see thread_pool.hpp).
  runtime::ExternalWorkerScope scope;
  while (auto popped = queue_.pop()) {
    Job job = std::move(*popped);
    const std::uint64_t queue_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - job.admitted)
            .count());
    queue_hist().record(queue_ns);

    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lk(job.state->mu);
      cancelled = job.state->cancelled;
      job.state->phase = cancelled ? JobPhase::Done : JobPhase::Running;
    }
    if (cancelled) {
      cancelled_counter().add();
      PDF_LOG(Info, "serve.job.cancelled")
          .num("id", job.req.id)
          .num("serial", job.serial)
          .str("stage", "pre-run");
      Response r = make_error(job.req.id, Status::Cancelled, "cancelled",
                              "job cancelled before it started");
      r.queue_ns = queue_ns;
      finish(job, std::move(r));
      continue;
    }

    // Best-effort slow-job capture: one TraceSession may run process-wide,
    // so when another job (or an external --trace) already holds it this
    // job simply goes uncaptured. Spans from jobs running concurrently with
    // the captured one land in the same file — distinguishable by tid, and
    // the interference is itself diagnostic.
    std::unique_ptr<obs::TraceSession> capture;
    if (cfg_.slow_job_ms > 0) {
      capture = std::make_unique<obs::TraceSession>();
      if (!capture->start()) capture.reset();
    }

    Response r = run_job(job.req, ctx_, job.serial);
    r.queue_ns = queue_ns;

    if (capture) {
      capture->stop();
      if (r.run_ns > cfg_.slow_job_ms * 1'000'000) {
        static auto& slow =
            runtime::Metrics::global().counter("serve.jobs.slow");
        slow.add();
        const auto dir = cfg_.manifest_dir.empty()
                             ? std::filesystem::path(".")
                             : std::filesystem::path(cfg_.manifest_dir);
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);  // best-effort
        const std::string path =
            (dir / ("job-" + std::to_string(job.serial) + ".trace.json"))
                .string();
        const bool written = capture->write_chrome_json(path);
        PDF_LOG(Warn, "serve.job.slow")
            .num("id", job.req.id)
            .num("serial", job.serial)
            .str("circuit", job.state->circuit)
            .num("run_ns", r.run_ns)
            .num("threshold_ms", cfg_.slow_job_ms)
            .str("trace", written ? path : "(write failed)")
            .num("spans", static_cast<std::uint64_t>(
                              capture->events().size()));
      }
      capture.reset();
    }

    if (r.status == Status::Ok) {
      PDF_LOG(Debug, "serve.job.done")
          .num("id", job.req.id)
          .num("serial", job.serial)
          .str("circuit", job.state->circuit)
          .num("queue_ns", r.queue_ns)
          .num("run_ns", r.run_ns);
    } else {
      PDF_LOG(Error, "serve.job.failed")
          .num("id", job.req.id)
          .num("serial", job.serial)
          .str("circuit", job.state->circuit)
          .str("error_kind", r.error.kind)
          .str("error", r.error.message);
    }
    finish(job, std::move(r));
  }
}

void Server::finish(Job& job, Response resp) {
  {
    std::lock_guard<std::mutex> lk(job.state->mu);
    job.state->phase = JobPhase::Done;
  }
  forget(job.req.id, job.state);
  job.done(std::move(resp));
}

void Server::forget(std::int64_t id, const std::shared_ptr<JobState>& state) {
  std::lock_guard<std::mutex> lk(active_mu_);
  auto [it, end] = active_.equal_range(id);
  for (; it != end; ++it) {
    if (it->second == state) {
      active_.erase(it);
      return;
    }
  }
}

Response Server::cancel(const Request& req) {
  std::shared_ptr<JobState> state;
  {
    std::lock_guard<std::mutex> lk(active_mu_);
    auto it = active_.find(req.cancel_target);
    if (it != active_.end()) state = it->second;
  }
  Response r;
  r.id = req.id;
  if (!state) {
    r.result["cancelled"] = false;
    r.result["state"] = "unknown";
    return r;
  }
  {
    std::lock_guard<std::mutex> lk(state->mu);
    if (state->phase != JobPhase::Queued) {
      // Jobs are not interrupted mid-run; the engines run to completion.
      r.result["cancelled"] = false;
      r.result["state"] =
          state->phase == JobPhase::Running ? "running" : "done";
      return r;
    }
    state->cancelled = true;
  }
  // Pull it out of the queue if a worker hasn't claimed it yet; either way
  // its `done` gets a Cancelled response (here, or from the worker that
  // popped it concurrently and sees the flag).
  if (auto removed = queue_.remove_if(
          [&](const Job& j) { return j.state == state; })) {
    cancelled_counter().add();
    finish(*removed, make_error(removed->req.id, Status::Cancelled,
                                "cancelled",
                                "job cancelled while queued"));
  }
  PDF_LOG(Info, "serve.job.cancelled")
      .num("id", req.cancel_target)
      .num("serial", state->serial)
      .str("stage", "queued");
  r.result["cancelled"] = true;
  r.result["state"] = "queued";
  return r;
}

Response Server::control(const Request& req) {
  Response r;
  r.id = req.id;
  switch (req.kind) {
    case RequestKind::Ping:
      r.result["pong"] = true;
      r.result["protocol"] = kProtocolVersion;
      break;
    case RequestKind::Stats:
      r.result = stats();
      break;
    case RequestKind::Health:
      r.result = health();
      break;
    case RequestKind::Jobs:
      r.result = jobs();
      break;
    case RequestKind::Prom: {
      obs::Json p;
      p["schema"] = kAdminProtocolVersion;
      p["content_type"] = obs::kPrometheusContentType;
      p["text"] = prometheus();
      r.result = std::move(p);
      break;
    }
    default:
      return make_error(req.id, Status::Error, "internal",
                        "unroutable control request");
  }
  return r;
}

obs::Json Server::stats() const {
  auto& m = runtime::Metrics::global();
  obs::Json doc;
  doc["schema"] = kAdminProtocolVersion;
  doc["protocol"] = kProtocolVersion;
  doc["backend"] = cfg_.backend;
  doc["concurrency"] = static_cast<std::int64_t>(cfg_.concurrency);
  doc["store_enabled"] = cache_.has_value();

  obs::Json queue;
  queue["depth"] = static_cast<std::int64_t>(queue_.depth());
  queue["capacity"] = static_cast<std::int64_t>(queue_.capacity());
  queue["closed"] = queue_.closed();
  doc["queue"] = std::move(queue);

  obs::Json admit;
  admit["accepted"] = m.counter("serve.admit.accepted").read();
  admit["rejected"] = m.counter("serve.admit.rejected").read();
  admit["closed"] = m.counter("serve.admit.closed").read();
  doc["admit"] = std::move(admit);

  obs::Json jobs;
  jobs["completed"] = m.counter("serve.jobs.completed").read();
  jobs["failed"] = m.counter("serve.jobs.failed").read();
  jobs["cancelled"] = m.counter("serve.jobs.cancelled").read();
  doc["jobs"] = std::move(jobs);

  obs::Json cache;
  cache["hits"] = m.counter("serve.cache.hits").read();
  cache["misses"] = m.counter("serve.cache.misses").read();
  doc["cache"] = std::move(cache);

  obs::Json latency;
  for (const char* name :
       {"serve.latency.queue_ns", "serve.latency.run_ns"}) {
    latency[name] = obs::histogram_json(m.histogram(name).snapshot());
  }
  doc["latency"] = std::move(latency);

  // The full registry (counters, timers, every histogram with
  // p50/p90/p99), rendered by the same code path as the run manifest.
  doc["metrics"] = obs::snapshot_json(m.snapshot());
  return doc;
}

std::size_t Server::inflight() const {
  std::lock_guard<std::mutex> lk(active_mu_);
  std::size_t n = 0;
  for (const auto& [id, state] : active_) {
    std::lock_guard<std::mutex> slk(state->mu);
    if (state->phase == JobPhase::Running) ++n;
  }
  return n;
}

obs::Json Server::health() const {
  auto& m = runtime::Metrics::global();
  const std::uint64_t hits = m.counter("store.hits").read();
  const std::uint64_t misses = m.counter("store.misses").read();

  obs::Json doc;
  doc["schema"] = kAdminProtocolVersion;
  doc["uptime_ms"] = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
  doc["draining"] = queue_.closed();
  doc["inflight"] = static_cast<std::int64_t>(inflight());

  obs::Json queue;
  queue["depth"] = static_cast<std::int64_t>(queue_.depth());
  queue["capacity"] = static_cast<std::int64_t>(queue_.capacity());
  doc["queue"] = std::move(queue);

  obs::Json cache;
  cache["enabled"] = cache_.has_value();
  cache["hits"] = hits;
  cache["misses"] = misses;
  cache["hit_rate"] = hit_rate(hits, misses);
  doc["cache"] = std::move(cache);
  return doc;
}

obs::Json Server::jobs() const {
  obs::Json list{obs::Json::Array{}};
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(active_mu_);
    for (const auto& [id, state] : active_) {
      obs::Json j;
      int phase;
      {
        std::lock_guard<std::mutex> slk(state->mu);
        phase = static_cast<int>(state->phase);
        j["cancelled"] = state->cancelled;
      }
      j["id"] = state->id;
      j["serial"] = state->serial;
      j["kind"] = kind_name(state->kind);
      j["circuit"] = state->circuit;
      j["phase"] = phase_name(phase);
      j["age_ms"] = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - state->admitted)
              .count());
      list.push_back(std::move(j));
    }
  }
  obs::Json doc;
  doc["schema"] = kAdminProtocolVersion;
  doc["jobs"] = std::move(list);
  return doc;
}

std::string Server::prometheus() const {
  auto& m = runtime::Metrics::global();
  const std::uint64_t hits = m.counter("store.hits").read();
  const std::uint64_t misses = m.counter("store.misses").read();
  const std::vector<obs::Gauge> gauges = {
      {"serve.uptime.seconds",
       std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                     started_)
           .count()},
      {"serve.queue.depth_now", static_cast<double>(queue_.depth())},
      {"serve.jobs.inflight", static_cast<double>(inflight())},
      {"serve.cache.hit_rate", hit_rate(hits, misses)},
  };
  return obs::prometheus_text(m.snapshot(), gauges);
}

void Server::drain() {
  std::call_once(drain_once_, [&] {
    PDF_LOG(Info, "serve.drain")
        .num("queued", static_cast<std::uint64_t>(queue_.depth()))
        .num("inflight", static_cast<std::uint64_t>(inflight()));
    queue_.close();
    for (auto& w : workers_) w.join();
    PDF_LOG(Info, "serve.drained");
  });
}

}  // namespace pdf::serve
