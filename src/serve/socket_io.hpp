// Minimal Unix-domain stream-socket helpers shared by the pdf_serve daemon
// and the pdf_load client. POSIX-only (the daemon is gated out of Windows
// builds); every function reports failure by return value, never by abort.
#pragma once

#include <string>
#include <string_view>

namespace pdf::serve {

/// True when this build has socket support (POSIX).
bool sockets_supported();

/// Creates, binds and listens on a Unix-domain stream socket at `path`
/// (unlinking a stale file first). Returns the fd, or -1 with `err`
/// describing the failure.
int listen_unix(const std::string& path, int backlog, std::string* err);

/// Connects to the daemon socket at `path`. Returns the fd or -1.
int connect_unix(const std::string& path, std::string* err);

/// accept() that retries EINTR. Returns the connection fd or -1.
int accept_connection(int listen_fd);

/// Writes all of `data`, retrying partial writes and EINTR. False on error
/// (receiver gone). SIGPIPE is suppressed per-call.
bool write_all(int fd, std::string_view data);

/// Buffered newline-delimited reader over a socket fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks for the next '\n'-terminated line (terminator stripped). False
  /// on EOF or read error; a final unterminated fragment is delivered as a
  /// last line.
  bool read_line(std::string* line);

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

void close_fd(int fd);

/// shutdown(SHUT_RDWR): unblocks a reader stuck in read() on `fd` so its
/// thread can exit (the daemon's drain path).
void shutdown_fd(int fd);

}  // namespace pdf::serve
