#include "implication/implication.hpp"

#include <deque>
#include <stdexcept>

namespace pdf {
namespace {

// Working state of one implication run.
struct State {
  const CompiledCircuit& cc;
  // value[plane][node]
  std::vector<V3> value[3];
  std::deque<std::pair<NodeId, int>> work;  // (node, plane) whose value was set
  std::vector<bool> queued[3];
  bool conflict = false;

  explicit State(const CompiledCircuit& c) : cc(c) {
    for (int p = 0; p < 3; ++p) {
      value[p].assign(c.node_count(), V3::X);
      queued[p].assign(c.node_count(), false);
    }
  }

  V3 get(NodeId id, int plane) const { return value[plane][id]; }

  // Sets a value; detects contradictions; enqueues the change.
  void assign(NodeId id, int plane, V3 v) {
    if (conflict || !is_specified(v)) return;
    V3& cur = value[plane][id];
    if (cur == v) return;
    if (is_specified(cur)) {
      conflict = true;
      return;
    }
    cur = v;
    if (!queued[plane][id]) {
      queued[plane][id] = true;
      work.emplace_back(id, plane);
    }
  }
};

// Forward evaluation of `gate` in `plane`; assigns the output if determined.
void forward(State& st, NodeId gate, int plane) {
  if (st.cc.type(gate) == GateType::Input) return;
  const V3 v = eval_node_plane(st.cc, gate, st.value[plane].data());
  if (is_specified(v)) st.assign(gate, plane, v);
}

// Backward inference for `gate` in `plane` from its (possibly specified)
// output value.
void backward(State& st, NodeId gate, int plane) {
  const GateType t = st.cc.type(gate);
  if (t == GateType::Input) return;
  const V3 out = st.get(gate, plane);
  if (!is_specified(out)) return;
  const std::span<const NodeId> fanin = st.cc.fanins(gate);

  switch (t) {
    case GateType::Buf:
      st.assign(fanin[0], plane, out);
      return;
    case GateType::Not:
      st.assign(fanin[0], plane, not3(out));
      return;
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      const V3 c = *controlling_value(t);
      const V3 nc = not3(c);
      // Output seen through the gate's inversion: the value the underlying
      // AND/OR core produces.
      const V3 core = is_inverting(t) ? not3(out) : out;
      if (core == nc) {
        // Non-controlled output: every input must be non-controlling.
        for (NodeId f : fanin) st.assign(f, plane, nc);
      } else {
        // Controlled output: if all inputs but one are non-controlling, the
        // remaining input must be controlling.
        NodeId unknown = kNoNode;
        int unknown_count = 0;
        for (NodeId f : fanin) {
          const V3 v = st.get(f, plane);
          if (v == c) return;  // already justified
          if (!is_specified(v)) {
            unknown = f;
            ++unknown_count;
            if (unknown_count > 1) return;
          }
        }
        if (unknown_count == 1) {
          st.assign(unknown, plane, c);
        } else if (unknown_count == 0) {
          // All inputs non-controlling but output controlled: contradiction.
          st.conflict = true;
        }
      }
      return;
    }
    default:
      throw std::logic_error("implication on non-primitive gate " +
                             st.cc.netlist().node(gate).name);
  }
}

}  // namespace

ImplicationEngine::ImplicationEngine(const Netlist& nl) {
  if (!nl.finalized()) throw std::logic_error("ImplicationEngine: not finalized");
  owned_.emplace(nl);
  init(*owned_);
}

ImplicationEngine::ImplicationEngine(const CompiledCircuit& cc) { init(cc); }

void ImplicationEngine::init(const CompiledCircuit& cc) {
  cc_ = &cc;
  if (cc.has_sequential()) {
    throw std::logic_error("ImplicationEngine: netlist is sequential");
  }
}

ImplicationResult ImplicationEngine::imply(
    std::span<const ValueRequirement> reqs) const {
  const CompiledCircuit& cc = *cc_;
  State st(cc);

  for (const auto& r : reqs) {
    st.assign(r.line, 0, r.value.a1);
    st.assign(r.line, 1, r.value.a2);
    st.assign(r.line, 2, r.value.a3);
    if (st.conflict) break;
  }

  while (!st.work.empty() && !st.conflict) {
    const auto [id, plane] = st.work.front();
    st.work.pop_front();
    st.queued[plane][id] = false;

    // PI plane coupling.
    if (cc.input_index(id) >= 0) {
      const V3 b1 = st.get(id, 0), b2 = st.get(id, 1), b3 = st.get(id, 2);
      if (is_specified(b1) && b1 == b3) st.assign(id, 1, b1);
      if (is_specified(b2)) {
        st.assign(id, 0, b2);
        st.assign(id, 2, b2);
      }
    }

    // The node's own gate: re-evaluate forward (consistency with fanins) and
    // infer backwards into fanins.
    forward(st, id, plane);
    backward(st, id, plane);

    // Every consumer: the changed input may determine the output (forward) or
    // enable sibling inference (backward).
    for (NodeId g : cc.fanouts(id)) {
      forward(st, g, plane);
      backward(st, g, plane);
      if (st.conflict) break;
    }
  }

  ImplicationResult out;
  out.consistent = !st.conflict;
  if (out.consistent) {
    out.values.resize(cc.node_count());
    for (NodeId id = 0; id < cc.node_count(); ++id) {
      out.values[id] = Triple{st.get(id, 0), st.get(id, 1), st.get(id, 2)};
    }
  }
  return out;
}

}  // namespace pdf
