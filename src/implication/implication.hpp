// Static implication over the two-pattern triple algebra.
//
// The triple of every line decomposes into three 3-valued planes that are
// independent copies of the circuit's logic (the intermediate plane is the
// same network evaluated under the conservative hazard semantics), coupled
// only at primary inputs: a PI's intermediate value equals its pattern values
// when they agree, and conversely a specified intermediate value forces both
// pattern values.
//
// Given a requirement set, the engine seeds the specified components onto the
// planes and closes them under
//   * forward implication (gate evaluation),
//   * backward implication (controlling/non-controlling inference: AND output
//     1 forces all inputs 1; AND output 0 with all side inputs at 1 forces
//     the last input to 0; dually for OR; BUF/NOT transfer), and
//   * the PI plane coupling above.
// A derived value that contradicts an existing one proves the requirement set
// unsatisfiable — the paper's second screen for undetectable faults
// (Section 3.1).
//
// Traversal runs on the flattened CompiledCircuit view (CSR fanin/fanout,
// dense gate types); gate evaluation gathers fanin values into fixed stack
// buffers, so the fixpoint loop performs no per-gate allocation.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "base/triple.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/requirements.hpp"
#include "netlist/netlist.hpp"

namespace pdf {

struct ImplicationResult {
  bool consistent = true;
  /// Closed value of every node (indexed by NodeId); meaningful only when
  /// consistent.
  std::vector<Triple> values;
};

class ImplicationEngine {
 public:
  /// Netlist must be finalized, combinational, primitive-only. Builds (and
  /// owns) a compiled view.
  explicit ImplicationEngine(const Netlist& nl);

  /// Shares an existing compiled view (must outlive the engine).
  explicit ImplicationEngine(const CompiledCircuit& cc);

  ImplicationEngine(const ImplicationEngine&) = delete;
  ImplicationEngine& operator=(const ImplicationEngine&) = delete;

  /// Runs the fixpoint from the given requirements.
  ImplicationResult imply(std::span<const ValueRequirement> reqs) const;

  /// Convenience: true when implication finds a contradiction.
  bool contradicts(std::span<const ValueRequirement> reqs) const {
    return !imply(reqs).consistent;
  }

 private:
  void init(const CompiledCircuit& cc);

  std::optional<CompiledCircuit> owned_;
  const CompiledCircuit* cc_ = nullptr;
};

}  // namespace pdf
