#include "netlist/equivalence.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/cleanup.hpp"
#include "netlist/transform.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TEST(Equivalence, IdenticalNetlistsAreEquivalent) {
  const Netlist nl = benchmark_circuit("s27");
  const EquivalenceResult r = check_equivalence(nl, nl);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
}

TEST(Equivalence, XorDecompositionIsEquivalent) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nOUTPUT(w)\n"
      "x = XOR(a, b)\nz = XNOR(x, c)\nw = AND(x, c)\n");
  const Netlist flat = decompose_xor(nl);
  const EquivalenceResult r = check_equivalence(nl, flat);
  EXPECT_TRUE(r.equivalent) << "mismatch on " << r.output_name;
}

TEST(Equivalence, CleanupIsEquivalent) {
  const Netlist nl = parse_bench_string(R"(
    INPUT(a)
    INPUT(b)
    OUTPUT(z)
    b1 = BUF(a)
    dead = NOT(b1)
    z = NAND(b1, b)
  )");
  const Netlist clean = cleanup(nl);
  const EquivalenceResult r = check_equivalence(nl, clean);
  EXPECT_TRUE(r.equivalent);
}

TEST(Equivalence, DetectsRealDifferenceWithWitness) {
  const Netlist a = parse_bench_string(
      "INPUT(x)\nINPUT(y)\nOUTPUT(z)\nz = AND(x, y)\n");
  const Netlist b = parse_bench_string(
      "INPUT(x)\nINPUT(y)\nOUTPUT(z)\nz = OR(x, y)\n");
  const EquivalenceResult r = check_equivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  EXPECT_EQ(r.output_name, "z");
  ASSERT_EQ(r.input_values.size(), 2u);
  // The witness really distinguishes AND from OR: exactly one input is 1.
  const int ones = (r.input_values[0] == V3::One) + (r.input_values[1] == V3::One);
  EXPECT_EQ(ones, 1);
}

TEST(Equivalence, InputOrderIndependent) {
  const Netlist a = parse_bench_string(
      "INPUT(p)\nINPUT(q)\nOUTPUT(z)\nz = NAND(p, q)\n");
  const Netlist b = parse_bench_string(
      "INPUT(q)\nINPUT(p)\nOUTPUT(z)\nz = NAND(p, q)\n");
  EXPECT_TRUE(check_equivalence(a, b).equivalent);
}

TEST(Equivalence, MismatchedInputsThrow) {
  const Netlist a = parse_bench_string("INPUT(x)\nOUTPUT(z)\nz = NOT(x)\n");
  const Netlist b = parse_bench_string("INPUT(y)\nOUTPUT(z)\nz = NOT(y)\n");
  EXPECT_THROW(check_equivalence(a, b), std::invalid_argument);
}

TEST(Equivalence, RandomModeFindsInjectedBug) {
  // Above the exhaustive limit, random vectors still find a planted
  // single-output inversion quickly.
  RandomCircuitConfig cfg;
  cfg.seed = 21;
  cfg.n_inputs = 24;
  cfg.n_gates = 120;
  cfg.levels = 8;
  const Netlist a = generate_random_circuit(cfg);

  // Rebuild b as a copy with one output's driving gate type flipped.
  Netlist b = generate_random_circuit(cfg);
  const NodeId victim = b.outputs().front();
  const Node& v = b.node(victim);
  if (v.type == GateType::And || v.type == GateType::Or ||
      v.type == GateType::Nand || v.type == GateType::Nor) {
    const GateType flipped = is_inverting(v.type)
                                 ? (v.type == GateType::Nand ? GateType::And
                                                             : GateType::Or)
                                 : (v.type == GateType::And ? GateType::Nand
                                                            : GateType::Nor);
    b.redefine_gate(victim, flipped, v.fanin);
  } else {
    b.redefine_gate(victim, v.type == GateType::Not ? GateType::Buf
                                                    : GateType::Not,
                    v.fanin);
  }
  b.finalize();

  EquivalenceConfig ecfg;
  ecfg.exhaustive_input_limit = 10;  // force random mode
  const EquivalenceResult r = check_equivalence(a, b, ecfg);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.exhaustive);
}

}  // namespace
}  // namespace pdf
