#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "gen/structured.hpp"
#include "netlist/transform.hpp"
#include "paths/count.hpp"
#include "sim/triple_sim.hpp"

namespace pdf {
namespace {

unsigned read_product(const Netlist& nl, const std::vector<V3>& values) {
  // Outputs were marked LSB-first during construction.
  unsigned out = 0;
  for (std::size_t k = 0; k < nl.outputs().size(); ++k) {
    if (values[nl.outputs()[k]] == V3::One) out |= 1u << k;
  }
  return out;
}

TEST(Multiplier, ComputesProductsExhaustively4x4) {
  const std::size_t bits = 4;
  const Netlist nl = array_multiplier(bits);
  EXPECT_TRUE(is_atpg_ready(nl));
  ASSERT_EQ(nl.inputs().size(), 2 * bits);
  ASSERT_EQ(nl.outputs().size(), 2 * bits);

  for (unsigned a = 0; a < (1u << bits); ++a) {
    for (unsigned b = 0; b < (1u << bits); ++b) {
      std::vector<V3> pis(nl.inputs().size());
      for (std::size_t i = 0; i < bits; ++i) {
        pis[i] = (a >> i) & 1 ? V3::One : V3::Zero;
        pis[bits + i] = (b >> i) & 1 ? V3::One : V3::Zero;
      }
      const auto values = simulate_plane(nl, pis);
      EXPECT_EQ(read_product(nl, values), a * b) << a << " * " << b;
    }
  }
}

TEST(Multiplier, SpotChecks8x8) {
  const std::size_t bits = 8;
  const Netlist nl = benchmark_circuit("mult8");
  for (const auto& [a, b] : {std::pair<unsigned, unsigned>{0, 0},
                             {255, 255},
                             {200, 3},
                             {17, 19},
                             {128, 2},
                             {99, 101}}) {
    std::vector<V3> pis(nl.inputs().size());
    for (std::size_t i = 0; i < bits; ++i) {
      pis[i] = (a >> i) & 1 ? V3::One : V3::Zero;
      pis[bits + i] = (b >> i) & 1 ? V3::One : V3::Zero;
    }
    const auto values = simulate_plane(nl, pis);
    EXPECT_EQ(read_product(nl, values), a * b) << a << " * " << b;
  }
}

TEST(Multiplier, HasDenseNearCriticalBand) {
  const Netlist nl = benchmark_circuit("mult8");
  const PathCounts pc = count_paths(nl);
  EXPECT_GE(pc.total, 10000u);  // thousands of structural paths
}

TEST(Multiplier, RejectsDegenerateWidth) {
  EXPECT_THROW(array_multiplier(1), std::invalid_argument);
}

TEST(RegistryExtras, C17IsExact) {
  const Netlist nl = benchmark_circuit("c17");
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 6u);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const GateType t = nl.node(id).type;
    EXPECT_TRUE(t == GateType::Input || t == GateType::Nand);
  }
  // Functional spot check: with all inputs 0 the first-level NANDs output 1,
  // so both output NANDs see (1, 1) and produce 0.
  std::vector<V3> pis(5, V3::Zero);
  const auto v = simulate_plane(nl, pis);
  for (NodeId out : nl.outputs()) EXPECT_EQ(v[out], V3::Zero);
}

}  // namespace
}  // namespace pdf
