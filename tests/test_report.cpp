#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pdf {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t("Demo");
  t.columns({"circuit", "tests"});
  t.row("s641", 129);
  t.row("b03", 96);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("circuit"), std::string::npos);
  EXPECT_NE(s.find("129"), std::string::npos);
  EXPECT_NE(s.find("b03"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t;
  t.columns({"a", "b", "c"});
  t.row("x", 1, 2.5);
  EXPECT_EQ(t.to_csv(), "a,b,c\nx,1,2.50\n");
}

TEST(Table, MixedCellTypes) {
  Table t;
  t.columns({"name", "int", "double", "literal"});
  t.row(std::string("n"), std::size_t{7}, 0.25, "lit");
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.to_csv(), "name,int,double,literal\nn,7,0.25,lit\n");
}

TEST(Table, RowsShorterThanHeaderAreSafe) {
  Table t;
  t.columns({"a", "b"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace pdf
