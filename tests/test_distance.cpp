#include "paths/distance.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "gen/registry.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

// Brute-force d(g): max over all complete suffixes from g.
std::vector<int> brute_distances(const LineDelayModel& dm) {
  const Netlist& nl = dm.netlist();
  std::vector<int> d(nl.node_count(), kUnreachable);
  std::function<int(NodeId)> rec = [&](NodeId u) -> int {
    int best = kUnreachable;
    const Node& n = nl.node(u);
    if (n.is_output) best = dm.branch_cost(u);
    for (NodeId v : n.fanout) {
      const int sub = rec(v);
      if (sub == kUnreachable) continue;
      best = std::max(best, dm.branch_cost(u) + 1 + sub);
    }
    return best;
  };
  for (NodeId id = 0; id < nl.node_count(); ++id) d[id] = rec(id);
  return d;
}

TEST(Distance, MatchesBruteForceOnS27) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EXPECT_EQ(distances_to_outputs(dm), brute_distances(dm));
}

TEST(Distance, MatchesBruteForceOnRandomCircuits) {
  Rng rng(4242);
  for (int iter = 0; iter < 20; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    const LineDelayModel dm(nl);
    EXPECT_EQ(distances_to_outputs(dm), brute_distances(dm)) << "iter " << iter;
  }
}

TEST(Distance, KnownValuesOnS27) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const auto d = distances_to_outputs(dm);
  // G17: real PO, single consumer, nothing after the stem.
  EXPECT_EQ(d[nl.id_of("G17")], 0);
  // G13: pseudo output, sole consumer is its tap.
  EXPECT_EQ(d[nl.id_of("G13")], 0);
  // G11 (3 consumers): completing at its own tap crosses the branch (1);
  // going through G17 costs branch + stem (2). Max is 2.
  EXPECT_EQ(d[nl.id_of("G11")], 2);
  // Longest path is 10 lines; its source G0 has stem 1 + d = 10.
  EXPECT_EQ(d[nl.id_of("G0")], 9);
}

TEST(Distance, BoundIsTightForPartialPaths) {
  // Property: for every complete path found by DFS, and every prefix of it,
  // partial_length(prefix) + d(last) >= complete length, with equality for
  // the longest completion of that prefix.
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const auto d = distances_to_outputs(dm);

  std::vector<NodeId> cur;
  std::function<void(NodeId)> dfs = [&](NodeId u) {
    cur.push_back(u);
    const Node& n = nl.node(u);
    if (n.is_output) {
      const int full = dm.complete_length(cur);
      for (std::size_t k = 1; k <= cur.size(); ++k) {
        std::span<const NodeId> prefix(cur.data(), k);
        const int bound = dm.partial_length(prefix) + d[cur[k - 1]];
        EXPECT_GE(bound, full);
      }
    }
    for (NodeId v : n.fanout) dfs(v);
    cur.pop_back();
  };
  for (NodeId pi : nl.inputs()) dfs(pi);
}

TEST(Distance, DeadEndsAreUnreachable) {
  Netlist nl("dead");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId z = nl.add_gate("z", GateType::And, {a, b});
  const NodeId dead = nl.add_gate("dead", GateType::Not, {a});
  nl.mark_output(z);
  nl.finalize();
  const LineDelayModel dm(nl);
  const auto d = distances_to_outputs(dm);
  EXPECT_EQ(d[dead], kUnreachable);
  EXPECT_EQ(d[z], 0);
  EXPECT_GE(d[a], 1);
}

}  // namespace
}  // namespace pdf
