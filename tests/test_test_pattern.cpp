#include "atpg/test_pattern.hpp"

#include <gtest/gtest.h>

#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TEST(TestPattern, FullySpecified) {
  TwoPatternTest t;
  EXPECT_FALSE(t.fully_specified());  // empty test
  t.pi_values = {kRise, kSteady0, kFall};
  EXPECT_TRUE(t.fully_specified());
  t.pi_values.push_back(Triple{V3::X, V3::X, V3::One});
  EXPECT_FALSE(t.fully_specified());
}

TEST(TestPattern, PatternsString) {
  TwoPatternTest t;
  t.pi_values = {kRise, kSteady0, kFall, kSteady1};
  EXPECT_EQ(t.patterns_string(), "0011/1001");
}

TEST(TestPattern, PatternsStringWithUnknowns) {
  TwoPatternTest t;
  t.pi_values = {Triple{V3::X, V3::X, V3::One}, kSteady0};
  EXPECT_EQ(t.patterns_string(), "x0/10");
}

TEST(TestPattern, ToStringUsesInputNames) {
  const Netlist nl = testutil::tiny_and_or();
  TwoPatternTest t;
  t.pi_values = {kRise, kSteady1, kSteady0};
  const std::string s = test_to_string(nl, t);
  EXPECT_NE(s.find("a=0x1"), std::string::npos);
  EXPECT_NE(s.find("b=111"), std::string::npos);
  EXPECT_NE(s.find("c=000"), std::string::npos);
}

}  // namespace
}  // namespace pdf
