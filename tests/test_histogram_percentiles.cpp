// Property tests for the log2-bucket histogram percentiles.
//
// The histogram stores only bucket counts, so a percentile cannot be exact;
// the contract is that percentile(q) returns the upper bound of the bucket
// containing the rank-ceil(q*n) sample, clipped to the observed maximum.
// Against the exact order statistic e that means:
//   e <= percentile(q) <= bucket_upper(bucket_of(e))
// i.e. the report brackets the exact percentile from above within one log2
// bucket, and equals min(bucket_upper(bucket_of(e)), max) exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/rng.hpp"
#include "runtime/metrics.hpp"

namespace pdf::runtime {
namespace {

using Histogram = Metrics::Histogram;

/// Exact 1-based rank used by Snapshot::percentile.
std::uint64_t rank_of(double q, std::uint64_t count) {
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  return rank == 0 ? 1 : rank;
}

void check_distribution(const std::vector<std::uint64_t>& values,
                        const char* what) {
  Histogram h;
  for (const std::uint64_t v : values) h.record(v);
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size()) << what;

  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(snap.max, sorted.back()) << what;

  for (const double q : {0.0, 0.25, 0.50, 0.90, 0.99, 1.0}) {
    const std::uint64_t exact = sorted[rank_of(q, snap.count) - 1];
    const std::uint64_t reported = snap.percentile(q);
    // Never below the exact order statistic...
    EXPECT_GE(reported, exact) << what << " q=" << q;
    // ...never past the top of the exact sample's log2 bucket...
    EXPECT_LE(reported, Histogram::bucket_upper(Histogram::bucket_of(exact)))
        << what << " q=" << q;
    // ...and precisely the documented value.
    EXPECT_EQ(reported,
              std::min(Histogram::bucket_upper(Histogram::bucket_of(exact)),
                       snap.max))
        << what << " q=" << q;
  }
}

TEST(HistogramPercentiles, BucketBoundariesRoundTrip) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  for (std::size_t b = 1; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lower(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(b)), b);
    EXPECT_LE(Histogram::bucket_lower(b), Histogram::bucket_upper(b));
  }
}

TEST(HistogramPercentiles, SingleValue) {
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{7}, std::uint64_t{1} << 40}) {
    check_distribution({v}, "single value");
  }
}

TEST(HistogramPercentiles, EmptyHistogramReportsZero) {
  Histogram h;
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.p50(), 0u);
  EXPECT_EQ(snap.p90(), 0u);
  EXPECT_EQ(snap.p99(), 0u);
}

TEST(HistogramPercentiles, RandomDistributionsBracketExactPercentiles) {
  Rng rng(0x4157);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.below(400);
    std::vector<std::uint64_t> values;
    values.reserve(n);
    switch (trial % 4) {
      case 0:  // uniform small
        for (std::size_t i = 0; i < n; ++i) values.push_back(rng.below(1000));
        break;
      case 1:  // log-uniform over the full 64-bit range
        for (std::size_t i = 0; i < n; ++i) {
          values.push_back(rng.next() >> rng.below(64));
        }
        break;
      case 2:  // heavily tied (constants with occasional outliers)
        for (std::size_t i = 0; i < n; ++i) {
          values.push_back(rng.below(20) == 0 ? 1'000'000 : 42);
        }
        break;
      default:  // lots of zeros (bucket 0 is special-cased)
        for (std::size_t i = 0; i < n; ++i) {
          values.push_back(rng.coin() ? 0 : rng.below(8));
        }
        break;
    }
    check_distribution(values, "random trial");
  }
}

TEST(HistogramPercentiles, PercentilesAreMonotoneInQ) {
  Rng rng(0xbeef);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.next() >> rng.below(60));
  Histogram h;
  for (const std::uint64_t v : values) h.record(v);
  const Histogram::Snapshot snap = h.snapshot();
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t r = snap.percentile(q);
    EXPECT_GE(r, prev) << "q=" << q;
    prev = r;
  }
}

}  // namespace
}  // namespace pdf::runtime
