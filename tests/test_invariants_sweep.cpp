// Registry-wide parameterized property sweeps: structural invariants that
// must hold for every circuit, checked over the whole benchmark registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "enrich/target_sets.hpp"
#include "faults/fault.hpp"
#include "gen/registry.hpp"
#include "paths/count.hpp"
#include "paths/distance.hpp"
#include "paths/enumerate.hpp"
#include "paths/line_cover.hpp"

namespace pdf {
namespace {

class RegistrySweep : public ::testing::TestWithParam<std::string> {
 protected:
  Netlist nl_ = benchmark_circuit(GetParam());
};

TEST_P(RegistrySweep, RequirementInvariants) {
  // For every enumerated fault of the circuit: A(p) contains the launch
  // transition at the source; every off-path constraint is steady or
  // final-only at the non-controlling value of its consuming gate; on-path
  // entries alternate with gate inversions.
  const LineDelayModel dm(nl_);
  EnumerationConfig cfg;
  cfg.max_faults = 400;
  const auto paths = enumerate_longest_paths(dm, cfg).paths;
  ASSERT_FALSE(paths.empty());

  std::size_t checked = 0;
  for (const auto& ep : paths) {
    for (bool rising : {true, false}) {
      const PathDelayFault f{ep.path, rising, ep.length};
      const FaultRequirements reqs = build_requirements(nl_, f);
      if (reqs.conflicting) continue;
      ++checked;

      // Launch value.
      bool found_launch = false;
      for (const auto& r : reqs.values) {
        if (r.line == f.path.source()) {
          EXPECT_TRUE(r.value.covers(transition(rising)));
          found_launch = true;
        }
      }
      EXPECT_TRUE(found_launch);

      // On-path transition parity.
      bool dir = rising;
      for (std::size_t k = 1; k < f.path.nodes.size(); ++k) {
        dir = dir != is_inverting(nl_.node(f.path.nodes[k]).type);
        for (const auto& r : reqs.values) {
          if (r.line == f.path.nodes[k]) {
            EXPECT_TRUE(r.value.covers(transition(dir)) ||
                        transition(dir).covers(r.value))
                << nl_.node(r.line).name;
          }
        }
      }

      // Off-path polarity: every requirement on a non-path line must be
      // steady(nc) or final(nc) for some consuming on-path gate.
      std::set<NodeId> on_path(f.path.nodes.begin(), f.path.nodes.end());
      for (const auto& r : reqs.values) {
        if (on_path.contains(r.line)) continue;
        const V3 v = r.value.a3;
        EXPECT_TRUE(is_specified(v)) << nl_.node(r.line).name;
        EXPECT_TRUE(r.value == steady(v) || r.value == final_only(v))
            << nl_.node(r.line).name << "=" << r.value.str();
        // The line feeds at least one on-path gate whose non-controlling
        // value is v.
        bool feeds = false;
        for (NodeId out : nl_.node(r.line).fanout) {
          if (!on_path.contains(out)) continue;
          const auto c = controlling_value(nl_.node(out).type);
          if (c && not3(*c) == v) feeds = true;
        }
        EXPECT_TRUE(feeds) << nl_.node(r.line).name;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(RegistrySweep, DistanceBoundsAreAdmissible) {
  // len(p) = partial_length + d(last) over-approximates every completion —
  // verified on the enumerated longest paths (each prefix of each path).
  const LineDelayModel dm(nl_);
  const auto d = distances_to_outputs(dm);
  EnumerationConfig cfg;
  cfg.max_faults = 200;
  const auto paths = enumerate_longest_paths(dm, cfg).paths;
  for (const auto& ep : paths) {
    for (std::size_t k = 1; k <= ep.path.nodes.size(); ++k) {
      std::span<const NodeId> prefix(ep.path.nodes.data(), k);
      EXPECT_GE(dm.partial_length(prefix) + d[prefix.back()], ep.length);
    }
  }
}

TEST_P(RegistrySweep, CountsDominateEnumeration) {
  // The non-enumerative total is exact, so the bounded enumeration can never
  // return more paths than it.
  const PathCounts pc = count_paths(nl_);
  const LineDelayModel dm(nl_);
  EnumerationConfig cfg;
  cfg.max_faults = 500;
  const auto r = enumerate_longest_paths(dm, cfg);
  EXPECT_LE(r.paths.size(), pc.total);
}

TEST_P(RegistrySweep, LineCoverPathsAreValidAndLongest) {
  const LineDelayModel dm(nl_);
  const auto arrive = distances_from_inputs(dm);
  const auto depart = distances_to_outputs(dm);
  const auto cover = select_line_cover_paths(dm);
  ASSERT_FALSE(cover.empty());
  for (const auto& cp : cover) {
    EXPECT_EQ(cp.length, dm.complete_length(cp.path.nodes));
    // Longest-through property at every node of the path.
    for (NodeId g : cp.path.nodes) {
      EXPECT_LE(cp.length, arrive[g] + depart[g]);
    }
  }
}

TEST_P(RegistrySweep, TargetSetPartitionIsExactAndOrdered) {
  TargetSetConfig cfg;
  cfg.n_p = 600;
  cfg.n_p0 = 80;
  const TargetSets ts = build_target_sets(nl_, cfg);
  EXPECT_EQ(ts.p0.size() + ts.p1.size(), ts.screen.kept);
  int min_p0 = 1 << 30;
  int max_p1 = -1;
  for (const auto& tf : ts.p0) min_p0 = std::min(min_p0, tf.fault.length);
  for (const auto& tf : ts.p1) max_p1 = std::max(max_p1, tf.fault.length);
  if (!ts.p0.empty() && !ts.p1.empty()) {
    EXPECT_GT(min_p0, max_p1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, RegistrySweep,
    ::testing::Values("s27", "c17", "s641_like", "s953_like", "s1196_like",
                      "s1423_like", "s1488_like", "b03_like", "b04_like",
                      "b09_like", "s1423r_like", "s5378r_like", "s9234r_like",
                      "rca16", "barrel16x4", "skipchain48", "mult8"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace pdf
