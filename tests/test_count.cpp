#include "paths/count.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "paths/enumerate.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TEST(PathCount, MatchesEnumerationOnS27) {
  const Netlist nl = benchmark_circuit("s27");
  const PathCounts pc = count_paths(nl);
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 1000000;
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);
  EXPECT_EQ(pc.total, r.paths.size());
  EXPECT_FALSE(pc.saturated);
}

TEST(PathCount, MatchesEnumerationOnRandomCircuits) {
  Rng rng(606);
  int checked = 0;
  for (int iter = 0; iter < 30 && checked < 10; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    const PathCounts pc = count_paths(nl);
    if (pc.total > 20000) continue;
    ++checked;
    const LineDelayModel dm(nl);
    EnumerationConfig cfg;
    cfg.max_faults = 100000;
    const EnumerationResult r = enumerate_longest_paths(dm, cfg);
    EXPECT_EQ(pc.total, r.paths.size()) << "iter " << iter;
  }
  EXPECT_GE(checked, 5);
}

TEST(PathCount, ThroughCountsAreConsistent) {
  // Each complete path passes through its nodes, so summing path counts per
  // source PI must equal the total, and through[] of any node never exceeds
  // the total.
  const Netlist nl = benchmark_circuit("s27");
  const PathCounts pc = count_paths(nl);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    EXPECT_LE(pc.through[id], pc.total);
  }
  std::uint64_t by_sources = 0;
  for (NodeId pi : nl.inputs()) by_sources += pc.through[pi];
  EXPECT_EQ(by_sources, pc.total);
}

TEST(PathCount, PaperSelectionCriterion) {
  // Every table circuit must satisfy the paper's ">= 1000 paths" criterion.
  for (const auto& name : table_circuits()) {
    EXPECT_TRUE(has_at_least_paths(benchmark_circuit(name), 1000)) << name;
  }
  // s27 famously has far fewer.
  EXPECT_FALSE(has_at_least_paths(benchmark_circuit("s27"), 1000));
}

TEST(PathCount, SaturationOnWideDeepFabric) {
  // A 2-ary fanout tree of depth 70 has ~2^70 paths; counts must clamp, not
  // wrap.
  Netlist nl("explode");
  NodeId a = nl.add_input("a");
  NodeId b = nl.add_input("b");
  for (int lvl = 0; lvl < 70; ++lvl) {
    const std::string p = "l" + std::to_string(lvl);
    const NodeId x = nl.add_gate(p + "x", GateType::And, {a, b});
    const NodeId y = nl.add_gate(p + "y", GateType::Or, {a, b});
    a = x;
    b = y;
  }
  nl.mark_output(a);
  nl.mark_output(b);
  nl.finalize();
  const PathCounts pc = count_paths(nl);
  EXPECT_TRUE(pc.saturated);
  EXPECT_EQ(pc.total, kPathCountCap);
}

TEST(PathCount, DanglingLogicCountsNothing) {
  Netlist nl("dangle");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId z = nl.add_gate("z", GateType::And, {a, b});
  const NodeId dead = nl.add_gate("dead", GateType::Not, {a});
  nl.mark_output(z);
  nl.finalize();
  const PathCounts pc = count_paths(nl);
  EXPECT_EQ(pc.total, 2u);
  EXPECT_EQ(pc.through[dead], 0u);
}

}  // namespace
}  // namespace pdf
