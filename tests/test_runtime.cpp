#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "runtime/metrics.hpp"
#include "runtime/per_worker.hpp"
#include "runtime/thread_pool.hpp"

namespace pdf {
namespace {

using runtime::ThreadPool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      for (const std::size_t grain : {1u, 3u, 64u, 2000u}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallel_for(n, grain, [&](std::size_t b, std::size_t e) {
          ASSERT_LE(b, e);
          ASSERT_LE(e, n);
          for (std::size_t i = b; i < e; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                       << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPool, UnevenChunkCostsStillCoverEverything) {
  // Chunks at the front are far more expensive than the rest; stealing must
  // spread them without dropping or double-running any index.
  ThreadPool pool(8);
  constexpr std::size_t kN = 256;
  std::vector<std::atomic<std::uint64_t>> sink(kN);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(kN, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // Busy work inversely proportional to the index.
      std::uint64_t acc = i;
      const std::uint64_t spins = (i < 8) ? 200000 : 100;
      for (std::uint64_t s = 0; s < spins; ++s) acc = acc * 6364136223846793005ULL + 1;
      sink[i].store(acc, std::memory_order_relaxed);
      covered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(covered.load(), kN);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // A nested call must execute the whole range as one inline chunk.
      bool single_chunk = false;
      pool.parallel_for(100, 10, [&](std::size_t ib, std::size_t ie) {
        if (ib == 0 && ie == 100) single_chunk = true;
        inner_calls.fetch_add(1, std::memory_order_relaxed);
      });
      EXPECT_TRUE(single_chunk);
    }
  });
  EXPECT_EQ(inner_calls.load(), 8);
}

TEST(ThreadPool, ReduceIsDeterministicAcrossThreadCounts) {
  // Subtraction is non-associative and non-commutative: only a fixed
  // chunk-order join gives a stable answer.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_reduce<double>(
        1000, 7, 0.0,
        [](std::size_t b, std::size_t e) {
          double v = 0.0;
          for (std::size_t i = b; i < e; ++i) v += 1.0 / (1.0 + static_cast<double>(i));
          return v;
        },
        [](double a, double b) { return a / 2 - b; });
  };
  const double expect = run(1);
  EXPECT_EQ(expect, run(2));
  EXPECT_EQ(expect, run(8));
}

TEST(ThreadPool, ReduceSumsExactly) {
  ThreadPool pool(4);
  const std::uint64_t got = pool.parallel_reduce<std::uint64_t>(
      10000, 64, std::uint64_t{0},
      [](std::size_t b, std::size_t e) {
        std::uint64_t s = 0;
        for (std::size_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(got, 10000ull * 9999ull / 2);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64, 1,
                        [&](std::size_t b, std::size_t) {
                          if (b == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives and runs the next job.
  std::atomic<int> ran{0};
  pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
    ran.fetch_add(static_cast<int>(e - b), std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, WorkerSlotsAreDenseAndStable) {
  EXPECT_EQ(runtime::worker_slot(), 0u);  // the test thread is external
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::size_t> seen;
  // The caller participates in parallel_for, so slot 0 shows up alongside
  // worker slots — but on an oversubscribed machine the workers can drain
  // every chunk before the caller claims one, so allow a few attempts.
  bool caller_seen = false;
  for (int attempt = 0; attempt < 50 && !caller_seen; ++attempt) {
    seen.clear();
    pool.parallel_for(1024, 1, [&](std::size_t, std::size_t) {
      std::lock_guard<std::mutex> lk(mu);
      seen.push_back(runtime::worker_slot());
    });
    for (std::size_t s : seen) ASSERT_LT(s, runtime::kMaxWorkerSlots);
    caller_seen = std::find(seen.begin(), seen.end(), 0u) != seen.end();
  }
  EXPECT_TRUE(caller_seen);
}

TEST(PerWorker, LocalStateIsPerThreadAndEnumerable) {
  ThreadPool pool(4);
  runtime::PerWorker<std::uint64_t> counts;
  pool.parallel_for(5000, 1, [&](std::size_t b, std::size_t e) {
    counts.local() += e - b;  // no synchronization needed: slot-private
  });
  std::uint64_t total = 0;
  counts.for_each([&](const std::uint64_t& c) { total += c; });
  EXPECT_EQ(total, 5000u);
}

TEST(Metrics, CountersAggregateAcrossThreads) {
  runtime::Metrics m;
  runtime::Metrics::Counter& c = m.counter("test.hits");
  ThreadPool pool(8);
  pool.parallel_for(4096, 1, [&](std::size_t b, std::size_t e) {
    c.add(e - b);
  });
  EXPECT_EQ(c.read(), 4096u);
  c.reset();
  EXPECT_EQ(c.read(), 0u);
}

TEST(Metrics, TimerCountsCallsAndDumpFormat) {
  runtime::Metrics m;
  runtime::Metrics::Timer& t = m.timer("test.span");
  { const auto scope = t.measure(); }
  { const auto scope = t.measure(); }
  m.counter("test.alpha").add(3);
  const std::string dump = m.dump();
  EXPECT_NE(dump.find("counter test.alpha 3"), std::string::npos) << dump;
  EXPECT_NE(dump.find("timer test.span"), std::string::npos) << dump;
  EXPECT_NE(dump.find("2 calls"), std::string::npos) << dump;
  // Lookup by the same name returns the same object.
  EXPECT_EQ(&m.timer("test.span"), &t);
  m.reset();
  EXPECT_NE(m.dump().find("counter test.alpha 0"), std::string::npos);
}

TEST(RngSplit, DoesNotAdvanceParent) {
  Rng a(42), b(42);
  (void)a.split(0);
  (void)a.split(123456789);
  EXPECT_EQ(a.next(), b.next());
}

TEST(RngSplit, StableAndStreamDependent) {
  const Rng parent(7);
  Rng s0 = parent.split(0);
  Rng s0_again = parent.split(0);
  Rng s1 = parent.split(1);
  const std::uint64_t v0 = s0.next();
  EXPECT_EQ(v0, s0_again.next());
  EXPECT_NE(v0, s1.next());
  // Different parents give different streams.
  Rng other = Rng(8).split(0);
  EXPECT_NE(v0, other.next());
}

}  // namespace
}  // namespace pdf
