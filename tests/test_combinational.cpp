#include "netlist/combinational.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"

namespace pdf {
namespace {

TEST(Combinational, S27Extraction) {
  const Netlist seq = parse_bench_string(s27_bench_text(), "s27");
  const CombinationalCircuit comb = extract_combinational(seq);
  const Netlist& nl = comb.netlist;

  EXPECT_FALSE(nl.has_sequential());
  // 4 real PIs + 3 state inputs.
  EXPECT_EQ(nl.inputs().size(), 7u);
  EXPECT_EQ(comb.pseudo_inputs.size(), 3u);
  // G17 plus the three DFF data lines G10, G11, G13.
  EXPECT_EQ(nl.outputs().size(), 4u);
  EXPECT_EQ(comb.pseudo_outputs.size(), 3u);

  // The former DFF outputs exist as inputs under their original names.
  for (const char* name : {"G5", "G6", "G7"}) {
    const NodeId id = nl.id_of(name);
    EXPECT_EQ(nl.node(id).type, GateType::Input);
  }
  // The DFF data fanins are marked outputs.
  for (const char* name : {"G10", "G11", "G13"}) {
    EXPECT_TRUE(nl.node(nl.id_of(name)).is_output) << name;
  }
  // G11 keeps its gate fanouts (G17 and G10) while being a pseudo output.
  const Node& g11 = nl.node(nl.id_of("G11"));
  EXPECT_TRUE(g11.is_output);
  EXPECT_EQ(g11.fanout.size(), 2u);
}

TEST(Combinational, IdempotentOnCombinationalNetlist) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n");
  const CombinationalCircuit comb = extract_combinational(nl);
  EXPECT_EQ(comb.netlist.node_count(), nl.node_count());
  EXPECT_TRUE(comb.pseudo_inputs.empty());
  EXPECT_TRUE(comb.pseudo_outputs.empty());
  EXPECT_EQ(comb.netlist.outputs().size(), 1u);
}

TEST(Combinational, DffChainBecomesInputOutputPair) {
  const Netlist seq = parse_bench_string(R"(
    INPUT(a)
    OUTPUT(z)
    s1 = DFF(y)
    y = NOT(s1)
    z = AND(a, y)
  )");
  const CombinationalCircuit comb = extract_combinational(seq);
  EXPECT_EQ(comb.netlist.inputs().size(), 2u);   // a + s1
  EXPECT_EQ(comb.netlist.outputs().size(), 2u);  // z + y (data of s1)
  EXPECT_TRUE(comb.netlist.node(comb.netlist.id_of("y")).is_output);
}

TEST(Combinational, OutputNamingADffIsSkipped) {
  const Netlist seq = parse_bench_string(R"(
    INPUT(a)
    OUTPUT(s1)
    s1 = DFF(y)
    y = NOT(a)
  )");
  const CombinationalCircuit comb = extract_combinational(seq);
  // The observed state element contributes no combinational output beyond
  // the DFF data tap itself.
  EXPECT_EQ(comb.netlist.outputs().size(), 1u);
  EXPECT_TRUE(comb.netlist.node(comb.netlist.id_of("y")).is_output);
}

TEST(Combinational, RequiresFinalizedInput) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(extract_combinational(nl), std::logic_error);
}

}  // namespace
}  // namespace pdf
