#include "atpg/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "enrich/target_sets.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

struct Fixture {
  Netlist nl;
  TargetSets sets;
  explicit Fixture(const std::string& name, std::size_t n_p = 600,
                   std::size_t n_p0 = 120)
      : nl(benchmark_circuit(name)) {
    TargetSetConfig cfg;
    cfg.n_p = n_p;
    cfg.n_p0 = n_p0;
    sets = build_target_sets(nl, cfg);
  }
};

TEST(Generator, EveryTestDetectsAtLeastOneTarget) {
  Fixture fx("b03_like");
  GeneratorConfig cfg;
  cfg.heuristic = CompactionHeuristic::Value;
  const GenerationResult r = generate_tests(fx.nl, fx.sets.p0, {}, cfg);
  ASSERT_FALSE(r.tests.empty());
  FaultSimulator fsim(fx.nl);
  for (const auto& t : r.tests) {
    const auto det = fsim.detects(t, fx.sets.p0);
    EXPECT_NE(std::count(det.begin(), det.end(), true), 0);
  }
}

TEST(Generator, DetectionFlagsMatchResimulation) {
  Fixture fx("b09_like");
  GeneratorConfig cfg;
  cfg.heuristic = CompactionHeuristic::Length;
  const GenerationResult r = generate_tests(fx.nl, fx.sets.p0, {}, cfg);
  FaultSimulator fsim(fx.nl);
  const auto resim = fsim.detects_any(r.tests, fx.sets.p0);
  ASSERT_EQ(resim.size(), r.detected_p0.size());
  for (std::size_t i = 0; i < resim.size(); ++i) {
    EXPECT_EQ(resim[i], r.detected_p0[i]) << i;
  }
}

TEST(Generator, CompactionReducesTestCount) {
  Fixture fx("b03_like");
  GeneratorConfig uncomp, value;
  uncomp.heuristic = CompactionHeuristic::None;
  value.heuristic = CompactionHeuristic::Value;
  const GenerationResult ru = generate_tests(fx.nl, fx.sets.p0, {}, uncomp);
  const GenerationResult rv = generate_tests(fx.nl, fx.sets.p0, {}, value);
  // The paper's Tables 3/4: all heuristics detect about the same faults with
  // far fewer tests than the uncompacted baseline.
  EXPECT_LT(rv.tests.size(), ru.tests.size());
  const double ratio = static_cast<double>(rv.tests.size()) /
                       static_cast<double>(std::max<std::size_t>(1, ru.tests.size()));
  EXPECT_LT(ratio, 0.9);
  EXPECT_NEAR(static_cast<double>(rv.detected_p0_count()),
              static_cast<double>(ru.detected_p0_count()),
              0.12 * static_cast<double>(fx.sets.p0.size()));
}

TEST(Generator, DeterministicForFixedSeed) {
  Fixture fx("b09_like");
  GeneratorConfig cfg;
  cfg.seed = 12345;
  const GenerationResult a = generate_tests(fx.nl, fx.sets.p0, {}, cfg);
  const GenerationResult b = generate_tests(fx.nl, fx.sets.p0, {}, cfg);
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].pi_values, b.tests[i].pi_values);
  }
  EXPECT_EQ(a.detected_p0, b.detected_p0);
}

TEST(Generator, AllHeuristicsRunAndDetect) {
  Fixture fx("b03_like");
  for (CompactionHeuristic h :
       {CompactionHeuristic::None, CompactionHeuristic::Arbitrary,
        CompactionHeuristic::Length, CompactionHeuristic::Value}) {
    GeneratorConfig cfg;
    cfg.heuristic = h;
    const GenerationResult r = generate_tests(fx.nl, fx.sets.p0, {}, cfg);
    EXPECT_GT(r.detected_p0_count(), fx.sets.p0.size() / 2)
        << heuristic_name(h);
    EXPECT_GE(r.stats.primary_attempts, r.tests.size());
  }
}

TEST(Generator, SecondSetNeverAddsTests) {
  // Structural invariant of enrichment (Section 3.2): every test originates
  // from a P0 primary, so the number of tests never exceeds the number of
  // successful P0 primaries.
  Fixture fx("b09_like");
  GeneratorConfig cfg;
  const GenerationResult r =
      generate_tests(fx.nl, fx.sets.p0, fx.sets.p1, cfg);
  EXPECT_EQ(r.tests.size(),
            r.stats.primary_attempts - r.stats.primary_failures);
  EXPECT_EQ(r.detected_p1.size(), fx.sets.p1.size());
  EXPECT_GT(r.detected_p1_count(), 0u);
}

TEST(Generator, EnrichmentDetectsMoreP1ThanBasic) {
  // The headline claim (Tables 5 vs 6): explicitly targeting P1 detects
  // significantly more of it than accidental detection by basic tests.
  // (Larger N_P so the circuit has a substantial P1.)
  Fixture fx("b03_like", 1500, 120);
  GeneratorConfig cfg;
  cfg.heuristic = CompactionHeuristic::Value;
  const GenerationResult basic = generate_tests(fx.nl, fx.sets.p0, {}, cfg);
  const GenerationResult enriched =
      generate_tests(fx.nl, fx.sets.p0, fx.sets.p1, cfg);

  FaultSimulator fsim(fx.nl);
  const auto accidental = fsim.detects_any(basic.tests, fx.sets.p1);
  const std::size_t accidental_count =
      std::count(accidental.begin(), accidental.end(), true);
  EXPECT_GT(enriched.detected_p1_count(), accidental_count);
}

TEST(Generator, SecondaryFailureCapRespected) {
  Fixture fx("b09_like");
  GeneratorConfig capped;
  capped.max_consecutive_secondary_failures = 3;
  const GenerationResult r =
      generate_tests(fx.nl, fx.sets.p0, fx.sets.p1, capped);
  // Still generates a valid test set.
  EXPECT_GT(r.detected_p0_count(), 0u);
}

TEST(Generator, EmptyTargetSetYieldsNoTests) {
  Fixture fx("b03_like");
  const GenerationResult r = generate_tests(fx.nl, {}, {}, {});
  EXPECT_TRUE(r.tests.empty());
  EXPECT_EQ(r.stats.primary_attempts, 0u);
}

TEST(Generator, HeuristicNames) {
  EXPECT_STREQ(heuristic_name(CompactionHeuristic::None), "uncomp");
  EXPECT_STREQ(heuristic_name(CompactionHeuristic::Arbitrary), "arbit");
  EXPECT_STREQ(heuristic_name(CompactionHeuristic::Length), "length");
  EXPECT_STREQ(heuristic_name(CompactionHeuristic::Value), "values");
}

TEST(Generator, StatsAreConsistent) {
  Fixture fx("b09_like");
  GeneratorConfig cfg;
  const GenerationResult r = generate_tests(fx.nl, fx.sets.p0, {}, cfg);
  EXPECT_EQ(r.stats.primary_attempts,
            r.tests.size() + r.stats.primary_failures);
  EXPECT_GT(r.stats.seconds, 0.0);
  EXPECT_GE(r.stats.justify.attempts,
            r.stats.primary_attempts);
}

}  // namespace
}  // namespace pdf
