#include "faults/explain.hpp"

#include <gtest/gtest.h>

#include "enrich/target_sets.hpp"
#include "faults/screen.hpp"
#include "gen/registry.hpp"
#include "paths/enumerate.hpp"

namespace pdf {
namespace {

TEST(Explain, TestableFaultReportsClean) {
  const Netlist nl = benchmark_circuit("s27");
  Path p;
  for (const char* n : {"G1", "G12", "G13"}) p.nodes.push_back(nl.id_of(n));
  const UntestabilityReport r =
      explain_untestability(nl, {p, true, 4});
  EXPECT_EQ(r.kind, UntestabilityKind::Testable);
  EXPECT_FALSE(r.message.empty());
}

TEST(Explain, LocalConflictNamesTheLine) {
  // a -> z -> w with w = OR(z, a): the off-path requirement on a clashes
  // with the launch transition.
  Netlist nl("conf");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId z = nl.add_gate("z", GateType::And, {a, b});
  const NodeId w = nl.add_gate("w", GateType::Or, {z, a});
  nl.mark_output(w);
  nl.finalize();

  const UntestabilityReport r =
      explain_untestability(nl, {Path{{a, z, w}}, true, 3});
  EXPECT_EQ(r.kind, UntestabilityKind::LocalConflict);
  EXPECT_EQ(r.line, a);
  EXPECT_TRUE(r.first.conflicts_with(r.second));
  EXPECT_NE(r.message.find("line a"), std::string::npos);
}

TEST(Explain, ImplicationConflictDetected) {
  // The test_screen.cpp construction whose conflict only implication sees.
  Netlist nl("imp");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId n = nl.add_gate("n", GateType::Not, {a});
  const NodeId c = nl.add_gate("c", GateType::And, {a, b});
  const NodeId z = nl.add_gate("z", GateType::And, {c, n});
  nl.mark_output(z);
  nl.finalize();

  const UntestabilityReport r =
      explain_untestability(nl, {Path{{b, c, z}}, true, 3});
  EXPECT_EQ(r.kind, UntestabilityKind::ImplicationConflict);
}

TEST(Explain, AgreesWithScreenOnWholeCircuit) {
  // Consistency: every fault dropped by screen_faults gets a non-Testable
  // explanation of the matching category; every kept fault reads Testable.
  const Netlist nl = benchmark_circuit("b09_like");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 600;
  auto faults = faults_for_paths(enumerate_longest_paths(dm, cfg).paths);

  ScreenStats stats;
  const auto kept = screen_faults(nl, faults, &stats);

  std::size_t kept_idx = 0;
  std::size_t local = 0, implied = 0, testable = 0;
  for (const auto& f : faults) {
    const bool was_kept =
        kept_idx < kept.size() && kept[kept_idx].fault.path == f.path &&
        kept[kept_idx].fault.rising_source == f.rising_source;
    const UntestabilityReport r = explain_untestability(nl, f);
    if (was_kept) {
      EXPECT_EQ(r.kind, UntestabilityKind::Testable);
      ++kept_idx;
      ++testable;
    } else {
      EXPECT_NE(r.kind, UntestabilityKind::Testable)
          << fault_to_string(nl, f);
      if (r.kind == UntestabilityKind::LocalConflict) ++local;
      if (r.kind == UntestabilityKind::ImplicationConflict) ++implied;
    }
  }
  EXPECT_EQ(testable, stats.kept);
  EXPECT_EQ(local, stats.conflict_dropped);
  EXPECT_EQ(implied, stats.implication_dropped);
}

TEST(Explain, SensitizationModeChangesTheVerdict) {
  // a -> z -> w: the rising fault conflicts under both modes (the off-path
  // requirement xx0 on `a` clashes with the 0x1 launch either way), while
  // the falling fault is locally consistent (1x0 covers xx0) and indeed
  // statically testable.
  Netlist nl("conf2");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId z = nl.add_gate("z", GateType::And, {a, b});
  const NodeId w = nl.add_gate("w", GateType::Or, {z, a});
  nl.mark_output(w);
  nl.finalize();
  EXPECT_EQ(explain_untestability(nl, {Path{{a, z, w}}, true, 3}).kind,
            UntestabilityKind::LocalConflict);
  EXPECT_EQ(explain_untestability(nl, {Path{{a, z, w}}, true, 3},
                                  Sensitization::NonRobust)
                .kind,
            UntestabilityKind::LocalConflict);
  EXPECT_EQ(explain_untestability(nl, {Path{{a, z, w}}, false, 3}).kind,
            UntestabilityKind::Testable);
}

}  // namespace
}  // namespace pdf
