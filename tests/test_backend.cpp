// Parameterized backend conformance suite: every backend registered in
// sim::all_backends() — scalar, bitpar, faultpar, and whichever wide SIMD
// backends the host CPU supports — must agree bit-for-bit with the scalar
// per-test FaultSimulator and with the brute-force oracle on the shared
// fixture circuits, at any thread count and at every tail-lane count. Each
// backend is a gtest parameter, so a new registration inherits the whole
// battery with zero test edits and failures name the backend directly.
//
// The PDF_BACKEND environment variable selects the process-wide default
// backend before main() runs (src/testutil/backend_env.hpp), so CI can run
// the *entire* test binary once per backend (matrix job) — every test that
// builds a BatchSimulator without naming a backend then exercises the
// selected one.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "base/triple.hpp"
#include "core/compiled_circuit.hpp"
#include "faults/requirements.hpp"
#include "faults/screen.hpp"
#include "faultsim/batch_sim.hpp"
#include "faultsim/fault_sim.hpp"
#include "oracle/oracle.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/backend.hpp"
#include "sim/cpu_features.hpp"
#include "testutil/backend_env.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

// Restores the process-wide backend selection (and a 1-thread pool) no
// matter how a test exits, so the PDF_BACKEND choice survives this suite.
struct SelectionGuard {
  const sim::SimBackend& entry = sim::selected_backend();
  ~SelectionGuard() {
    sim::select_backend(entry.name());
    runtime::set_global_threads(1);
  }
};

/// XOR/XNOR coverage: p = XOR(a, b), q = XNOR(p, c), z = XOR(a, q).
Netlist xor_circuit() {
  Netlist nl("xors");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId p = nl.add_gate("p", GateType::Xor, {a, b});
  const NodeId q = nl.add_gate("q", GateType::Xnor, {p, c});
  const NodeId z = nl.add_gate("z", GateType::Xor, {a, q});
  nl.mark_output(z);
  nl.finalize();
  return nl;
}

std::vector<Netlist> fixtures() {
  std::vector<Netlist> out;
  out.push_back(testutil::tiny_and_or());
  out.push_back(testutil::reconvergent());
  out.push_back(testutil::chain_circuit(6));
  out.push_back(xor_circuit());
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    out.push_back(testutil::random_small_netlist(rng));
  }
  return out;
}

std::vector<TwoPatternTest> random_tests(const Netlist& nl, std::uint64_t seed,
                                         std::size_t count) {
  Rng rng(seed);
  std::vector<TwoPatternTest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(testutil::random_two_pattern_test(rng, nl.inputs().size()));
  }
  return out;
}

/// One single-line requirement per node and plane-edge: exercises every
/// {0,1,x} encoding case of every backend on every line of the circuit.
std::vector<TargetFault> probe_faults(const Netlist& nl) {
  std::vector<TargetFault> out;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    for (const Triple& req : {kSteady0, kSteady1, kRise, kFall}) {
      TargetFault tf;
      tf.requirements = {{id, req}};
      out.push_back(std::move(tf));
    }
  }
  return out;
}

/// Robust-sensitizable path faults with their requirement lists, plus the
/// raw fault list (for the oracle, which takes PathDelayFaults).
struct PathTargets {
  std::vector<TargetFault> targets;
  std::vector<PathDelayFault> faults;
};

PathTargets path_targets(const Netlist& nl) {
  PathTargets out;
  const auto paths = oracle::all_complete_paths(nl, 20'000);
  for (const auto& rp : paths) {
    for (const bool rising : {true, false}) {
      PathDelayFault f;
      f.path.nodes = rp.nodes;
      f.rising_source = rising;
      f.length = rp.length;
      FaultRequirements reqs = build_requirements(nl, f, Sensitization::Robust);
      if (reqs.conflicting) continue;
      out.targets.push_back(TargetFault{f, std::move(reqs.values)});
      out.faults.push_back(std::move(f));
    }
  }
  return out;
}

std::vector<sim::SimBackend*> registered_backends() {
  const auto span = sim::all_backends();
  return {span.begin(), span.end()};
}

TEST(Backend, RegistryOrderAndCapabilityGating) {
  const auto backends = sim::all_backends();
  ASSERT_GE(backends.size(), 3u);
  EXPECT_STREQ(backends[0]->name(), "scalar");
  EXPECT_STREQ(backends[1]->name(), "bitpar");
  EXPECT_STREQ(backends[2]->name(), "faultpar");
  EXPECT_EQ(sim::find_backend("scalar"), &sim::scalar_backend());
  EXPECT_EQ(sim::find_backend("bitpar"), &sim::bitpar_backend());
  EXPECT_EQ(sim::find_backend("faultpar"), &sim::faultpar_backend());
  // The wide backends appear exactly when the (PDF_SIMD-capped) capability
  // probe allows: unsupported hosts must degrade to an unregistered name,
  // never to a registered-but-crashing backend.
  const sim::SimdLevel level = sim::simd_level();
  EXPECT_EQ(sim::find_backend("avx2") != nullptr,
            level >= sim::SimdLevel::kAvx2);
  EXPECT_EQ(sim::find_backend("avx512") != nullptr,
            level >= sim::SimdLevel::kAvx512);
  for (sim::SimBackend* b : backends) {
    EXPECT_NE(sim::backend_names().find(b->name()), std::string::npos);
  }
}

TEST(Backend, LanesMatchAdvertisedWidths) {
  EXPECT_EQ(sim::scalar_backend().lanes(), 1u);
  EXPECT_EQ(sim::bitpar_backend().lanes(), 64u);
  EXPECT_EQ(sim::faultpar_backend().lanes(), 64u);
  if (sim::SimBackend* b = sim::find_backend("avx2")) {
    EXPECT_EQ(b->lanes(), 256u);
  }
  if (sim::SimBackend* b = sim::find_backend("avx512")) {
    EXPECT_EQ(b->lanes(), 512u);
  }
}

TEST(Backend, DefaultSelectionIsWidestTestParallel) {
  if (std::getenv("PDF_BACKEND") != nullptr) {
    GTEST_SKIP() << "PDF_BACKEND overrides the default selection";
  }
  // The startup default is the widest registered backend that parallelizes
  // over test words — never scalar, never faultpar.
  std::size_t widest = 0;
  for (sim::SimBackend* b : sim::all_backends()) {
    if (b == &sim::scalar_backend() || b == &sim::faultpar_backend()) continue;
    widest = std::max(widest, b->lanes());
  }
  EXPECT_EQ(sim::selected_backend().lanes(), widest);
  EXPECT_NE(&sim::selected_backend(), &sim::scalar_backend());
  EXPECT_NE(&sim::selected_backend(), &sim::faultpar_backend());
}

TEST(Backend, SelectionRoundTripsAndRejectsUnknownNames) {
  SelectionGuard guard;
  EXPECT_EQ(sim::find_backend("no_such_backend"), nullptr);
  EXPECT_THROW(sim::select_backend("no_such_backend"), std::invalid_argument);
  for (sim::SimBackend* b : sim::all_backends()) {
    sim::select_backend(b->name());
    EXPECT_EQ(&sim::selected_backend(), b);
    // A null backend argument means "whatever is selected right now".
    const Netlist nl = testutil::tiny_and_or();
    EXPECT_EQ(&BatchSimulator(nl).backend(), b);
  }
}

class BackendP : public ::testing::TestWithParam<sim::SimBackend*> {};

INSTANTIATE_TEST_SUITE_P(
    All, BackendP, ::testing::ValuesIn(registered_backends()),
    [](const ::testing::TestParamInfo<sim::SimBackend*>& info) {
      return std::string(info.param->name());
    });

TEST_P(BackendP, MatchesScalarSimulatorOnFixtures) {
  sim::SimBackend* backend = GetParam();
  for (const Netlist& nl : fixtures()) {
    const auto targets = probe_faults(nl);
    const auto tests = random_tests(nl, 0xabc0 + nl.node_count(), 70);
    const FaultSimulator scalar(nl);
    const CompiledCircuit cc(nl);
    ASSERT_TRUE(backend->supports(cc)) << backend->name();
    const BatchSimulator fsim(nl, backend);
    const DetectionMatrix m = fsim.detection_matrix(tests, targets);
    for (std::size_t f = 0; f < targets.size(); ++f) {
      for (std::size_t t = 0; t < tests.size(); ++t) {
        ASSERT_EQ(m.bit(f, t), scalar.detects(tests[t], targets[f]))
            << nl.name() << " backend " << backend->name() << " fault " << f
            << " test " << t;
      }
    }
  }
}

TEST_P(BackendP, MatchesOracleOnPathFaults) {
  sim::SimBackend* backend = GetParam();
  for (const Netlist& nl : fixtures()) {
    // build_requirements only walks primitive-logic paths; the XOR fixture
    // is exercised against the scalar simulator in the probe-fault test.
    bool primitive = true;
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      const GateType t = nl.node(id).type;
      primitive = primitive && (t == GateType::Input || is_primitive_logic(t));
    }
    if (!primitive) continue;
    const PathTargets pt = path_targets(nl);
    if (pt.targets.empty()) continue;
    const auto tests = random_tests(nl, 0xdef0 + nl.node_count(), 40);
    const std::vector<bool> want = oracle::detects_any(nl, tests, pt.faults);
    const BatchSimulator fsim(nl, backend);
    const std::vector<bool> got = fsim.detects_any(tests, pt.targets);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i])
          << nl.name() << " backend " << backend->name() << " fault " << i;
    }
  }
}

TEST_P(BackendP, MatricesIdenticalAcrossThreadCounts) {
  SelectionGuard guard;
  sim::SimBackend* backend = GetParam();
  Rng rng(77);
  const Netlist nl = testutil::random_small_netlist(rng);
  const auto targets = probe_faults(nl);
  const auto tests = random_tests(nl, 0x7777, 130);  // crosses a word boundary
  const BatchSimulator fsim(nl, backend);
  runtime::set_global_threads(1);
  const DetectionMatrix m1 = fsim.detection_matrix(tests, targets);
  runtime::set_global_threads(4);
  const DetectionMatrix m4 = fsim.detection_matrix(tests, targets);
  EXPECT_EQ(m1, m4) << backend->name();
}

// Partial-word handling at every lane width: one below / at / above each of
// the 64 (bitpar/faultpar), 256 (avx2) and 512 (avx512) lane boundaries,
// plus a single test. Every backend must match the scalar reference matrix
// byte-for-byte — including the padding bits of the final word, which must
// be zero (consumers like DetectionMatrix::any and popcount-based coverage
// trust them).
TEST_P(BackendP, TailMaskingAtLaneBoundaries) {
  sim::SimBackend* backend = GetParam();
  Rng rng(99);
  const Netlist nl = testutil::random_small_netlist(rng);
  const auto targets = probe_faults(nl);
  const BatchSimulator ref(nl, &sim::scalar_backend());
  const BatchSimulator fsim(nl, backend);
  const std::size_t kCounts[] = {1, 63, 64, 65, 255, 256, 257, 511, 512, 513};
  for (const std::size_t count : kCounts) {
    const auto tests = random_tests(nl, 0x9a00 + count, count);
    const DetectionMatrix want = ref.detection_matrix(tests, targets);
    const DetectionMatrix got = fsim.detection_matrix(tests, targets);
    ASSERT_EQ(got, want) << backend->name() << " at " << count << " tests";
    if (count % 64 != 0) {
      const std::size_t last = got.words_per_row() - 1;
      for (std::size_t f = 0; f < targets.size(); ++f) {
        ASSERT_EQ(got.word(f, last) >> (count % 64), 0u)
            << backend->name() << " leaves padding bits at " << count
            << " tests, fault " << f;
      }
    }
  }
}

// The prepared path (pack + requirement plan built once, re-masked per
// call) must be byte-identical to the one-shot path for every backend and
// at awkward tail counts — and the PreparedBatch must be reusable across
// backends, since the precomputation is width-independent by design.
TEST_P(BackendP, PreparedMatchesUnprepared) {
  sim::SimBackend* backend = GetParam();
  Rng rng(55);
  const Netlist nl = testutil::random_small_netlist(rng);
  const auto targets = probe_faults(nl);
  const BatchSimulator fsim(nl, backend);
  sim::PreparedBatch prep;
  for (const std::size_t count : {1, 65, 257, 513}) {
    const auto tests = random_tests(nl, 0xb000 + count, count);
    fsim.prepare(tests, targets, prep);  // reuses prep's buffers each round
    const DetectionMatrix want = fsim.detection_matrix(tests, targets);
    const DetectionMatrix got = fsim.detection_matrix(tests, targets, prep);
    ASSERT_EQ(got, want) << backend->name() << " at " << count << " tests";
  }
}

TEST_P(BackendP, RejectsSequentialCircuits) {
  sim::SimBackend* backend = GetParam();
  Netlist nl("seq");
  const NodeId a = nl.add_input("a");
  const NodeId ff = nl.add_gate("ff", GateType::Dff, {a});
  const NodeId z = nl.add_gate("z", GateType::Not, {ff});
  nl.mark_output(z);
  nl.finalize();
  ASSERT_TRUE(nl.has_sequential());
  const CompiledCircuit cc(nl);
  EXPECT_FALSE(backend->supports(cc)) << backend->name();
  EXPECT_THROW(BatchSimulator(nl, backend), std::logic_error);
}

}  // namespace
}  // namespace pdf
