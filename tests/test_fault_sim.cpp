#include "faultsim/fault_sim.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "sim/triple_sim.hpp"
#include "paths/enumerate.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

std::vector<TargetFault> screened_faults(const Netlist& nl) {
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 1000000;
  auto faults = faults_for_paths(enumerate_longest_paths(dm, cfg).paths);
  return screen_faults(nl, std::move(faults), nullptr);
}

TwoPatternTest make_test(const Netlist& nl,
                         std::initializer_list<std::pair<const char*, Triple>> vals) {
  TwoPatternTest t;
  t.pi_values.assign(nl.inputs().size(), kSteady0);
  for (const auto& [name, triple] : vals) {
    bool found = false;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      if (nl.node(nl.inputs()[i]).name == name) {
        t.pi_values[i] = triple;
        found = true;
      }
    }
    EXPECT_TRUE(found) << name;
  }
  return t;
}

TEST(FaultSim, DetectsPaperExampleFault) {
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = screened_faults(nl);
  // Find the slow-to-rise fault on G1 -> G12 -> G13.
  const TargetFault* fault = nullptr;
  for (const auto& tf : faults) {
    if (tf.fault.rising_source &&
        path_to_string(nl, tf.fault.path) == "G1 -> G12 -> G13") {
      fault = &tf;
    }
  }
  ASSERT_NE(fault, nullptr);

  FaultSimulator fsim(nl);
  // Satisfying test: G1 rises, G7 steady 0, G2 steady 0 (covers xx0).
  const TwoPatternTest good =
      make_test(nl, {{"G1", kRise}, {"G7", kSteady0}, {"G2", kSteady0}});
  EXPECT_TRUE(fsim.detects(good, *fault));

  // Violating the off-path steady-0 on G7 kills robust detection.
  const TwoPatternTest bad1 =
      make_test(nl, {{"G1", kRise}, {"G7", kRise}, {"G2", kSteady0}});
  EXPECT_FALSE(fsim.detects(bad1, *fault));

  // Wrong source transition direction.
  const TwoPatternTest bad2 =
      make_test(nl, {{"G1", kFall}, {"G7", kSteady0}, {"G2", kSteady0}});
  EXPECT_FALSE(fsim.detects(bad2, *fault));

  // Final value 1 on G2 blocks the NOR output.
  const TwoPatternTest bad3 =
      make_test(nl, {{"G1", kRise}, {"G7", kSteady0}, {"G2", kSteady1}});
  EXPECT_FALSE(fsim.detects(bad3, *fault));
}

TEST(FaultSim, BatchMatchesSingle) {
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = screened_faults(nl);
  FaultSimulator fsim(nl);
  const TwoPatternTest t =
      make_test(nl, {{"G1", kRise}, {"G0", kFall}, {"G3", kSteady1}});
  const auto batch = fsim.detects(t, faults);
  ASSERT_EQ(batch.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(batch[i], fsim.detects(t, faults[i])) << i;
  }
}

TEST(FaultSim, DetectsAnyAccumulatesAcrossTests) {
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = screened_faults(nl);
  FaultSimulator fsim(nl);
  std::vector<TwoPatternTest> tests = {
      make_test(nl, {{"G1", kRise}, {"G7", kSteady0}, {"G2", kSteady0}}),
      make_test(nl, {{"G2", kRise}, {"G1", kSteady0}, {"G7", kSteady1}}),
  };
  const auto acc = fsim.detects_any(tests, faults);
  const auto d0 = fsim.detects(tests[0], faults);
  const auto d1 = fsim.detects(tests[1], faults);
  std::size_t detected = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(acc[i], d0[i] || d1[i]);
    detected += acc[i];
  }
  EXPECT_GT(detected, 0u);
}

TEST(FaultSim, IntermediatePlaneIsNormalized) {
  // A caller may pass PI triples with stale middle components; the simulator
  // must derive them from the pattern planes.
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = screened_faults(nl);
  FaultSimulator fsim(nl);
  TwoPatternTest t =
      make_test(nl, {{"G1", kRise}, {"G7", kSteady0}, {"G2", kSteady0}});
  // Corrupt middles.
  for (auto& v : t.pi_values) v.a2 = V3::X;
  TwoPatternTest clean =
      make_test(nl, {{"G1", kRise}, {"G7", kSteady0}, {"G2", kSteady0}});
  EXPECT_EQ(fsim.detects(t, faults), fsim.detects(clean, faults));
}

TEST(FaultSim, WrongPiCountThrows) {
  const Netlist nl = benchmark_circuit("s27");
  FaultSimulator fsim(nl);
  TwoPatternTest t;
  t.pi_values.assign(3, kSteady0);
  EXPECT_THROW(fsim.line_values(t), std::invalid_argument);
}

TEST(FaultSim, RequirementSatisfactionIsExactlyDetection) {
  // Property: detects(t, f) must equal "every requirement of f is covered by
  // the simulated line triples" for random binary tests.
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = screened_faults(nl);
  FaultSimulator fsim(nl);
  Rng rng(555);
  for (int trial = 0; trial < 100; ++trial) {
    TwoPatternTest t;
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
    const auto values = fsim.line_values(t);
    const auto det = fsim.detects(t, faults);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      bool covered = true;
      for (const auto& r : faults[i].requirements) {
        covered = covered && values[r.line].covers(r.value);
      }
      EXPECT_EQ(det[i], covered);
    }
  }
}

}  // namespace
}  // namespace pdf
