#include "enrich/enrichment.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"

namespace pdf {
namespace {

TargetSetConfig small_cfg(std::size_t n_p = 800, std::size_t n_p0 = 120) {
  TargetSetConfig cfg;
  cfg.n_p = n_p;
  cfg.n_p0 = n_p0;
  return cfg;
}

TEST(Enrichment, WorkbenchEndToEnd) {
  const Netlist nl = benchmark_circuit("b03_like");
  const EnrichmentWorkbench wb(nl, small_cfg());
  ASSERT_FALSE(wb.targets().p0.empty());

  GeneratorConfig gcfg;
  const GenerationResult basic = wb.run_basic(gcfg);
  const GenerationResult enriched = wb.run_enriched(gcfg);

  const UnionCoverage cb = wb.coverage_of(basic);
  const UnionCoverage ce = wb.coverage_of(enriched);

  // Paper's central claims, in shape:
  //  (1) enrichment detects (far) more of P0 u P1 than the basic tests do
  //      accidentally;
  //  (2) the number of tests stays in the same range (P1 never drives it).
  EXPECT_GT(ce.union_detected(), cb.union_detected());
  EXPECT_GT(ce.p1_detected, cb.p1_detected);
  EXPECT_EQ(ce.p0_total, cb.p0_total);
  const double ratio = static_cast<double>(enriched.tests.size()) /
                       static_cast<double>(std::max<std::size_t>(1, basic.tests.size()));
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
}

TEST(Enrichment, SimulateUnionMatchesCoverageOf) {
  const Netlist nl = benchmark_circuit("b09_like");
  const EnrichmentWorkbench wb(nl, small_cfg(600, 100));
  const GenerationResult r = wb.run_enriched({});
  const UnionCoverage via_flags = wb.coverage_of(r);
  const UnionCoverage via_sim = wb.simulate_union(r.tests);
  // Flags are produced by the same detection criterion, so they must agree
  // exactly with post-hoc simulation.
  EXPECT_EQ(via_flags.p0_detected, via_sim.p0_detected);
  EXPECT_EQ(via_flags.p1_detected, via_sim.p1_detected);
  EXPECT_EQ(via_flags.union_total(), via_sim.union_total());
}

TEST(Enrichment, P0DetectionNotSacrificed) {
  // Enrichment must not lose P0 coverage relative to basic generation
  // (allowing small randomized variation, as the paper observes).
  const Netlist nl = benchmark_circuit("b03_like");
  const EnrichmentWorkbench wb(nl, small_cfg());
  const GenerationResult basic = wb.run_basic({});
  const GenerationResult enriched = wb.run_enriched({});
  const double tol = 0.05 * static_cast<double>(wb.targets().p0.size());
  EXPECT_NEAR(static_cast<double>(enriched.detected_p0_count()),
              static_cast<double>(basic.detected_p0_count()), tol);
}

TEST(Enrichment, CoverageTotalsMatchTargets) {
  const Netlist nl = benchmark_circuit("b09_like");
  const EnrichmentWorkbench wb(nl, small_cfg(500, 80));
  const UnionCoverage c = wb.simulate_union({});
  EXPECT_EQ(c.p0_total, wb.targets().p0.size());
  EXPECT_EQ(c.p1_total, wb.targets().p1.size());
  EXPECT_EQ(c.p0_detected, 0u);
  EXPECT_EQ(c.p1_detected, 0u);
}

TEST(Enrichment, DeterministicEndToEnd) {
  const Netlist nl = benchmark_circuit("b09_like");
  const EnrichmentWorkbench wb(nl, small_cfg(500, 80));
  GeneratorConfig cfg;
  cfg.seed = 77;
  const GenerationResult a = wb.run_enriched(cfg);
  const GenerationResult b = wb.run_enriched(cfg);
  ASSERT_EQ(a.tests.size(), b.tests.size());
  EXPECT_EQ(a.detected_p0, b.detected_p0);
  EXPECT_EQ(a.detected_p1, b.detected_p1);
}

}  // namespace
}  // namespace pdf
