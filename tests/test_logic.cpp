#include "base/logic.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

namespace pdf {
namespace {

constexpr std::array<V3, 3> kAll = {V3::Zero, V3::One, V3::X};

TEST(Logic, NotTruthTable) {
  EXPECT_EQ(not3(V3::Zero), V3::One);
  EXPECT_EQ(not3(V3::One), V3::Zero);
  EXPECT_EQ(not3(V3::X), V3::X);
}

TEST(Logic, AndControllingValueDominates) {
  for (V3 v : kAll) {
    EXPECT_EQ(and3(V3::Zero, v), V3::Zero);
    EXPECT_EQ(and3(v, V3::Zero), V3::Zero);
  }
  EXPECT_EQ(and3(V3::One, V3::One), V3::One);
  EXPECT_EQ(and3(V3::One, V3::X), V3::X);
  EXPECT_EQ(and3(V3::X, V3::X), V3::X);
}

TEST(Logic, OrControllingValueDominates) {
  for (V3 v : kAll) {
    EXPECT_EQ(or3(V3::One, v), V3::One);
    EXPECT_EQ(or3(v, V3::One), V3::One);
  }
  EXPECT_EQ(or3(V3::Zero, V3::Zero), V3::Zero);
  EXPECT_EQ(or3(V3::Zero, V3::X), V3::X);
}

TEST(Logic, XorPropagatesUnknown) {
  EXPECT_EQ(xor3(V3::Zero, V3::One), V3::One);
  EXPECT_EQ(xor3(V3::One, V3::One), V3::Zero);
  EXPECT_EQ(xor3(V3::X, V3::One), V3::X);
  EXPECT_EQ(xor3(V3::Zero, V3::X), V3::X);
}

TEST(Logic, DeMorganHoldsOverAllValues) {
  for (V3 a : kAll) {
    for (V3 b : kAll) {
      EXPECT_EQ(not3(and3(a, b)), or3(not3(a), not3(b)));
      EXPECT_EQ(not3(or3(a, b)), and3(not3(a), not3(b)));
    }
  }
}

TEST(Logic, OperatorsAreCommutativeAndAssociative) {
  for (V3 a : kAll) {
    for (V3 b : kAll) {
      EXPECT_EQ(and3(a, b), and3(b, a));
      EXPECT_EQ(or3(a, b), or3(b, a));
      EXPECT_EQ(xor3(a, b), xor3(b, a));
      for (V3 c : kAll) {
        EXPECT_EQ(and3(and3(a, b), c), and3(a, and3(b, c)));
        EXPECT_EQ(or3(or3(a, b), c), or3(a, or3(b, c)));
      }
    }
  }
}

TEST(Logic, XIsMonotoneRefinement) {
  // Refining an x operand to a concrete value must never contradict an
  // already-specified result (monotonicity of the information order).
  for (V3 a : kAll) {
    for (V3 b : kAll) {
      for (V3 a2 : {V3::Zero, V3::One}) {
        if (a != V3::X && a2 != a) continue;
        if (is_specified(and3(a, b))) {
          EXPECT_EQ(and3(a2, b), and3(a, b));
        }
        if (is_specified(or3(a, b))) {
          EXPECT_EQ(or3(a2, b), or3(a, b));
        }
      }
    }
  }
}

TEST(Logic, CharRoundTrip) {
  for (V3 v : kAll) EXPECT_EQ(v3_from_char(to_char(v)), v);
  EXPECT_EQ(v3_from_char('X'), V3::X);
  EXPECT_THROW(v3_from_char('2'), std::invalid_argument);
}

TEST(Logic, ConflictsAndCovers) {
  EXPECT_TRUE(conflicts(V3::Zero, V3::One));
  EXPECT_TRUE(conflicts(V3::One, V3::Zero));
  EXPECT_FALSE(conflicts(V3::X, V3::One));
  EXPECT_FALSE(conflicts(V3::One, V3::X));
  EXPECT_FALSE(conflicts(V3::One, V3::One));

  EXPECT_TRUE(covers(V3::One, V3::One));
  EXPECT_TRUE(covers(V3::X, V3::X));
  EXPECT_TRUE(covers(V3::Zero, V3::X));
  EXPECT_FALSE(covers(V3::X, V3::One));
  EXPECT_FALSE(covers(V3::Zero, V3::One));
}

TEST(Logic, StreamOutput) {
  std::ostringstream os;
  os << V3::Zero << V3::One << V3::X;
  EXPECT_EQ(os.str(), "01x");
}

}  // namespace
}  // namespace pdf
