#include "faults/screen.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "paths/enumerate.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

std::vector<PathDelayFault> all_faults(const Netlist& nl) {
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 1000000;
  return faults_for_paths(enumerate_longest_paths(dm, cfg).paths);
}

TEST(Screen, KeepsDetectableS27Faults) {
  const Netlist nl = benchmark_circuit("s27");
  ScreenStats stats;
  const auto kept = screen_faults(nl, all_faults(nl), &stats);
  EXPECT_EQ(stats.input_faults, stats.conflict_dropped +
                                    stats.implication_dropped + stats.kept);
  EXPECT_GT(stats.kept, 0u);
  // The paper example fault must survive with its requirements attached.
  bool found = false;
  for (const auto& tf : kept) {
    if (fault_to_string(nl, tf.fault).find("G1 -> G12 -> G13") == 0 &&
        tf.fault.rising_source) {
      found = true;
      EXPECT_EQ(tf.requirements.size(), 5u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Screen, DropsLocallyConflictingFault) {
  // Path a -> z -> w where w = OR(z, a): off-path requirement xx0 on a
  // conflicts with the rising source requirement.
  Netlist nl("conf");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId z = nl.add_gate("z", GateType::And, {a, b});
  const NodeId w = nl.add_gate("w", GateType::Or, {z, a});
  nl.mark_output(w);
  nl.finalize();

  std::vector<PathDelayFault> faults;
  faults.push_back({Path{{a, z, w}}, true, 3});
  faults.push_back({Path{{a, z, w}}, false, 3});
  faults.push_back({Path{{b, z, w}}, true, 3});

  ScreenStats stats;
  const auto kept = screen_faults(nl, std::move(faults), &stats);
  EXPECT_EQ(stats.input_faults, 3u);
  EXPECT_GE(stats.conflict_dropped, 1u);
  // The rising a-fault must be gone (it needs a=0x1 and a=xx0).
  for (const auto& tf : kept) {
    EXPECT_FALSE(tf.fault.path.source() == a && tf.fault.rising_source);
  }
}

TEST(Screen, DropsImplicationContradiction) {
  // c = AND(a, b); z = AND(c, n); n = NOT(a).
  // Path b -> c -> z (rising): off-path a steady 1 (c ends at AND's
  // non-controlling... rising into AND ends at non-controlling 1 => side
  // inputs need xx1; at z the on-path c rises, so n needs xx1 which implies
  // a = xx0 — together with a = xx1 a contradiction only implication sees.
  Netlist nl("imp");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId n = nl.add_gate("n", GateType::Not, {a});
  const NodeId c = nl.add_gate("c", GateType::And, {a, b});
  const NodeId z = nl.add_gate("z", GateType::And, {c, n});
  nl.mark_output(z);
  nl.finalize();

  std::vector<PathDelayFault> faults;
  faults.push_back({Path{{b, c, z}}, true, 3});

  ScreenStats stats;
  const auto kept = screen_faults(nl, std::move(faults), &stats);
  EXPECT_EQ(kept.size(), 0u);
  EXPECT_EQ(stats.implication_dropped + stats.conflict_dropped, 1u);
  EXPECT_GE(stats.implication_dropped, 1u);
}

TEST(Screen, SurvivorsKeepInputOrder) {
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = all_faults(nl);
  const auto kept = screen_faults(nl, faults, nullptr);
  // Lengths must appear in the same (descending-by-pairs) order as input.
  std::size_t j = 0;
  for (const auto& f : faults) {
    if (j < kept.size() && kept[j].fault.path == f.path &&
        kept[j].fault.rising_source == f.rising_source) {
      ++j;
    }
  }
  EXPECT_EQ(j, kept.size());
}

TEST(Screen, NullStatsAccepted) {
  const Netlist nl = benchmark_circuit("s27");
  EXPECT_NO_THROW(screen_faults(nl, all_faults(nl), nullptr));
}

}  // namespace
}  // namespace pdf
