// Tests for the non-robust sensitization extension.
#include <gtest/gtest.h>

#include "enrich/enrichment.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "paths/enumerate.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

using testutil::named_path;

std::optional<Triple> req_on(const FaultRequirements& r, NodeId line) {
  for (const auto& v : r.values) {
    if (v.line == line) return v.value;
  }
  return std::nullopt;
}

TEST(NonRobust, RelaxesThePaperExample) {
  // Robust A(p) for the s27 example fault demands steady 0 on G7; the
  // non-robust criterion only needs final 0 everywhere off-path.
  const Netlist nl = benchmark_circuit("s27");
  PathDelayFault f{named_path(nl, {"G1", "G12", "G13"}), true, 4};
  const FaultRequirements r =
      build_requirements(nl, f, Sensitization::NonRobust);
  EXPECT_FALSE(r.conflicting);
  EXPECT_EQ(req_on(r, nl.id_of("G1")), kRise);     // launch still a transition
  EXPECT_EQ(req_on(r, nl.id_of("G7")), kFinal0);   // relaxed from 000
  EXPECT_EQ(req_on(r, nl.id_of("G2")), kFinal0);
  EXPECT_EQ(req_on(r, nl.id_of("G12")), kFinal0);  // on-path: final only
  EXPECT_EQ(req_on(r, nl.id_of("G13")), kFinal1);
}

TEST(NonRobust, RobustRequirementsImplyNonRobust) {
  // Property: every triple of the non-robust A(p) is covered by the robust
  // A(p) requirement on the same line, so any robust test also satisfies
  // the non-robust condition.
  const Netlist nl = benchmark_circuit("b03_like");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 400;
  const auto paths = enumerate_longest_paths(dm, cfg).paths;
  const auto faults = faults_for_paths(paths);
  int compared = 0;
  for (const auto& f : faults) {
    const FaultRequirements robust = build_requirements(nl, f);
    if (robust.conflicting) continue;
    const FaultRequirements nonrobust =
        build_requirements(nl, f, Sensitization::NonRobust);
    ASSERT_FALSE(nonrobust.conflicting);
    ++compared;
    for (const auto& nr : nonrobust.values) {
      bool covered = false;
      for (const auto& rr : robust.values) {
        if (rr.line == nr.line && rr.value.covers(nr.value)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << nl.node(nr.line).name;
    }
  }
  EXPECT_GT(compared, 20);
}

TEST(NonRobust, MoreFaultsSurviveScreening) {
  // Relaxed constraints can only keep more faults testable.
  const Netlist nl = benchmark_circuit("s641_like");
  TargetSetConfig robust, nonrobust;
  robust.n_p = nonrobust.n_p = 1500;
  robust.n_p0 = nonrobust.n_p0 = 150;
  nonrobust.sensitization = Sensitization::NonRobust;
  const TargetSets tr = build_target_sets(nl, robust);
  const TargetSets tn = build_target_sets(nl, nonrobust);
  EXPECT_GE(tn.p_total(), tr.p_total());
  EXPECT_GT(tn.p_total(), 0u);
}

TEST(NonRobust, GenerationWorksEndToEnd) {
  const Netlist nl = benchmark_circuit("b09_like");
  TargetSetConfig cfg;
  cfg.n_p = 800;
  cfg.n_p0 = 100;
  cfg.sensitization = Sensitization::NonRobust;
  const EnrichmentWorkbench wb(nl, cfg);
  if (wb.targets().p0.empty()) GTEST_SKIP();
  const GenerationResult r = wb.run_enriched({});
  EXPECT_GT(r.detected_p0_count(), 0u);
  // Detection flags still agree with simulation (same criterion, relaxed A).
  FaultSimulator fsim(nl);
  EXPECT_EQ(fsim.detects_any(r.tests, wb.targets().p0),
            std::vector<bool>(r.detected_p0.begin(), r.detected_p0.end()));
}

}  // namespace
}  // namespace pdf
