#include "paths/path.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

using testutil::named_path;

TEST(PathModel, ConsumerCountsOnS27) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  // G14 feeds G8 and G10.
  EXPECT_EQ(dm.consumers(nl.id_of("G14")), 2);
  // G11 feeds G17 and G10 and is a pseudo output (DFF G6 data): 3 consumers.
  EXPECT_EQ(dm.consumers(nl.id_of("G11")), 3);
  // G13 only feeds its DFF tap.
  EXPECT_EQ(dm.consumers(nl.id_of("G13")), 1);
  // G17 is the real PO with no gate fanout.
  EXPECT_EQ(dm.consumers(nl.id_of("G17")), 1);
  EXPECT_EQ(dm.branch_cost(nl.id_of("G14")), 1);
  EXPECT_EQ(dm.branch_cost(nl.id_of("G13")), 0);
}

TEST(PathModel, PaperLengthsReproduceOnS27) {
  // The paper's Table 1 lengths, in its line counting:
  //   (G2, G13)                          -> length 2
  //   (G1, G12, G13)                     -> length 4  (branch after G12)
  //   (G0, G14, G10)                     -> length 4
  //   (G0, G14, G8, G15, G9, G11, G17)   -> length 10 (the longest path)
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EXPECT_EQ(dm.complete_length(named_path(nl, {"G2", "G13"}).nodes), 2);
  EXPECT_EQ(dm.complete_length(named_path(nl, {"G1", "G12", "G13"}).nodes), 4);
  EXPECT_EQ(dm.complete_length(named_path(nl, {"G0", "G14", "G10"}).nodes), 4);
  EXPECT_EQ(dm.complete_length(
                named_path(nl, {"G0", "G14", "G8", "G15", "G9", "G11", "G17"}).nodes),
            10);
  // Completing at the multi-consumer pseudo output G11 crosses its output
  // branch: one line longer than the partial prefix.
  const Path to_g11 = named_path(nl, {"G3", "G16", "G9", "G11"});
  EXPECT_EQ(dm.complete_length(to_g11.nodes), dm.partial_length(to_g11.nodes) + 1);
}

TEST(PathModel, PartialLengthCountsStemsAndBranches) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  // G0(1) G14(2) branch(3) G8(4): partial length 4.
  EXPECT_EQ(dm.partial_length(named_path(nl, {"G0", "G14", "G8"}).nodes), 4);
  // Single-node partial: just the stem.
  EXPECT_EQ(dm.partial_length(named_path(nl, {"G0"}).nodes), 1);
}

TEST(PathModel, CompleteLengthRequiresOutputSink) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EXPECT_THROW(dm.complete_length(named_path(nl, {"G0", "G14"}).nodes),
               std::logic_error);
}

TEST(PathModel, PathToString) {
  const Netlist nl = testutil::tiny_and_or();
  const Path p = named_path(nl, {"a", "y", "z"});
  EXPECT_EQ(path_to_string(nl, p), "a -> y -> z");
  EXPECT_EQ(p.source(), nl.id_of("a"));
  EXPECT_EQ(p.sink(), nl.id_of("z"));
}

TEST(PathModel, SingleConsumerChainHasNoBranchLines) {
  // A pure chain: every length equals the node count.
  Netlist nl("chain");
  NodeId prev = nl.add_input("i");
  for (int k = 0; k < 5; ++k) {
    prev = nl.add_gate("n" + std::to_string(k), GateType::Not, {prev});
  }
  nl.mark_output(prev);
  nl.finalize();
  const LineDelayModel dm(nl);
  std::vector<NodeId> nodes;
  for (NodeId id = 0; id < nl.node_count(); ++id) nodes.push_back(id);
  EXPECT_EQ(dm.complete_length(nodes), 6);
  EXPECT_EQ(dm.partial_length(nodes), 6);
}

}  // namespace
}  // namespace pdf
