#include "sim/triple_sim.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TEST(TripleSim, PiTripleDerivation) {
  EXPECT_EQ(pi_triple(V3::Zero, V3::Zero), kSteady0);
  EXPECT_EQ(pi_triple(V3::One, V3::One), kSteady1);
  EXPECT_EQ(pi_triple(V3::Zero, V3::One), kRise);
  EXPECT_EQ(pi_triple(V3::One, V3::Zero), kFall);
  EXPECT_EQ(pi_triple(V3::X, V3::One), (Triple{V3::X, V3::X, V3::One}));
  EXPECT_EQ(pi_triple(V3::X, V3::X), kAllX);
}

TEST(TripleSim, StableValuesPropagate) {
  const Netlist nl = testutil::tiny_and_or();
  const std::vector<Triple> pis = {kSteady1, kSteady1, kSteady0};
  const auto v = simulate(nl, pis);
  EXPECT_EQ(v[nl.id_of("y")], kSteady1);
  EXPECT_EQ(v[nl.id_of("z")], kSteady1);
}

TEST(TripleSim, TransitionThroughAnd) {
  const Netlist nl = testutil::tiny_and_or();
  // a rises, b steady 1, c steady 0: y rises hazard-free at the stem level
  // (intermediate x, as the transition instant is unknown), z follows.
  const std::vector<Triple> pis = {kRise, kSteady1, kSteady0};
  const auto v = simulate(nl, pis);
  EXPECT_EQ(v[nl.id_of("y")], kRise);
  EXPECT_EQ(v[nl.id_of("z")], kRise);
}

TEST(TripleSim, SteadyControllingValueBlocksHazard) {
  const Netlist nl = testutil::tiny_and_or();
  // b steady 0 pins y at steady 0 no matter what a does.
  const std::vector<Triple> pis = {kRise, kSteady0, kRise};
  const auto v = simulate(nl, pis);
  EXPECT_EQ(v[nl.id_of("y")], kSteady0);
  EXPECT_EQ(v[nl.id_of("z")], kRise);
}

TEST(TripleSim, ReconvergentGlitchIsConservativelyX) {
  // z = NAND(AND(a,b), OR(NOT(a),b)) with b=1: z = NAND(a, 1*) — with a
  // rising, p rises and q is steady 1, so z falls. With b rising instead the
  // intermediate plane must stay x (possible hazard).
  const Netlist nl = testutil::reconvergent();
  {
    const std::vector<Triple> pis = {kRise, kSteady1};
    const auto v = simulate(nl, pis);
    EXPECT_EQ(v[nl.id_of("z")], kFall);
  }
  {
    // Both inputs rising: p = AND(a,b) rises, q = OR(NOT(a), b) is statically
    // 1 but can dip (NOT(a) falls before b rises); z = NAND(p, q) falls with
    // a conservatively unknown intermediate.
    const std::vector<Triple> pis = {kRise, kRise};
    const auto v = simulate(nl, pis);
    const Triple q = v[nl.id_of("q")];
    EXPECT_EQ(q.a1, V3::One);
    EXPECT_EQ(q.a3, V3::One);
    EXPECT_EQ(q.a2, V3::X);  // static 1 with possible hazard
    const Triple z = v[nl.id_of("z")];
    EXPECT_EQ(z.a1, V3::One);
    EXPECT_EQ(z.a3, V3::Zero);
    EXPECT_EQ(z.a2, V3::X);
  }
}

TEST(TripleSim, PlanesMatchIndependentPlaneSimulation) {
  // Property: plane k of the triple simulation equals a plain 3-valued
  // simulation of plane k's PI values. Random circuits and assignments.
  Rng rng(2024);
  for (int iter = 0; iter < 30; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    std::vector<Triple> pis(nl.inputs().size());
    for (auto& t : pis) {
      const V3 vals[] = {V3::Zero, V3::One, V3::X};
      t = pi_triple(vals[rng.below(3)], vals[rng.below(3)]);
    }
    const auto triple = simulate(nl, pis);
    for (int plane = 0; plane < 3; ++plane) {
      std::vector<V3> pv(pis.size());
      for (std::size_t i = 0; i < pis.size(); ++i) pv[i] = pis[i][plane];
      const auto flat = simulate_plane(nl, pv);
      for (NodeId id = 0; id < nl.node_count(); ++id) {
        EXPECT_EQ(triple[id][plane], flat[id])
            << nl.node(id).name << " plane " << plane;
      }
    }
  }
}

TEST(TripleSim, WrongPiCountThrows) {
  const Netlist nl = testutil::tiny_and_or();
  std::vector<Triple> pis(2, kSteady0);
  EXPECT_THROW(simulate(nl, pis), std::invalid_argument);
  std::vector<V3> pv(4, V3::X);
  EXPECT_THROW(simulate_plane(nl, pv), std::invalid_argument);
}

TEST(TripleSim, S27PaperExampleValues) {
  // The paper's example test context: the slow-to-rise fault on
  // G1 -> G12 -> G13 requires G7=000, G2=xx0, G1=0x1. Build a test meeting
  // those values and check the on-path transitions appear.
  const Netlist nl = benchmark_circuit("s27");
  std::vector<Triple> pis(nl.inputs().size(), kSteady0);
  auto set = [&](const std::string& name, const Triple& t) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      if (nl.node(nl.inputs()[i]).name == name) {
        pis[i] = t;
        return;
      }
    }
    FAIL() << "no input " << name;
  };
  set("G1", kRise);
  set("G7", kSteady0);
  set("G2", kSteady0);
  const auto v = simulate(nl, pis);
  // G12 = NOR(G1, G7): falls. G13 = NOR(G2, G12): rises.
  EXPECT_EQ(v[nl.id_of("G12")], kFall);
  EXPECT_EQ(v[nl.id_of("G13")], kRise);
}

}  // namespace
}  // namespace pdf
