#include "faults/collapse.hpp"

#include <gtest/gtest.h>

#include "enrich/target_sets.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

TargetFault make_fault(std::initializer_list<ValueRequirement> reqs) {
  TargetFault tf;
  tf.requirements = reqs;
  return tf;
}

TEST(Collapse, GroupsIdenticalSignatures) {
  std::vector<TargetFault> faults;
  faults.push_back(make_fault({{1, kRise}, {2, kSteady0}}));
  faults.push_back(make_fault({{1, kRise}, {2, kSteady1}}));  // differs
  faults.push_back(make_fault({{1, kRise}, {2, kSteady0}}));  // dup of 0
  faults.push_back(make_fault({{1, kRise}}));                 // shorter

  const CollapseResult c = collapse_faults(faults);
  EXPECT_EQ(c.class_count(), 3u);
  EXPECT_EQ(c.class_of[0], c.class_of[2]);
  EXPECT_NE(c.class_of[0], c.class_of[1]);
  EXPECT_NE(c.class_of[0], c.class_of[3]);
  // Representatives in first-occurrence order.
  EXPECT_EQ(c.representatives[c.class_of[0]], 0u);
  EXPECT_EQ(c.representatives[c.class_of[1]], 1u);
  EXPECT_EQ(c.representatives[c.class_of[3]], 3u);
}

TEST(Collapse, ExpandDetectionRoundTrip) {
  std::vector<TargetFault> faults;
  faults.push_back(make_fault({{1, kRise}}));
  faults.push_back(make_fault({{2, kFall}}));
  faults.push_back(make_fault({{1, kRise}}));
  const CollapseResult c = collapse_faults(faults);
  ASSERT_EQ(c.class_count(), 2u);
  const bool flags_arr[] = {true, false};
  const auto expanded = expand_detection(c, flags_arr);
  EXPECT_EQ(expanded, (std::vector<bool>{true, false, true}));
  const bool wrong_arr[] = {true};
  EXPECT_THROW(expand_detection(c, wrong_arr), std::invalid_argument);
}

TEST(Collapse, RealCircuitClassesAreConsistent) {
  const Netlist nl = benchmark_circuit("s953_like");
  TargetSetConfig cfg;
  cfg.n_p = 1500;
  cfg.n_p0 = 200;
  const TargetSets ts = build_target_sets(nl, cfg);
  const CollapseResult c = collapse_faults(ts.p0);
  EXPECT_LE(c.class_count(), ts.p0.size());
  EXPECT_GT(c.class_count(), 0u);
  // Faults in the same class really have identical requirement lists.
  for (std::size_t i = 0; i < ts.p0.size(); ++i) {
    const std::size_t rep = c.representatives[c.class_of[i]];
    EXPECT_EQ(ts.p0[i].requirements, ts.p0[rep].requirements);
  }
}

TEST(Collapse, EmptyInput) {
  const CollapseResult c = collapse_faults({});
  EXPECT_EQ(c.class_count(), 0u);
  EXPECT_TRUE(expand_detection(c, std::span<const bool>{}).empty());
}

}  // namespace
}  // namespace pdf
