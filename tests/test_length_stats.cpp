#include "paths/length_stats.hpp"

#include <gtest/gtest.h>

namespace pdf {
namespace {

TEST(LengthStats, BucketsAndCumulative) {
  // Mirrors the structure of the paper's Table 2: lengths descending,
  // cumulative counts N_p(L_i).
  const LengthProfile p({96, 96, 95, 95, 95, 94, 94, 93});
  const auto& b = p.buckets();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0].length, 96);
  EXPECT_EQ(b[0].count, 2u);
  EXPECT_EQ(b[0].cumulative, 2u);
  EXPECT_EQ(b[1].length, 95);
  EXPECT_EQ(b[1].cumulative, 5u);
  EXPECT_EQ(b[2].cumulative, 7u);
  EXPECT_EQ(b[3].cumulative, 8u);
  EXPECT_EQ(p.total(), 8u);
}

TEST(LengthStats, SelectI0PicksSmallestIndexReachingThreshold) {
  const LengthProfile p({10, 10, 9, 9, 9, 8, 8, 8, 8, 7});
  // Cumulative: 2, 5, 9, 10.
  EXPECT_EQ(p.select_i0(1), 0u);
  EXPECT_EQ(p.select_i0(2), 0u);
  EXPECT_EQ(p.select_i0(3), 1u);
  EXPECT_EQ(p.select_i0(5), 1u);
  EXPECT_EQ(p.select_i0(6), 2u);
  EXPECT_EQ(p.select_i0(9), 2u);
  EXPECT_EQ(p.select_i0(10), 3u);
  EXPECT_EQ(p.cutoff_length(6), 8);
}

TEST(LengthStats, ThresholdBeyondTotalTakesEverything) {
  const LengthProfile p({5, 4, 3});
  EXPECT_EQ(p.select_i0(100), 2u);
  EXPECT_EQ(p.cutoff_length(100), 3);
}

TEST(LengthStats, UnsortedInputHandled) {
  const LengthProfile p({3, 9, 5, 9, 3, 9});
  const auto& b = p.buckets();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].length, 9);
  EXPECT_EQ(b[0].count, 3u);
  EXPECT_EQ(b[1].length, 5);
  EXPECT_EQ(b[2].length, 3);
  EXPECT_EQ(b[2].cumulative, 6u);
}

TEST(LengthStats, EmptyProfile) {
  const LengthProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.total(), 0u);
  EXPECT_THROW(p.select_i0(1), std::logic_error);
}

TEST(LengthStats, PaperTable2Shape) {
  // Build a synthetic fault-length population shaped like the paper's s1423
  // column and check the cumulative column is reproduced by the profile.
  std::vector<int> lengths;
  const std::size_t counts[] = {4, 8, 10, 14, 18, 30};  // n_p(L_0..L_5)
  const std::size_t cum[] = {4, 12, 22, 36, 54, 84};    // paper Table 2
  int len = 96;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t k = 0; k < counts[i]; ++k) lengths.push_back(len);
    --len;
  }
  const LengthProfile p(lengths);
  const auto& b = p.buckets();
  ASSERT_EQ(b.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(b[i].length, 96 - static_cast<int>(i));
    EXPECT_EQ(b[i].cumulative, cum[i]);
  }
}

}  // namespace
}  // namespace pdf
