#include "core/compiled_circuit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/random_circuit.hpp"
#include "gen/registry.hpp"
#include "sim/event_sim.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

// Every structural fact the compiled view exposes must agree with the
// netlist it was built from: CSR adjacency (including neighbor order),
// types, levels, output flags, PI maps, and the level-packed topo order.
void check_structure(const Netlist& nl, const CompiledCircuit& cc) {
  ASSERT_EQ(cc.node_count(), nl.node_count());
  ASSERT_EQ(&cc.netlist(), &nl);

  std::size_t max_fanin = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    EXPECT_EQ(cc.type(id), n.type);
    EXPECT_EQ(cc.level(id), n.level);
    EXPECT_EQ(cc.is_output(id), n.is_output);

    const auto fi = cc.fanins(id);
    ASSERT_EQ(fi.size(), n.fanin.size());
    EXPECT_TRUE(std::equal(fi.begin(), fi.end(), n.fanin.begin()));
    const auto fo = cc.fanouts(id);
    ASSERT_EQ(fo.size(), n.fanout.size());
    EXPECT_TRUE(std::equal(fo.begin(), fo.end(), n.fanout.begin()));
    max_fanin = std::max(max_fanin, n.fanin.size());
  }
  EXPECT_EQ(cc.max_fanin(), max_fanin);
  EXPECT_LE(cc.max_fanin(), kMaxGateFanin);

  // PI index map is the inverse of inputs().
  ASSERT_EQ(cc.inputs().size(), nl.inputs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    EXPECT_EQ(cc.inputs()[i], nl.inputs()[i]);
    EXPECT_EQ(cc.input_index(nl.inputs()[i]), static_cast<int>(i));
  }
  std::vector<char> is_pi(nl.node_count(), 0);
  for (NodeId pi : nl.inputs()) is_pi[pi] = 1;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (!is_pi[id]) EXPECT_EQ(cc.input_index(id), -1);
  }
  ASSERT_EQ(cc.outputs().size(), nl.outputs().size());
  EXPECT_TRUE(std::equal(cc.outputs().begin(), cc.outputs().end(),
                         nl.outputs().begin()));

  // Topo order: a permutation of all nodes, packed by non-decreasing level,
  // with level_offsets() delimiting each band and fanins preceding users.
  const auto topo = cc.topo_order();
  ASSERT_EQ(topo.size(), nl.node_count());
  std::vector<char> seen(nl.node_count(), 0);
  int prev_level = 0;
  for (NodeId id : topo) {
    EXPECT_FALSE(seen[id]);
    seen[id] = 1;
    EXPECT_GE(cc.level(id), prev_level);
    prev_level = cc.level(id);
    for (NodeId f : cc.fanins(id)) EXPECT_TRUE(seen[f]);
  }
  const auto off = cc.level_offsets();
  ASSERT_EQ(static_cast<int>(off.size()), cc.depth() + 2);
  EXPECT_EQ(off.front(), 0u);
  EXPECT_EQ(off.back(), nl.node_count());
  for (int lv = 0; lv <= cc.depth(); ++lv) {
    const auto band = cc.level_nodes(lv);
    EXPECT_EQ(band.size(), off[lv + 1] - off[lv]);
    for (NodeId id : band) EXPECT_EQ(cc.level(id), lv);
  }
  EXPECT_FALSE(cc.has_sequential());
}

TEST(CompiledCircuit, StructureMatchesNetlist) {
  const Netlist tiny = testutil::tiny_and_or();
  check_structure(tiny, CompiledCircuit(tiny));
  for (const char* name : {"s27", "s344_like", "s1196_like"}) {
    const Netlist nl = benchmark_circuit(name);
    check_structure(nl, CompiledCircuit(nl));
  }
  Rng rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    check_structure(nl, CompiledCircuit(nl));
  }
}

TEST(CompiledCircuit, UnfinalizedNetlistRejected) {
  Netlist nl("raw");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.mark_output(nl.add_gate("y", GateType::And, {a, b}));
  EXPECT_THROW(CompiledCircuit cc(nl), std::logic_error);
}

TEST(CompiledCircuit, FinalizeEnforcesFaninBound) {
  Netlist nl("wide");
  std::vector<NodeId> pis;
  for (std::size_t i = 0; i < kMaxGateFanin + 1; ++i) {
    pis.push_back(nl.add_input("i" + std::to_string(i)));
  }
  nl.mark_output(nl.add_gate("w", GateType::And, pis));
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

// The compiled simulators must be bit-identical to the legacy per-node
// simulators on every line, for random circuits and random assignments.
TEST(CompiledCircuit, DifferentialTripleSimulation) {
  Rng rng(2026);
  SimScratch scratch;
  for (int iter = 0; iter < 40; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    const CompiledCircuit cc(nl);
    std::vector<Triple> pis(nl.inputs().size());
    for (auto& t : pis) {
      const V3 vals[] = {V3::Zero, V3::One, V3::X};
      t = pi_triple(vals[rng.below(3)], vals[rng.below(3)]);
    }
    const auto legacy = simulate(nl, pis);
    const auto compiled = simulate(cc, pis, scratch);
    ASSERT_EQ(compiled.size(), legacy.size());
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      EXPECT_EQ(compiled[id], legacy[id]) << nl.node(id).name;
    }
  }
}

TEST(CompiledCircuit, DifferentialPlaneSimulation) {
  Rng rng(4051);
  SimScratch scratch;
  for (int iter = 0; iter < 40; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    const CompiledCircuit cc(nl);
    std::vector<V3> pis(nl.inputs().size());
    for (auto& v : pis) {
      const V3 vals[] = {V3::Zero, V3::One, V3::X};
      v = vals[rng.below(3)];
    }
    const auto legacy = simulate_plane(nl, pis);
    const auto compiled = simulate_plane(cc, pis, scratch);
    ASSERT_EQ(compiled.size(), legacy.size());
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      EXPECT_EQ(compiled[id], legacy[id]) << nl.node(id).name;
    }
  }
}

TEST(CompiledCircuit, DifferentialOnGeneratedBenchmarks) {
  SimScratch scratch;
  Rng rng(9001);
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    RandomCircuitConfig cfg;
    cfg.name = "diff";
    cfg.seed = seed;
    cfg.n_inputs = 16;
    cfg.n_gates = 120;
    cfg.levels = 10;
    const Netlist nl = generate_random_circuit(cfg);
    const CompiledCircuit cc(nl);
    check_structure(nl, cc);
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<Triple> pis(nl.inputs().size());
      for (auto& t : pis) {
        const V3 vals[] = {V3::Zero, V3::One, V3::X};
        t = pi_triple(vals[rng.below(3)], vals[rng.below(3)]);
      }
      const auto legacy = simulate(nl, pis);
      const auto compiled = simulate(cc, pis, scratch);
      for (NodeId id = 0; id < nl.node_count(); ++id) {
        ASSERT_EQ(compiled[id], legacy[id]) << "seed " << seed << " node " << id;
      }
    }
  }
}

// A borrowed-view event simulator driven one PI at a time must land on the
// same quiescent values as a full legacy pass.
TEST(CompiledCircuit, EventSimMatchesFullSimulation) {
  Rng rng(555);
  for (int iter = 0; iter < 20; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    const CompiledCircuit cc(nl);
    EventSim sim(cc);
    std::vector<Triple> pis(nl.inputs().size());
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const V3 vals[] = {V3::Zero, V3::One, V3::X};
      pis[i] = pi_triple(vals[rng.below(3)], vals[rng.below(3)]);
      sim.set_pi(i, pis[i]);
    }
    const auto full = simulate(nl, pis);
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      EXPECT_EQ(sim.value(id), full[id]) << nl.node(id).name;
    }
  }
}

TEST(CompiledCircuit, S27GoldenValues) {
  // The paper's s27 example (Figure 1): G1 rising with G7=G2=steady 0 makes
  // G12 fall and G13 rise — through the compiled path.
  const Netlist nl = benchmark_circuit("s27");
  const CompiledCircuit cc(nl);
  SimScratch scratch;
  std::vector<Triple> pis(cc.inputs().size(), kSteady0);
  auto set = [&](const std::string& name, const Triple& t) {
    for (std::size_t i = 0; i < cc.inputs().size(); ++i) {
      if (nl.node(cc.inputs()[i]).name == name) {
        pis[i] = t;
        return;
      }
    }
    FAIL() << "no input " << name;
  };
  set("G1", kRise);
  set("G7", kSteady0);
  set("G2", kSteady0);
  const auto v = simulate(cc, pis, scratch);
  EXPECT_EQ(v[nl.id_of("G12")], kFall);
  EXPECT_EQ(v[nl.id_of("G13")], kRise);
}

TEST(CompiledCircuit, ScratchIsReusedAcrossCircuits) {
  // One scratch arena serves circuits of different sizes back to back.
  SimScratch scratch;
  Rng rng(31);
  const Netlist small = testutil::tiny_and_or();
  const Netlist big = benchmark_circuit("s1196_like");
  const CompiledCircuit cs(small), cb(big);
  std::vector<Triple> pi_small(small.inputs().size(), kRise);
  std::vector<Triple> pi_big(big.inputs().size(), kSteady1);
  const auto a = simulate(cs, pi_small, scratch);
  EXPECT_EQ(a.size(), small.node_count());
  const auto b = simulate(cb, pi_big, scratch);
  EXPECT_EQ(b.size(), big.node_count());
  const auto legacy = simulate(big, pi_big);
  for (NodeId id = 0; id < big.node_count(); ++id) {
    ASSERT_EQ(b[id], legacy[id]);
  }
}

TEST(CompiledCircuit, WrongPiCountThrows) {
  const Netlist nl = testutil::tiny_and_or();
  const CompiledCircuit cc(nl);
  SimScratch scratch;
  std::vector<Triple> pis(2, kSteady0);
  EXPECT_THROW(simulate(cc, pis, scratch), std::invalid_argument);
  std::vector<V3> pv(4, V3::X);
  EXPECT_THROW(simulate_plane(cc, pv, scratch), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
