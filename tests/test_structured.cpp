#include "gen/structured.hpp"

#include <gtest/gtest.h>

#include "netlist/transform.hpp"
#include "sim/triple_sim.hpp"

namespace pdf {
namespace {

// Plane-0 functional check of the adder over random vectors.
TEST(Structured, RippleCarryAdderComputesSums) {
  const std::size_t bits = 6;
  const Netlist nl = ripple_carry_adder(bits);
  EXPECT_TRUE(is_atpg_ready(nl));
  ASSERT_EQ(nl.inputs().size(), 2 * bits + 1);
  ASSERT_EQ(nl.outputs().size(), bits + 1);

  for (unsigned a = 0; a < (1u << bits); a += 5) {
    for (unsigned b = 0; b < (1u << bits); b += 7) {
      for (unsigned cin = 0; cin <= 1; ++cin) {
        std::vector<V3> pis(nl.inputs().size());
        for (std::size_t i = 0; i < bits; ++i) {
          pis[i] = (a >> i) & 1 ? V3::One : V3::Zero;          // a bits
          pis[bits + i] = (b >> i) & 1 ? V3::One : V3::Zero;   // b bits
        }
        pis[2 * bits] = cin ? V3::One : V3::Zero;
        const auto v = simulate_plane(nl, pis);
        const unsigned expect = a + b + cin;
        for (std::size_t i = 0; i < bits; ++i) {
          const NodeId sum = nl.id_of("s" + std::to_string(i) + "_sc_x");
          EXPECT_EQ(v[sum], (expect >> i) & 1 ? V3::One : V3::Zero)
              << "a=" << a << " b=" << b << " cin=" << cin << " bit " << i;
        }
        const NodeId cout = nl.id_of("s" + std::to_string(bits - 1) + "_c");
        EXPECT_EQ(v[cout], (expect >> bits) & 1 ? V3::One : V3::Zero);
      }
    }
  }
}

TEST(Structured, BarrelShifterRoutesData) {
  const Netlist nl = mux_barrel_shifter(8, 3);
  EXPECT_TRUE(is_atpg_ready(nl));
  ASSERT_EQ(nl.inputs().size(), 8u + 3u);
  ASSERT_EQ(nl.outputs().size(), 8u);
  // All selects 0: identity routing.
  std::vector<V3> pis(nl.inputs().size(), V3::Zero);
  pis[3] = V3::One;  // d3 = 1
  const auto v = simulate_plane(nl, pis);
  std::size_t ones = 0;
  for (NodeId out : nl.outputs()) ones += v[out] == V3::One;
  EXPECT_EQ(ones, 1u);
}

TEST(Structured, CarrySkipChainLongestPathRunsWholeChain) {
  const std::size_t stages = 10;
  const Netlist nl = carry_skip_chain(stages);
  EXPECT_TRUE(is_atpg_ready(nl));
  // Depth: two gates per stage.
  EXPECT_EQ(nl.depth(), static_cast<int>(2 * stages));
  // Functional: all g=1, k=0 propagates c0.
  std::vector<V3> pis(nl.inputs().size(), V3::Zero);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const std::string& name = nl.node(nl.inputs()[i]).name;
    if (name.find("_g") != std::string::npos) pis[i] = V3::One;
    if (name == "c0") pis[i] = V3::One;
  }
  const auto v = simulate_plane(nl, pis);
  for (NodeId out : nl.outputs()) EXPECT_EQ(v[out], V3::One);
}

TEST(Structured, GeneratorsRejectDegenerateSizes) {
  EXPECT_THROW(ripple_carry_adder(0), std::invalid_argument);
  EXPECT_THROW(mux_barrel_shifter(1, 2), std::invalid_argument);
  EXPECT_THROW(mux_barrel_shifter(8, 0), std::invalid_argument);
  EXPECT_THROW(carry_skip_chain(0), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
