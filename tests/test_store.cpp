// Artifact-store subsystem tests: XXH64 against published vectors, the
// little-endian byte codecs, property-style serde round-trips over random
// circuits, the zero-copy record views, and the on-disk store's corruption
// handling and concurrent same-key behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "atpg/generator.hpp"
#include "base/rng.hpp"
#include "core/compiled_circuit.hpp"
#include "enrich/target_sets.hpp"
#include "faultsim/detection_matrix.hpp"
#include "store/artifact_store.hpp"
#include "store/hash.hpp"
#include "store/serde.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

namespace fs = std::filesystem;
using store::ArtifactKey;
using store::ArtifactStore;
using store::ByteReader;
using store::ByteWriter;
using store::Hasher64;
using store::SerdeError;
using store::xxh64;

/// Unique scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "pdf-store-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::vector<std::byte> to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

// ---- XXH64 ------------------------------------------------------------------

TEST(StoreHash, PublishedTestVectors) {
  EXPECT_EQ(xxh64(""), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxh64("a"), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(xxh64("abc"), 0x44BC2CF5AD770999ULL);
  EXPECT_EQ(xxh64("message digest"), 0x066ED728FCEEB3BEULL);
}

TEST(StoreHash, StreamingMatchesOneShot) {
  Rng rng(7);
  std::vector<std::uint8_t> buf(1021);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));

  for (const std::uint64_t seed : {0ULL, 1ULL, 0xDEADBEEFULL}) {
    const std::uint64_t want = xxh64(buf.data(), buf.size(), seed);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                    std::size_t{7}, std::size_t{32},
                                    std::size_t{33}, std::size_t{257}}) {
      Hasher64 h(seed);
      for (std::size_t off = 0; off < buf.size(); off += chunk) {
        h.update(buf.data() + off, std::min(chunk, buf.size() - off));
      }
      EXPECT_EQ(h.digest(), want) << "chunk " << chunk << " seed " << seed;
    }
  }
}

TEST(StoreHash, DigestIsRepeatableAndResettable) {
  Hasher64 h;
  h.update_string("hello");
  const std::uint64_t d1 = h.digest();
  EXPECT_EQ(h.digest(), d1);  // digest() must not consume state
  h.reset();
  h.update_string("hello");
  EXPECT_EQ(h.digest(), d1);
  h.reset();
  h.update_string("world");
  EXPECT_NE(h.digest(), d1);
}

// ---- byte stream primitives -------------------------------------------------

TEST(StoreSerde, WriterProducesLittleEndianLayout) {
  ByteWriter w;
  w.u32(0x11223344u);
  w.u64(0x0102030405060708ULL);
  const auto v = w.view();
  ASSERT_EQ(v.size(), 12u);
  const std::uint8_t expect[12] = {0x44, 0x33, 0x22, 0x11, 0x08, 0x07,
                                   0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(v[i]), expect[i]) << "byte " << i;
  }
}

TEST(StoreSerde, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(200);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-12345);
  w.i64(-9876543210LL);
  w.f64(0.1);  // not exactly representable: bit pattern must survive
  w.boolean(true);
  w.str("two-pattern");
  w.align8();
  w.u64(42);

  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.i64(), -9876543210LL);
  EXPECT_EQ(r.f64(), 0.1);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "two-pattern");
  r.align8();
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_TRUE(r.exhausted());
}

TEST(StoreSerde, ReaderRejectsMalformedInput) {
  {
    ByteWriter w;
    w.u32(7);
    ByteReader r(w.view());
    r.u16();
    EXPECT_THROW(r.u32(), SerdeError);  // overrun
  }
  {
    ByteWriter w;
    w.u8(2);
    ByteReader r(w.view());
    EXPECT_THROW(r.boolean(), SerdeError);  // invalid boolean byte
  }
  {
    ByteWriter w;
    w.u8(1);
    w.u8(0xFF);  // nonzero padding
    for (int i = 0; i < 6; ++i) w.u8(0);
    ByteReader r(w.view());
    r.u8();
    EXPECT_THROW(r.align8(), SerdeError);
  }
  {
    // A hostile element count must be rejected before any allocation.
    ByteWriter w;
    w.u64(~0ULL);
    ByteReader r(w.view());
    EXPECT_THROW(r.length(r.u64()), SerdeError);
  }
}

// ---- value-type round-trips -------------------------------------------------

TwoPatternTest random_test(Rng& rng, std::size_t n_inputs) {
  TwoPatternTest t;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const V3 v1 = rng.coin() ? V3::One : V3::Zero;
    const V3 v3 = rng.coin() ? V3::One : V3::Zero;
    t.pi_values.push_back(Triple{v1, v1 == v3 ? v1 : V3::X, v3});
  }
  return t;
}

TEST(StoreSerde, TestSetRoundTripIsBitIdentical) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TwoPatternTest> tests;
    const std::size_t n = rng.below(12);
    for (std::size_t i = 0; i < n; ++i) {
      tests.push_back(random_test(rng, 1 + rng.below(9)));
    }
    ByteWriter w;
    encode(w, std::span<const TwoPatternTest>(tests));
    ByteReader r(w.view());
    const std::vector<TwoPatternTest> got = store::decode_tests(r);
    EXPECT_TRUE(r.exhausted());
    ASSERT_EQ(got.size(), tests.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i].pi_values.size(), tests[i].pi_values.size());
      for (std::size_t j = 0; j < got[i].pi_values.size(); ++j) {
        EXPECT_EQ(got[i].pi_values[j], tests[i].pi_values[j]);
      }
    }
    ByteWriter w2;
    encode(w2, std::span<const TwoPatternTest>(got));
    ASSERT_EQ(w2.size(), w.size());
    EXPECT_TRUE(std::equal(w.view().begin(), w.view().end(), w2.view().begin()));
  }
}

TEST(StoreSerde, NetlistRoundTripProperty) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const Netlist nl = testutil::random_small_netlist(rng);
    ByteWriter w;
    encode(w, nl);
    ByteReader r(w.view());
    const Netlist back = store::decode_netlist(r);
    EXPECT_TRUE(r.exhausted());

    ASSERT_EQ(back.node_count(), nl.node_count());
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      EXPECT_EQ(back.node(id).name, nl.node(id).name);
      EXPECT_EQ(back.node(id).type, nl.node(id).type);
      EXPECT_EQ(back.node(id).fanin, nl.node(id).fanin);
      EXPECT_EQ(back.node(id).fanout, nl.node(id).fanout);
    }
    EXPECT_TRUE(std::ranges::equal(back.outputs(), nl.outputs()));

    // Re-encoding the decoded netlist must reproduce the exact byte stream,
    // and the structural digest must agree.
    ByteWriter w2;
    encode(w2, back);
    ASSERT_EQ(w2.size(), w.size());
    EXPECT_TRUE(std::equal(w.view().begin(), w.view().end(), w2.view().begin()));
    EXPECT_EQ(store::digest(back), store::digest(nl));
  }
}

TEST(StoreSerde, TargetSetsRoundTripIsBitIdentical) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist nl = testutil::random_small_netlist(rng);
    TargetSetConfig cfg;
    cfg.n_p = 40;
    cfg.n_p0 = 8;
    const TargetSets ts = build_target_sets(nl, cfg);

    ByteWriter w;
    encode(w, ts);
    ByteReader r(w.view());
    const TargetSets back = store::decode_target_sets(r);
    EXPECT_TRUE(r.exhausted());

    EXPECT_EQ(back.p0.size(), ts.p0.size());
    EXPECT_EQ(back.p1.size(), ts.p1.size());
    EXPECT_EQ(back.i0, ts.i0);
    EXPECT_EQ(back.cutoff_length, ts.cutoff_length);
    EXPECT_EQ(back.enumerated_paths, ts.enumerated_paths);
    EXPECT_EQ(back.enumeration_truncated, ts.enumeration_truncated);

    ByteWriter w2;
    encode(w2, back);
    ASSERT_EQ(w2.size(), w.size());
    EXPECT_TRUE(std::equal(w.view().begin(), w.view().end(), w2.view().begin()));
  }
}

TEST(StoreSerde, GenerationResultRoundTripIsBitIdentical) {
  const Netlist nl = testutil::reconvergent();
  TargetSetConfig tcfg;
  tcfg.n_p = 20;
  tcfg.n_p0 = 4;
  const TargetSets ts = build_target_sets(nl, tcfg);
  const GenerationResult res = generate_tests(nl, ts.p0, ts.p1, {});

  ByteWriter w;
  encode(w, res);
  ByteReader r(w.view());
  const GenerationResult back = store::decode_generation_result(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(back.tests.size(), res.tests.size());
  EXPECT_EQ(back.detected, res.detected);
  EXPECT_EQ(back.detected_p0, res.detected_p0);
  EXPECT_EQ(back.detected_p1, res.detected_p1);
  EXPECT_EQ(back.stats.primary_attempts, res.stats.primary_attempts);
  EXPECT_EQ(back.stats.secondary_accepted, res.stats.secondary_accepted);
  EXPECT_EQ(back.stats.seconds, res.stats.seconds);  // f64 bit pattern

  ByteWriter w2;
  encode(w2, back);
  ASSERT_EQ(w2.size(), w.size());
  EXPECT_TRUE(std::equal(w.view().begin(), w.view().end(), w2.view().begin()));
}

TEST(StoreSerde, DetectionMatrixRoundTripAndZeroCopyView) {
  Rng rng(17);
  DetectionMatrix m(13, 130);  // words_per_row = 3, last word partial
  for (std::size_t f = 0; f < m.fault_count(); ++f) {
    for (std::size_t t = 0; t < m.test_count(); ++t) {
      if (rng.coin()) m.word(f, t / 64) |= std::uint64_t{1} << (t % 64);
    }
  }

  ByteWriter w;
  encode(w, m);
  ByteReader r(w.view());
  const DetectionMatrix back = store::decode_detection_matrix(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back, m);

  const store::DetectionMatrixView view(w.view());
  EXPECT_EQ(view.fault_count(), m.fault_count());
  EXPECT_EQ(view.test_count(), m.test_count());
  for (std::size_t f = 0; f < m.fault_count(); ++f) {
    for (std::size_t t = 0; t < m.test_count(); ++t) {
      ASSERT_EQ(view.bit(f, t), m.bit(f, t)) << f << "," << t;
    }
  }
  EXPECT_EQ(view.materialize(), m);
}

TEST(StoreSerde, CompiledCircuitImageMirrorsLiveView) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist nl = testutil::random_small_netlist(rng);
    const CompiledCircuit cc(nl);

    ByteWriter w;
    encode(w, cc);
    const store::CompiledCircuitImage img(w.view());

    ASSERT_EQ(img.node_count(), cc.node_count());
    EXPECT_EQ(img.depth(), cc.depth());
    EXPECT_EQ(img.max_fanin(), cc.max_fanin());
    EXPECT_EQ(img.has_sequential(), cc.has_sequential());
    for (NodeId id = 0; id < cc.node_count(); ++id) {
      EXPECT_EQ(img.type(id), cc.type(id));
      EXPECT_EQ(img.level(id), cc.level(id));
      EXPECT_EQ(img.is_output(id), cc.is_output(id));
      EXPECT_EQ(img.input_index(id), cc.input_index(id));
      ASSERT_TRUE(std::ranges::equal(img.fanins(id), cc.fanins(id)));
      ASSERT_TRUE(std::ranges::equal(img.fanouts(id), cc.fanouts(id)));
    }
    EXPECT_TRUE(std::ranges::equal(img.inputs(), cc.inputs()));
    EXPECT_TRUE(std::ranges::equal(img.outputs(), cc.outputs()));
    EXPECT_TRUE(std::ranges::equal(img.topo_order(), cc.topo_order()));
    EXPECT_TRUE(std::ranges::equal(img.level_offsets(), cc.level_offsets()));
    for (int l = 0; l <= cc.depth(); ++l) {
      ASSERT_TRUE(std::ranges::equal(img.level_nodes(l), cc.level_nodes(l)));
    }
  }
}

// ---- on-disk store ----------------------------------------------------------

TEST(StoreArtifact, PutGetRoundTrip) {
  TempDir dir;
  ArtifactStore s(dir.path);
  const ArtifactKey key{"demo", 0x0123456789ABCDEFULL};
  const std::vector<std::byte> payload = to_bytes("the record payload");

  EXPECT_FALSE(s.contains(key, 1));
  EXPECT_FALSE(s.get(key, 1).has_value());
  ASSERT_TRUE(s.put(key, 1, payload));
  EXPECT_TRUE(s.contains(key, 1));

  const auto got = s.get(key, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);

  // A different key of the same kind misses.
  EXPECT_FALSE(s.get(ArtifactKey{"demo", 1}, 1).has_value());
}

TEST(StoreArtifact, KindVersionMismatchIsMiss) {
  TempDir dir;
  ArtifactStore s(dir.path);
  const ArtifactKey key{"demo", 42};
  ASSERT_TRUE(s.put(key, 1, to_bytes("v1 payload")));
  EXPECT_FALSE(s.get(key, 2).has_value());
}

TEST(StoreArtifact, TruncatedFileIsMissAndQuarantined) {
  TempDir dir;
  ArtifactStore s(dir.path);
  const ArtifactKey key{"demo", 7};
  ASSERT_TRUE(s.put(key, 1, to_bytes("soon to be truncated payload")));

  const fs::path file = s.path_of(key);
  fs::resize_file(file, fs::file_size(file) - 5);

  EXPECT_FALSE(s.get(key, 1).has_value());
  EXPECT_FALSE(fs::exists(file));  // quarantined out of the slot
  EXPECT_TRUE(fs::exists(file.string() + ".corrupt"));

  // The slot heals: a fresh put round-trips again.
  ASSERT_TRUE(s.put(key, 1, to_bytes("fresh")));
  ASSERT_TRUE(s.get(key, 1).has_value());
}

TEST(StoreArtifact, BitFlipIsMissAndQuarantined) {
  TempDir dir;
  ArtifactStore s(dir.path);
  const ArtifactKey key{"demo", 9};
  ASSERT_TRUE(s.put(key, 1, to_bytes("payload protected by checksum")));

  const fs::path file = s.path_of(key);
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);  // inside the payload
    char c;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0x01));
  }

  EXPECT_FALSE(s.get(key, 1).has_value());
  EXPECT_TRUE(fs::exists(file.string() + ".corrupt"));
}

TEST(StoreArtifact, MappedRecordServesZeroCopyView) {
  Rng rng(29);
  DetectionMatrix m(5, 70);
  for (std::size_t f = 0; f < m.fault_count(); ++f) {
    for (std::size_t t = 0; t < m.test_count(); ++t) {
      if (rng.coin()) m.word(f, t / 64) |= std::uint64_t{1} << (t % 64);
    }
  }
  ByteWriter w;
  encode(w, m);

  TempDir dir;
  ArtifactStore s(dir.path);
  const ArtifactKey key{"detection_matrix", 1234};
  ASSERT_TRUE(s.put(key, 1, w.view()));

  const auto mapped = s.map(key, 1);
  ASSERT_TRUE(mapped.has_value());
  const store::DetectionMatrixView view(mapped->payload());
  EXPECT_EQ(view.materialize(), m);
}

TEST(StoreConcurrency, SameKeyWritersAndReadersNeverObserveTornRecords) {
  TempDir dir;
  const ArtifactKey key{"contended", 0xABCDEFULL};

  // Each writer repeatedly publishes one of a few distinct valid payloads;
  // readers must only ever decode one of them in full (rename is atomic, the
  // checksum rejects anything else).
  std::vector<std::vector<std::byte>> valid;
  for (int i = 0; i < 4; ++i) {
    valid.push_back(to_bytes("payload variant #" + std::to_string(i) +
                             std::string(100 + 17 * i, 'x')));
  }

  // Seed the slot so readers always have a record: rename replaces the file
  // atomically, so the path is never absent once the first put lands.
  {
    ArtifactStore s(dir.path);
    ASSERT_TRUE(s.put(key, 1, valid[0]));
  }

  std::atomic<std::size_t> torn{0};
  std::atomic<std::size_t> successful_reads{0};
  std::vector<std::thread> threads;
  for (int wi = 0; wi < 4; ++wi) {
    threads.emplace_back([&, wi] {
      ArtifactStore s(dir.path);
      for (int iter = 0; iter < 50; ++iter) {
        s.put(key, 1, valid[static_cast<std::size_t>(wi)]);
      }
    });
  }
  for (int ri = 0; ri < 4; ++ri) {
    threads.emplace_back([&] {
      ArtifactStore s(dir.path);
      for (int iter = 0; iter < 200; ++iter) {
        const auto got = s.get(key, 1);
        if (!got) continue;
        successful_reads.fetch_add(1, std::memory_order_relaxed);
        bool ok = false;
        for (const auto& v : valid) ok = ok || *got == v;
        if (!ok) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(successful_reads.load(), 0u);

  // After the dust settles the slot holds one complete record.
  ArtifactStore s(dir.path);
  const auto final_read = s.get(key, 1);
  ASSERT_TRUE(final_read.has_value());
  bool ok = false;
  for (const auto& v : valid) ok = ok || *final_read == v;
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace pdf
