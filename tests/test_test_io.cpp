#include "atpg/test_io.hpp"

#include <gtest/gtest.h>

#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

std::vector<TwoPatternTest> sample_tests(const Netlist& nl) {
  TargetSetConfig cfg;
  cfg.n_p = 60;
  cfg.n_p0 = 8;
  const EnrichmentWorkbench wb(nl, cfg);
  return wb.run_enriched({}).tests;
}

TEST(TestIo, RoundTrip) {
  const Netlist nl = benchmark_circuit("s27");
  const auto tests = sample_tests(nl);
  ASSERT_FALSE(tests.empty());
  const std::string text = tests_to_string(nl, tests);
  const auto back = tests_from_string(text, nl);
  ASSERT_EQ(back.size(), tests.size());
  for (std::size_t i = 0; i < tests.size(); ++i) {
    EXPECT_EQ(back[i].pi_values, tests[i].pi_values);
  }
}

TEST(TestIo, FileRoundTrip) {
  const Netlist nl = benchmark_circuit("s27");
  const auto tests = sample_tests(nl);
  const std::string path = ::testing::TempDir() + "/pdf_tests.txt";
  write_tests_file(path, nl, tests);
  const auto back = read_tests_file(path, nl);
  ASSERT_EQ(back.size(), tests.size());
  EXPECT_EQ(back.front().pi_values, tests.front().pi_values);
}

TEST(TestIo, UnknownValuesSurvive) {
  const Netlist nl = benchmark_circuit("s27");
  const std::string text =
      "circuit s27\n"
      "inputs G0 G1 G2 G3 G5 G6 G7\n"
      "test 0x11010/1x01010\n";
  const auto tests = tests_from_string(text, nl);
  ASSERT_EQ(tests.size(), 1u);
  EXPECT_EQ(tests[0].pi_values[0], kRise);
  EXPECT_FALSE(is_specified(tests[0].pi_values[1].a1));
}

TEST(TestIo, ValidatesInputNames) {
  const Netlist nl = benchmark_circuit("s27");
  EXPECT_THROW(tests_from_string("inputs WRONG G1 G2 G3 G5 G6 G7\n", nl),
               std::runtime_error);
  EXPECT_THROW(tests_from_string("inputs G0 G1\n", nl), std::runtime_error);
  EXPECT_THROW(
      tests_from_string("inputs G0 G1 G2 G3 G5 G6 G7 EXTRA\n", nl),
      std::runtime_error);
}

TEST(TestIo, ValidatesPatterns) {
  const Netlist nl = benchmark_circuit("s27");
  const std::string header = "inputs G0 G1 G2 G3 G5 G6 G7\n";
  EXPECT_THROW(tests_from_string(header + "test 0101010\n", nl),
               std::runtime_error);  // no slash
  EXPECT_THROW(tests_from_string(header + "test 010/1100110\n", nl),
               std::runtime_error);  // width
  EXPECT_THROW(tests_from_string(header + "test 0101012/1100110\n", nl),
               std::runtime_error);  // bad character
  EXPECT_THROW(tests_from_string("test 0101010/1100110\n", nl),
               std::runtime_error);  // test before inputs
  EXPECT_THROW(tests_from_string(header + "frobnicate\n", nl),
               std::runtime_error);  // unknown keyword
}

TEST(TestIo, CommentsAndBlankLinesIgnored) {
  const Netlist nl = benchmark_circuit("s27");
  const std::string text =
      "# header comment\n\n"
      "circuit whatever\n"
      "inputs G0 G1 G2 G3 G5 G6 G7  # trailing comment\n"
      "test 0000000/1111111 # flip everything\n";
  const auto tests = tests_from_string(text, nl);
  ASSERT_EQ(tests.size(), 1u);
  EXPECT_TRUE(tests[0].fully_specified());
}

TEST(TestIo, MissingFileThrows) {
  const Netlist nl = benchmark_circuit("s27");
  EXPECT_THROW(read_tests_file("/nonexistent/tests.txt", nl), std::runtime_error);
}

}  // namespace
}  // namespace pdf
