#include "faultsim/defect_mc.hpp"

#include <gtest/gtest.h>

#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TwoPatternTest make_test(const Netlist& nl, std::vector<Triple> vals) {
  TwoPatternTest t;
  t.pi_values = std::move(vals);
  EXPECT_EQ(t.pi_values.size(), nl.inputs().size());
  return t;
}

TEST(DefectMc, CatchesSlowGateOnSensitizedPath) {
  // tiny_and_or: y = AND(a, b), z = OR(y, c). Test: a rises, b=1, c=0 — the
  // path a->y->z is robustly sensitized. Nominal settle = 2; clock = 3.
  const Netlist nl = testutil::tiny_and_or();
  DefectMcConfig cfg;
  cfg.nominal_gate_delay = 1;
  cfg.clock_period = 3;
  DefectSimulator sim(nl, cfg);

  const TwoPatternTest t = make_test(nl, {kRise, kSteady1, kSteady0});
  EXPECT_EQ(sim.nominal_settle(t), 2);

  // Big extra delay on the on-path AND: output misses the clock.
  EXPECT_TRUE(sim.catches(t, {nl.id_of("y"), 5}));
  EXPECT_TRUE(sim.catches(t, {nl.id_of("z"), 5}));
  // Small extra delay within the guardband escapes.
  EXPECT_FALSE(sim.catches(t, {nl.id_of("y"), 1}));
}

TEST(DefectMc, DefectOffTheSensitizedPathEscapes) {
  const Netlist nl = testutil::tiny_and_or();
  DefectMcConfig cfg;
  cfg.nominal_gate_delay = 1;
  cfg.clock_period = 3;
  DefectSimulator sim(nl, cfg);
  // Steady test: nothing switches, so no delay defect can be observed.
  const TwoPatternTest steady = make_test(nl, {kSteady1, kSteady1, kSteady0});
  EXPECT_FALSE(sim.catches(steady, {nl.id_of("y"), 50}));
  EXPECT_FALSE(sim.catches(steady, {nl.id_of("z"), 50}));
}

TEST(DefectMc, CaughtByAnyAndRates) {
  const Netlist nl = testutil::tiny_and_or();
  DefectMcConfig cfg;
  cfg.nominal_gate_delay = 1;
  cfg.clock_period = 3;
  DefectSimulator sim(nl, cfg);
  const TwoPatternTest good = make_test(nl, {kRise, kSteady1, kSteady0});
  const TwoPatternTest useless = make_test(nl, {kSteady1, kSteady1, kSteady1});
  const std::vector<TwoPatternTest> tests = {useless, good};
  const Defect d{nl.id_of("y"), 5};
  EXPECT_TRUE(sim.caught_by_any(tests, d));

  const std::vector<Defect> defects = {d, {nl.id_of("z"), 5}};
  EXPECT_DOUBLE_EQ(sim.catch_rate(tests, defects), 1.0);
  EXPECT_DOUBLE_EQ(sim.catch_rate({}, defects), 0.0);
  EXPECT_DOUBLE_EQ(sim.catch_rate(tests, {}), 0.0);
}

TEST(DefectMc, RobustTestSetCatchesTargetedPathDefects) {
  // End-to-end: generate an enriched test set, inject large defects on gates
  // of detected P0 paths; the test set must catch them (robust tests verify
  // the path's timing by construction).
  const Netlist nl = benchmark_circuit("b03_like");
  TargetSetConfig tcfg;
  tcfg.n_p = 600;
  tcfg.n_p0 = 80;
  const EnrichmentWorkbench wb(nl, tcfg);
  const GenerationResult r = wb.run_enriched({});
  ASSERT_FALSE(r.tests.empty());

  DefectMcConfig cfg;
  cfg.nominal_gate_delay = 1;
  cfg.clock_period = 1;
  {
    DefectSimulator probe(nl, cfg);
    int settle = 0;
    for (const auto& t : r.tests) settle = std::max(settle, probe.nominal_settle(t));
    cfg.clock_period = settle + 1;
  }
  DefectSimulator sim(nl, cfg);

  std::size_t checked = 0;
  for (std::size_t i = 0; i < wb.targets().p0.size() && checked < 10; ++i) {
    if (!r.detected_p0[i]) continue;
    ++checked;
    const auto& path = wb.targets().p0[i].fault.path;
    // A defect larger than the clock on any on-path *gate* must be caught.
    for (NodeId g : path.nodes) {
      if (nl.node(g).type == GateType::Input) continue;
      EXPECT_TRUE(sim.caught_by_any(r.tests, {g, cfg.clock_period + 1}))
          << nl.node(g).name;
      break;  // one gate per path keeps the test fast
    }
  }
  EXPECT_GE(checked, 5u);
}

TEST(DefectMc, SamplerIsDeterministicAndBounded) {
  Rng a(5), b(5);
  const NodeId pool_arr[] = {1, 2, 3, 4, 5};
  const auto da = sample_defects_on(pool_arr, 50, 2, 9, a);
  const auto db = sample_defects_on(pool_arr, 50, 2, 9, b);
  ASSERT_EQ(da.size(), 50u);
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].gate, db[i].gate);
    EXPECT_EQ(da[i].extra_delay, db[i].extra_delay);
    EXPECT_GE(da[i].extra_delay, 2);
    EXPECT_LE(da[i].extra_delay, 9);
  }
  Rng r(1);
  EXPECT_TRUE(sample_defects_on({}, 10, 1, 2, r).empty());
  EXPECT_THROW(sample_defects_on(pool_arr, 5, 0, 2, r), std::invalid_argument);
}

TEST(DefectMc, ConfigValidation) {
  const Netlist nl = testutil::tiny_and_or();
  DefectMcConfig bad;
  bad.nominal_gate_delay = 0;
  bad.clock_period = 5;
  EXPECT_THROW(DefectSimulator s(nl, bad), std::invalid_argument);
  bad.nominal_gate_delay = 1;
  bad.clock_period = 0;
  EXPECT_THROW(DefectSimulator s(nl, bad), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
