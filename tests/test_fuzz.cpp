// Robustness fuzzing of the text front ends: whatever bytes arrive, the
// parsers either produce a valid object or throw std::runtime_error /
// std::invalid_argument — never crash, never return a half-built netlist.
#include <gtest/gtest.h>

#include "atpg/test_io.hpp"
#include "base/rng.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"

namespace pdf {
namespace {

std::string random_text(Rng& rng, std::size_t max_len) {
  static const char alphabet[] =
      "abcGIN OUTPUTDFFANDORX=(),\n\t#0123456789/";
  std::string s;
  const std::size_t len = rng.below(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
  }
  return s;
}

// Structured mutations of a valid file find deeper paths than pure noise.
std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  const int op = static_cast<int>(rng.below(4));
  if (s.empty()) return s;
  const std::size_t pos = rng.below(s.size());
  switch (op) {
    case 0: s.erase(pos, 1 + rng.below(4)); break;
    case 1: s.insert(pos, random_text(rng, 6)); break;
    case 2: s[pos] = static_cast<char>('!' + rng.below(90)); break;
    default: {  // duplicate a random slice
      const std::size_t from = rng.below(s.size());
      s.insert(pos, s.substr(from, rng.below(12)));
      break;
    }
  }
  return s;
}

TEST(Fuzz, BenchParserNeverCrashes) {
  Rng rng(0xfeedbeef);
  const std::string base = s27_bench_text();
  for (int iter = 0; iter < 600; ++iter) {
    const std::string text =
        iter % 3 == 0 ? random_text(rng, 200) : mutate(base, rng);
    try {
      const Netlist nl = parse_bench_string(text);
      // If it parsed, the result must be a coherent finalized netlist.
      EXPECT_TRUE(nl.finalized());
      for (NodeId id = 0; id < nl.node_count(); ++id) {
        for (NodeId f : nl.node(id).fanin) EXPECT_LT(f, nl.node_count());
      }
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, TestFileParserNeverCrashes) {
  const Netlist nl = benchmark_circuit("s27");
  const std::string base =
      "circuit s27\ninputs G0 G1 G2 G3 G5 G6 G7\ntest 0011010/1111010\n";
  Rng rng(0xabcdef);
  for (int iter = 0; iter < 600; ++iter) {
    const std::string text =
        iter % 3 == 0 ? random_text(rng, 160) : mutate(base, rng);
    try {
      const auto tests = tests_from_string(text, nl);
      for (const auto& t : tests) {
        EXPECT_EQ(t.pi_values.size(), nl.inputs().size());
      }
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, ValidPrefixPlusGarbageIsRejectedCleanly) {
  // A well-formed file with trailing binary garbage must not corrupt the
  // already-parsed part silently: the parser throws.
  const std::string text = s27_bench_text() + "\n\x01\x02garbage(\n";
  EXPECT_THROW(parse_bench_string(text), std::runtime_error);
}

}  // namespace
}  // namespace pdf
