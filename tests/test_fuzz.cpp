// Fuzz tests that live in tier 1.
//
// Two families:
//   * robustness fuzzing of the text front ends — whatever bytes arrive, the
//     parsers either produce a valid object or throw std::runtime_error /
//     std::invalid_argument, never crash, never return a half-built netlist;
//   * differential fuzzing of the engines against the brute-force oracle in
//     src/oracle/ — the same ground truth tools/pdf_check uses, at a small
//     default iteration count so the suite stays fast. Set PDF_FUZZ_ITERS to
//     scale the engine fuzz up (e.g. PDF_FUZZ_ITERS=2000 ctest -R Fuzz).
#include <gtest/gtest.h>

#include <cstdlib>

#include "atpg/test_io.hpp"
#include "base/rng.hpp"
#include "faults/requirements.hpp"
#include "faults/screen.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "oracle/oracle.hpp"
#include "paths/enumerate.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

int fuzz_iters(int default_iters) {
  const char* env = std::getenv("PDF_FUZZ_ITERS");
  if (env == nullptr) return default_iters;
  const int n = std::atoi(env);
  return n > 0 ? n : default_iters;
}

std::string random_text(Rng& rng, std::size_t max_len) {
  static const char alphabet[] =
      "abcGIN OUTPUTDFFANDORX=(),\n\t#0123456789/";
  std::string s;
  const std::size_t len = rng.below(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
  }
  return s;
}

// Structured mutations of a valid file find deeper paths than pure noise.
std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  const int op = static_cast<int>(rng.below(4));
  if (s.empty()) return s;
  const std::size_t pos = rng.below(s.size());
  switch (op) {
    case 0: s.erase(pos, 1 + rng.below(4)); break;
    case 1: s.insert(pos, random_text(rng, 6)); break;
    case 2: s[pos] = static_cast<char>('!' + rng.below(90)); break;
    default: {  // duplicate a random slice
      const std::size_t from = rng.below(s.size());
      s.insert(pos, s.substr(from, rng.below(12)));
      break;
    }
  }
  return s;
}

TEST(Fuzz, BenchParserNeverCrashes) {
  Rng rng(0xfeedbeef);
  const std::string base = s27_bench_text();
  for (int iter = 0; iter < 600; ++iter) {
    const std::string text =
        iter % 3 == 0 ? random_text(rng, 200) : mutate(base, rng);
    try {
      const Netlist nl = parse_bench_string(text);
      // If it parsed, the result must be a coherent finalized netlist.
      EXPECT_TRUE(nl.finalized());
      for (NodeId id = 0; id < nl.node_count(); ++id) {
        for (NodeId f : nl.node(id).fanin) EXPECT_LT(f, nl.node_count());
      }
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, TestFileParserNeverCrashes) {
  const Netlist nl = benchmark_circuit("s27");
  const std::string base =
      "circuit s27\ninputs G0 G1 G2 G3 G5 G6 G7\ntest 0011010/1111010\n";
  Rng rng(0xabcdef);
  for (int iter = 0; iter < 600; ++iter) {
    const std::string text =
        iter % 3 == 0 ? random_text(rng, 160) : mutate(base, rng);
    try {
      const auto tests = tests_from_string(text, nl);
      for (const auto& t : tests) {
        EXPECT_EQ(t.pi_values.size(), nl.inputs().size());
      }
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, SimulationMatchesOracle) {
  Rng rng(0x51f0);
  const int iters = fuzz_iters(40);
  for (int iter = 0; iter < iters; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    for (int t = 0; t < 4; ++t) {
      const TwoPatternTest test =
          testutil::random_two_pattern_test(rng, nl.inputs().size());
      const std::vector<Triple> prod = simulate(nl, test.pi_values);
      const std::vector<Triple> ref = oracle::simulate(nl, test.pi_values);
      ASSERT_EQ(prod.size(), ref.size());
      for (NodeId id = 0; id < nl.node_count(); ++id) {
        ASSERT_EQ(prod[id], ref[id])
            << "node " << nl.node(id).name << " iter " << iter;
      }
    }
  }
}

TEST(Fuzz, PathEnumerationMatchesOracle) {
  Rng rng(0x9a75);
  const int iters = fuzz_iters(40);
  for (int iter = 0; iter < iters; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    std::vector<oracle::RefPath> ref;
    try {
      ref = oracle::all_complete_paths(nl, 20'000);
    } catch (const std::runtime_error&) {
      continue;  // path explosion: skip, pdf_check covers these via caps too
    }
    const LineDelayModel dm(nl);
    EnumerationConfig cfg;
    cfg.max_faults = 2 * ref.size() + 16;
    const EnumerationResult full = enumerate_longest_paths(dm, cfg);
    ASSERT_EQ(full.paths.size(), ref.size()) << "iter " << iter;
    for (std::size_t i = 0; i < full.paths.size(); ++i) {
      EXPECT_EQ(full.paths[i].length, ref[i].length) << "iter " << iter;
    }
  }
}

TEST(Fuzz, RequirementsMatchOracle) {
  Rng rng(0xab5e);
  const int iters = fuzz_iters(40);
  for (int iter = 0; iter < iters; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    std::vector<oracle::RefPath> ref;
    try {
      ref = oracle::all_complete_paths(nl, 5'000);
    } catch (const std::runtime_error&) {
      continue;
    }
    const std::size_t n_paths = std::min<std::size_t>(ref.size(), 30);
    for (std::size_t p = 0; p < n_paths; ++p) {
      for (const bool rising : {true, false}) {
        PathDelayFault f;
        f.path.nodes = ref[p].nodes;
        f.rising_source = rising;
        f.length = ref[p].length;
        const FaultRequirements prod =
            build_requirements(nl, f, Sensitization::Robust);
        const oracle::RefRequirements want =
            oracle::requirements_by_definition(nl, f);
        ASSERT_EQ(prod.conflicting, want.conflicting)
            << fault_to_string(nl, f) << " iter " << iter;
        if (!prod.conflicting) {
          ASSERT_EQ(prod.values, want.values)
              << fault_to_string(nl, f) << " iter " << iter;
        }
      }
    }
  }
}

TEST(Fuzz, FaultSimulationMatchesOracle) {
  Rng rng(0xfa57);
  const int iters = fuzz_iters(40);
  for (int iter = 0; iter < iters; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    std::vector<oracle::RefPath> ref;
    try {
      ref = oracle::all_complete_paths(nl, 5'000);
    } catch (const std::runtime_error&) {
      continue;
    }
    std::vector<TargetFault> targets;
    std::vector<PathDelayFault> kept;
    const std::size_t n_paths = std::min<std::size_t>(ref.size(), 30);
    for (std::size_t p = 0; p < n_paths; ++p) {
      for (const bool rising : {true, false}) {
        PathDelayFault f;
        f.path.nodes = ref[p].nodes;
        f.rising_source = rising;
        f.length = ref[p].length;
        FaultRequirements reqs = build_requirements(nl, f, Sensitization::Robust);
        if (reqs.conflicting) continue;
        targets.push_back(TargetFault{f, std::move(reqs.values)});
        kept.push_back(f);
      }
    }
    if (targets.empty()) continue;
    std::vector<TwoPatternTest> tests;
    for (int t = 0; t < 6; ++t) {
      tests.push_back(
          testutil::random_two_pattern_test(rng, nl.inputs().size()));
    }
    const FaultSimulator fsim(nl);
    const std::vector<bool> prod = fsim.detects_any(tests, targets);
    const std::vector<bool> want = oracle::detects_any(nl, tests, kept);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      EXPECT_EQ(prod[i], want[i])
          << fault_to_string(nl, kept[i]) << " iter " << iter;
    }
  }
}

TEST(Fuzz, ValidPrefixPlusGarbageIsRejectedCleanly) {
  // A well-formed file with trailing binary garbage must not corrupt the
  // already-parsed part silently: the parser throws.
  const std::string text = s27_bench_text() + "\n\x01\x02garbage(\n";
  EXPECT_THROW(parse_bench_string(text), std::runtime_error);
}

}  // namespace
}  // namespace pdf
