#include "atpg/justify.hpp"

#include <gtest/gtest.h>

#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "paths/enumerate.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

std::vector<TargetFault> screened_faults(const Netlist& nl) {
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 1000000;
  auto faults = faults_for_paths(enumerate_longest_paths(dm, cfg).paths);
  return screen_faults(nl, std::move(faults), nullptr);
}

TEST(Justify, SatisfiesSimpleRequirements) {
  const Netlist nl = testutil::tiny_and_or();
  JustificationEngine eng(nl, 1);
  const ValueRequirement reqs[] = {{nl.id_of("y"), kRise}};
  const auto t = eng.justify(reqs);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->fully_specified());
  FaultSimulator fsim(nl);
  const auto values = fsim.line_values(*t);
  EXPECT_TRUE(values[nl.id_of("y")].covers(kRise));
}

TEST(Justify, FailsOnUnsatisfiableRequirements) {
  const Netlist nl = testutil::reconvergent();
  JustificationEngine eng(nl, 1);
  // p steady 1 forces a=b=1, hence q=1 and z=0: z steady 1 impossible.
  const ValueRequirement reqs[] = {
      {nl.id_of("p"), kSteady1},
      {nl.id_of("z"), kSteady1},
  };
  EXPECT_FALSE(eng.justify(reqs).has_value());
  EXPECT_GT(eng.stats().failures, 0u);
}

TEST(Justify, FailsWithoutImplicationSeedToo) {
  const Netlist nl = testutil::reconvergent();
  JustificationEngine eng(nl, 1);
  JustifyConfig cfg;
  cfg.use_implication_seed = false;
  cfg.max_attempts = 4;
  const ValueRequirement reqs[] = {
      {nl.id_of("p"), kSteady1},
      {nl.id_of("z"), kSteady1},
  };
  EXPECT_FALSE(eng.justify(reqs, cfg).has_value());
}

TEST(Justify, GeneratedTestsDetectTheirFaults) {
  // Core invariant: whenever justification succeeds on A(p), the resulting
  // test robustly detects p according to the fault simulator.
  for (const char* name : {"s27", "b03_like", "rca16"}) {
    const Netlist nl = benchmark_circuit(name);
    const auto faults = screened_faults(nl);
    ASSERT_FALSE(faults.empty()) << name;
    JustificationEngine eng(nl, 7);
    FaultSimulator fsim(nl);
    std::size_t successes = 0;
    const std::size_t limit = std::min<std::size_t>(faults.size(), 60);
    for (std::size_t i = 0; i < limit; ++i) {
      const auto t = eng.justify(faults[i].requirements);
      if (!t) continue;
      ++successes;
      EXPECT_TRUE(t->fully_specified());
      EXPECT_TRUE(fsim.detects(*t, faults[i]))
          << name << ": " << fault_to_string(nl, faults[i].fault);
    }
    EXPECT_GT(successes, 0u) << name;
  }
}

TEST(Justify, DeterministicForFixedSeed) {
  const Netlist nl = benchmark_circuit("b03_like");
  const auto faults = screened_faults(nl);
  ASSERT_GE(faults.size(), 5u);
  JustificationEngine a(nl, 99), b(nl, 99);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto ta = a.justify(faults[i].requirements);
    const auto tb = b.justify(faults[i].requirements);
    ASSERT_EQ(ta.has_value(), tb.has_value());
    if (ta) {
      EXPECT_EQ(ta->pi_values, tb->pi_values);
    }
  }
}

TEST(Justify, SeedChangesDecisions) {
  const Netlist nl = benchmark_circuit("b03_like");
  const auto faults = screened_faults(nl);
  ASSERT_FALSE(faults.empty());
  JustificationEngine a(nl, 1), b(nl, 2);
  bool any_difference = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(faults.size(), 10); ++i) {
    const auto ta = a.justify(faults[i].requirements);
    const auto tb = b.justify(faults[i].requirements);
    if (ta.has_value() != tb.has_value()) {
      any_difference = true;
    } else if (ta && !(ta->pi_values == tb->pi_values)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Justify, JointRequirementsOfCompatibleFaults) {
  // Take two faults whose requirement union is conflict-free and justify the
  // union; the resulting single test must detect both (the compaction
  // mechanism of Section 2.2).
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = screened_faults(nl);
  JustificationEngine eng(nl, 3);
  FaultSimulator fsim(nl);
  int verified = 0;
  for (std::size_t i = 0; i < faults.size() && verified < 3; ++i) {
    for (std::size_t j = i + 1; j < faults.size() && verified < 3; ++j) {
      RequirementSet u;
      u.add_all(faults[i].requirements);
      if (u.would_conflict(faults[j].requirements)) continue;
      if (!u.add_all(faults[j].requirements)) continue;
      const auto t = eng.justify(u.items());
      if (!t) continue;
      EXPECT_TRUE(fsim.detects(*t, faults[i]));
      EXPECT_TRUE(fsim.detects(*t, faults[j]));
      ++verified;
    }
  }
  EXPECT_GT(verified, 0);
}

TEST(Justify, RetriesImproveSuccessOdds) {
  // With a randomized greedy search, allowing more attempts can only keep or
  // grow the set of justified requirement sets.
  const Netlist nl = benchmark_circuit("s1196_like");
  const auto faults = screened_faults(nl);
  const std::size_t limit = std::min<std::size_t>(faults.size(), 40);
  JustifyConfig one, many;
  one.max_attempts = 1;
  many.max_attempts = 5;
  std::size_t ok_one = 0, ok_many = 0;
  {
    JustificationEngine eng(nl, 5);
    for (std::size_t i = 0; i < limit; ++i) {
      ok_one += eng.justify(faults[i].requirements, one).has_value();
    }
  }
  {
    JustificationEngine eng(nl, 5);
    for (std::size_t i = 0; i < limit; ++i) {
      ok_many += eng.justify(faults[i].requirements, many).has_value();
    }
  }
  EXPECT_GE(ok_many, ok_one);
}

TEST(Justify, StatsAccumulate) {
  const Netlist nl = testutil::tiny_and_or();
  JustificationEngine eng(nl, 1);
  const ValueRequirement reqs[] = {{nl.id_of("z"), kRise}};
  (void)eng.justify(reqs);
  EXPECT_GE(eng.stats().attempts, 1u);
  EXPECT_GE(eng.stats().successes + eng.stats().failures, 1u);
}

}  // namespace
}  // namespace pdf
