// Miscellaneous edge cases across modules.
#include <gtest/gtest.h>

#include "atpg/generator.hpp"
#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/cleanup.hpp"
#include "sim/timed_sim.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TEST(EdgeCases, WaveformValueAt) {
  Waveform w;
  w.initial = V3::Zero;
  w.changes = {{5, V3::One}, {9, V3::Zero}};
  EXPECT_EQ(w.value_at(0), V3::Zero);
  EXPECT_EQ(w.value_at(4), V3::Zero);
  EXPECT_EQ(w.value_at(5), V3::One);   // change applies at its timestamp
  EXPECT_EQ(w.value_at(8), V3::One);
  EXPECT_EQ(w.value_at(9), V3::Zero);
  EXPECT_EQ(w.value_at(1000), V3::Zero);
  EXPECT_EQ(w.final_value(), V3::Zero);
  EXPECT_EQ(w.settle_time(), 9);
  EXPECT_FALSE(w.constant());
}

TEST(EdgeCases, BufferDrivenByInputTransfersOutputMark) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(z)\nz = BUF(a)\n");
  CleanupReport rep;
  const Netlist swept = sweep_buffers(nl, &rep);
  EXPECT_EQ(rep.buffers_removed, 1u);
  EXPECT_TRUE(swept.node(swept.id_of("a")).is_output);
  EXPECT_EQ(swept.gate_count(), 0u);
}

TEST(EdgeCases, InputThatIsAlsoOutput) {
  // A PI directly marked as PO: single-node paths, length 1.
  Netlist nl("pio");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId z = nl.add_gate("z", GateType::And, {a, b});
  nl.mark_output(a);
  nl.mark_output(z);
  nl.finalize();
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 100;
  const auto r = enumerate_longest_paths(dm, cfg);
  bool single_node_path = false;
  for (const auto& p : r.paths) {
    if (p.path.nodes.size() == 1) {
      single_node_path = true;
      EXPECT_EQ(p.path.nodes[0], a);
      // a has consumers z + output tap = 2, so completing crosses a branch.
      EXPECT_EQ(p.length, 2);
    }
  }
  EXPECT_TRUE(single_node_path);
}

TEST(EdgeCases, SingleGateCircuitEndToEnd) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n");
  TargetSetConfig cfg;
  cfg.n_p = 10;
  cfg.n_p0 = 1;
  const EnrichmentWorkbench wb(nl, cfg);
  EXPECT_EQ(wb.targets().p_total(), 4u);  // 2 paths x 2 directions
  const GenerationResult r = wb.run_enriched({});
  EXPECT_EQ(r.detected_p0_count() + wb.coverage_of(r).p1_detected, 4u);
  EXPECT_LE(r.tests.size(), 4u);
}

TEST(EdgeCases, WideGateFanin) {
  // An 8-input NOR gate: one path per input, heavy off-path constraints.
  Netlist nl("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId z = nl.add_gate("z", GateType::Nor, ins);
  nl.mark_output(z);
  nl.finalize();
  TargetSetConfig cfg;
  cfg.n_p = 64;
  cfg.n_p0 = 4;
  const EnrichmentWorkbench wb(nl, cfg);
  const GenerationResult r = wb.run_enriched({});
  // Every rising fault needs all 7 side inputs steady 0 — satisfiable; the
  // falling fault needs final 0 on the sides — also satisfiable; coverage
  // should be complete.
  const UnionCoverage c = wb.coverage_of(r);
  EXPECT_EQ(c.union_detected(), c.union_total());
}

TEST(EdgeCases, GeneratorDetectedCountOutOfRange) {
  const Netlist nl = testutil::tiny_and_or();
  GenerationResult r;
  EXPECT_EQ(r.detected_count(3), 0u);
}

TEST(EdgeCases, TimedSimConstantInputsProduceConstantWaveforms) {
  const Netlist nl = testutil::reconvergent();
  std::vector<Triple> pis(nl.inputs().size(), kSteady1);
  std::vector<int> sw(nl.inputs().size(), 7);
  std::vector<int> delays(nl.node_count(), 3);
  const auto wf = simulate_timed(nl, pis, sw, delays);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    EXPECT_TRUE(wf[id].constant()) << nl.node(id).name;
  }
}

TEST(EdgeCases, EnumerationWithFaultsPerPathOne) {
  // Path-counting mode (as in the paper's Table 1) must keep exactly the
  // N_P longest paths when ties allow.
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 6;
  cfg.faults_per_path = 1;
  const auto r = enumerate_longest_paths(dm, cfg);
  EXPECT_LE(r.paths.size(), 6u + 4u);  // tie tolerance
  EXPECT_EQ(r.paths.front().length, 10);
}

}  // namespace
}  // namespace pdf
