#include "faultsim/diagnosis.hpp"

#include <gtest/gtest.h>

#include "enrich/enrichment.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

struct Fixture {
  Netlist nl = benchmark_circuit("b03_like");
  TargetSets sets;
  GenerationResult gen;
  Fixture() {
    TargetSetConfig cfg;
    cfg.n_p = 800;
    cfg.n_p0 = 120;
    sets = build_target_sets(nl, cfg);
    gen = generate_tests(nl, sets.p0, sets.p1, {});
  }
};

TEST(Diagnosis, SignaturesMatchScalarSimulation) {
  Fixture fx;
  const Diagnoser diag(fx.nl, fx.gen.tests, fx.sets.p0);
  FaultSimulator fsim(fx.nl);
  for (std::size_t f = 0; f < std::min<std::size_t>(fx.sets.p0.size(), 20); ++f) {
    const auto sig = diag.signature_of(f);
    ASSERT_EQ(sig.size(), fx.gen.tests.size());
    for (std::size_t t = 0; t < fx.gen.tests.size(); ++t) {
      EXPECT_EQ(sig[t], fsim.detects(fx.gen.tests[t], fx.sets.p0[f]));
    }
  }
}

TEST(Diagnosis, InjectedFaultIsTopRankedExactMatch) {
  Fixture fx;
  const Diagnoser diag(fx.nl, fx.gen.tests, fx.sets.p0);
  // Pretend fault f is the slow path: the chip fails exactly the tests that
  // detect f. The diagnosis must rank f (or an equivalent fault with the
  // same signature) first, as an exact match.
  std::size_t verified = 0;
  for (std::size_t f = 0; f < fx.sets.p0.size() && verified < 15; ++f) {
    if (!fx.gen.detected_p0[f]) continue;  // escapes produce no failures
    ++verified;
    const std::vector<bool> observed = diag.signature_of(f);
    const DiagnosisResult r = diag.diagnose(observed);
    ASSERT_FALSE(r.candidates.empty());
    const DiagnosisCandidate& top = r.candidates.front();
    EXPECT_TRUE(top.exact());
    EXPECT_EQ(diag.signature_of(top.fault_index), observed);
  }
  EXPECT_GE(verified, 10u);
}

TEST(Diagnosis, CandidateCountsAreConsistent) {
  Fixture fx;
  const Diagnoser diag(fx.nl, fx.gen.tests, fx.sets.p0);
  const std::vector<bool> observed = diag.signature_of(0);
  std::size_t n_fail = 0;
  for (bool b : observed) n_fail += b;
  const DiagnosisResult r = diag.diagnose(observed);
  EXPECT_EQ(r.observed_failures, n_fail);
  for (const auto& c : r.candidates) {
    EXPECT_EQ(c.explained + c.missed, n_fail);
    EXPECT_GT(c.explained, 0u);
  }
}

TEST(Diagnosis, NoFailuresYieldsNoCandidates) {
  Fixture fx;
  const Diagnoser diag(fx.nl, fx.gen.tests, fx.sets.p0);
  const std::vector<bool> clean(fx.gen.tests.size(), false);
  const DiagnosisResult r = diag.diagnose(clean);
  EXPECT_TRUE(r.candidates.empty());
  EXPECT_EQ(r.observed_failures, 0u);
}

TEST(Diagnosis, WrongVectorSizeThrows) {
  Fixture fx;
  const Diagnoser diag(fx.nl, fx.gen.tests, fx.sets.p0);
  EXPECT_THROW(diag.diagnose(std::vector<bool>(3, true)), std::invalid_argument);
  EXPECT_THROW(diag.signature_of(fx.sets.p0.size() + 5), std::out_of_range);
}

}  // namespace
}  // namespace pdf
