#include "paths/line_cover.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/registry.hpp"
#include "paths/distance.hpp"
#include "paths/enumerate.hpp"

namespace pdf {
namespace {

TEST(LineCover, ArrivalDistancesOnS27) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const auto a = distances_from_inputs(nl.finalized() ? dm : dm);
  // PIs arrive with their own stem.
  for (NodeId pi : nl.inputs()) EXPECT_EQ(a[pi], 1) << nl.node(pi).name;
  // G14 = NOT(G0): stem(G0)=1 + stem(G14)=1 (G0 single consumer, no branch).
  EXPECT_EQ(a[nl.id_of("G14")], 2);
  // Longest prefix of the longest path: G17 arrives at 10 - branch... the
  // full path G0->G14->G8->G15->G9->G11->G17 is 10 lines including G11's
  // branch to G17; arrival of G17 includes everything (no output branch
  // since G17 is single-consumer).
  EXPECT_EQ(a[nl.id_of("G17")], 10);
}

TEST(LineCover, ArrivalPlusDepartureIsPathThroughLine) {
  // Property: for every node on some complete path, the constructed longest
  // path through it has length arrive(g) + depart(g).
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const auto arrive = distances_from_inputs(dm);
  const auto depart = distances_to_outputs(dm);
  const auto cover = select_line_cover_paths(dm);

  for (const auto& cp : cover) {
    for (NodeId g : cp.path.nodes) {
      EXPECT_LE(arrive[g] + depart[g], cover.front().length);
    }
  }
  // And each selected path is a longest path through each node it was
  // selected for; verify via the bound for its own nodes.
  for (const auto& cp : cover) {
    EXPECT_EQ(cp.length, dm.complete_length(cp.path.nodes));
  }
}

TEST(LineCover, EveryReachableLineIsCovered) {
  for (const char* name : {"s27", "b03_like", "rca16"}) {
    const Netlist nl = benchmark_circuit(name);
    const LineDelayModel dm(nl);
    const auto arrive = distances_from_inputs(dm);
    const auto depart = distances_to_outputs(dm);
    const auto cover = select_line_cover_paths(dm);

    std::set<NodeId> covered;
    for (const auto& cp : cover) {
      for (NodeId g : cp.path.nodes) covered.insert(g);
    }
    for (NodeId g = 0; g < nl.node_count(); ++g) {
      if (arrive[g] == kUnreachableArrival || depart[g] == kUnreachable) {
        continue;
      }
      EXPECT_TRUE(covered.contains(g)) << name << ": " << nl.node(g).name;
    }
  }
}

TEST(LineCover, SelectedPathIsLongestThroughItsSeed) {
  // Cross-check against exhaustive enumeration on s27: for every node g, the
  // longest enumerated path through g has exactly length arrive+depart.
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const auto arrive = distances_from_inputs(dm);
  const auto depart = distances_to_outputs(dm);

  EnumerationConfig cfg;
  cfg.max_faults = 1000000;
  const auto all = enumerate_longest_paths(dm, cfg).paths;
  std::vector<int> best_through(nl.node_count(), -1);
  for (const auto& p : all) {
    for (NodeId g : p.path.nodes) {
      best_through[g] = std::max(best_through[g], p.length);
    }
  }
  for (NodeId g = 0; g < nl.node_count(); ++g) {
    if (best_through[g] < 0) continue;
    EXPECT_EQ(best_through[g], arrive[g] + depart[g]) << nl.node(g).name;
  }
}

TEST(LineCover, SortedAndDeduplicated) {
  const Netlist nl = benchmark_circuit("s953_like");
  const LineDelayModel dm(nl);
  const auto cover = select_line_cover_paths(dm);
  ASSERT_FALSE(cover.empty());
  std::set<std::vector<NodeId>> unique;
  for (std::size_t i = 0; i < cover.size(); ++i) {
    if (i) {
      EXPECT_GE(cover[i - 1].length, cover[i].length);
    }
    EXPECT_TRUE(unique.insert(cover[i].path.nodes).second);
  }
  // Far fewer paths than nodes is the point of the criterion.
  EXPECT_LE(cover.size(), nl.node_count());
}

TEST(LineCover, WorksUnderWeightedModel) {
  const Netlist nl = benchmark_circuit("b03_like");
  const LineDelayModel dm = random_delay_model(nl, 1, 7, 3);
  const auto cover = select_line_cover_paths(dm);
  ASSERT_FALSE(cover.empty());
  for (const auto& cp : cover) {
    EXPECT_EQ(cp.length, dm.complete_length(cp.path.nodes));
  }
}

}  // namespace
}  // namespace pdf
