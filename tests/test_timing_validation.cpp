// Cross-validation of the two-pattern triple algebra and the robust
// detection criterion against the independent timed waveform simulator.
#include <gtest/gtest.h>

#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "paths/enumerate.hpp"
#include "sim/timed_sim.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

std::vector<TargetFault> screened_faults(const Netlist& nl) {
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 1000000;
  auto faults = faults_for_paths(enumerate_longest_paths(dm, cfg).paths);
  return screen_faults(nl, std::move(faults), nullptr);
}

struct DelayDraw {
  std::vector<int> switch_times;
  std::vector<int> gate_delays;
};

DelayDraw random_delays(const Netlist& nl, Rng& rng) {
  DelayDraw d;
  d.switch_times.resize(nl.inputs().size());
  d.gate_delays.resize(nl.node_count());
  for (auto& t : d.switch_times) t = static_cast<int>(rng.below(20));
  for (auto& g : d.gate_delays) g = 1 + static_cast<int>(rng.below(10));
  return d;
}

TEST(TimingValidation, WaveformBasics) {
  const Netlist nl = testutil::tiny_and_or();
  // a rises at t=5, b steady 1, c steady 0; unit-ish delays.
  std::vector<Triple> pis = {kRise, kSteady1, kSteady0};
  std::vector<int> sw = {5, 0, 0};
  std::vector<int> delays(nl.node_count(), 2);
  const auto wf = simulate_timed(nl, pis, sw, delays);
  const Waveform& y = wf[nl.id_of("y")];
  EXPECT_EQ(y.initial, V3::Zero);
  ASSERT_EQ(y.changes.size(), 1u);
  EXPECT_EQ(y.changes[0].first, 7);  // 5 + delay 2
  EXPECT_EQ(y.changes[0].second, V3::One);
  const Waveform& z = wf[nl.id_of("z")];
  EXPECT_EQ(z.final_value(), V3::One);
  EXPECT_EQ(z.settle_time(), 9);
}

TEST(TimingValidation, GlitchAppearsWithSkewedArrivals) {
  // z = NAND(p, q) in the reconvergent circuit with both inputs rising:
  // p = AND(a,b) rises; q = OR(NOT(a), b) is statically 1 but dips when
  // NOT(a) falls before b arrives. If p rises before the dip, z glitches
  // (1 -> 0 -> 1 -> 0). The timed simulator must expose the glitch for some
  // delay assignment and the triple simulator must have said x.
  const Netlist nl = testutil::reconvergent();
  std::vector<Triple> pis = {kRise, kRise};
  const auto triple = simulate(nl, pis);
  const Triple z3 = triple[nl.id_of("z")];
  EXPECT_EQ(z3.a2, V3::X);  // conservatively unknown

  bool glitch_seen = false;
  Rng rng(7);
  for (int trial = 0; trial < 200 && !glitch_seen; ++trial) {
    const DelayDraw d = random_delays(nl, rng);
    const auto wf = simulate_timed(nl, pis, d.switch_times, d.gate_delays);
    glitch_seen = wf[nl.id_of("z")].changes.size() > 1;
  }
  EXPECT_TRUE(glitch_seen);
}

TEST(TimingValidation, SteadyClaimsAreSoundUnderAllDelays) {
  // Property: a line whose triple-simulated intermediate plane is specified
  // never switches in the timed simulation, for any delay assignment.
  Rng rng(90210);
  for (int iter = 0; iter < 12; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    for (int assign = 0; assign < 6; ++assign) {
      std::vector<Triple> pis(nl.inputs().size());
      for (auto& t : pis) {
        t = pi_triple(rng.coin() ? V3::One : V3::Zero,
                      rng.coin() ? V3::One : V3::Zero);
      }
      const auto triple = simulate(nl, pis);
      for (int draw = 0; draw < 10; ++draw) {
        const DelayDraw d = random_delays(nl, rng);
        const auto wf = simulate_timed(nl, pis, d.switch_times, d.gate_delays);
        for (NodeId id = 0; id < nl.node_count(); ++id) {
          EXPECT_EQ(wf[id].initial, triple[id].a1) << nl.node(id).name;
          EXPECT_EQ(wf[id].final_value(), triple[id].a3) << nl.node(id).name;
          if (is_specified(triple[id].a2)) {
            EXPECT_TRUE(wf[id].constant())
                << "hazard on line claimed steady: " << nl.node(id).name;
          }
        }
      }
    }
  }
}

// The timing property that makes robust tests robust: with a test satisfying
// A(p), every on-path gate output settles no earlier than its on-path input's
// settle time plus its own delay, for every delay assignment (off-path
// arrivals can only delay it further, never let the output settle early).
// Hence a slow path always shows up late at the sampled output.
TEST(TimingValidation, RobustTestsPropagateAlongThePath) {
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = screened_faults(nl);
  FaultSimulator fsim(nl);
  Rng rng(1234);

  int verified_faults = 0;
  for (const auto& tf : faults) {
    // Build a satisfying test directly from the requirements: assign every
    // required PI bit, others random — then keep it only if it detects.
    TwoPatternTest t;
    t.pi_values.resize(nl.inputs().size());
    for (std::size_t i = 0; i < t.pi_values.size(); ++i) {
      t.pi_values[i] = pi_triple(rng.coin() ? V3::One : V3::Zero,
                                 rng.coin() ? V3::One : V3::Zero);
    }
    for (const auto& r : tf.requirements) {
      for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        if (nl.inputs()[i] == r.line) {
          const V3 v1 = is_specified(r.value.a1) ? r.value.a1
                                                 : t.pi_values[i].a1;
          const V3 v3 = is_specified(r.value.a3) ? r.value.a3
                                                 : t.pi_values[i].a3;
          t.pi_values[i] = pi_triple(v1, v3);
        }
      }
    }
    if (!fsim.detects(t, tf)) continue;
    ++verified_faults;

    for (int draw = 0; draw < 15; ++draw) {
      const DelayDraw d = random_delays(nl, rng);
      const auto wf = simulate_timed(nl, t.pi_values, d.switch_times,
                                     d.gate_delays);
      // Settle time must accumulate along the path: each on-path node
      // settles no earlier than its delay after its on-path predecessor.
      const auto& nodes = tf.fault.path.nodes;
      for (std::size_t k = 1; k < nodes.size(); ++k) {
        const Waveform& prev = wf[nodes[k - 1]];
        const Waveform& cur = wf[nodes[k]];
        ASSERT_FALSE(prev.constant());
        ASSERT_FALSE(cur.constant());
        EXPECT_GE(cur.settle_time(),
                  prev.settle_time() + d.gate_delays[nodes[k]])
            << fault_to_string(nl, tf.fault) << " at "
            << nl.node(nodes[k]).name;
      }
    }
    if (verified_faults >= 12) break;
  }
  EXPECT_GE(verified_faults, 8);
}

TEST(TimingValidation, NonRobustTestCanMaskThePath) {
  // Negative control: the paper-example fault with its off-path steady-0
  // requirement deliberately violated (G7 falls instead). There must exist a
  // delay assignment where the sink settle time is NOT driven by the on-path
  // input (the off-path transition races it).
  const Netlist nl = benchmark_circuit("s27");
  const auto faults = screened_faults(nl);
  const TargetFault* fault = nullptr;
  for (const auto& tf : faults) {
    if (tf.fault.rising_source &&
        path_to_string(nl, tf.fault.path) == "G1 -> G12 -> G13") {
      fault = &tf;
    }
  }
  ASSERT_NE(fault, nullptr);

  TwoPatternTest t;
  t.pi_values.assign(nl.inputs().size(), kSteady0);
  auto set = [&](const char* name, const Triple& v) {
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      if (nl.node(nl.inputs()[i]).name == name) t.pi_values[i] = v;
    }
  };
  set("G1", kRise);
  set("G7", kFall);  // violates the steady-0 robust constraint
  set("G2", kSteady0);
  FaultSimulator fsim(nl);
  ASSERT_FALSE(fsim.detects(t, *fault));

  Rng rng(42);
  bool violation_seen = false;
  for (int draw = 0; draw < 200 && !violation_seen; ++draw) {
    const DelayDraw d = random_delays(nl, rng);
    const auto wf = simulate_timed(nl, t.pi_values, d.switch_times, d.gate_delays);
    const auto& nodes = fault->fault.path.nodes;
    for (std::size_t k = 1; k < nodes.size(); ++k) {
      const Waveform& prev = wf[nodes[k - 1]];
      const Waveform& cur = wf[nodes[k]];
      if (prev.constant() || cur.constant() ||
          cur.settle_time() < prev.settle_time() + d.gate_delays[nodes[k]]) {
        violation_seen = true;
        break;
      }
    }
  }
  EXPECT_TRUE(violation_seen);
}

TEST(TimingValidation, InputValidation) {
  const Netlist nl = testutil::tiny_and_or();
  std::vector<Triple> pis(3, kSteady0);
  std::vector<int> sw(3, 0);
  std::vector<int> delays(nl.node_count(), 1);
  EXPECT_NO_THROW(simulate_timed(nl, pis, sw, delays));
  std::vector<Triple> bad_pis(2, kSteady0);
  EXPECT_THROW(simulate_timed(nl, bad_pis, sw, delays), std::invalid_argument);
  std::vector<int> bad_delays(2, 1);
  EXPECT_THROW(simulate_timed(nl, pis, sw, bad_delays), std::invalid_argument);
  std::vector<Triple> unspecified(3, kAllX);
  EXPECT_THROW(simulate_timed(nl, unspecified, sw, delays), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
