#include "base/triple.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pdf {
namespace {

std::vector<Triple> all_triples() {
  std::vector<Triple> out;
  const V3 vals[] = {V3::Zero, V3::One, V3::X};
  for (V3 a : vals) {
    for (V3 b : vals) {
      for (V3 c : vals) out.push_back({a, b, c});
    }
  }
  return out;
}

TEST(Triple, NamedConstants) {
  EXPECT_EQ(kSteady0.str(), "000");
  EXPECT_EQ(kSteady1.str(), "111");
  EXPECT_EQ(kRise.str(), "0x1");
  EXPECT_EQ(kFall.str(), "1x0");
  EXPECT_EQ(kAllX.str(), "xxx");
  EXPECT_EQ(kFinal0.str(), "xx0");
  EXPECT_EQ(kFinal1.str(), "xx1");
}

TEST(Triple, StringRoundTrip) {
  for (const Triple& t : all_triples()) {
    EXPECT_EQ(triple_from_string(t.str()), t);
  }
  EXPECT_THROW(triple_from_string("01"), std::invalid_argument);
  EXPECT_THROW(triple_from_string("0123"), std::invalid_argument);
  EXPECT_THROW(triple_from_string("0y1"), std::invalid_argument);
}

TEST(Triple, PlaneIndexing) {
  const Triple t = triple_from_string("01x");
  EXPECT_EQ(t[0], V3::Zero);
  EXPECT_EQ(t[1], V3::One);
  EXPECT_EQ(t[2], V3::X);
  EXPECT_THROW(t[3], std::out_of_range);
}

TEST(Triple, CoversIsReflexiveAndXIsBottom) {
  for (const Triple& t : all_triples()) {
    EXPECT_TRUE(t.covers(t)) << t.str();
    EXPECT_TRUE(t.covers(kAllX)) << t.str();
    if (!(t == kAllX)) {
      EXPECT_FALSE(kAllX.covers(t)) << t.str();
    }
  }
}

TEST(Triple, CoversExamples) {
  EXPECT_TRUE(kSteady0.covers(kFinal0));   // steady 0 guarantees final 0
  EXPECT_FALSE(kFinal0.covers(kSteady0));  // final 0 does not guarantee steady
  EXPECT_TRUE(kRise.covers(kFinal1));
  EXPECT_FALSE(kRise.covers(kSteady1));
  EXPECT_FALSE(kFall.covers(kFinal1));
}

TEST(Triple, ConflictIsSymmetricAndCoverImpliesNoConflict) {
  for (const Triple& a : all_triples()) {
    for (const Triple& b : all_triples()) {
      EXPECT_EQ(a.conflicts_with(b), b.conflicts_with(a));
      if (a.covers(b)) {
        EXPECT_FALSE(a.conflicts_with(b));
      }
    }
  }
}

TEST(Triple, MergeIsLeastUpperBound) {
  for (const Triple& a : all_triples()) {
    for (const Triple& b : all_triples()) {
      if (a.conflicts_with(b)) continue;
      const Triple m = merge(a, b);
      EXPECT_TRUE(m.covers(a)) << a.str() << " " << b.str();
      EXPECT_TRUE(m.covers(b)) << a.str() << " " << b.str();
      // Minimality: every specified component of m comes from a or b.
      for (int p = 0; p < 3; ++p) {
        if (is_specified(m[p])) {
          EXPECT_TRUE(m[p] == a[p] || m[p] == b[p]);
        }
      }
    }
  }
}

TEST(Triple, ConflictExamples) {
  EXPECT_TRUE(kRise.conflicts_with(kFall));
  EXPECT_TRUE(kSteady0.conflicts_with(kFinal1));
  EXPECT_FALSE(kSteady0.conflicts_with(kFinal0));
  EXPECT_FALSE(kRise.conflicts_with(kFinal1));
  EXPECT_TRUE(kRise.conflicts_with(kSteady0));
}

TEST(Triple, TransitionHelpers) {
  EXPECT_EQ(transition(true), kRise);
  EXPECT_EQ(transition(false), kFall);
  EXPECT_EQ(steady(V3::One), kSteady1);
  EXPECT_EQ(final_only(V3::Zero), kFinal0);
}

TEST(Triple, FullySpecifiedAndAllX) {
  EXPECT_TRUE(kSteady1.fully_specified());
  EXPECT_FALSE(kRise.fully_specified());
  EXPECT_TRUE(kAllX.all_x());
  EXPECT_FALSE(kFinal0.all_x());
}

}  // namespace
}  // namespace pdf
