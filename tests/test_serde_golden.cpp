// Golden-file regression tests for the artifact store's serialized formats.
//
// Every versioned Serde<T> format has a tiny committed artifact under
// tests/golden/<kind>_v<version>.bin, encoded from the hand-built fixture
// value in this file. The tests pin two properties:
//   * encoding stability — encoding the fixture today produces byte-for-byte
//     the committed artifact (so a cache written by an old build stays
//     readable: same version implies same bytes);
//   * decoding fidelity — decoding the committed bytes and re-encoding
//     reproduces them exactly.
// Any intentional layout change must bump Serde<T>::version (which renames
// the expected golden file) and regenerate:
//   PDF_REGEN_GOLDEN=1 ./pathdelay_tests --gtest_filter='SerdeGolden.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "store/serde.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

using store::ByteReader;
using store::ByteWriter;
using store::Serde;

std::string golden_path(std::string_view kind, std::uint16_t version) {
  return std::string(PDF_GOLDEN_DIR) + "/" + std::string(kind) + "_v" +
         std::to_string(version) + ".bin";
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "missing golden file " << path;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return {reinterpret_cast<const std::byte*>(raw.data()),
          reinterpret_cast<const std::byte*>(raw.data() + raw.size())};
}

/// Compares encoded bytes against the committed artifact — or rewrites the
/// artifact when PDF_REGEN_GOLDEN is set (after an intentional version bump).
template <typename T, typename Decode>
void check_golden(const T& fixture, Decode decode) {
  ByteWriter w;
  Serde<T>::put(w, fixture);
  const std::string path = golden_path(Serde<T>::kind, Serde<T>::version);

  if (std::getenv("PDF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out.write(reinterpret_cast<const char*>(w.view().data()),
              static_cast<std::streamsize>(w.size()));
    GTEST_SKIP() << "regenerated " << path;
  }

  const std::vector<std::byte> golden = read_file(path);
  ASSERT_EQ(w.size(), golden.size())
      << "encoded size of " << Serde<T>::kind << " v" << Serde<T>::version
      << " changed; bump the version and regenerate the golden file";
  EXPECT_TRUE(std::equal(golden.begin(), golden.end(), w.view().begin()))
      << "encoding of " << Serde<T>::kind << " v" << Serde<T>::version
      << " drifted from the committed artifact";

  // Decode the *committed* bytes and re-encode: must reproduce them exactly.
  ByteReader r(golden);
  const T decoded = decode(r);
  ByteWriter w2;
  Serde<T>::put(w2, decoded);
  ASSERT_EQ(w2.size(), golden.size());
  EXPECT_TRUE(std::equal(golden.begin(), golden.end(), w2.view().begin()))
      << "decode/re-encode of " << std::string(Serde<T>::kind)
      << " is not byte-stable";
}

// ---- hand-built fixtures (never produced by engines, so golden tests break
// ---- only on format changes, not on engine behavior changes) --------------

std::vector<TwoPatternTest> fixture_tests() {
  TwoPatternTest t1;
  t1.pi_values = {Triple{V3::Zero, V3::X, V3::One},
                  Triple{V3::One, V3::One, V3::One},
                  Triple{V3::One, V3::X, V3::Zero}};
  TwoPatternTest t2;
  t2.pi_values = {Triple{V3::Zero, V3::Zero, V3::Zero},
                  Triple{V3::X, V3::X, V3::X},
                  Triple{V3::One, V3::X, V3::Zero}};
  return {t1, t2};
}

TargetFault fixture_target_fault() {
  TargetFault tf;
  tf.fault.path.nodes = {0, 3, 4};  // a -> y -> z in tiny_and_or
  tf.fault.rising_source = true;
  tf.fault.length = 5;
  tf.requirements = {
      ValueRequirement{0, Triple{V3::Zero, V3::X, V3::One}},
      ValueRequirement{1, Triple{V3::One, V3::One, V3::One}},
      ValueRequirement{2, Triple{V3::X, V3::X, V3::Zero}},
  };
  return tf;
}

TargetSets fixture_target_sets() {
  TargetSets ts;
  ts.p0 = {fixture_target_fault()};
  TargetFault other = fixture_target_fault();
  other.fault.rising_source = false;
  other.fault.length = 3;
  ts.p1 = {other};
  ts.i0 = 1;
  ts.cutoff_length = 5;
  ts.profile = LengthProfile({5, 5, 3});
  ts.screen.input_faults = 6;
  ts.screen.conflict_dropped = 1;
  ts.screen.implication_dropped = 2;
  ts.screen.kept = 3;
  ts.enumerated_paths = 3;
  ts.enumeration_truncated = false;
  return ts;
}

GenerationResult fixture_generation_result() {
  GenerationResult g;
  g.tests = fixture_tests();
  g.detected = {{true, false, true}, {false, true}};
  g.detected_p0 = g.detected[0];
  g.detected_p1 = g.detected[1];
  g.primary_targets = {0, 2};
  g.stats.primary_attempts = 3;
  g.stats.primary_failures = 1;
  g.stats.secondary_accepted = 2;
  g.stats.secondary_rejected = 4;
  g.stats.justify.attempts = 5;
  g.stats.justify.probes = 6;
  g.stats.justify.passes = 7;
  g.stats.justify.decisions = 8;
  g.stats.justify.successes = 9;
  g.stats.justify.failures = 10;
  g.stats.seconds = 0.25;
  return g;
}

TEST(SerdeGolden, Netlist) {
  check_golden(testutil::tiny_and_or(), store::decode_netlist);
}

TEST(SerdeGolden, TestSet) {
  check_golden(fixture_tests(), store::decode_tests);
}

TEST(SerdeGolden, TargetSets) {
  check_golden(fixture_target_sets(), store::decode_target_sets);
}

TEST(SerdeGolden, GenerationResult) {
  check_golden(fixture_generation_result(), store::decode_generation_result);
}

TEST(SerdeGolden, UnionCoverage) {
  UnionCoverage c;
  c.p0_detected = 3;
  c.p1_detected = 1;
  c.p0_total = 5;
  c.p1_total = 7;
  check_golden(c, store::decode_union_coverage);
}

TEST(SerdeGolden, DetectionMatrix) {
  DetectionMatrix m(2, 3);
  m.word(0, 0) = 0b101;  // fault 0 detected by tests 0 and 2
  m.word(1, 0) = 0b010;  // fault 1 detected by test 1
  check_golden(m, store::decode_detection_matrix);
}

// A version bump without a matching fixture/golden refresh should not pass
// silently: pin the versions the committed artifacts were generated at.
static_assert(Serde<Netlist>::version == 1);
static_assert(Serde<std::vector<TwoPatternTest>>::version == 1);
static_assert(Serde<TargetSets>::version == 1);
static_assert(Serde<GenerationResult>::version == 2);
static_assert(Serde<UnionCoverage>::version == 1);
static_assert(Serde<DetectionMatrix>::version == 1);

}  // namespace
}  // namespace pdf
