#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TEST(EventSim, MatchesFullSimulationAfterIncrementalUpdates) {
  Rng rng(99);
  for (int iter = 0; iter < 25; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    EventSim sim(nl);
    std::vector<Triple> pis(nl.inputs().size(), kAllX);
    for (int step = 0; step < 40; ++step) {
      const std::size_t i = rng.below(pis.size());
      const V3 vals[] = {V3::Zero, V3::One, V3::X};
      const Triple t = pi_triple(vals[rng.below(3)], vals[rng.below(3)]);
      pis[i] = t;
      sim.set_pi(i, t);
      const auto ref = simulate(nl, pis);
      for (NodeId id = 0; id < nl.node_count(); ++id) {
        ASSERT_EQ(sim.value(id), ref[id])
            << "iter " << iter << " step " << step << " node "
            << nl.node(id).name;
      }
    }
  }
}

TEST(EventSim, RollbackRestoresEverything) {
  Rng rng(123);
  const Netlist nl = benchmark_circuit("s27");
  EventSim sim(nl);
  // Commit a base assignment.
  sim.set_pi(0, kRise);
  sim.set_pi(3, kSteady1);
  const std::vector<Triple> before(sim.values().begin(), sim.values().end());

  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t token = sim.begin_txn();
    for (int k = 0; k < 4; ++k) {
      const V3 vals[] = {V3::Zero, V3::One, V3::X};
      sim.set_pi(rng.below(nl.inputs().size()),
                 pi_triple(vals[rng.below(3)], vals[rng.below(3)]));
    }
    sim.rollback(token);
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      ASSERT_EQ(sim.value(id), before[id]) << nl.node(id).name;
    }
    ASSERT_EQ(sim.pi(0), kRise);
  }
}

TEST(EventSim, NestedTransactions) {
  const Netlist nl = testutil::tiny_and_or();
  EventSim sim(nl);
  const std::size_t outer = sim.begin_txn();
  sim.set_pi(0, kSteady1);
  const std::size_t inner = sim.begin_txn();
  sim.set_pi(1, kSteady1);
  EXPECT_EQ(sim.value(nl.id_of("y")), kSteady1);
  sim.rollback(inner);
  EXPECT_EQ(sim.pi(1), kAllX);
  EXPECT_EQ(sim.pi(0), kSteady1);
  sim.rollback(outer);
  EXPECT_EQ(sim.pi(0), kAllX);
  EXPECT_EQ(sim.value(nl.id_of("y")), kAllX);
}

TEST(EventSim, CommitKeepsChanges) {
  const Netlist nl = testutil::tiny_and_or();
  EventSim sim(nl);
  const std::size_t token = sim.begin_txn();
  sim.set_pi(0, kSteady1);
  sim.commit(token);
  EXPECT_EQ(sim.pi(0), kSteady1);
  EXPECT_FALSE(sim.in_txn());
}

TEST(EventSim, ViolationCounting) {
  const Netlist nl = testutil::tiny_and_or();
  EventSim sim(nl);
  sim.add_requirement(nl.id_of("y"), kSteady1);
  EXPECT_EQ(sim.violations(), 0);
  EXPECT_EQ(sim.unsatisfied(), 1);

  sim.set_pi(0, kSteady1);  // a = 111
  EXPECT_EQ(sim.violations(), 0);
  EXPECT_EQ(sim.unsatisfied(), 1);  // y still xxx-ish

  sim.set_pi(1, kSteady0);  // b = 000 -> y = 000: conflicts with 111
  EXPECT_EQ(sim.violations(), 1);

  sim.set_pi(1, kSteady1);  // y = 111: satisfied
  EXPECT_EQ(sim.violations(), 0);
  EXPECT_EQ(sim.unsatisfied(), 0);
}

TEST(EventSim, ViolationsRollBackWithValues) {
  const Netlist nl = testutil::tiny_and_or();
  EventSim sim(nl);
  sim.add_requirement(nl.id_of("y"), kSteady1);
  const std::size_t token = sim.begin_txn();
  sim.set_pi(0, kSteady0);
  EXPECT_EQ(sim.violations(), 1);
  sim.rollback(token);
  EXPECT_EQ(sim.violations(), 0);
  EXPECT_EQ(sim.unsatisfied(), 1);
}

TEST(EventSim, RequirementMergeTracksCounters) {
  const Netlist nl = testutil::tiny_and_or();
  EventSim sim(nl);
  const NodeId z = nl.id_of("z");
  sim.add_requirement(z, kFinal1);
  sim.set_pi(2, kSteady1);  // c=1 -> z = xx1 at least
  EXPECT_EQ(sim.unsatisfied(), 0);
  // Strengthen to steady 1: now the x middle on z (a,b unknown) leaves it
  // satisfied only if z computes 111. c=111 forces exactly that through OR.
  sim.add_requirement(z, kSteady1);
  EXPECT_EQ(sim.unsatisfied(), 0);
  EXPECT_EQ(sim.violations(), 0);
}

TEST(EventSim, RequirementInsideTransactionRollsBack) {
  const Netlist nl = testutil::tiny_and_or();
  EventSim sim(nl);
  const std::size_t token = sim.begin_txn();
  sim.add_requirement(nl.id_of("y"), kSteady1);
  EXPECT_EQ(sim.unsatisfied(), 1);
  sim.rollback(token);
  EXPECT_EQ(sim.unsatisfied(), 0);
  EXPECT_FALSE(sim.requirement(nl.id_of("y")).has_value());
}

TEST(EventSim, ResetClearsState) {
  const Netlist nl = testutil::tiny_and_or();
  EventSim sim(nl);
  sim.set_pi(0, kSteady1);
  sim.add_requirement(nl.id_of("y"), kSteady0);
  sim.reset();
  EXPECT_EQ(sim.pi(0), kAllX);
  EXPECT_EQ(sim.violations(), 0);
  EXPECT_EQ(sim.unsatisfied(), 0);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    EXPECT_EQ(sim.value(id), kAllX);
  }
}

TEST(EventSim, GuardsAgainstMisuse) {
  const Netlist nl = testutil::tiny_and_or();
  EventSim sim(nl);
  const std::size_t token = sim.begin_txn();
  EXPECT_THROW(sim.reset(), std::logic_error);
  EXPECT_THROW(sim.clear_requirements(), std::logic_error);
  sim.rollback(token);

  Netlist seq;
  seq.add_input("a");
  const NodeId d = seq.add_gate("d", GateType::Dff, {0});
  seq.mark_output(d);
  seq.finalize();
  EXPECT_THROW(EventSim bad(seq), std::logic_error);
}

}  // namespace
}  // namespace pdf
