#include "paths/enumerate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "gen/registry.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

// All complete paths by DFS, as (rendered path, length) pairs.
std::multimap<int, std::string> brute_complete_paths(const LineDelayModel& dm,
                                                     std::size_t cap = 100000) {
  const Netlist& nl = dm.netlist();
  std::multimap<int, std::string> out;
  std::vector<NodeId> cur;
  std::function<void(NodeId)> dfs = [&](NodeId u) {
    if (out.size() > cap) return;
    cur.push_back(u);
    const Node& n = nl.node(u);
    if (n.is_output) {
      Path p{cur};
      out.emplace(dm.complete_length(cur), path_to_string(nl, p));
    }
    for (NodeId v : n.fanout) dfs(v);
    cur.pop_back();
  };
  for (NodeId pi : nl.inputs()) dfs(pi);
  return out;
}

TEST(Enumerate, UnboundedFindsAllPathsOfS27) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const auto brute = brute_complete_paths(dm);

  EnumerationConfig cfg;
  cfg.max_faults = 1000000;  // effectively unbounded
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);
  EXPECT_EQ(r.paths.size(), brute.size());

  std::multiset<std::string> got, want;
  for (const auto& p : r.paths) got.insert(path_to_string(nl, p.path));
  for (const auto& [len, s] : brute) want.insert(s);
  EXPECT_EQ(got, want);
}

TEST(Enumerate, LengthsSortedDescendingAndCorrect) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 1000000;
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);
  for (std::size_t i = 0; i + 1 < r.paths.size(); ++i) {
    EXPECT_GE(r.paths[i].length, r.paths[i + 1].length);
  }
  for (const auto& p : r.paths) {
    EXPECT_EQ(p.length, dm.complete_length(p.path.nodes));
  }
  // The paper: s27's longest path has 10 lines.
  ASSERT_FALSE(r.paths.empty());
  EXPECT_EQ(r.paths.front().length, 10);
}

TEST(Enumerate, BoundedKeepsExactlyTheLongestPaths) {
  // Property against brute force: with a budget of K paths, the result must
  // consist of the K highest lengths (as a multiset; ties broken anyhow).
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const auto brute = brute_complete_paths(dm);
  std::vector<int> all_lengths;
  for (const auto& [len, s] : brute) all_lengths.push_back(len);
  std::sort(all_lengths.rbegin(), all_lengths.rend());

  for (std::size_t budget : {4u, 8u, 12u, 16u}) {
    EnumerationConfig cfg;
    cfg.max_faults = budget;
    cfg.faults_per_path = 1;
    const EnumerationResult r = enumerate_longest_paths(dm, cfg);
    ASSERT_LE(r.paths.size(), budget);
    // Every kept path must be at least as long as the (budget)-th longest.
    ASSERT_LE(budget, all_lengths.size());
    const int floor_len = all_lengths[budget - 1];
    for (const auto& p : r.paths) {
      EXPECT_GE(p.length, floor_len) << "budget " << budget;
    }
    // And the longest path must always survive.
    ASSERT_FALSE(r.paths.empty());
    EXPECT_EQ(r.paths.front().length, all_lengths.front());
  }
}

TEST(Enumerate, BoundedMatchesBruteOnRandomCircuits) {
  Rng rng(777);
  int checked = 0;
  for (int iter = 0; iter < 40 && checked < 15; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    const LineDelayModel dm(nl);
    const auto brute = brute_complete_paths(dm, 5000);
    if (brute.empty() || brute.size() > 5000) continue;
    ++checked;
    std::vector<int> lengths;
    for (const auto& [len, s] : brute) lengths.push_back(len);
    std::sort(lengths.rbegin(), lengths.rend());

    const std::size_t budget = std::max<std::size_t>(2, brute.size() / 3);
    EnumerationConfig cfg;
    cfg.max_faults = budget;
    cfg.faults_per_path = 1;
    const EnumerationResult r = enumerate_longest_paths(dm, cfg);
    ASSERT_FALSE(r.paths.empty());
    EXPECT_EQ(r.paths.front().length, lengths.front());
    const int floor_len =
        lengths[std::min(budget, lengths.size()) - 1];
    for (const auto& p : r.paths) EXPECT_GE(p.length, floor_len);
  }
  EXPECT_GE(checked, 5);
}

TEST(Enumerate, PaperS27ExampleBasicVariant) {
  // The paper's Table 1 walkthrough: N_P = 20 *paths*, basic variant
  // (first-partial selection, prune complete-shortest-first). The final set
  // contains 18 paths whose lengths span 7..10 (shorter complete paths like
  // (G2,G13) were pruned along the way).
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 20;
  cfg.faults_per_path = 1;
  cfg.selection = SelectionPolicy::FirstPartial;
  cfg.prune = PrunePolicy::CompleteShortestFirst;
  cfg.record_trace = true;
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);

  EXPECT_FALSE(r.trace.prunes.empty());
  ASSERT_FALSE(r.paths.empty());
  EXPECT_EQ(r.paths.front().length, 10);
  // The paper ends with 18 paths of lengths 7..10; the exact end state
  // depends on the (line-level) step order, so allow the one-off variance of
  // our node-level steps while checking the same shape: all short complete
  // paths pruned, the set within the budget, the top band intact.
  for (const auto& p : r.paths) {
    EXPECT_GE(p.length, 6) << path_to_string(nl, p.path);
    EXPECT_LE(p.length, 10);
  }
  EXPECT_GE(r.paths.size(), 16u);
  EXPECT_LE(r.paths.size(), 20u);
  // The short complete path (G2, G13) of length 2 must have been pruned.
  for (const auto& p : r.paths) {
    EXPECT_NE(path_to_string(nl, p.path), "G2 -> G13");
  }
}

TEST(Enumerate, DistanceVariantNeverPrunesTheMaxLength) {
  const Netlist nl = benchmark_circuit("s1423_like");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 500;
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);
  ASSERT_FALSE(r.paths.empty());
  EXPECT_LE(r.paths.size() * 2, 500u + 64u);  // budget respected (ties aside)
  // Re-run with a much larger budget; the maximum length must be identical.
  EnumerationConfig big = cfg;
  big.max_faults = 20000;
  const EnumerationResult r2 = enumerate_longest_paths(dm, big);
  EXPECT_EQ(r.paths.front().length, r2.paths.front().length);
}

TEST(Enumerate, TraceRecordsPrunes) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 10;
  cfg.faults_per_path = 1;
  cfg.record_trace = true;
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);
  ASSERT_FALSE(r.trace.prunes.empty());
  for (const auto& ev : r.trace.prunes) {
    EXPECT_FALSE(ev.removed_lengths.empty());
    EXPECT_FALSE(ev.snapshot_before.empty());
  }
  EXPECT_FALSE(r.trace.final_set.empty());
}

TEST(Enumerate, RejectsBadConfig) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 0;
  EXPECT_THROW(enumerate_longest_paths(dm, cfg), std::invalid_argument);
  cfg.max_faults = 10;
  cfg.faults_per_path = 0;
  EXPECT_THROW(enumerate_longest_paths(dm, cfg), std::invalid_argument);
}

TEST(Enumerate, StepLimitReportsTruncation) {
  const Netlist nl = benchmark_circuit("s1196_like");
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 200;
  cfg.max_steps = 50;
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);
  EXPECT_TRUE(r.step_limit_hit);
}

}  // namespace
}  // namespace pdf
