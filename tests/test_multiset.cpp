// Tests for the multi-subset generalization (the paper's "larger number of
// subsets" remark): k-way target-set splits and k-set generation.
#include <gtest/gtest.h>

#include "atpg/generator.hpp"
#include "enrich/target_sets.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

TEST(MultiSet, SplitMatchesTwoSetBuilder) {
  const Netlist nl = benchmark_circuit("s953_like");
  TargetSetConfig cfg;
  cfg.n_p = 2000;
  cfg.n_p0 = 200;
  const TargetSets two = build_target_sets(nl, cfg);
  const std::size_t thresholds[] = {200};
  const MultiTargetSets multi = build_target_sets_multi(nl, cfg, thresholds);
  ASSERT_EQ(multi.sets.size(), 2u);
  EXPECT_EQ(multi.sets[0].size(), two.p0.size());
  EXPECT_EQ(multi.sets[1].size(), two.p1.size());
  ASSERT_EQ(multi.cutoff_lengths.size(), 1u);
  EXPECT_EQ(multi.cutoff_lengths[0], two.cutoff_length);
}

TEST(MultiSet, ThreeWaySplitIsOrderedAndComplete) {
  const Netlist nl = benchmark_circuit("s953_like");
  TargetSetConfig cfg;
  cfg.n_p = 2000;
  cfg.n_p0 = 100;
  const std::size_t thresholds[] = {100, 250};
  const MultiTargetSets m = build_target_sets_multi(nl, cfg, thresholds);
  ASSERT_EQ(m.sets.size(), 3u);
  EXPECT_EQ(m.total(), m.screen.kept);
  ASSERT_EQ(m.cutoff_lengths.size(), 2u);
  EXPECT_GT(m.cutoff_lengths[0], m.cutoff_lengths[1]);
  for (const auto& tf : m.sets[0]) {
    EXPECT_GE(tf.fault.length, m.cutoff_lengths[0]);
  }
  for (const auto& tf : m.sets[1]) {
    EXPECT_GE(tf.fault.length, m.cutoff_lengths[1]);
    EXPECT_LT(tf.fault.length, m.cutoff_lengths[0]);
  }
  for (const auto& tf : m.sets[2]) {
    EXPECT_LT(tf.fault.length, m.cutoff_lengths[1]);
  }
}

TEST(MultiSet, RejectsNonIncreasingThresholds) {
  const Netlist nl = benchmark_circuit("b03_like");
  TargetSetConfig cfg;
  cfg.n_p = 500;
  const std::size_t bad[] = {100, 100};
  EXPECT_THROW(build_target_sets_multi(nl, cfg, bad), std::invalid_argument);
}

TEST(MultiSet, ThreeSetGenerationKeepsTestCountInvariant) {
  const Netlist nl = benchmark_circuit("b04_like");
  TargetSetConfig cfg;
  cfg.n_p = 1200;
  cfg.n_p0 = 100;
  const std::size_t thresholds[] = {100, 250};
  const MultiTargetSets m = build_target_sets_multi(nl, cfg, thresholds);
  ASSERT_GE(m.sets.size(), 3u);
  if (m.sets[0].empty()) GTEST_SKIP();

  const std::span<const TargetFault> spans[] = {m.sets[0], m.sets[1], m.sets[2]};
  GeneratorConfig g;
  const GenerationResult r = generate_tests_multi(nl, spans, g);

  // Tests only from set-0 primaries.
  EXPECT_EQ(r.tests.size(), r.stats.primary_attempts - r.stats.primary_failures);
  ASSERT_EQ(r.detected.size(), 3u);
  EXPECT_EQ(r.detected[0].size(), m.sets[0].size());
  EXPECT_EQ(r.detected[2].size(), m.sets[2].size());

  // Detection flags agree with post-hoc simulation for every set.
  FaultSimulator fsim(nl);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(fsim.detects_any(r.tests, spans[k]),
              std::vector<bool>(r.detected[k].begin(), r.detected[k].end()));
  }
}

TEST(MultiSet, DeeperPartitionDetectsNoFewerTotalFaults) {
  // Splitting the opportunistic pool in two (longer faults offered first)
  // must not behave pathologically versus a single pool: total detected
  // stays in the same ballpark and the test count invariant holds.
  const Netlist nl = benchmark_circuit("s953_like");
  TargetSetConfig cfg;
  cfg.n_p = 1500;
  cfg.n_p0 = 150;
  const std::size_t two_t[] = {150};
  const std::size_t three_t[] = {150, 400};
  const MultiTargetSets two = build_target_sets_multi(nl, cfg, two_t);
  const MultiTargetSets three = build_target_sets_multi(nl, cfg, three_t);
  ASSERT_EQ(two.total(), three.total());

  GeneratorConfig g;
  const std::span<const TargetFault> s2[] = {two.sets[0], two.sets[1]};
  const std::span<const TargetFault> s3[] = {three.sets[0], three.sets[1],
                                             three.sets[2]};
  const GenerationResult r2 = generate_tests_multi(nl, s2, g);
  const GenerationResult r3 = generate_tests_multi(nl, s3, g);

  auto total_detected = [](const GenerationResult& r) {
    std::size_t n = 0;
    for (std::size_t k = 0; k < r.detected.size(); ++k) n += r.detected_count(k);
    return n;
  };
  const double a = static_cast<double>(total_detected(r2));
  const double b = static_cast<double>(total_detected(r3));
  EXPECT_NEAR(a, b, 0.15 * static_cast<double>(two.total()) + 10.0);
}

TEST(MultiSet, EmptyMiddleSetIsHarmless) {
  const Netlist nl = benchmark_circuit("b03_like");
  TargetSetConfig cfg;
  cfg.n_p = 600;
  cfg.n_p0 = 80;
  const TargetSets ts = build_target_sets(nl, cfg);
  const std::span<const TargetFault> spans[] = {ts.p0, {}, ts.p1};
  const GenerationResult r = generate_tests_multi(nl, spans, {});
  EXPECT_GT(r.detected_count(0), 0u);
  EXPECT_EQ(r.detected[1].size(), 0u);
}

}  // namespace
}  // namespace pdf
