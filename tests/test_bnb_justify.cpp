#include "atpg/bnb_justify.hpp"

#include <gtest/gtest.h>

#include "atpg/generator.hpp"
#include "atpg/justify.hpp"
#include "enrich/target_sets.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "paths/enumerate.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

std::vector<TargetFault> screened_faults(const Netlist& nl) {
  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 1000000;
  auto faults = faults_for_paths(enumerate_longest_paths(dm, cfg).paths);
  return screen_faults(nl, std::move(faults), nullptr);
}

TEST(BnbJustify, SatisfiableWithWitness) {
  const Netlist nl = testutil::tiny_and_or();
  BnbJustifier bnb(nl);
  const ValueRequirement reqs[] = {{nl.id_of("y"), kRise}};
  const BnbResult r = bnb.justify(reqs);
  ASSERT_EQ(r.status, BnbStatus::Satisfiable);
  EXPECT_TRUE(r.test.fully_specified());
  FaultSimulator fsim(nl);
  EXPECT_TRUE(fsim.line_values(r.test)[nl.id_of("y")].covers(kRise));
}

TEST(BnbJustify, ProvesUnsatisfiability) {
  const Netlist nl = testutil::reconvergent();
  BnbJustifier bnb(nl);
  const ValueRequirement reqs[] = {
      {nl.id_of("p"), kSteady1},
      {nl.id_of("z"), kSteady1},
  };
  EXPECT_EQ(bnb.justify(reqs).status, BnbStatus::Unsatisfiable);
  // Also without the implication shortcut: the pure search must prove it.
  BnbConfig cfg;
  cfg.use_implication_seed = false;
  EXPECT_EQ(bnb.justify(reqs, cfg).status, BnbStatus::Unsatisfiable);
}

TEST(BnbJustify, ExactOnSmallCircuits) {
  // Property: on small random circuits the verdict equals brute-force
  // existence over all binary two-pattern tests.
  Rng rng(20202);
  int circuits = 0;
  BnbConfig cfg;
  cfg.max_backtracks = 100000;
  for (int iter = 0; iter < 60 && circuits < 10; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    if (nl.inputs().size() > 5) continue;
    ++circuits;
    BnbJustifier bnb(nl);
    FaultSimulator fsim(nl);

    for (int trial = 0; trial < 8; ++trial) {
      std::vector<ValueRequirement> reqs;
      const std::size_t n_reqs = 1 + rng.below(3);
      for (std::size_t k = 0; k < n_reqs; ++k) {
        static const Triple kChoices[] = {kSteady0, kSteady1, kRise,
                                          kFall,    kFinal0,  kFinal1};
        reqs.push_back({static_cast<NodeId>(rng.below(nl.node_count())),
                        kChoices[rng.below(6)]});
      }

      bool exists = false;
      testutil::for_each_binary_test(
          nl.inputs().size(), [&](const std::vector<Triple>& pis) {
            if (exists) return;
            const auto values = simulate(nl, pis);
            for (const auto& r : reqs) {
              if (!values[r.line].covers(r.value)) return;
            }
            exists = true;
          });

      const BnbResult r = bnb.justify(reqs, cfg);
      ASSERT_NE(r.status, BnbStatus::Aborted);
      EXPECT_EQ(r.status == BnbStatus::Satisfiable, exists)
          << "circuit " << iter << " trial " << trial;
      if (r.status == BnbStatus::Satisfiable) {
        const auto values = fsim.line_values(r.test);
        for (const auto& req : reqs) {
          EXPECT_TRUE(values[req.line].covers(req.value));
        }
      }
    }
  }
  EXPECT_GE(circuits, 5);
}

TEST(BnbJustify, SucceedsWhereverGreedyDoes) {
  const Netlist nl = benchmark_circuit("b03_like");
  const auto faults = screened_faults(nl);
  JustificationEngine greedy(nl, 11);
  BnbJustifier bnb(nl);
  std::size_t greedy_ok = 0, both = 0, bnb_only = 0;
  const std::size_t limit = std::min<std::size_t>(faults.size(), 80);
  for (std::size_t i = 0; i < limit; ++i) {
    const bool g = greedy.justify(faults[i].requirements).has_value();
    const BnbResult b = bnb.justify(faults[i].requirements);
    if (g) {
      ++greedy_ok;
      // A complete method can never fail where an incomplete one succeeded.
      EXPECT_EQ(b.status, BnbStatus::Satisfiable);
      ++both;
    } else if (b.status == BnbStatus::Satisfiable) {
      ++bnb_only;
    }
  }
  EXPECT_GT(greedy_ok, 0u);
  EXPECT_EQ(both, greedy_ok);
  // (bnb_only > 0 would demonstrate greedy abort noise; either way is fine.)
  (void)bnb_only;
}

TEST(BnbJustify, AbortOnTinyBudget) {
  const Netlist nl = benchmark_circuit("s1196_like");
  const auto faults = screened_faults(nl);
  BnbJustifier bnb(nl);
  BnbConfig cfg;
  cfg.max_backtracks = 0;
  cfg.use_implication_seed = false;
  int aborted = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(faults.size(), 40); ++i) {
    if (bnb.justify(faults[i].requirements, cfg).status == BnbStatus::Aborted) {
      ++aborted;
    }
  }
  // With zero backtracks allowed, any fault needing one aborts; at least the
  // stats must be consistent.
  EXPECT_EQ(bnb.stats().sat + bnb.stats().unsat + bnb.stats().aborted,
            bnb.stats().calls);
  (void)aborted;
}

TEST(BnbJustify, DeterministicAcrossRuns) {
  const Netlist nl = benchmark_circuit("b09_like");
  const auto faults = screened_faults(nl);
  BnbJustifier a(nl), b(nl);
  for (std::size_t i = 0; i < std::min<std::size_t>(faults.size(), 20); ++i) {
    const BnbResult ra = a.justify(faults[i].requirements);
    const BnbResult rb = b.justify(faults[i].requirements);
    EXPECT_EQ(ra.status, rb.status);
    if (ra.status == BnbStatus::Satisfiable) {
      EXPECT_EQ(ra.test.pi_values, rb.test.pi_values);
    }
  }
}

TEST(BnbJustify, GeneratorIntegration) {
  const Netlist nl = benchmark_circuit("b09_like");
  TargetSetConfig tcfg;
  tcfg.n_p = 600;
  tcfg.n_p0 = 80;
  const TargetSets ts = build_target_sets(nl, tcfg);
  ASSERT_FALSE(ts.p0.empty());
  GeneratorConfig g;
  g.use_branch_and_bound = true;
  const GenerationResult r = generate_tests(nl, ts.p0, ts.p1, g);
  EXPECT_GT(r.detected_p0_count(), ts.p0.size() / 2);
  // Repeat: identical output (the whole point of branch-and-bound here).
  const GenerationResult r2 = generate_tests(nl, ts.p0, ts.p1, g);
  ASSERT_EQ(r.tests.size(), r2.tests.size());
  for (std::size_t i = 0; i < r.tests.size(); ++i) {
    EXPECT_EQ(r.tests[i].pi_values, r2.tests[i].pi_values);
  }
}

}  // namespace
}  // namespace pdf
