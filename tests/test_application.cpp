#include "atpg/application.hpp"

#include <gtest/gtest.h>

#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "sim/triple_sim.hpp"

namespace pdf {
namespace {

struct S27 {
  CombinationalCircuit cc;
  S27() : cc(extract_combinational(parse_bench_string(s27_bench_text(), "s27"))) {}

  std::size_t pi_index(const std::string& name) const {
    const Netlist& nl = cc.netlist;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      if (nl.node(nl.inputs()[i]).name == name) return i;
    }
    throw std::runtime_error("no input " + name);
  }
};

TwoPatternTest all_steady0(const Netlist& nl) {
  TwoPatternTest t;
  t.pi_values.assign(nl.inputs().size(), kSteady0);
  return t;
}

TEST(Application, BroadsideAcceptsConsistentNextState) {
  S27 s;
  const Netlist& nl = s.cc.netlist;
  TestApplicationAnalyzer analyzer(s.cc);

  // Build a test whose V2 state bits are exactly the next state of V1.
  TwoPatternTest t = all_steady0(nl);
  // Arbitrary V1 values on the real PIs.
  t.pi_values[s.pi_index("G0")] = kRise;
  t.pi_values[s.pi_index("G3")] = kFall;
  std::vector<V3> v1(nl.inputs().size());
  for (std::size_t i = 0; i < v1.size(); ++i) v1[i] = t.pi_values[i].a1;
  const auto values = simulate_plane(nl, v1);
  const char* dff_data[] = {"G10", "G11", "G13"};
  const char* dff_out[] = {"G5", "G6", "G7"};
  for (int k = 0; k < 3; ++k) {
    const std::size_t idx = s.pi_index(dff_out[k]);
    const V3 next = values[nl.id_of(dff_data[k])];
    t.pi_values[idx] = pi_triple(t.pi_values[idx].a1, next);
  }
  EXPECT_TRUE(analyzer.broadside_compatible(t));

  // Flip one V2 state bit: no capture clock can produce it.
  const std::size_t g5 = s.pi_index("G5");
  t.pi_values[g5] = pi_triple(t.pi_values[g5].a1, not3(t.pi_values[g5].a3));
  EXPECT_FALSE(analyzer.broadside_compatible(t));
}

TEST(Application, SkewedLoadShiftRule) {
  S27 s;
  const Netlist& nl = s.cc.netlist;
  TestApplicationAnalyzer analyzer(s.cc);
  // Chain order = pseudo_inputs order = (G5, G6, G7). V2 must satisfy
  // V2[G6] = V1[G5], V2[G7] = V1[G6]; V2[G5] is free.
  TwoPatternTest t = all_steady0(nl);
  const std::size_t g5 = s.pi_index("G5");
  const std::size_t g6 = s.pi_index("G6");
  const std::size_t g7 = s.pi_index("G7");
  t.pi_values[g5] = pi_triple(V3::One, V3::Zero);   // V1=1, V2 free: 0 ok
  t.pi_values[g6] = pi_triple(V3::Zero, V3::One);   // V2 must be V1[G5]=1 ok
  t.pi_values[g7] = pi_triple(V3::One, V3::Zero);   // V2 must be V1[G6]=0 ok
  EXPECT_TRUE(analyzer.skewed_load_compatible(t));

  t.pi_values[g7] = pi_triple(V3::One, V3::One);    // violates the shift
  EXPECT_FALSE(analyzer.skewed_load_compatible(t));
}

TEST(Application, UnspecifiedStateBitsAreRealizable) {
  S27 s;
  TestApplicationAnalyzer analyzer(s.cc);
  TwoPatternTest t;
  t.pi_values.assign(s.cc.netlist.inputs().size(), kAllX);
  EXPECT_TRUE(analyzer.broadside_compatible(t));
  EXPECT_TRUE(analyzer.skewed_load_compatible(t));
}

TEST(Application, PurelyCombinationalAlwaysCompatible) {
  const Netlist comb = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n");
  const CombinationalCircuit cc = extract_combinational(comb);
  TestApplicationAnalyzer analyzer(cc);
  TwoPatternTest t;
  t.pi_values = {kRise, kFall};
  EXPECT_TRUE(analyzer.broadside_compatible(t));
  EXPECT_TRUE(analyzer.skewed_load_compatible(t));
}

TEST(Application, ClassifyCountsAreConsistent) {
  S27 s;
  TargetSetConfig cfg;
  cfg.n_p = 60;
  cfg.n_p0 = 8;
  const EnrichmentWorkbench wb(s.cc.netlist, cfg);
  const GenerationResult r = wb.run_enriched({});
  ASSERT_FALSE(r.tests.empty());

  TestApplicationAnalyzer analyzer(s.cc);
  const ApplicationStats st = analyzer.classify(r.tests);
  EXPECT_EQ(st.total, r.tests.size());
  EXPECT_LE(st.broadside, st.total);
  EXPECT_LE(st.skewed_load, st.total);
  EXPECT_LE(st.enhanced_only, st.total);
  // Every test is either coverable by some scheme or enhanced-only.
  EXPECT_GE(st.broadside + st.skewed_load + st.enhanced_only, st.total);
}

TEST(Application, WidthMismatchThrows) {
  S27 s;
  TestApplicationAnalyzer analyzer(s.cc);
  TwoPatternTest t;
  t.pi_values.assign(2, kSteady0);
  EXPECT_THROW(analyzer.broadside_compatible(t), std::invalid_argument);
  EXPECT_THROW(analyzer.skewed_load_compatible(t), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
