#include "faults/requirements.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

using testutil::named_path;

std::optional<Triple> req_on(const FaultRequirements& r, NodeId line) {
  for (const auto& v : r.values) {
    if (v.line == line) return v.value;
  }
  return std::nullopt;
}

TEST(Requirements, PaperS27Example) {
  // Paper Section 2.1: for the slow-to-rise fault on the path through
  // G1 -> G12 -> G13 (its lines (2,9,10,15)), A(p) consists of the off-path
  // values 000 on G7 (line 7) and xx0 on G2 (line 3), and the source value
  // 0x1 on G1 (line 2).
  const Netlist nl = benchmark_circuit("s27");
  PathDelayFault f{named_path(nl, {"G1", "G12", "G13"}), true, 4};
  const FaultRequirements r = build_requirements(nl, f);
  EXPECT_FALSE(r.conflicting);

  EXPECT_EQ(req_on(r, nl.id_of("G1")), kRise);      // source 0x1
  EXPECT_EQ(req_on(r, nl.id_of("G7")), kSteady0);   // off-path 000
  EXPECT_EQ(req_on(r, nl.id_of("G2")), kFinal0);    // off-path xx0
  // Implied on-path transitions.
  EXPECT_EQ(req_on(r, nl.id_of("G12")), kFall);
  EXPECT_EQ(req_on(r, nl.id_of("G13")), kRise);
  // Nothing else.
  EXPECT_EQ(r.values.size(), 5u);
}

TEST(Requirements, SlowToFallDualExample) {
  const Netlist nl = benchmark_circuit("s27");
  PathDelayFault f{named_path(nl, {"G1", "G12", "G13"}), false, 4};
  const FaultRequirements r = build_requirements(nl, f);
  EXPECT_FALSE(r.conflicting);
  EXPECT_EQ(req_on(r, nl.id_of("G1")), kFall);
  // G1 falling into NOR(G1, G7): ends at the non-controlling value 0, so
  // G7 only needs final 0.
  EXPECT_EQ(req_on(r, nl.id_of("G7")), kFinal0);
  // G12 rises into NOR(G2, G12): ends at the controlling value 1, so G2
  // must be steady non-controlling.
  EXPECT_EQ(req_on(r, nl.id_of("G2")), kSteady0);
  EXPECT_EQ(req_on(r, nl.id_of("G13")), kFall);
}

TEST(Requirements, InversionParityAlongLongPath) {
  const Netlist nl = benchmark_circuit("s27");
  // G0 -> G14(NOT) -> G8(AND) -> G15(OR) -> G9(NAND) -> G11(NOR) -> G17(NOT)
  PathDelayFault f{
      named_path(nl, {"G0", "G14", "G8", "G15", "G9", "G11", "G17"}), true, 10};
  const FaultRequirements r = build_requirements(nl, f);
  EXPECT_FALSE(r.conflicting);
  EXPECT_EQ(req_on(r, nl.id_of("G0")), kRise);
  EXPECT_EQ(req_on(r, nl.id_of("G14")), kFall);   // NOT
  EXPECT_EQ(req_on(r, nl.id_of("G8")), kFall);    // AND keeps parity
  EXPECT_EQ(req_on(r, nl.id_of("G15")), kFall);   // OR keeps parity
  EXPECT_EQ(req_on(r, nl.id_of("G9")), kRise);    // NAND inverts
  EXPECT_EQ(req_on(r, nl.id_of("G11")), kFall);   // NOR inverts
  EXPECT_EQ(req_on(r, nl.id_of("G17")), kRise);   // NOT inverts

  // Off-path constraints: G8 falls into AND(G14, G6) — wait, G8 IS the AND;
  // its side input G6 sees the on-path transition G14 1->0 ending at the
  // controlling value of AND: steady non-controlling 111 required.
  EXPECT_EQ(req_on(r, nl.id_of("G6")), kSteady1);
  // G15 = OR(G12, G8): on-path G8 falls to the non-controlling value of OR;
  // G12 needs final 0 only.
  EXPECT_EQ(req_on(r, nl.id_of("G12")), kFinal0);
  // G9 = NAND(G16, G15): on-path G15 falls to the controlling value of NAND;
  // G16 must be steady 1.
  EXPECT_EQ(req_on(r, nl.id_of("G16")), kSteady1);
  // G11 = NOR(G5, G9): on-path G9 rises to the controlling value of NOR;
  // G5 must be steady 0.
  EXPECT_EQ(req_on(r, nl.id_of("G5")), kSteady0);
}

TEST(Requirements, ConflictingOffPathConstraintsDetected) {
  // z = AND(a, n), n = NOT(a): the off-path constraint on n conflicts with
  // the implied on-path transition when the path runs a -> z, because n
  // must be steady 1 while a rises... n = NOT(a) is NOT on the path, so A(p)
  // only sees (a: rise, n: steady 1, z: rise) — no *local* conflict. Build
  // instead a case where the off-path line IS on the path: z = AND(a, b),
  // w = OR(z, a) and path a -> z -> w: at w, off-path input a must be xx0
  // while a itself must rise (xx1): conflict.
  Netlist nl("conf");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId z = nl.add_gate("z", GateType::And, {a, b});
  const NodeId w = nl.add_gate("w", GateType::Or, {z, a});
  nl.mark_output(w);
  nl.finalize();
  (void)b;

  PathDelayFault f{Path{{a, z, w}}, true, 3};
  const FaultRequirements r = build_requirements(nl, f);
  EXPECT_TRUE(r.conflicting);
}

TEST(Requirements, StructuralValidation) {
  const Netlist nl = benchmark_circuit("s27");
  // Path not starting at a PI.
  PathDelayFault f1{named_path(nl, {"G14", "G8"}), true, 2};
  EXPECT_THROW(build_requirements(nl, f1), std::invalid_argument);
  // Disconnected consecutive nodes.
  PathDelayFault f2{named_path(nl, {"G0", "G12"}), true, 2};
  EXPECT_THROW(build_requirements(nl, f2), std::runtime_error);
  // Path not ending at an output.
  PathDelayFault f3{named_path(nl, {"G0", "G14"}), true, 2};
  EXPECT_THROW(build_requirements(nl, f3), std::invalid_argument);
  // Empty path.
  PathDelayFault f4{Path{}, true, 0};
  EXPECT_THROW(build_requirements(nl, f4), std::invalid_argument);
}

TEST(RequirementSet, AddMergeConflict) {
  RequirementSet s;
  EXPECT_TRUE(s.add(5, kFinal1));
  EXPECT_TRUE(s.add(5, kRise));  // merges: 0x1 covers xx1
  EXPECT_EQ(s.at(5), kRise);
  EXPECT_FALSE(s.add(5, kSteady0));  // conflict
  EXPECT_EQ(s.at(5), kRise);         // unchanged
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.add(3, kSteady1));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.items()[0].line, 3u);  // kept sorted
}

TEST(RequirementSet, AddAllIsAtomic) {
  RequirementSet s;
  s.add(1, kSteady0);
  const ValueRequirement batch[] = {{2, kRise}, {1, kSteady1}};
  EXPECT_FALSE(s.add_all(batch));
  EXPECT_EQ(s.size(), 1u);           // nothing from the failed batch
  EXPECT_FALSE(s.at(2).has_value());
}

TEST(RequirementSet, DeltaCount) {
  RequirementSet s;
  s.add(1, kSteady0);
  s.add(2, kRise);
  const ValueRequirement reqs[] = {
      {1, kFinal0},   // covered by steady 0 -> not new
      {2, kRise},     // identical -> not new
      {3, kSteady1},  // new line
      {2, kSteady1},  // conflicting/uncovered -> counts as new
  };
  EXPECT_EQ(s.delta_count(reqs), 2u);
  EXPECT_EQ(s.delta_count({}), 0u);
}

TEST(RequirementSet, WouldConflict) {
  RequirementSet s;
  s.add(7, kSteady0);
  EXPECT_TRUE(s.would_conflict(7, kFinal1));
  EXPECT_FALSE(s.would_conflict(7, kFinal0));
  EXPECT_FALSE(s.would_conflict(8, kSteady1));
  const ValueRequirement reqs[] = {{8, kRise}, {7, kRise}};
  EXPECT_TRUE(s.would_conflict(reqs));
}

TEST(Requirements, ToStringRendering) {
  const Netlist nl = benchmark_circuit("s27");
  PathDelayFault f{named_path(nl, {"G2", "G13"}), true, 2};
  const FaultRequirements r = build_requirements(nl, f);
  const std::string s = requirements_to_string(nl, r.values);
  EXPECT_NE(s.find("G2=0x1"), std::string::npos);
}

}  // namespace
}  // namespace pdf
