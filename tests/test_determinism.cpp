// Thread-count-independence suite: every parallel engine must produce
// bit-identical results whether the runtime pool has 1 or 8 threads. Also the
// designated ThreadSanitizer target — the CI TSan job runs these tests to
// hunt data races in the shared-engine paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "enrich/enrichment.hpp"
#include "faultsim/defect_mc.hpp"
#include "faultsim/batch_sim.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "paths/distance.hpp"
#include "paths/line_cover.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/backend_env.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

// Restores a single-threaded global pool no matter how a test exits, so
// later suites are unaffected.
struct PoolGuard {
  ~PoolGuard() { runtime::set_global_threads(1); }
};

std::vector<TwoPatternTest> random_tests(const Netlist& nl, std::size_t count,
                                         Rng& rng) {
  std::vector<TwoPatternTest> tests(count);
  for (auto& t : tests) {
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }
  return tests;
}

TEST(Determinism, DetectionMatrixIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const Netlist nl = benchmark_circuit("s1196_like");
  TargetSetConfig cfg;
  cfg.n_p = 1000;
  cfg.n_p0 = 120;
  const TargetSets ts = build_target_sets(nl, cfg);
  ASSERT_FALSE(ts.p0.empty());

  Rng rng(555);
  const auto tests = random_tests(nl, 200, rng);

  // Every registered backend: 1-thread and 8-thread matrices bit-identical,
  // and identical to each other across backends.
  DetectionMatrix reference;
  bool have_reference = false;
  for (sim::SimBackend* backend : sim::all_backends()) {
    const BatchSimulator fsim(nl, backend);
    runtime::set_global_threads(1);
    const DetectionMatrix m1 = fsim.detection_matrix(tests, ts.p0);
    runtime::set_global_threads(8);
    const DetectionMatrix m8 = fsim.detection_matrix(tests, ts.p0);
    EXPECT_EQ(m1, m8) << backend->name();
    if (!have_reference) {
      reference = m1;
      have_reference = true;
    } else {
      EXPECT_EQ(m1, reference) << backend->name() << " vs "
                               << sim::all_backends().front()->name();
    }
  }

  // And all agree with the scalar per-test simulator.
  FaultSimulator scalar(nl);
  for (std::size_t f = 0; f < ts.p0.size(); f += 17) {
    for (std::size_t t = 0; t < tests.size(); t += 13) {
      EXPECT_EQ(reference.bit(f, t), scalar.detects(tests[t], ts.p0[f]));
    }
  }
}

TEST(Determinism, EnrichedSweepIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const Netlist nl = benchmark_circuit("b03_like");
  TargetSetConfig tcfg;
  tcfg.n_p = 300;
  tcfg.n_p0 = 40;
  const EnrichmentWorkbench wb(nl, tcfg);
  ASSERT_FALSE(wb.targets().p0.empty());

  const std::uint64_t seeds[] = {1, 2, 3};
  auto run_at = [&](std::size_t threads) {
    runtime::set_global_threads(threads);
    return wb.run_enriched_sweep(seeds);
  };
  const auto at1 = run_at(1);
  const auto at8 = run_at(8);
  ASSERT_EQ(at1.size(), at8.size());
  for (std::size_t i = 0; i < at1.size(); ++i) {
    EXPECT_EQ(at1[i].seed, at8[i].seed);
    ASSERT_EQ(at1[i].result.tests.size(), at8[i].result.tests.size());
    for (std::size_t t = 0; t < at1[i].result.tests.size(); ++t) {
      EXPECT_EQ(at1[i].result.tests[t].pi_values,
                at8[i].result.tests[t].pi_values)
          << "seed " << at1[i].seed << " test " << t;
    }
    EXPECT_EQ(at1[i].coverage.p0_detected, at8[i].coverage.p0_detected);
    EXPECT_EQ(at1[i].coverage.p1_detected, at8[i].coverage.p1_detected);
  }
  // Each sweep entry matches a plain sequential run with that seed.
  runtime::set_global_threads(1);
  GeneratorConfig g;
  g.seed = 2;
  const GenerationResult direct = wb.run_enriched(g);
  ASSERT_EQ(direct.tests.size(), at8[1].result.tests.size());
  for (std::size_t t = 0; t < direct.tests.size(); ++t) {
    EXPECT_EQ(direct.tests[t].pi_values, at8[1].result.tests[t].pi_values);
  }
}

TEST(Determinism, MonteCarloIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const Netlist nl = benchmark_circuit("rca16");
  DefectMcConfig cfg;
  cfg.nominal_gate_delay = 1;
  cfg.clock_period = 40;
  const DefectSimulator sim(nl, cfg);

  Rng trng(99);
  const auto tests = random_tests(nl, 12, trng);
  std::vector<NodeId> pool;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type != GateType::Input) pool.push_back(id);
  }
  const Rng mc_rng(2024);
  auto run_at = [&](std::size_t threads) {
    runtime::set_global_threads(threads);
    return sim.monte_carlo(tests, pool, 64, 1, 10, mc_rng);
  };
  const auto at1 = run_at(1);
  const auto at8 = run_at(8);
  EXPECT_EQ(at1.trials, at8.trials);
  EXPECT_EQ(at1.caught, at8.caught);
  // The caller's generator was never advanced: a copy still agrees.
  Rng copy(2024);
  EXPECT_EQ(Rng(2024).split(5).next(), mc_rng.split(5).next());
  (void)copy;
}

TEST(Determinism, PathSelectionIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const Netlist nl = benchmark_circuit("s1196_like");
  const LineDelayModel dm(nl);
  auto run_at = [&](std::size_t threads) {
    runtime::set_global_threads(threads);
    return std::make_pair(distances_to_outputs(dm),
                          select_line_cover_paths(dm));
  };
  const auto at1 = run_at(1);
  const auto at8 = run_at(8);
  EXPECT_EQ(at1.first, at8.first);
  ASSERT_EQ(at1.second.size(), at8.second.size());
  for (std::size_t i = 0; i < at1.second.size(); ++i) {
    EXPECT_EQ(at1.second[i].path, at8.second[i].path);
    EXPECT_EQ(at1.second[i].length, at8.second[i].length);
  }
}

TEST(Determinism, SharedFaultSimulatorAcrossPoolWorkers) {
  // One FaultSimulator instance hammered from every pool worker at once: the
  // per-worker memo state must keep results identical to a sequential pass.
  // Run under TSan, this is the race detector for satellite state.
  PoolGuard guard;
  const Netlist nl = benchmark_circuit("b03_like");
  TargetSetConfig cfg;
  cfg.n_p = 300;
  cfg.n_p0 = 40;
  const TargetSets ts = build_target_sets(nl, cfg);
  ASSERT_FALSE(ts.p0.empty());

  Rng rng(321);
  const auto tests = random_tests(nl, 96, rng);
  const FaultSimulator fsim(nl);

  runtime::set_global_threads(1);
  std::vector<std::uint8_t> seq(tests.size() * ts.p0.size());
  for (std::size_t t = 0; t < tests.size(); ++t) {
    for (std::size_t f = 0; f < ts.p0.size(); ++f) {
      seq[t * ts.p0.size() + f] = fsim.detects(tests[t], ts.p0[f]) ? 1 : 0;
    }
  }

  runtime::set_global_threads(8);
  std::vector<std::uint8_t> par(seq.size());
  runtime::global_pool().parallel_for(
      tests.size(), 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t t = b; t < e; ++t) {
          for (std::size_t f = 0; f < ts.p0.size(); ++f) {
            par[t * ts.p0.size() + f] =
                fsim.detects(tests[t], ts.p0[f]) ? 1 : 0;
          }
        }
      });
  EXPECT_EQ(par, seq);
}

}  // namespace
}  // namespace pdf
