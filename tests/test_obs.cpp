// Observability layer: histogram bucketing and shard merging, span tracing
// (nesting, thread attribution, ring overflow), Chrome-trace JSON
// well-formedness, manifest schema round-trip, and the determinism contract
// that tracing never perturbs engine results.
//
// Suites are prefixed "Obs" so the CI ThreadSanitizer job's -R filter picks
// them up (histograms and trace rings are written from pool workers).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace pdf;
using runtime::Metrics;

// ---- histogram bucketing ----------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  using H = Metrics::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of(~std::uint64_t{0}), 64u);

  // Every bucket's bounds map back into that bucket, and buckets tile the
  // uint64 range without gaps.
  for (std::size_t b = 0; b < H::kBuckets; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_lower(b)), b) << "bucket " << b;
    EXPECT_EQ(H::bucket_of(H::bucket_upper(b)), b) << "bucket " << b;
    if (b + 1 < H::kBuckets) {
      EXPECT_EQ(H::bucket_upper(b) + 1, H::bucket_lower(b + 1));
    }
  }
  EXPECT_EQ(H::bucket_upper(64), ~std::uint64_t{0});
}

TEST(ObsHistogram, RecordAndPercentiles) {
  Metrics m;
  auto& h = m.histogram("test.h");
  // 90 small values in bucket 1, 10 large ones in bucket 7 (64..127).
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(100);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 90u + 1000u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.p50(), 1u);   // bucket 1 upper bound
  EXPECT_EQ(s.p90(), 1u);   // rank 90 still lands in bucket 1
  EXPECT_EQ(s.p99(), 100u); // bucket 7 upper (127) clipped to observed max
  EXPECT_EQ(s.percentile(1.0), 100u);

  h.reset();
  const auto z = h.snapshot();
  EXPECT_EQ(z.count, 0u);
  EXPECT_EQ(z.percentile(0.5), 0u);
}

TEST(ObsHistogram, MergeAcrossShards) {
  // Values recorded from distinct pool workers land in distinct shards; the
  // snapshot must merge them exactly.
  Metrics m;
  auto& h = m.histogram("test.sharded");
  runtime::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  pool.parallel_for(kN, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) h.record(i);
  });
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, kN);
  EXPECT_EQ(s.sum, kN * (kN - 1) / 2);
  EXPECT_EQ(s.max, kN - 1);
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kN);
}

TEST(ObsHistogram, DumpAndSnapshotExposure) {
  Metrics m;
  m.histogram("test.dump").record(5);
  const std::string dump = m.dump();
  EXPECT_NE(dump.find("hist test.dump count 1 sum 5"), std::string::npos)
      << dump;
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.histograms.count("test.dump"), 1u);
  EXPECT_EQ(snap.histograms.at("test.dump").count, 1u);
  m.reset();
  EXPECT_EQ(m.snapshot().histograms.at("test.dump").count, 0u);
}

// ---- span tracing -----------------------------------------------------------

TEST(ObsTrace, DisabledByDefaultAndSpansAreFree) {
  EXPECT_FALSE(obs::trace_active());
  { PDF_TRACE_SPAN("obs.test.noop"); }  // must not crash with no session
  EXPECT_EQ(obs::active_session(), nullptr);
}

TEST(ObsTrace, SpanNestingAndThreadAttribution) {
  obs::TraceSession session;
  ASSERT_TRUE(session.start());
  EXPECT_TRUE(obs::trace_active());
  {
    PDF_TRACE_SPAN("obs.test.outer");
    PDF_TRACE_SPAN("obs.test.inner");
  }
  runtime::ThreadPool pool(4);
  pool.parallel_for(64, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      PDF_TRACE_SPAN("obs.test.worker");
    }
  });
  session.stop();
  EXPECT_FALSE(obs::trace_active());

  const auto events = session.events();
  ASSERT_EQ(events.size(), 66u);

  std::size_t outer = 0, inner = 0, worker = 0;
  std::set<std::uint32_t> worker_tids;
  const obs::TraceSession::Event* outer_ev = nullptr;
  const obs::TraceSession::Event* inner_ev = nullptr;
  for (const auto& ev : events) {
    const std::string name = ev.name;
    if (name == "obs.test.outer") {
      ++outer;
      outer_ev = &ev;
    } else if (name == "obs.test.inner") {
      ++inner;
      inner_ev = &ev;
    } else if (name == "obs.test.worker") {
      ++worker;
      worker_tids.insert(ev.tid);
    }
  }
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 1u);
  EXPECT_EQ(worker, 64u);
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // Nesting: the outer span opened first and closed last.
  EXPECT_LE(outer_ev->begin_ns, inner_ev->begin_ns);
  EXPECT_GE(outer_ev->begin_ns + outer_ev->dur_ns,
            inner_ev->begin_ns + inner_ev->dur_ns);
  // The two main-thread spans carry worker_slot 0.
  EXPECT_EQ(outer_ev->tid, 0u);
  EXPECT_EQ(inner_ev->tid, 0u);
  // All 64 iterations were attributed to valid slots; with a 4-participant
  // pool the tids stay inside the dense slot range.
  for (const std::uint32_t tid : worker_tids) {
    EXPECT_LT(tid, runtime::kMaxWorkerSlots);
  }
  EXPECT_EQ(session.dropped(), 0u);
}

TEST(ObsTrace, RingDropsOldestWhenFull) {
  obs::TraceSession session;
  ASSERT_TRUE(session.start(/*ring_capacity=*/8));
  for (int i = 0; i < 20; ++i) {
    PDF_TRACE_SPAN("obs.test.ring");
  }
  session.stop();
  EXPECT_EQ(session.events().size(), 8u);
  EXPECT_EQ(session.dropped(), 12u);
  // The 12 oldest events were overwritten; survivors come back begin-sorted.
  const auto events = session.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].begin_ns, events[i].begin_ns);
  }
}

TEST(ObsTrace, OnlyOneSessionAtATime) {
  obs::TraceSession a;
  obs::TraceSession b;
  ASSERT_TRUE(a.start());
  EXPECT_FALSE(b.start());
  a.stop();
  EXPECT_TRUE(b.start());
  b.stop();
}

TEST(ObsTrace, ChromeJsonParsesBack) {
  obs::TraceSession session;
  ASSERT_TRUE(session.start());
  {
    PDF_TRACE_SPAN("obs.test.chrome");
  }
  const char* interned = session.intern("obs.test.\"quoted\"");
  session.record(interned, obs::trace_now_ns(), obs::trace_now_ns() + 1500);
  session.stop();

  const obs::Json doc = obs::Json::parse(session.chrome_json());
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  std::set<std::string> names;
  for (const auto& ev : events) {
    // The fields Perfetto / chrome://tracing require of complete events.
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_GE(ev.at("ts").as_double(), 0.0);
    EXPECT_GE(ev.at("dur").as_double(), 0.0);
    EXPECT_EQ(ev.at("pid").as_int(), 1);
    EXPECT_GE(ev.at("tid").as_int(), 0);
    names.insert(ev.at("name").as_string());
  }
  EXPECT_TRUE(names.count("obs.test.chrome"));
  EXPECT_TRUE(names.count("obs.test.\"quoted\""));
}

// ---- JSON round-trip --------------------------------------------------------

TEST(ObsJson, RoundTripScalarsAndContainers) {
  obs::Json doc;
  doc["null"] = obs::Json(nullptr);
  doc["flag"] = true;
  doc["int"] = std::int64_t{-42};
  doc["big"] = std::uint64_t{1} << 62;
  doc["pi"] = 3.25;
  doc["text"] = "line1\nline2\t\"quoted\" \\slash";
  obs::Json arr;
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(obs::Json(false));
  doc["arr"] = std::move(arr);

  const obs::Json back = obs::Json::parse(doc.dump());
  EXPECT_TRUE(back.at("null").is_null());
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_EQ(back.at("int").as_int(), -42);
  EXPECT_EQ(back.at("big").as_int(), std::int64_t{1} << 62);
  EXPECT_DOUBLE_EQ(back.at("pi").as_double(), 3.25);
  EXPECT_EQ(back.at("text").as_string(), "line1\nline2\t\"quoted\" \\slash");
  EXPECT_EQ(back.at("arr").as_array().size(), 3u);
  EXPECT_EQ(back.at("arr").as_array()[1].as_string(), "two");
  // Re-dump is byte-stable (sorted keys, exact ints).
  EXPECT_EQ(back.dump(), doc.dump());
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse("{"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("[1,]"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("{\"a\":1} trailing"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("\"unterminated"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("nul"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse(""), obs::JsonError);
}

// ---- run manifest -----------------------------------------------------------

TEST(ObsManifest, SchemaRoundTrip) {
  // Populate the global registry with one metric of each kind so the
  // manifest has something from every map.
  auto& g = Metrics::global();
  g.counter("obstest.counter").add(7);
  { auto scope = g.timer("obstest.timer").measure(); }
  g.histogram("obstest.hist").record(33);

  obs::RunInfo info;
  info.bench = "obs_unit_test";
  info.seed = 99;
  info.n_p = 4000;
  info.n_p0 = 300;
  info.threads = 2;
  info.store_enabled = true;
  info.store_dir = ".artifact-store";
  info.circuits.emplace_back("s27", 0.125);
  info.trace_events = 5;
  info.trace_dropped = 1;

  const std::string path = "obs_manifest_test.json";
  ASSERT_TRUE(obs::write_run_manifest(path, info));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());

  const obs::Json doc = obs::Json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "pdf.run_manifest/1");
  EXPECT_EQ(doc.at("bench").as_string(), "obs_unit_test");
  EXPECT_EQ(doc.at("params").at("seed").as_int(), 99);
  EXPECT_EQ(doc.at("params").at("n_p").as_int(), 4000);
  EXPECT_EQ(doc.at("params").at("n_p0").as_int(), 300);
  EXPECT_EQ(doc.at("params").at("threads").as_int(), 2);
  EXPECT_TRUE(doc.at("build").contains("compiler"));

  const auto& circuits = doc.at("circuits").as_array();
  ASSERT_EQ(circuits.size(), 1u);
  EXPECT_EQ(circuits[0].at("circuit").as_string(), "s27");
  EXPECT_DOUBLE_EQ(circuits[0].at("seconds").as_double(), 0.125);

  const obs::Json& metrics = doc.at("metrics");
  EXPECT_GE(metrics.at("counters").at("obstest.counter").as_int(), 7);
  EXPECT_GE(metrics.at("timers").at("obstest.timer").at("calls").as_int(), 1);
  const obs::Json& h = metrics.at("histograms").at("obstest.hist");
  EXPECT_GE(h.at("count").as_int(), 1);
  EXPECT_GE(h.at("max").as_int(), 33);
  for (const char* field : {"count", "sum", "p50", "p90", "p99", "max"}) {
    EXPECT_TRUE(h.contains(field)) << field;
  }

  EXPECT_TRUE(doc.at("store").contains("hits"));
  EXPECT_TRUE(doc.at("store").contains("misses"));
  EXPECT_EQ(doc.at("trace").at("events").as_int(), 5);
  EXPECT_EQ(doc.at("trace").at("dropped").as_int(), 1);
}

// ---- determinism ------------------------------------------------------------

TEST(ObsDeterminism, TracingDoesNotPerturbResults) {
  const Netlist nl = benchmark_circuit("s27");
  TargetSetConfig tcfg;
  tcfg.n_p = 50;
  tcfg.n_p0 = 20;
  GeneratorConfig gcfg;
  gcfg.heuristic = CompactionHeuristic::Value;

  const EnrichmentWorkbench wb(nl, tcfg, nullptr);
  const GenerationResult plain = wb.run_enriched(gcfg);

  obs::TraceSession session;
  ASSERT_TRUE(session.start());
  const GenerationResult traced = wb.run_enriched(gcfg);
  session.stop();

  ASSERT_EQ(traced.tests.size(), plain.tests.size());
  for (std::size_t i = 0; i < plain.tests.size(); ++i) {
    ASSERT_EQ(traced.tests[i].pi_values.size(), plain.tests[i].pi_values.size());
    for (std::size_t j = 0; j < plain.tests[i].pi_values.size(); ++j) {
      EXPECT_TRUE(traced.tests[i].pi_values[j] == plain.tests[i].pi_values[j]);
    }
  }
  EXPECT_EQ(traced.detected_p0, plain.detected_p0);
  EXPECT_EQ(traced.detected_p1, plain.detected_p1);
  // And the instrumented run actually recorded engine spans.
  bool saw_engine_span = false;
  for (const auto& ev : session.events()) {
    if (std::string(ev.name) == "enrich.run_enriched") saw_engine_span = true;
  }
  EXPECT_TRUE(saw_engine_span);
}

}  // namespace
