// Observability layer: histogram bucketing and shard merging, span tracing
// (nesting, thread attribution, ring overflow), Chrome-trace JSON
// well-formedness, manifest schema round-trip, and the determinism contract
// that tracing never perturbs engine results.
//
// Suites are prefixed "Obs" so the CI ThreadSanitizer job's -R filter picks
// them up (histograms and trace rings are written from pool workers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace pdf;
using runtime::Metrics;

// ---- histogram bucketing ----------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  using H = Metrics::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of(~std::uint64_t{0}), 64u);

  // Every bucket's bounds map back into that bucket, and buckets tile the
  // uint64 range without gaps.
  for (std::size_t b = 0; b < H::kBuckets; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_lower(b)), b) << "bucket " << b;
    EXPECT_EQ(H::bucket_of(H::bucket_upper(b)), b) << "bucket " << b;
    if (b + 1 < H::kBuckets) {
      EXPECT_EQ(H::bucket_upper(b) + 1, H::bucket_lower(b + 1));
    }
  }
  EXPECT_EQ(H::bucket_upper(64), ~std::uint64_t{0});
}

TEST(ObsHistogram, RecordAndPercentiles) {
  Metrics m;
  auto& h = m.histogram("test.h");
  // 90 small values in bucket 1, 10 large ones in bucket 7 (64..127).
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(100);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 90u + 1000u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.p50(), 1u);   // bucket 1 upper bound
  EXPECT_EQ(s.p90(), 1u);   // rank 90 still lands in bucket 1
  EXPECT_EQ(s.p99(), 100u); // bucket 7 upper (127) clipped to observed max
  EXPECT_EQ(s.percentile(1.0), 100u);

  h.reset();
  const auto z = h.snapshot();
  EXPECT_EQ(z.count, 0u);
  EXPECT_EQ(z.percentile(0.5), 0u);
}

TEST(ObsHistogram, MergeAcrossShards) {
  // Values recorded from distinct pool workers land in distinct shards; the
  // snapshot must merge them exactly.
  Metrics m;
  auto& h = m.histogram("test.sharded");
  runtime::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  pool.parallel_for(kN, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) h.record(i);
  });
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, kN);
  EXPECT_EQ(s.sum, kN * (kN - 1) / 2);
  EXPECT_EQ(s.max, kN - 1);
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kN);
}

TEST(ObsHistogram, DumpAndSnapshotExposure) {
  Metrics m;
  m.histogram("test.dump").record(5);
  const std::string dump = m.dump();
  EXPECT_NE(dump.find("hist test.dump count 1 sum 5"), std::string::npos)
      << dump;
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.histograms.count("test.dump"), 1u);
  EXPECT_EQ(snap.histograms.at("test.dump").count, 1u);
  m.reset();
  EXPECT_EQ(m.snapshot().histograms.at("test.dump").count, 0u);
}

// ---- span tracing -----------------------------------------------------------

TEST(ObsTrace, DisabledByDefaultAndSpansAreFree) {
  EXPECT_FALSE(obs::trace_active());
  { PDF_TRACE_SPAN("obs.test.noop"); }  // must not crash with no session
  EXPECT_EQ(obs::active_session(), nullptr);
}

TEST(ObsTrace, SpanNestingAndThreadAttribution) {
  obs::TraceSession session;
  ASSERT_TRUE(session.start());
  EXPECT_TRUE(obs::trace_active());
  {
    PDF_TRACE_SPAN("obs.test.outer");
    PDF_TRACE_SPAN("obs.test.inner");
  }
  runtime::ThreadPool pool(4);
  pool.parallel_for(64, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      PDF_TRACE_SPAN("obs.test.worker");
    }
  });
  session.stop();
  EXPECT_FALSE(obs::trace_active());

  const auto events = session.events();
  ASSERT_EQ(events.size(), 66u);

  std::size_t outer = 0, inner = 0, worker = 0;
  std::set<std::uint32_t> worker_tids;
  const obs::TraceSession::Event* outer_ev = nullptr;
  const obs::TraceSession::Event* inner_ev = nullptr;
  for (const auto& ev : events) {
    const std::string name = ev.name;
    if (name == "obs.test.outer") {
      ++outer;
      outer_ev = &ev;
    } else if (name == "obs.test.inner") {
      ++inner;
      inner_ev = &ev;
    } else if (name == "obs.test.worker") {
      ++worker;
      worker_tids.insert(ev.tid);
    }
  }
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 1u);
  EXPECT_EQ(worker, 64u);
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // Nesting: the outer span opened first and closed last.
  EXPECT_LE(outer_ev->begin_ns, inner_ev->begin_ns);
  EXPECT_GE(outer_ev->begin_ns + outer_ev->dur_ns,
            inner_ev->begin_ns + inner_ev->dur_ns);
  // The two main-thread spans carry worker_slot 0.
  EXPECT_EQ(outer_ev->tid, 0u);
  EXPECT_EQ(inner_ev->tid, 0u);
  // All 64 iterations were attributed to valid slots; with a 4-participant
  // pool the tids stay inside the dense slot range.
  for (const std::uint32_t tid : worker_tids) {
    EXPECT_LT(tid, runtime::kMaxWorkerSlots);
  }
  EXPECT_EQ(session.dropped(), 0u);
}

TEST(ObsTrace, RingDropsOldestWhenFull) {
  obs::TraceSession session;
  ASSERT_TRUE(session.start(/*ring_capacity=*/8));
  for (int i = 0; i < 20; ++i) {
    PDF_TRACE_SPAN("obs.test.ring");
  }
  session.stop();
  EXPECT_EQ(session.events().size(), 8u);
  EXPECT_EQ(session.dropped(), 12u);
  // The 12 oldest events were overwritten; survivors come back begin-sorted.
  const auto events = session.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].begin_ns, events[i].begin_ns);
  }
}

TEST(ObsTrace, OnlyOneSessionAtATime) {
  obs::TraceSession a;
  obs::TraceSession b;
  ASSERT_TRUE(a.start());
  EXPECT_FALSE(b.start());
  a.stop();
  EXPECT_TRUE(b.start());
  b.stop();
}

TEST(ObsTrace, ChromeJsonParsesBack) {
  obs::TraceSession session;
  ASSERT_TRUE(session.start());
  {
    PDF_TRACE_SPAN("obs.test.chrome");
  }
  const char* interned = session.intern("obs.test.\"quoted\"");
  session.record(interned, obs::trace_now_ns(), obs::trace_now_ns() + 1500);
  session.stop();

  const obs::Json doc = obs::Json::parse(session.chrome_json());
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  std::set<std::string> names;
  for (const auto& ev : events) {
    // The fields Perfetto / chrome://tracing require of complete events.
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_GE(ev.at("ts").as_double(), 0.0);
    EXPECT_GE(ev.at("dur").as_double(), 0.0);
    EXPECT_EQ(ev.at("pid").as_int(), 1);
    EXPECT_GE(ev.at("tid").as_int(), 0);
    names.insert(ev.at("name").as_string());
  }
  EXPECT_TRUE(names.count("obs.test.chrome"));
  EXPECT_TRUE(names.count("obs.test.\"quoted\""));
}

// ---- JSON round-trip --------------------------------------------------------

TEST(ObsJson, RoundTripScalarsAndContainers) {
  obs::Json doc;
  doc["null"] = obs::Json(nullptr);
  doc["flag"] = true;
  doc["int"] = std::int64_t{-42};
  doc["big"] = std::uint64_t{1} << 62;
  doc["pi"] = 3.25;
  doc["text"] = "line1\nline2\t\"quoted\" \\slash";
  obs::Json arr;
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(obs::Json(false));
  doc["arr"] = std::move(arr);

  const obs::Json back = obs::Json::parse(doc.dump());
  EXPECT_TRUE(back.at("null").is_null());
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_EQ(back.at("int").as_int(), -42);
  EXPECT_EQ(back.at("big").as_int(), std::int64_t{1} << 62);
  EXPECT_DOUBLE_EQ(back.at("pi").as_double(), 3.25);
  EXPECT_EQ(back.at("text").as_string(), "line1\nline2\t\"quoted\" \\slash");
  EXPECT_EQ(back.at("arr").as_array().size(), 3u);
  EXPECT_EQ(back.at("arr").as_array()[1].as_string(), "two");
  // Re-dump is byte-stable (sorted keys, exact ints).
  EXPECT_EQ(back.dump(), doc.dump());
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse("{"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("[1,]"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("{\"a\":1} trailing"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("\"unterminated"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("nul"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse(""), obs::JsonError);
}

// ---- run manifest -----------------------------------------------------------

TEST(ObsManifest, SchemaRoundTrip) {
  // Populate the global registry with one metric of each kind so the
  // manifest has something from every map.
  auto& g = Metrics::global();
  g.counter("obstest.counter").add(7);
  { auto scope = g.timer("obstest.timer").measure(); }
  g.histogram("obstest.hist").record(33);

  obs::RunInfo info;
  info.bench = "obs_unit_test";
  info.seed = 99;
  info.n_p = 4000;
  info.n_p0 = 300;
  info.threads = 2;
  info.store_enabled = true;
  info.store_dir = ".artifact-store";
  info.circuits.emplace_back("s27", 0.125);
  info.trace_events = 5;
  info.trace_dropped = 1;

  const std::string path = "obs_manifest_test.json";
  ASSERT_TRUE(obs::write_run_manifest(path, info));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());

  const obs::Json doc = obs::Json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "pdf.run_manifest/1");
  EXPECT_EQ(doc.at("bench").as_string(), "obs_unit_test");
  EXPECT_EQ(doc.at("params").at("seed").as_int(), 99);
  EXPECT_EQ(doc.at("params").at("n_p").as_int(), 4000);
  EXPECT_EQ(doc.at("params").at("n_p0").as_int(), 300);
  EXPECT_EQ(doc.at("params").at("threads").as_int(), 2);
  EXPECT_TRUE(doc.at("build").contains("compiler"));

  const auto& circuits = doc.at("circuits").as_array();
  ASSERT_EQ(circuits.size(), 1u);
  EXPECT_EQ(circuits[0].at("circuit").as_string(), "s27");
  EXPECT_DOUBLE_EQ(circuits[0].at("seconds").as_double(), 0.125);

  const obs::Json& metrics = doc.at("metrics");
  EXPECT_GE(metrics.at("counters").at("obstest.counter").as_int(), 7);
  EXPECT_GE(metrics.at("timers").at("obstest.timer").at("calls").as_int(), 1);
  const obs::Json& h = metrics.at("histograms").at("obstest.hist");
  EXPECT_GE(h.at("count").as_int(), 1);
  EXPECT_GE(h.at("max").as_int(), 33);
  for (const char* field : {"count", "sum", "p50", "p90", "p99", "max"}) {
    EXPECT_TRUE(h.contains(field)) << field;
  }

  EXPECT_TRUE(doc.at("store").contains("hits"));
  EXPECT_TRUE(doc.at("store").contains("misses"));
  EXPECT_EQ(doc.at("trace").at("events").as_int(), 5);
  EXPECT_EQ(doc.at("trace").at("dropped").as_int(), 1);
}

// ---- snapshot merge / delta -------------------------------------------------

TEST(ObsSnapshot, HistogramMergeAddsAndKeepsLargerMax) {
  Metrics::Histogram::Snapshot a;
  a.count = 3;
  a.sum = 10;
  a.max = 6;
  a.buckets[1] = 1;
  a.buckets[2] = 1;
  a.buckets[3] = 1;

  Metrics::Histogram::Snapshot b;
  b.count = 1;
  b.sum = 100;
  b.max = 100;
  b.buckets[7] = 1;

  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 110u);
  EXPECT_EQ(a.max, 100u);
  EXPECT_EQ(a.buckets[1], 1u);
  EXPECT_EQ(a.buckets[7], 1u);
}

TEST(ObsSnapshot, HistogramDeltaSubtractsAndClampsOnReset) {
  Metrics::Histogram::Snapshot earlier;
  earlier.count = 5;
  earlier.sum = 50;
  earlier.max = 40;
  earlier.buckets[3] = 5;

  Metrics::Histogram::Snapshot later = earlier;
  later.count = 8;
  later.sum = 80;
  later.max = 64;
  later.buckets[3] = 6;
  later.buckets[6] = 2;

  const auto delta = later.delta_since(earlier);
  EXPECT_EQ(delta.count, 3u);
  EXPECT_EQ(delta.sum, 30u);
  EXPECT_EQ(delta.buckets[3], 1u);
  EXPECT_EQ(delta.buckets[6], 2u);
  // The interval max is not recoverable; the delta carries the later max as
  // an upper bound.
  EXPECT_EQ(delta.max, 64u);

  // A reset() between the two snapshots makes `later` smaller than
  // `earlier`; each field clamps at 0 instead of underflowing to 2^64-ish.
  Metrics::Histogram::Snapshot fresh;
  fresh.count = 2;
  fresh.sum = 4;
  fresh.max = 3;
  fresh.buckets[2] = 2;
  const auto clamped = fresh.delta_since(earlier);
  EXPECT_EQ(clamped.count, 0u);  // 2 - 5 clamps
  EXPECT_EQ(clamped.sum, 0u);    // 4 - 50 clamps
  EXPECT_EQ(clamped.buckets[2], 2u);  // bucket new since `earlier`
  EXPECT_EQ(clamped.buckets[3], 0u);  // 0 - 5 clamps
}

TEST(ObsSnapshot, MetricsDeltaCoversAllKindsAndNewMetrics) {
  Metrics::Snapshot earlier;
  earlier.counters["a"] = 10;
  earlier.timers["t"] = {1000, 2};

  Metrics::Snapshot later;
  later.counters["a"] = 15;
  later.counters["born.later"] = 7;
  later.timers["t"] = {1800, 5};
  later.histograms["h"].count = 1;
  later.histograms["h"].sum = 9;
  later.histograms["h"].max = 9;
  later.histograms["h"].buckets[4] = 1;

  const auto d = later.delta_since(earlier);
  EXPECT_EQ(d.counters.at("a"), 5u);
  // Metrics that did not exist at `earlier` appear with their full value.
  EXPECT_EQ(d.counters.at("born.later"), 7u);
  EXPECT_EQ(d.timers.at("t").total_ns, 800u);
  EXPECT_EQ(d.timers.at("t").calls, 3u);
  EXPECT_EQ(d.histograms.at("h").count, 1u);

  // Clamped: a counter that went backwards (reset) reads 0, not 2^64-ish.
  Metrics::Snapshot rewound;
  rewound.counters["a"] = 3;
  EXPECT_EQ(rewound.delta_since(earlier).counters.at("a"), 0u);

  // merge() reassembles the whole from delta + base.
  Metrics::Snapshot sum = earlier;
  sum.merge(d);
  EXPECT_EQ(sum.counters.at("a"), 15u);
  EXPECT_EQ(sum.counters.at("born.later"), 7u);
  EXPECT_EQ(sum.timers.at("t").total_ns, 1800u);
  EXPECT_EQ(sum.timers.at("t").calls, 5u);
  EXPECT_EQ(sum.histograms.at("h").sum, 9u);
}

// Snapshots taken while writers are live must be internally consistent and
// monotone; after the writers join, the final snapshot is exact. (Runs under
// the CI ThreadSanitizer job via the Obs prefix.)
TEST(ObsSnapshot, ConcurrentWritersYieldMonotoneConsistentSnapshots) {
  Metrics m;
  auto& ctr = m.counter("obssnap.ticks");
  auto& hist = m.histogram("obssnap.values");

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ctr.add(1);
        hist.record(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  std::uint64_t last_count = 0;
  Metrics::Snapshot mid;
  for (int i = 0; i < 50; ++i) {
    const auto snap = m.snapshot();
    const auto& h = snap.histograms.at("obssnap.values");
    // Monotone: counts never go backwards across successive snapshots.
    EXPECT_GE(h.count, last_count);
    last_count = h.count;
    // Internally consistent: the bucket mass always sums to the count.
    std::uint64_t bucket_mass = 0;
    for (const auto b : h.buckets) bucket_mass += b;
    EXPECT_EQ(bucket_mass, h.count);
    if (i == 25) mid = snap;
  }
  for (auto& w : writers) w.join();

  const auto fin = m.snapshot();
  EXPECT_EQ(fin.counters.at("obssnap.ticks"), kThreads * kPerThread);
  EXPECT_EQ(fin.histograms.at("obssnap.values").count, kThreads * kPerThread);
  EXPECT_EQ(fin.histograms.at("obssnap.values").max,
            kThreads * kPerThread - 1);
  // Delta over the second half plus the mid snapshot equals the final.
  auto rebuilt = mid;
  rebuilt.merge(fin.delta_since(mid));
  EXPECT_EQ(rebuilt.counters.at("obssnap.ticks"),
            fin.counters.at("obssnap.ticks"));
  EXPECT_EQ(rebuilt.histograms.at("obssnap.values").count,
            fin.histograms.at("obssnap.values").count);
  EXPECT_EQ(rebuilt.histograms.at("obssnap.values").sum,
            fin.histograms.at("obssnap.values").sum);
}

// ---- Prometheus exposition --------------------------------------------------

TEST(ObsExposition, PrometheusNameSanitization) {
  EXPECT_EQ(obs::prometheus_name("store.hits", "pdf", "_total"),
            "pdf_store_hits_total");
  EXPECT_EQ(obs::prometheus_name("serve.latency.run_ns", "pdf"),
            "pdf_serve_latency_run_ns");
  EXPECT_EQ(obs::prometheus_name("weird-name fn()", "pdf"),
            "pdf_weird_name_fn__");
  EXPECT_EQ(obs::prometheus_name("keep:colon_09", ""), "keep:colon_09");
}

// The exposition format is a contract with external scrapers, so this is an
// exact-string golden test over a hand-built snapshot.
TEST(ObsExposition, PrometheusGoldenFormat) {
  Metrics::Snapshot snap;
  snap.counters["store.hits"] = 3;
  snap.timers["atpg.total"] = {1500000000, 2};
  auto& h = snap.histograms["serve.latency.run_ns"];
  h.count = 3;
  h.sum = 10;
  h.max = 6;
  h.buckets[1] = 1;  // value 1
  h.buckets[2] = 1;  // value 3
  h.buckets[3] = 1;  // value 6

  const std::string text =
      obs::prometheus_text(snap, {{"jobs.inflight", 2.0}});
  const std::string expected =
      "# TYPE pdf_store_hits_total counter\n"
      "pdf_store_hits_total 3\n"
      "# TYPE pdf_atpg_total_seconds_total counter\n"
      "pdf_atpg_total_seconds_total 1.5\n"
      "# TYPE pdf_atpg_total_calls_total counter\n"
      "pdf_atpg_total_calls_total 2\n"
      "# TYPE pdf_serve_latency_run_ns histogram\n"
      "pdf_serve_latency_run_ns_bucket{le=\"0\"} 0\n"
      "pdf_serve_latency_run_ns_bucket{le=\"1\"} 1\n"
      "pdf_serve_latency_run_ns_bucket{le=\"3\"} 2\n"
      "pdf_serve_latency_run_ns_bucket{le=\"7\"} 3\n"
      "pdf_serve_latency_run_ns_bucket{le=\"+Inf\"} 3\n"
      "pdf_serve_latency_run_ns_sum 10\n"
      "pdf_serve_latency_run_ns_count 3\n"
      "# TYPE pdf_jobs_inflight gauge\n"
      "pdf_jobs_inflight 2\n";
  EXPECT_EQ(text, expected);
}

TEST(ObsExposition, EmptyHistogramStillEmitsMandatoryLines) {
  Metrics::Snapshot snap;
  snap.histograms["empty"];  // all-zero snapshot
  const std::string text = obs::prometheus_text(snap);
  EXPECT_NE(text.find("pdf_empty_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("pdf_empty_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("pdf_empty_count 0\n"), std::string::npos);
}

TEST(ObsExposition, SnapshotJsonShapes) {
  Metrics::Snapshot snap;
  snap.counters["c"] = 42;
  snap.timers["t"] = {700, 7};
  auto& h = snap.histograms["h"];
  h.count = 1;
  h.sum = 5;
  h.max = 5;
  h.buckets[3] = 1;

  const obs::Json doc = obs::snapshot_json(snap);
  EXPECT_EQ(doc.at("counters").at("c").as_int(), 42);
  EXPECT_EQ(doc.at("timers").at("t").at("total_ns").as_int(), 700);
  EXPECT_EQ(doc.at("timers").at("t").at("calls").as_int(), 7);
  EXPECT_EQ(doc.at("histograms").at("h").at("count").as_int(), 1);
  EXPECT_EQ(doc.at("histograms").at("h").at("p50").as_int(), 5);
  // Round-trips through the parser (the admin protocol embeds this).
  const obs::Json again = obs::Json::parse(doc.dump());
  EXPECT_EQ(again.at("counters").at("c").as_int(), 42);
}

// ---- structured logging -----------------------------------------------------

/// Captures emitted lines and restores sink/level/rate-limit on destruction.
class LogCapture {
 public:
  LogCapture() {
    obs::set_log_sink([this](std::string_view line) {
      const std::lock_guard<std::mutex> lock(mu_);
      lines_.emplace_back(line);
    });
  }
  ~LogCapture() {
    obs::set_log_sink(nullptr);
    obs::set_log_level(obs::LogLevel::Off);
    obs::set_log_rate_limit(1000);
  }
  std::vector<std::string> lines() {
    const std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(ObsLog, LevelGatingAndFieldFormatting) {
  LogCapture cap;
  obs::set_log_level(obs::LogLevel::Warn);

  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Debug));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Info));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Warn));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Error));

  PDF_LOG(Info, "obslog.suppressed").num("n", std::int64_t{1});
  PDF_LOG(Warn, "obslog.kept")
      .str("circuit", "s27")
      .num("id", std::int64_t{-3})
      .num("ratio", 0.5)
      .flag("draining", true)
      .str("quoted", "a\"b\\c");

  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 1u);
  const obs::Json doc = obs::Json::parse(lines[0]);
  EXPECT_EQ(doc.at("event").as_string(), "obslog.kept");
  EXPECT_EQ(doc.at("level").as_string(), "warn");
  EXPECT_TRUE(doc.contains("tid"));
  EXPECT_TRUE(doc.contains("ts_ms"));
  EXPECT_EQ(doc.at("circuit").as_string(), "s27");
  EXPECT_EQ(doc.at("id").as_int(), -3);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_double(), 0.5);
  EXPECT_EQ(doc.at("draining").as_bool(), true);
  EXPECT_EQ(doc.at("quoted").as_string(), "a\"b\\c");
}

TEST(ObsLog, ParseLevelRoundTripAndErrors) {
  EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::Debug);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::Info);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::Warn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::Error);
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::Off);
  for (const obs::LogLevel lv :
       {obs::LogLevel::Debug, obs::LogLevel::Info, obs::LogLevel::Warn,
        obs::LogLevel::Error, obs::LogLevel::Off}) {
    EXPECT_EQ(obs::parse_log_level(obs::log_level_name(lv)), lv);
  }
  EXPECT_THROW(obs::parse_log_level("verbose"), ConfigError);
  EXPECT_THROW(obs::parse_log_level(""), ConfigError);
}

TEST(ObsLog, RateLimitDropsAndCountsOverBudgetLines) {
  LogCapture cap;
  obs::set_log_level(obs::LogLevel::Info);
  obs::set_log_rate_limit(2);

  auto& dropped = runtime::Metrics::global().counter("log.dropped");
  const std::uint64_t dropped_before = dropped.read();
  constexpr int kLines = 50;
  for (int i = 0; i < kLines; ++i) {
    PDF_LOG(Info, "obslog.storm").num("i", std::int64_t{i});
  }
  const auto lines = cap.lines();
  // The burst spans at most two one-second windows, so 2..4 lines land and
  // every other line is dropped and counted.
  EXPECT_GE(lines.size(), 2u);
  EXPECT_LE(lines.size(), 4u);
  EXPECT_EQ(dropped.read() - dropped_before, kLines - lines.size());
}

TEST(ObsLog, ConcurrentEmittersProduceWholeLines) {
  LogCapture cap;
  obs::set_log_level(obs::LogLevel::Info);
  obs::set_log_rate_limit(0);  // unlimited: every line must arrive intact

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        PDF_LOG(Info, "obslog.concurrent")
            .num("t", std::int64_t{t})
            .num("i", std::int64_t{i});
      }
    });
  }
  for (auto& e : emitters) e.join();

  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (const auto& line : lines) {
    const obs::Json doc = obs::Json::parse(line);  // throws if torn
    EXPECT_EQ(doc.at("event").as_string(), "obslog.concurrent");
  }
}

// ---- determinism ------------------------------------------------------------

TEST(ObsDeterminism, TracingDoesNotPerturbResults) {
  const Netlist nl = benchmark_circuit("s27");
  TargetSetConfig tcfg;
  tcfg.n_p = 50;
  tcfg.n_p0 = 20;
  GeneratorConfig gcfg;
  gcfg.heuristic = CompactionHeuristic::Value;

  const EnrichmentWorkbench wb(nl, tcfg, nullptr);
  const GenerationResult plain = wb.run_enriched(gcfg);

  obs::TraceSession session;
  ASSERT_TRUE(session.start());
  const GenerationResult traced = wb.run_enriched(gcfg);
  session.stop();

  ASSERT_EQ(traced.tests.size(), plain.tests.size());
  for (std::size_t i = 0; i < plain.tests.size(); ++i) {
    ASSERT_EQ(traced.tests[i].pi_values.size(), plain.tests[i].pi_values.size());
    for (std::size_t j = 0; j < plain.tests[i].pi_values.size(); ++j) {
      EXPECT_TRUE(traced.tests[i].pi_values[j] == plain.tests[i].pi_values[j]);
    }
  }
  EXPECT_EQ(traced.detected_p0, plain.detected_p0);
  EXPECT_EQ(traced.detected_p1, plain.detected_p1);
  // And the instrumented run actually recorded engine spans.
  bool saw_engine_span = false;
  for (const auto& ev : session.events()) {
    if (std::string(ev.name) == "enrich.run_enriched") saw_engine_span = true;
  }
  EXPECT_TRUE(saw_engine_span);
}

}  // namespace
