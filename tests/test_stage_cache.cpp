// StageCache memoization tests: compute-once semantics, cold/warm
// equivalence through the EnrichmentWorkbench, corruption fallback, and the
// per-stage hit/miss counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "enrich/enrichment.hpp"
#include "faultsim/batch_sim.hpp"
#include "runtime/metrics.hpp"
#include "store/stage_cache.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

namespace fs = std::filesystem;
using store::StageCache;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "pdf-cache-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

UnionCoverage some_coverage() {
  UnionCoverage c;
  c.p0_detected = 3;
  c.p1_detected = 5;
  c.p0_total = 7;
  c.p1_total = 9;
  return c;
}

TEST(StageCacheTest, MemoizeComputesOnceThenHits) {
  TempDir dir;
  StageCache cache(dir.path);

  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return some_coverage();
  };

  const UnionCoverage first = cache.memoize<UnionCoverage>({1, 2, 3}, compute);
  EXPECT_EQ(computed, 1);
  const UnionCoverage second = cache.memoize<UnionCoverage>({1, 2, 3}, compute);
  EXPECT_EQ(computed, 1);  // served from the store
  EXPECT_EQ(second.p0_detected, first.p0_detected);
  EXPECT_EQ(second.p1_detected, first.p1_detected);
  EXPECT_EQ(second.p0_total, first.p0_total);
  EXPECT_EQ(second.p1_total, first.p1_total);

  // Any change to the input digests is a different record.
  cache.memoize<UnionCoverage>({1, 2, 4}, compute);
  EXPECT_EQ(computed, 2);

  // A fresh cache over the same root still hits (records are on disk).
  StageCache reopened(dir.path);
  reopened.memoize<UnionCoverage>({1, 2, 3}, compute);
  EXPECT_EQ(computed, 2);
}

TEST(StageCacheTest, StageCountersTrackHitsAndMisses) {
  TempDir dir;
  StageCache cache(dir.path);
  auto& hits =
      runtime::Metrics::global().counter("store.stage.union_coverage.hits");
  auto& misses =
      runtime::Metrics::global().counter("store.stage.union_coverage.misses");
  const std::uint64_t h0 = hits.read();
  const std::uint64_t m0 = misses.read();

  cache.memoize<UnionCoverage>({99}, some_coverage);
  EXPECT_EQ(hits.read(), h0);
  EXPECT_EQ(misses.read(), m0 + 1);
  cache.memoize<UnionCoverage>({99}, some_coverage);
  EXPECT_EQ(hits.read(), h0 + 1);
  EXPECT_EQ(misses.read(), m0 + 1);
}

TEST(StageCacheTest, WorkbenchColdAndWarmRunsAreIdentical) {
  Rng rng(31);
  const Netlist nl = testutil::random_small_netlist(rng);
  TargetSetConfig tcfg;
  tcfg.n_p = 40;
  tcfg.n_p0 = 8;
  GeneratorConfig gcfg;
  gcfg.seed = 5;

  // Reference: no cache at all.
  const EnrichmentWorkbench plain(nl, tcfg);
  const GenerationResult ref = plain.run_enriched(gcfg);
  const UnionCoverage ref_cov = plain.coverage_of(ref);

  TempDir dir;
  const auto run_cached = [&] {
    StageCache cache(dir.path);
    EnrichmentWorkbench wb(nl, tcfg, &cache);
    struct Out {
      GenerationResult r;
      UnionCoverage c;
      std::size_t p0, p1;
    } out{wb.run_enriched(gcfg), {}, wb.targets().p0.size(),
          wb.targets().p1.size()};
    out.c = wb.coverage_of(out.r);
    return out;
  };

  const auto cold = run_cached();
  const auto warm = run_cached();

  for (const auto* run : {&cold, &warm}) {
    EXPECT_EQ(run->p0, plain.targets().p0.size());
    EXPECT_EQ(run->p1, plain.targets().p1.size());
    ASSERT_EQ(run->r.tests.size(), ref.tests.size());
    for (std::size_t i = 0; i < ref.tests.size(); ++i) {
      for (std::size_t j = 0; j < ref.tests[i].pi_values.size(); ++j) {
        ASSERT_EQ(run->r.tests[i].pi_values[j], ref.tests[i].pi_values[j]);
      }
    }
    EXPECT_EQ(run->r.detected_p0, ref.detected_p0);
    EXPECT_EQ(run->r.detected_p1, ref.detected_p1);
    EXPECT_EQ(run->c.p0_detected, ref_cov.p0_detected);
    EXPECT_EQ(run->c.p1_detected, ref_cov.p1_detected);
    EXPECT_EQ(run->c.p0_total, ref_cov.p0_total);
    EXPECT_EQ(run->c.p1_total, ref_cov.p1_total);
  }
  // The warm run decoded the cold run's records: bookkeeping stats match
  // bit-for-bit, including the recorded generation time.
  EXPECT_EQ(warm.r.stats.seconds, cold.r.stats.seconds);
  EXPECT_EQ(warm.r.stats.primary_attempts, cold.r.stats.primary_attempts);
  EXPECT_EQ(warm.r.stats.secondary_accepted, cold.r.stats.secondary_accepted);
}

TEST(StageCacheTest, CorruptedRecordsFallBackToRecomputation) {
  Rng rng(37);
  const Netlist nl = testutil::random_small_netlist(rng);
  TargetSetConfig tcfg;
  tcfg.n_p = 30;
  tcfg.n_p0 = 6;

  TempDir dir;
  const auto run = [&] {
    StageCache cache(dir.path);
    EnrichmentWorkbench wb(nl, tcfg, &cache);
    return wb.run_enriched({});
  };
  const GenerationResult cold = run();

  // Flip one byte in every stored record.
  std::size_t corrupted = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    if (!entry.is_regular_file()) continue;
    std::fstream f(entry.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(33);
    char c;
    f.get(c);
    f.seekp(33);
    f.put(static_cast<char>(c ^ 0x40));
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  const GenerationResult again = run();
  ASSERT_EQ(again.tests.size(), cold.tests.size());
  for (std::size_t i = 0; i < cold.tests.size(); ++i) {
    for (std::size_t j = 0; j < cold.tests[i].pi_values.size(); ++j) {
      ASSERT_EQ(again.tests[i].pi_values[j], cold.tests[i].pi_values[j]);
    }
  }
  EXPECT_EQ(again.detected_p0, cold.detected_p0);
  EXPECT_EQ(again.detected_p1, cold.detected_p1);

  // The corrupt files were quarantined and the slots rewritten: a third run
  // hits again without recomputation (stats decode bit-identically).
  const GenerationResult healed = run();
  EXPECT_EQ(healed.stats.seconds, again.stats.seconds);
}

// The pdf_serve daemon shards jobs across worker threads that all write into
// ONE StageCache. ArtifactStore::put publishes via a unique temp file
// (pid + atomic counter) and an atomic rename, so concurrent writers —
// distinct keys or racing on the same key — must never corrupt a record or
// lose an update. This stress covers both patterns and then proves every
// record decodes correctly from a cold reopen.
TEST(StageCacheTest, ConcurrentWritersNeverCorruptTheStore) {
  TempDir dir;
  StageCache cache(dir.path);
  constexpr std::uint64_t kThreads = 8;
  constexpr std::uint64_t kKeysPerThread = 24;
  constexpr std::uint64_t kSharedKey = 777;

  const auto value_for = [](std::uint64_t key) {
    UnionCoverage c;
    c.p0_detected = static_cast<std::size_t>(key);
    c.p1_detected = static_cast<std::size_t>(key * 3 + 1);
    c.p0_total = static_cast<std::size_t>(key + 100);
    c.p1_total = static_cast<std::size_t>(key + 200);
    return c;
  };

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < kKeysPerThread; ++k) {
        // Mostly distinct keys, plus everyone hammering one shared key
        // (duplicate computes are legal; torn records are not).
        const std::uint64_t key =
            k % 4 == 3 ? kSharedKey : 1000 * (t + 1) + k;
        const UnionCoverage got =
            cache.memoize<UnionCoverage>({key}, [&] { return value_for(key); });
        const UnionCoverage want = value_for(key);
        if (got.p0_detected != want.p0_detected ||
            got.p1_detected != want.p1_detected ||
            got.p0_total != want.p0_total || got.p1_total != want.p1_total) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Cold reopen: every key must hit (no lost publishes) and decode to the
  // value its writer computed (no cross-key or torn writes).
  StageCache reopened(dir.path);
  const auto must_hit = [&](std::uint64_t key) {
    bool recomputed = false;
    const UnionCoverage got = reopened.memoize<UnionCoverage>({key}, [&] {
      recomputed = true;
      return value_for(key);
    });
    EXPECT_FALSE(recomputed) << "key " << key << " was lost";
    EXPECT_EQ(got.p0_detected, value_for(key).p0_detected);
    EXPECT_EQ(got.p1_total, value_for(key).p1_total);
  };
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t k = 0; k < kKeysPerThread; ++k) {
      if (k % 4 != 3) must_hit(1000 * (t + 1) + k);
    }
  }
  must_hit(kSharedKey);
}

TEST(StageCacheTest, CachedDetectionMatrixHitMatchesComputed) {
  Rng rng(41);
  const Netlist nl = testutil::random_small_netlist(rng);
  TargetSetConfig tcfg;
  tcfg.n_p = 30;
  tcfg.n_p0 = 6;

  TempDir dir;
  StageCache cache(dir.path);
  EnrichmentWorkbench wb(nl, tcfg, &cache);
  const GenerationResult res = wb.run_enriched({});
  BatchSimulator fsim(nl);

  const DetectionMatrix direct =
      fsim.detection_matrix(res.tests, wb.targets().p0);
  const DetectionMatrix cold = store::cached_detection_matrix(
      &cache, fsim, nl, res.tests, wb.targets().p0);
  const DetectionMatrix warm = store::cached_detection_matrix(
      &cache, fsim, nl, res.tests, wb.targets().p0);
  EXPECT_EQ(cold, direct);
  EXPECT_EQ(warm, direct);

  // Null cache means plain computation.
  const DetectionMatrix none = store::cached_detection_matrix(
      nullptr, fsim, nl, res.tests, wb.targets().p0);
  EXPECT_EQ(none, direct);
}

}  // namespace
}  // namespace pdf
